//! Quickstart: deploy one inference function on a Dilu-managed node and
//! inspect the serving report.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dilu::cluster::ClusterSpec;
use dilu::core::{build_sim, funcs, SystemKind};
use dilu::models::ModelId;
use dilu::sim::SimTime;
use dilu::workload::{ArrivalProcess, PoissonProcess};

fn main() {
    // A single node with two A100-40GB-class GPUs running the full Dilu
    // stack: Algorithm-1 scheduling, lazy scaling, RCKM token control.
    let mut sim = build_sim(SystemKind::Dilu, ClusterSpec::single_node(2));

    // The control plane profiles RoBERTa-large once (Hybrid Growth Search)
    // and derives its <request, limit> quotas and batch size.
    let function = funcs::inference_function(1, ModelId::RobertaLarge);
    if let dilu::cluster::FunctionKind::Inference { batch, slo } = function.kind {
        println!(
            "profiled {}: IBS={batch} SLO={slo} request={} limit={}",
            function.name, function.quotas.request, function.quotas.limit
        );
    }

    // 60 seconds of Poisson traffic at 25 requests per second.
    let arrivals = PoissonProcess::new(25.0, 42).generate(SimTime::from_secs(60));
    sim.deploy_inference(function, 1, arrivals).expect("empty cluster has room");

    // A collocated BERT fine-tuning job soaks up the leftover SMs.
    let training = funcs::training_function(2, ModelId::BertBase, 1, u64::MAX);
    sim.deploy_training(training).expect("empty cluster has room");

    sim.run_until(SimTime::from_secs(65));
    let report = sim.into_report();

    let f = report.inference.values().next().expect("function deployed");
    println!("\nserved {} of {} requests", f.completed, f.arrived);
    println!("p50 {}  p95 {}  SVR {:.2}%", f.latency.p50(), f.latency.p95(), f.svr() * 100.0);
    let t = report.training.values().next().expect("job deployed");
    println!("collocated training: {:.0} {} on the same GPU", t.throughput(report.horizon), t.unit);
    println!(
        "GPUs occupied: {} peak, SM fragmentation {:.1}%",
        report.peak_gpus,
        report.fragmentation.mean_sm_fragmentation() * 100.0
    );
}

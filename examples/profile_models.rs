//! Multi-factor profiling of the full model zoo: runs the Hybrid Growth
//! Search and the training binary search for every model and prints the
//! resourcing metadata Dilu's scheduler consumes.
//!
//! ```sh
//! cargo run --release --example profile_models
//! ```

use dilu::models::ModelId;
use dilu::profiler::{hybrid_growth_search, profile_training};

fn main() {
    println!("inference profiling (Hybrid Growth Search, SLO/2 exec budget):\n");
    println!(
        "{:<14} {:>4} {:>10} {:>8} {:>8} {:>7}",
        "model", "IBS", "request", "limit", "TE", "trials"
    );
    for model in ModelId::ALL {
        let p = hybrid_growth_search(model);
        println!(
            "{:<14} {:>4} {:>10} {:>8} {:>8.0} {:>7}",
            model.to_string(),
            p.batch,
            p.request.to_string(),
            p.limit.to_string(),
            p.best_te,
            p.trials
        );
    }
    println!("\ntraining profiling (binary search, request = 80% of exclusive, limit = 100%):\n");
    println!(
        "{:<14} {:>10} {:>8} {:>9} {:>14}",
        "model", "request", "limit", "trials", "thr@request"
    );
    for model in ModelId::ALL {
        let q = profile_training(model);
        println!(
            "{:<14} {:>10} {:>8} {:>9} {:>11.0}/s",
            model.to_string(),
            q.request.smr.to_string(),
            q.limit.smr.to_string(),
            q.request.trials + q.limit.trials,
            q.request.throughput
        );
    }
}

//! Bursty-workload autoscaling: the same Azure-style bursty trace served by
//! Dilu's 2D co-scaling (fast vertical + lazy horizontal) and by the eager
//! FaST-GS+ baseline — compare cold starts and SLO violations.
//!
//! ```sh
//! cargo run --release --example bursty_autoscaling
//! ```

use dilu::cluster::ClusterSpec;
use dilu::core::{build_sim, funcs, SystemKind};
use dilu::models::ModelId;
use dilu::sim::{SimDuration, SimTime};
use dilu::workload::{ArrivalProcess, RateTrace, TraceKind, TraceProcess};

const HORIZON: u64 = 300;

fn main() {
    // Base 20 rps bursting ~5x: peaks sit inside the vertical-scaling
    // headroom of a single instance (request -> limit), the regime the
    // paper's lazy scale-out targets.
    let trace =
        RateTrace::synthesize(TraceKind::Bursty, 20.0, 5.0, SimDuration::from_secs(HORIZON), 91);
    println!("bursty trace: base 20 rps, bursts to ~{:.0} rps, {}s\n", trace.peak(), HORIZON);
    println!(
        "{:<12} {:>11} {:>8} {:>10} {:>12}",
        "system", "cold starts", "SVR", "p95 (ms)", "GPU-seconds"
    );
    for kind in [SystemKind::Dilu, SystemKind::FastGsPlus, SystemKind::InflessPlusL] {
        let arrivals = TraceProcess::new(trace.clone(), 91).generate(SimTime::from_secs(HORIZON));
        let mut sim = build_sim(kind, ClusterSpec::single_node(8));
        sim.deploy_inference(funcs::inference_function(1, ModelId::RobertaLarge), 1, arrivals)
            .expect("empty cluster has room");
        sim.deploy_training(funcs::training_function(2, ModelId::BertBase, 2, u64::MAX))
            .expect("empty cluster has room");
        sim.run_until(SimTime::from_secs(HORIZON + 20));
        let report = sim.into_report();
        let f = report.inference.values().next().expect("function deployed");
        println!(
            "{:<12} {:>11} {:>7.1}% {:>10.1} {:>12.0}",
            kind.label(),
            f.cold_starts.count(),
            f.svr() * 100.0,
            f.latency.p95().as_millis_f64(),
            report.gpu_time.as_secs_f64(),
        );
    }
    println!("\nDilu absorbs the bursts entirely with RCKM vertical scale-up (zero");
    println!("cold starts), trading a few percent of tail latency for it; the");
    println!("reactive baselines launch and reap instances on every spike.");
}

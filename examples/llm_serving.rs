//! LLM serving over GPU fragments: LLaMA2-7B inference pipelined across
//! four GPUs that are simultaneously fine-tuning the same model — the
//! scenario from the paper's introduction, comparing Dilu's RCKM against a
//! static MPS partition.
//!
//! ```sh
//! cargo run --release --example llm_serving
//! ```

use dilu::cluster::FunctionId;
use dilu::core::experiments::collocation::{gpu, run_case, GpuSystem, Member};
use dilu::core::funcs;
use dilu::models::ModelId;
use dilu::rckm::RckmConfig;
use dilu::sim::SimTime;
use dilu::workload::{ArrivalProcess, PoissonProcess};

fn main() {
    let arrivals = PoissonProcess::new(3.0, 7).generate(SimTime::from_secs(60));
    println!("LLaMA2-7B: 4-stage pipelined inference + 4-worker fine-tuning on 4 GPUs\n");
    println!(
        "{:<10} {:>14} {:>14} {:>8} {:>18}",
        "system", "TPOT p50 (ms)", "TPOT p95 (ms)", "SVR", "train tokens/s"
    );
    for system in [GpuSystem::Dilu(RckmConfig::default()), GpuSystem::MpsL, GpuSystem::MpsR] {
        let inference = funcs::llm_inference_function(1, ModelId::Llama2_7b, 4);
        let training = funcs::training_function(2, ModelId::Llama2_7b, 4, u64::MAX);
        let gpus: Vec<_> = (0..4).map(gpu).collect();
        let members = vec![
            Member::pipelined(inference, arrivals.clone(), gpus.clone()),
            Member::workers(training, &gpus),
        ];
        let report = run_case(4, members, system, 65);
        let f = &report.inference[&FunctionId(1)];
        let t = report.training.values().next().expect("fine-tuning job");
        println!(
            "{:<10} {:>14.1} {:>14.1} {:>7.1}% {:>18.0}",
            system.label(),
            f.p50_display().as_millis_f64(),
            f.p95_display().as_millis_f64(),
            f.svr() * 100.0,
            t.throughput(report.horizon),
        );
    }
    println!("\nTPOT = time per output token (32 tokens per request).");
    println!("Dilu lends idle decode gaps to the fine-tuning job and snaps back");
    println!("to the inference limit quota when kernel launch cycles inflate.");
}

//! # Dilu — GPU resourcing-on-demand for serverless DL serving
//!
//! A from-scratch Rust reproduction of *"Dilu: Enabling GPU
//! Resourcing-on-Demand for Serverless DL Serving via Introspective
//! Elasticity"* (ASPLOS '25), running on a deterministic simulated GPU
//! cluster substrate instead of real A100s/CUDA/MPS.
//!
//! The crates compose as the paper's three planes:
//!
//! * **control plane** — [`profiler`] (`<request, limit>` quota search),
//!   [`scheduler`] (Algorithm 1 resourcing-complementary placement);
//! * **scaling plane** — [`scaler`] (lazy scaling-out/in plus the 2D
//!   `CoScaler` driving vertical quota resizes) and [`rckm`] (Algorithm 2
//!   token-based fast scaling-up/down);
//! * **serving plane** — [`cluster`] (instances, batching, training jobs,
//!   cold starts) over [`gpu`] (quantum-stepped SM contention engine) and
//!   [`models`] (the evaluated DL model zoo) fed by [`workload`] arrival
//!   generators, measured by [`metrics`].
//!
//! [`baselines`] implements Exclusive/MPS/TGS/FaST-GS/INFless+ on the same
//! substrate; [`core`] wires complete systems and hosts the experiment
//! harness regenerating every table and figure (see `crates/bench`).
//!
//! # Quickstart
//!
//! The fluent [`ScenarioBuilder`](core::ScenarioBuilder) is the front door:
//! a [`core::SystemKind`] preset pre-populates the paper's composition, and
//! every component stays swappable.
//!
//! ```
//! use dilu::core::{funcs, SystemKind};
//! use dilu::cluster::ClusterSpec;
//! use dilu::models::ModelId;
//! use dilu::sim::SimDuration;
//! use dilu::workload::PoissonProcess;
//!
//! // A two-GPU node running the full Dilu stack.
//! let report = SystemKind::Dilu
//!     .builder()
//!     .cluster(ClusterSpec::single_node(2))
//!     .horizon(SimDuration::from_secs(20))
//!     .function(funcs::inference_function(1, ModelId::RobertaLarge))
//!     .arrivals(PoissonProcess::new(25.0, 7))
//!     .build()?
//!     .run()?;
//! let f = report.inference.values().next().unwrap();
//! assert!(f.svr() < 0.05, "Dilu keeps the SLO under steady load");
//! # Ok::<(), dilu::core::ScenarioError>(())
//! ```
//!
//! Compositions also load from TOML/JSON scenario files
//! ([`core::ScenarioConfig`]) and run via the `dilu` CLI:
//!
//! ```console
//! $ dilu run examples/scenarios/quickstart.toml
//! $ dilu experiment fig15
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use dilu_baselines as baselines;
pub use dilu_cluster as cluster;
pub use dilu_core as core;
pub use dilu_gpu as gpu;
pub use dilu_metrics as metrics;
pub use dilu_models as models;
pub use dilu_net as net;
pub use dilu_profiler as profiler;
pub use dilu_rckm as rckm;
pub use dilu_scaler as scaler;
pub use dilu_scheduler as scheduler;
pub use dilu_sim as sim;
pub use dilu_workload as workload;

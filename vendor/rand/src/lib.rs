//! A minimal, offline stand-in for `rand`.
//!
//! Provides [`RngCore`], [`SeedableRng`], and the [`Rng`] extension trait
//! with the `gen`/`gen_range` surface this workspace uses. Uniform sampling
//! uses the widening-multiply method for integers and the 53-bit mantissa
//! method for floats.

use std::ops::{Range, RangeInclusive};

/// The low-level generator interface.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: AsMut<[u8]> + Default;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator by expanding a `u64` with SplitMix64.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types samplable uniformly over their whole domain by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

/// `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value in the range from `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                let off = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                self.start.wrapping_add(off as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full-domain inclusive range.
                    return rng.next_u64() as $t;
                }
                let off = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                start.wrapping_add(off as $t)
            }
        }
    )*};
}

int_ranges!(u8, u16, u32, u64, usize);

macro_rules! signed_int_ranges {
    ($($t:ty : $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                let off = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                self.start.wrapping_add(off as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = ((end as $u).wrapping_sub(start as $u) as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                let off = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                start.wrapping_add(off as $t)
            }
        }
    )*};
}

signed_int_ranges!(i8: u8, i16: u16, i32: u32, i64: u64, isize: usize);

macro_rules! float_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let u = unit_f64(rng) as $t;
                let v = self.start + (self.end - self.start) * u;
                // Guard against rounding up to the excluded endpoint.
                if v >= self.end { self.start } else { v }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                start + (end - start) * (unit_f64(rng) as $t)
            }
        }
    )*};
}

float_ranges!(f32, f64);

/// User-facing convenience methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Draws a uniformly random `T` over its whole domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Compatibility module mirroring `rand::rngs`.
pub mod rngs {
    /// A tiny SplitMix64 generator, usable where rand's `SmallRng` would be.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl super::SeedableRng for SmallRng {
        type Seed = [u8; 8];

        fn from_seed(seed: Self::Seed) -> Self {
            SmallRng { state: u64::from_le_bytes(seed) }
        }
    }

    impl super::RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use rngs::SmallRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: u32 = rng.gen_range(5u32..95);
            assert!((5..95).contains(&x));
            let y = rng.gen_range(15u64..=40);
            assert!((15..=40).contains(&y));
            let f = rng.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&f));
            let g = rng.gen_range(0.8f64..=1.2);
            assert!((0.8..=1.2).contains(&g));
        }
    }

    #[test]
    fn uniform_mean_is_centred() {
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}

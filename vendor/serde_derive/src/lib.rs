//! `#[derive(Serialize, Deserialize)]` for the offline serde stand-in.
//!
//! Implemented directly on `proc_macro::TokenStream` (no `syn`/`quote`,
//! which are unavailable offline). Supports exactly the shapes this
//! workspace uses: non-generic structs (named, tuple, unit) and non-generic
//! enums (unit, named-field, and tuple variants). Generated code follows
//! serde's externally-tagged data model over `serde::Value`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Item {
    Struct { name: String, fields: Fields },
    Enum { name: String, variants: Vec<Variant> },
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("serde_derive generated invalid Serialize impl")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("serde_derive generated invalid Deserialize impl")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kw = ident_at(&tokens, i).expect("expected `struct` or `enum`");
    i += 1;
    let name = ident_at(&tokens, i).expect("expected item name");
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive stand-in: generic types are not supported (deriving {name})");
    }
    match kw.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                _ => Fields::Unit,
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let Some(TokenTree::Group(g)) = tokens.get(i) else {
                panic!("expected enum body for {name}");
            };
            Item::Enum { name, variants: parse_variants(g.stream()) }
        }
        other => panic!("serde_derive stand-in: cannot derive for `{other}` items"),
    }
}

fn ident_at(tokens: &[TokenTree], i: usize) -> Option<String> {
    match tokens.get(i) {
        Some(TokenTree::Ident(id)) => Some(id.to_string()),
        _ => None,
    }
}

/// Advances past `#[...]` attributes (incl. doc comments) and visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // '#'
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1; // pub(crate) / pub(super)
                }
            }
            _ => return,
        }
    }
}

/// Skips a type (or any token run) until a `,` at angle-bracket depth 0.
/// Returns with `i` at the comma (or at end).
fn skip_until_top_level_comma(tokens: &[TokenTree], i: &mut usize) {
    let mut angle: i32 = 0;
    while let Some(tt) = tokens.get(*i) {
        if let TokenTree::Punct(p) = tt {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => return,
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(name) = ident_at(&tokens, i) else {
            break;
        };
        i += 1;
        // ':'
        debug_assert!(
            matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ':'),
            "expected `:` after field `{name}`"
        );
        i += 1;
        skip_until_top_level_comma(&tokens, &mut i);
        i += 1; // ','
        fields.push(name);
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_until_top_level_comma(&tokens, &mut i);
        i += 1; // ','
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(name) = ident_at(&tokens, i) else {
            break;
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            panic!("serde_derive stand-in: explicit enum discriminants are not supported");
        }
        // ','
        if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(fields) => {
                    let entries: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "(::serde::Value::Str(::std::string::String::from(\"{f}\")), \
                                 ::serde::Serialize::to_value(&self.{f}))"
                            )
                        })
                        .collect();
                    format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
                }
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
                }
                Fields::Unit => "::serde::Value::Unit".to_string(),
            };
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vname} => ::serde::Value::Str(::std::string::String::from(\"{vname}\")),"
                        ),
                        Fields::Named(fields) => {
                            let binds = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::serde::Value::Str(::std::string::String::from(\"{f}\")), \
                                         ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binds} }} => ::serde::Value::Map(::std::vec![\
                                 (::serde::Value::Str(::std::string::String::from(\"{vname}\")), \
                                 ::serde::Value::Map(::std::vec![{}]))]),",
                                entries.join(", ")
                            )
                        }
                        Fields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let payload = if *n == 1 {
                                "::serde::Serialize::to_value(__f0)".to_string()
                            } else {
                                let items: Vec<String> = binds
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                                    .collect();
                                format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
                            };
                            format!(
                                "{name}::{vname}({}) => ::serde::Value::Map(::std::vec![\
                                 (::serde::Value::Str(::std::string::String::from(\"{vname}\")), {payload})]),",
                                binds.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{}\n}}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(fields) => {
                    let inits: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            format!("{f}: ::serde::__private::field(__v, \"{f}\", \"{name}\")?")
                        })
                        .collect();
                    format!(
                        "if __v.as_map().is_none() {{\n\
                             return ::std::result::Result::Err(::serde::DeError::expected(\"map\", \"{name}\"));\n\
                         }}\n\
                         ::std::result::Result::Ok({name} {{ {} }})",
                        inits.join(", ")
                    )
                }
                Fields::Tuple(1) => format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))"
                ),
                Fields::Tuple(n) => {
                    let inits: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                        .collect();
                    format!(
                        "let __items = ::serde::__private::seq(__v, {n}, \"{name}\")?;\n\
                         ::std::result::Result::Ok({name}({}))",
                        inits.join(", ")
                    )
                }
                Fields::Unit => format!("::std::result::Result::Ok({name})"),
            };
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         {body}\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),"
                        ),
                        Fields::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::__private::field(__p, \"{f}\", \"{name}::{vname}\")?"
                                    )
                                })
                                .collect();
                            format!(
                                "\"{vname}\" => {{\n\
                                     let __p = __payload.ok_or_else(|| ::serde::DeError::expected(\"payload\", \"{name}::{vname}\"))?;\n\
                                     ::std::result::Result::Ok({name}::{vname} {{ {} }})\n\
                                 }}",
                                inits.join(", ")
                            )
                        }
                        Fields::Tuple(n) => {
                            let body = if *n == 1 {
                                format!(
                                    "::std::result::Result::Ok({name}::{vname}(::serde::Deserialize::from_value(__p)?))"
                                )
                            } else {
                                let inits: Vec<String> = (0..*n)
                                    .map(|i| {
                                        format!("::serde::Deserialize::from_value(&__items[{i}])?")
                                    })
                                    .collect();
                                format!(
                                    "let __items = ::serde::__private::seq(__p, {n}, \"{name}::{vname}\")?;\n\
                                     ::std::result::Result::Ok({name}::{vname}({}))",
                                    inits.join(", ")
                                )
                            };
                            format!(
                                "\"{vname}\" => {{\n\
                                     let __p = __payload.ok_or_else(|| ::serde::DeError::expected(\"payload\", \"{name}::{vname}\"))?;\n\
                                     {body}\n\
                                 }}"
                            )
                        }
                    }
                })
                .collect();
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         let (__tag, __payload) = ::serde::__private::variant(__v, \"{name}\")?;\n\
                         match __tag {{\n{}\n\
                             __other => ::std::result::Result::Err(::serde::DeError::unknown_variant(__other, \"{name}\")),\n\
                         }}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    }
}

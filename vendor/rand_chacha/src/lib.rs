//! A real ChaCha8 keystream generator for the offline rand stand-in.
//!
//! Implements the ChaCha block function (D. J. Bernstein) with 8 rounds and
//! a 64-bit block counter. Output is the keystream consumed word by word, so
//! streams are deterministic, seedable, and of high statistical quality —
//! byte-for-byte identity with the upstream `rand_chacha` crate is *not* a
//! goal (nothing in this workspace depends on it).

use rand::{RngCore, SeedableRng};

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// A ChaCha generator with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    stream: u64,
    buffer: [u32; 16],
    index: usize,
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = self.stream as u32;
        state[15] = (self.stream >> 32) as u32;
        let mut working = state;
        for _ in 0..4 {
            // 8 rounds = 4 double rounds (column + diagonal).
            quarter(&mut working, 0, 4, 8, 12);
            quarter(&mut working, 1, 5, 9, 13);
            quarter(&mut working, 2, 6, 10, 14);
            quarter(&mut working, 3, 7, 11, 15);
            quarter(&mut working, 0, 5, 10, 15);
            quarter(&mut working, 1, 6, 11, 12);
            quarter(&mut working, 2, 7, 8, 13);
            quarter(&mut working, 3, 4, 9, 14);
        }
        for i in 0..16 {
            self.buffer[i] = working[i].wrapping_add(state[i]);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }

    fn next_word(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.buffer[self.index];
        self.index += 1;
        w
    }

    /// Selects an independent keystream (nonce) for the same key.
    pub fn set_stream(&mut self, stream: u64) {
        self.stream = stream;
        self.counter = 0;
        self.index = 16;
    }
}

#[inline]
fn quarter(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng { key, counter: 0, stream: 0, buffer: [0; 16], index: 16 }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_word());
        let hi = u64::from(self.next_word());
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn reproducible_and_seed_sensitive() {
        let mut a = ChaCha8Rng::from_seed([1; 32]);
        let mut b = ChaCha8Rng::from_seed([1; 32]);
        let mut c = ChaCha8Rng::from_seed([2; 32]);
        let xs: Vec<u64> = (0..16).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.gen()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn streams_are_independent() {
        let mut a = ChaCha8Rng::from_seed([3; 32]);
        let mut b = ChaCha8Rng::from_seed([3; 32]);
        b.set_stream(1);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn output_looks_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        // Bit balance on raw words.
        let ones: u32 = (0..1000).map(|_| rng.next_u32().count_ones()).sum();
        let frac = f64::from(ones) / 32_000.0;
        assert!((frac - 0.5).abs() < 0.02, "one-bit fraction {frac}");
    }
}

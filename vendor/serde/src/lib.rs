//! A minimal, self-contained stand-in for `serde`, used because this
//! workspace builds fully offline.
//!
//! Instead of serde's visitor-based architecture, everything funnels through
//! one dynamic [`Value`] tree: `Serialize` renders a type into a [`Value`],
//! `Deserialize` reconstructs a type from one. The companion `serde_json`
//! and `toml` stand-ins read/write [`Value`] from their textual formats.
//!
//! The derive macros (`#[derive(Serialize, Deserialize)]`) are provided by
//! the sibling `serde_derive` crate and follow serde's externally-tagged
//! data model: structs become string-keyed maps, unit enum variants become
//! strings, data-carrying variants become single-entry maps.

use std::collections::{BTreeMap, HashMap};

pub use serde_derive::{Deserialize, Serialize};

/// The dynamic data model every type serializes into.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unit / null.
    Unit,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// A sequence.
    Seq(Vec<Value>),
    /// A key-ordered map. Keys are usually `Value::Str`.
    Map(Vec<(Value, Value)>),
}

impl Value {
    /// Map entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(Value, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// String contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up a string key in a map value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map()?.iter().find(|(k, _)| k.as_str() == Some(key)).map(|(_, v)| v)
    }

    /// Coerces any numeric value to `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// Coerces any integral numeric value to `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::Int(i) if i >= 0 => Some(i as u64),
            Value::UInt(u) => Some(u),
            Value::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                Some(f as u64)
            }
            _ => None,
        }
    }

    /// Coerces any integral numeric value to `i64`.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(i) => Some(i),
            Value::UInt(u) if u <= i64::MAX as u64 => Some(u as i64),
            Value::Float(f) if f.fract() == 0.0 && f.abs() <= i64::MAX as f64 => Some(f as i64),
            _ => None,
        }
    }

    /// Boolean contents, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// A short name of this value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Unit => "unit",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// Deserialization error: what was expected, where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// A free-form error.
    pub fn custom(message: impl Into<String>) -> Self {
        DeError { message: message.into() }
    }

    /// "expected X while deserializing Y".
    pub fn expected(what: &str, ty: &str) -> Self {
        DeError { message: format!("expected {what} while deserializing {ty}") }
    }

    /// A required field was absent.
    pub fn missing_field(field: &str, ty: &str) -> Self {
        DeError { message: format!("missing field `{field}` of {ty}") }
    }

    /// An enum tag matched no variant.
    pub fn unknown_variant(tag: &str, ty: &str) -> Self {
        DeError { message: format!("unknown variant `{tag}` of {ty}") }
    }

    /// Adds field context to an inner error.
    pub fn in_field(self, field: &str, ty: &str) -> Self {
        DeError { message: format!("in field `{field}` of {ty}: {}", self.message) }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DeError {}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

/// Renders `self` into the dynamic [`Value`] model.
pub trait Serialize {
    /// The [`Value`] representation of `self`.
    fn to_value(&self) -> Value;
}

/// Reconstructs `Self` from the dynamic [`Value`] model.
pub trait Deserialize: Sized {
    /// Parses `Self` out of `value`.
    fn from_value(value: &Value) -> Result<Self, DeError>;

    /// Called when a struct field of this type is absent. Errors by default;
    /// `Option<T>` overrides this to yield `None` (serde's behaviour).
    fn from_missing(field: &str, ty: &str) -> Result<Self, DeError> {
        Err(DeError::missing_field(field, ty))
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! ser_de_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let u = v.as_u64().ok_or_else(|| DeError::expected("unsigned integer", v.kind()))?;
                <$t>::try_from(u).map_err(|_| DeError::custom(format!("{u} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

macro_rules! ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let i = v.as_i64().ok_or_else(|| DeError::expected("integer", v.kind()))?;
                <$t>::try_from(i).map_err(|_| DeError::custom(format!("{i} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

ser_de_uint!(u8, u16, u32, u64, usize);
ser_de_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::expected("number", v.kind()))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().map(|f| f as f32).ok_or_else(|| DeError::expected("number", v.kind()))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::expected("bool", v.kind()))
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v.as_str().ok_or_else(|| DeError::expected("char", v.kind()))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::expected("single-character string", "char")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str().map(str::to_owned).ok_or_else(|| DeError::expected("string", v.kind()))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        // Model profiles carry `&'static str` names; leaking on the rare
        // deserialization path is an accepted trade-off of the stand-in.
        let s = v.as_str().ok_or_else(|| DeError::expected("string", v.kind()))?;
        Ok(Box::leak(s.to_owned().into_boxed_str()))
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Unit
    }
}

impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Unit => Ok(()),
            other => Err(DeError::expected("unit", other.kind())),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Unit,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Unit => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn from_missing(_field: &str, _ty: &str) -> Result<Self, DeError> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("sequence", other.kind())),
        }
    }
}

macro_rules! ser_de_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let Value::Seq(items) = v else {
                    return Err(DeError::expected("sequence (tuple)", v.kind()));
                };
                let expected = [$(stringify!($n)),+].len();
                if items.len() != expected {
                    return Err(DeError::custom(format!(
                        "expected tuple of {expected}, got {} elements", items.len()
                    )));
                }
                Ok(($($t::from_value(&items[$n])?,)+))
            }
        }
    )*};
}

ser_de_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

fn key_to_string(key: &Value) -> Value {
    match key {
        Value::Str(_) => key.clone(),
        Value::UInt(u) => Value::Str(u.to_string()),
        Value::Int(i) => Value::Str(i.to_string()),
        Value::Float(f) => Value::Str(f.to_string()),
        Value::Bool(b) => Value::Str(b.to_string()),
        other => other.clone(),
    }
}

fn key_from_value<K: Deserialize>(key: &Value) -> Result<K, DeError> {
    // Textual formats stringify non-string keys; fall back to reparsing.
    K::from_value(key).or_else(|e| {
        let Some(s) = key.as_str() else { return Err(e) };
        if let Ok(u) = s.parse::<u64>() {
            return K::from_value(&Value::UInt(u));
        }
        if let Ok(i) = s.parse::<i64>() {
            return K::from_value(&Value::Int(i));
        }
        Err(e)
    })
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(self.iter().map(|(k, v)| (key_to_string(&k.to_value()), v.to_value())).collect())
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let entries = v.as_map().ok_or_else(|| DeError::expected("map", v.kind()))?;
        entries.iter().map(|(k, v)| Ok((key_from_value(k)?, V::from_value(v)?))).collect()
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(Value, Value)> =
            self.iter().map(|(k, v)| (key_to_string(&k.to_value()), v.to_value())).collect();
        entries.sort_by(|(a, _), (b, _)| format!("{a:?}").cmp(&format!("{b:?}")));
        Value::Map(entries)
    }
}

impl<K: Deserialize + Eq + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let entries = v.as_map().ok_or_else(|| DeError::expected("map", v.kind()))?;
        entries.iter().map(|(k, v)| Ok((key_from_value(k)?, V::from_value(v)?))).collect()
    }
}

/// Support glue used by the generated derive code. Not public API.
#[doc(hidden)]
pub mod __private {
    use super::{DeError, Deserialize, Value};

    /// Reads struct field `field` of `ty` out of a map value.
    pub fn field<T: Deserialize>(v: &Value, field: &str, ty: &str) -> Result<T, DeError> {
        match v.get(field) {
            Some(fv) => T::from_value(fv).map_err(|e| e.in_field(field, ty)),
            None => T::from_missing(field, ty),
        }
    }

    /// Splits an externally-tagged enum value into `(tag, payload)`.
    pub fn variant<'v>(v: &'v Value, ty: &str) -> Result<(&'v str, Option<&'v Value>), DeError> {
        match v {
            Value::Str(s) => Ok((s, None)),
            Value::Map(entries) if entries.len() == 1 => {
                let (k, payload) = &entries[0];
                let tag =
                    k.as_str().ok_or_else(|| DeError::expected("string variant tag", k.kind()))?;
                Ok((tag, Some(payload)))
            }
            other => Err(DeError::expected("variant (string or single-entry map)", other.kind()))
                .map_err(|e| e.in_field("<variant>", ty)),
        }
    }

    /// Expects a sequence of exactly `n` elements (tuple variants/structs).
    pub fn seq<'v>(v: &'v Value, n: usize, ty: &str) -> Result<&'v [Value], DeError> {
        match v {
            Value::Seq(items) if items.len() == n => Ok(items),
            Value::Seq(items) => {
                Err(DeError::custom(format!("expected {n} elements for {ty}, got {}", items.len())))
            }
            other => Err(DeError::expected("sequence", other.kind()).in_field("<tuple>", ty)),
        }
    }
}

//! A compact, offline property-testing harness exposing the subset of the
//! `proptest` API this workspace uses: the `proptest!` macro with an
//! optional `#![proptest_config(...)]` header, range strategies over
//! integers, `collection::vec`, and `prop_assert!`/`prop_assert_eq!`.
//!
//! Cases are sampled from a deterministic ChaCha8 stream seeded per test
//! name, so failures are reproducible run-to-run. Shrinking is not
//! implemented — the failing inputs are printed instead.

use std::ops::Range;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property, carrying the formatted assertion message.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure from a message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into() }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// The RNG handed to strategies.
pub type TestRng = ChaCha8Rng;

/// Builds the deterministic RNG for one test function.
pub fn test_rng(test_name: &str) -> TestRng {
    let mut key = [0u8; 32];
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in test_name.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    key[..8].copy_from_slice(&h.to_le_bytes());
    key[8..16].copy_from_slice(&h.rotate_left(31).to_le_bytes());
    TestRng::from_seed(key)
}

/// Something that can generate values for test cases.
pub trait Strategy {
    /// The generated type.
    type Value: std::fmt::Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// A size specification for generated collections.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    /// A strategy generating `Vec`s of an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, Strategy, TestCaseError};
}

/// Asserts a condition inside a `proptest!` body, failing the case (with
/// the generated inputs reported) instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `prop_assert!(a == b)` with better diagnostics.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        if __a != __b {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                __a, __b
            )));
        }
    }};
}

/// `prop_assert!(a != b)` with better diagnostics.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        if __a == __b {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                __a, __b
            )));
        }
    }};
}

/// The `proptest!` block macro: wraps each contained function into a
/// `#[test]` that samples its arguments from their strategies and runs the
/// body for every case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr); ) => {};
    (($config:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            let mut __rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::sample(&($strategy), &mut __rng);)*
                let __inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; "),*),
                    $(&$arg),*
                );
                let __outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(__e) = __outcome {
                    panic!(
                        "proptest case {}/{} failed: {}\n  inputs: {}",
                        __case + 1, __config.cases, __e, __inputs
                    );
                }
            }
        }
        $crate::__proptest_impl! { ($config); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 5u32..95, xs in collection::vec(1u64..10, 2..6)) {
            prop_assert!((5..95).contains(&x));
            prop_assert!(xs.len() >= 2 && xs.len() < 6, "len {}", xs.len());
            for v in &xs {
                prop_assert!((1..10).contains(v));
            }
        }

        #[test]
        fn eq_works(a in 0u32..10) {
            prop_assert_eq!(a, a);
        }
    }
}

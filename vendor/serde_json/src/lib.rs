//! JSON encoding/decoding for the offline serde stand-in.
//!
//! Serializes any `serde::Serialize` type (via its [`serde::Value`] tree)
//! to compact or pretty JSON, and parses JSON text back into values /
//! `serde::Deserialize` types.

use serde::{DeError, Deserialize, Serialize, Value};

/// JSON error (serialization never fails here; parsing can).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error { message: message.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as human-readable, two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Converts any serializable value into the dynamic [`Value`] model.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Parses JSON text into `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    Ok(T::from_value(&value)?)
}

/// Parses JSON text into the dynamic [`Value`] model.
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Unit => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                match k {
                    Value::Str(s) => write_string(out, s),
                    Value::UInt(u) => write_string(out, &u.to_string()),
                    Value::Int(n) => write_string(out, &n.to_string()),
                    Value::Float(f) => write_string(out, &f.to_string()),
                    Value::Bool(b) => write_string(out, &b.to_string()),
                    other => {
                        let mut key = String::new();
                        write_value(&mut key, other, None, 0);
                        write_string(out, &key);
                    }
                }
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

fn write_float(out: &mut String, f: f64) {
    if f.is_finite() {
        if f.fract() == 0.0 && f.abs() < 1e15 {
            // Keep a trailing `.0` so floats survive a round-trip as floats.
            out.push_str(&format!("{f:.1}"));
        } else {
            out.push_str(&f.to_string());
        }
    } else {
        // JSON has no Inf/NaN; emit null like serde_json's lossy modes.
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!("expected `{}` at byte {}", b as char, self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Unit),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(Error::new(format!("unexpected character at byte {}", self.pos))),
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            entries.push((Value::Str(key), value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(Error::new("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(Error::new("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                b => {
                    // Re-assemble UTF-8 multibyte sequences byte-by-byte.
                    if b < 0x80 {
                        out.push(b as char);
                    } else {
                        let start = self.pos - 1;
                        let width = utf8_width(b);
                        let end = (start + width).min(self.bytes.len());
                        let chunk = std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                        out.push_str(chunk);
                        self.pos = end;
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        0xf0..=0xf7 => 4,
        _ => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let v = Value::Map(vec![
            (Value::Str("a".into()), Value::Seq(vec![Value::UInt(1), Value::Float(2.5)])),
            (Value::Str("s".into()), Value::Str("x \"y\"\n".into())),
            (Value::Str("n".into()), Value::Unit),
            (Value::Str("neg".into()), Value::Int(-3)),
        ]);
        let text = to_string_pretty(&ValueWrap(v.clone())).unwrap();
        let back = parse_value(&text).unwrap();
        assert_eq!(back, v);
    }

    struct ValueWrap(Value);

    impl Serialize for ValueWrap {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }
}

//! TOML parsing for the offline serde stand-in.
//!
//! Supports the subset scenario configs need: `[table]` headers,
//! `[[array-of-tables]]` headers, dotted keys, basic and literal strings,
//! integers (with `_` separators), floats, booleans, arrays (including
//! multi-line), inline tables, and `#` comments. Dates and multi-line
//! strings are not supported.

use serde::{DeError, Deserialize, Value};

/// TOML parse error with a line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error { message: message.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Parses TOML text into `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    Ok(T::from_value(&value)?)
}

/// Parses TOML text into the dynamic [`Value`] model (a map at the root).
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let mut root = Value::Map(Vec::new());
    let mut p = Parser { bytes: s.as_bytes(), pos: 0, line: 1 };
    // Path of the currently open [table] / [[array-of-tables]] header.
    let mut current_path: Vec<String> = Vec::new();
    loop {
        p.skip_trivia();
        let Some(b) = p.peek() else { break };
        if b == b'[' {
            p.bump();
            let is_array = p.peek() == Some(b'[');
            if is_array {
                p.bump();
            }
            let path = p.key_path()?;
            p.expect(b']')?;
            if is_array {
                p.expect(b']')?;
            }
            p.end_of_line()?;
            if is_array {
                push_array_table(&mut root, &path).map_err(|e| p.err(e))?;
            } else {
                ensure_table(&mut root, &path).map_err(|e| p.err(e))?;
            }
            current_path = path;
        } else {
            let path = p.key_path()?;
            p.expect(b'=')?;
            let value = p.value()?;
            p.end_of_line()?;
            let mut full = current_path.clone();
            full.extend(path);
            insert(&mut root, &full, value).map_err(|e| p.err(e))?;
        }
    }
    Ok(root)
}

// ---------------------------------------------------------------------------
// Tree construction
// ---------------------------------------------------------------------------

fn entry_mut<'a>(map: &'a mut [(Value, Value)], key: &str) -> Option<&'a mut Value> {
    map.iter_mut().find(|(k, _)| k.as_str() == Some(key)).map(|(_, v)| v)
}

/// Descends to the map at `path`, creating intermediate tables. When a step
/// lands on an array of tables, descends into its *last* element (TOML rule).
fn descend<'a>(root: &'a mut Value, path: &[String]) -> Result<&'a mut Value, String> {
    let mut node = root;
    for key in path {
        let Value::Map(map) = node else {
            return Err(format!("key `{key}` used both as value and as table"));
        };
        if entry_mut(map, key).is_none() {
            map.push((Value::Str(key.clone()), Value::Map(Vec::new())));
        }
        let next = entry_mut(map, key).expect("just inserted");
        node = match next {
            Value::Seq(items) => {
                items.last_mut().ok_or_else(|| format!("array of tables `{key}` is empty"))?
            }
            other => other,
        };
    }
    Ok(node)
}

fn ensure_table(root: &mut Value, path: &[String]) -> Result<(), String> {
    let node = descend(root, path)?;
    match node {
        Value::Map(_) => Ok(()),
        _ => Err(format!("table header `[{}]` clashes with a value", path.join("."))),
    }
}

fn push_array_table(root: &mut Value, path: &[String]) -> Result<(), String> {
    let (last, parents) = path.split_last().ok_or("empty table header")?;
    let node = descend(root, parents)?;
    let Value::Map(map) = node else {
        return Err(format!("`{}` is not a table", parents.join(".")));
    };
    if entry_mut(map, last).is_none() {
        map.push((Value::Str(last.clone()), Value::Seq(Vec::new())));
    }
    match entry_mut(map, last).expect("just inserted") {
        Value::Seq(items) => {
            items.push(Value::Map(Vec::new()));
            Ok(())
        }
        _ => Err(format!("`{last}` is not an array of tables")),
    }
}

fn insert(root: &mut Value, path: &[String], value: Value) -> Result<(), String> {
    let (last, parents) = path.split_last().ok_or("empty key")?;
    let node = descend(root, parents)?;
    let Value::Map(map) = node else {
        return Err(format!("`{}` is not a table", parents.join(".")));
    };
    if entry_mut(map, last).is_some() {
        return Err(format!("duplicate key `{last}`"));
    }
    map.push((Value::Str(last.clone()), value));
    Ok(())
}

// ---------------------------------------------------------------------------
// Lexing/parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> Error {
        Error::new(format!("line {}: {}", self.line, message.into()))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) {
        if self.peek() == Some(b'\n') {
            self.line += 1;
        }
        self.pos += 1;
    }

    /// Skips spaces/tabs on the current line.
    fn skip_inline_ws(&mut self) {
        while matches!(self.peek(), Some(b' ') | Some(b'\t')) {
            self.bump();
        }
    }

    /// Skips whitespace, newlines, and comments.
    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(b' ') | Some(b'\t') | Some(b'\n') | Some(b'\r') => self.bump(),
                Some(b'#') => {
                    while self.peek().is_some_and(|b| b != b'\n') {
                        self.bump();
                    }
                }
                _ => return,
            }
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        self.skip_inline_ws();
        if self.peek() == Some(b) {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    /// Requires nothing but trivia until end of line.
    fn end_of_line(&mut self) -> Result<(), Error> {
        self.skip_inline_ws();
        match self.peek() {
            None | Some(b'\n') => Ok(()),
            Some(b'\r') => Ok(()),
            Some(b'#') => {
                while self.peek().is_some_and(|b| b != b'\n') {
                    self.bump();
                }
                Ok(())
            }
            Some(c) => Err(self.err(format!("unexpected `{}` after value", c as char))),
        }
    }

    /// Parses a possibly-dotted key path: `a.b.c` with bare or quoted parts.
    fn key_path(&mut self) -> Result<Vec<String>, Error> {
        let mut path = Vec::new();
        loop {
            self.skip_inline_ws();
            let part = match self.peek() {
                Some(b'"') => self.basic_string()?,
                Some(b'\'') => self.literal_string()?,
                _ => self.bare_key()?,
            };
            path.push(part);
            self.skip_inline_ws();
            if self.peek() == Some(b'.') {
                self.bump();
            } else {
                return Ok(path);
            }
        }
    }

    fn bare_key(&mut self) -> Result<String, Error> {
        let start = self.pos;
        while self.peek().is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-') {
            self.bump();
        }
        if self.pos == start {
            return Err(self.err("expected key"));
        }
        Ok(String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned())
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_inline_ws();
        match self.peek() {
            Some(b'"') => Ok(Value::Str(self.basic_string()?)),
            Some(b'\'') => Ok(Value::Str(self.literal_string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.inline_table(),
            Some(b't') | Some(b'f') => self.boolean(),
            Some(c) if c == b'-' || c == b'+' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected `{}` in value", c as char))),
            None => Err(self.err("unexpected end of input in value")),
        }
    }

    fn basic_string(&mut self) -> Result<String, Error> {
        self.bump(); // opening quote
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.bump();
            match b {
                b'"' => return Ok(out),
                b'\n' => return Err(self.err("newline in basic string")),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.bump();
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' | b'U' => {
                            let len = if esc == b'u' { 4 } else { 8 };
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + len)
                                .ok_or_else(|| self.err("truncated unicode escape"))?;
                            for _ in 0..len {
                                self.bump();
                            }
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| self.err("invalid unicode escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("invalid unicode escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(self.err(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                b if b < 0x80 => out.push(b as char),
                first => {
                    let start = self.pos - 1;
                    let width = match first {
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let end = (start + width).min(self.bytes.len());
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                    while self.pos < end {
                        self.bump();
                    }
                }
            }
        }
    }

    fn literal_string(&mut self) -> Result<String, Error> {
        self.bump(); // opening quote
        let start = self.pos;
        while self.peek().is_some_and(|b| b != b'\'' && b != b'\n') {
            self.bump();
        }
        if self.peek() != Some(b'\'') {
            return Err(self.err("unterminated literal string"));
        }
        let s = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
        self.bump();
        Ok(s)
    }

    fn boolean(&mut self) -> Result<Value, Error> {
        for (lit, v) in [("true", true), ("false", false)] {
            if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
                for _ in 0..lit.len() {
                    self.bump();
                }
                return Ok(Value::Bool(v));
            }
        }
        Err(self.err("invalid boolean"))
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if matches!(self.peek(), Some(b'+') | Some(b'-')) {
            self.bump();
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' | b'_' => self.bump(),
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.bump();
                    if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                        self.bump();
                    }
                }
                _ => break,
            }
        }
        let text: String = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?
            .chars()
            .filter(|&c| c != '_' && c != '+')
            .collect();
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err(format!("invalid number `{text}`")))
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.bump(); // '['
        let mut items = Vec::new();
        loop {
            self.skip_trivia();
            if self.peek() == Some(b']') {
                self.bump();
                return Ok(Value::Seq(items));
            }
            items.push(self.value()?);
            self.skip_trivia();
            match self.peek() {
                Some(b',') => self.bump(),
                Some(b']') => {
                    self.bump();
                    return Ok(Value::Seq(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn inline_table(&mut self) -> Result<Value, Error> {
        self.bump(); // '{'
        let mut map = Value::Map(Vec::new());
        self.skip_inline_ws();
        if self.peek() == Some(b'}') {
            self.bump();
            return Ok(map);
        }
        loop {
            self.skip_inline_ws();
            let path = self.key_path()?;
            self.expect(b'=')?;
            let value = self.value()?;
            insert(&mut map, &path, value).map_err(|e| self.err(e))?;
            self.skip_inline_ws();
            match self.peek() {
                Some(b',') => self.bump(),
                Some(b'}') => {
                    self.bump();
                    return Ok(map);
                }
                _ => return Err(self.err("expected `,` or `}` in inline table")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_tables_arrays_and_scalars() {
        let text = r#"
# top comment
title = "demo"
count = 3
ratio = 0.5
big = 1_000
flag = true

[cluster]
nodes = 2
gpus_per_node = 4

[system.placement]
name = "dilu"

[[functions]]
name = "bert"
rates = [1, 2, 3]

[[functions]]
name = "llama"
inline = { a = 1, b = "x" }
"#;
        let v = parse_value(text).unwrap();
        assert_eq!(v.get("title").and_then(Value::as_str), Some("demo"));
        assert_eq!(v.get("count").and_then(Value::as_u64), Some(3));
        assert_eq!(v.get("ratio").and_then(Value::as_f64), Some(0.5));
        assert_eq!(v.get("big").and_then(Value::as_u64), Some(1000));
        assert_eq!(v.get("flag").and_then(Value::as_bool), Some(true));
        let nodes = v.get("cluster").and_then(|c| c.get("nodes")).and_then(Value::as_u64);
        assert_eq!(nodes, Some(2));
        let pname = v
            .get("system")
            .and_then(|s| s.get("placement"))
            .and_then(|p| p.get("name"))
            .and_then(Value::as_str);
        assert_eq!(pname, Some("dilu"));
        let Value::Seq(funcs) = v.get("functions").unwrap() else { panic!("functions") };
        assert_eq!(funcs.len(), 2);
        assert_eq!(funcs[0].get("name").and_then(Value::as_str), Some("bert"));
        assert_eq!(
            funcs[1].get("inline").and_then(|i| i.get("b")).and_then(Value::as_str),
            Some("x")
        );
    }

    #[test]
    fn multiline_arrays_and_dotted_keys() {
        let text = "a.b = 1\nxs = [\n  1,\n  2, # comment\n]\n";
        let v = parse_value(text).unwrap();
        assert_eq!(v.get("a").and_then(|a| a.get("b")).and_then(Value::as_u64), Some(1));
        let Value::Seq(xs) = v.get("xs").unwrap() else { panic!("xs") };
        assert_eq!(xs.len(), 2);
    }

    #[test]
    fn duplicate_keys_rejected() {
        assert!(parse_value("a = 1\na = 2\n").is_err());
    }
}

//! A tiny, offline stand-in for Criterion: times each benchmark closure
//! over a fixed number of iterations and prints mean wall-clock per
//! iteration. No statistics, plots, or baselines — just enough to keep
//! `cargo bench` targets compiling and producing useful numbers.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortises setup cost (accepted, ignored).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// The timing driver handed to each benchmark closure.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the configured iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` with a fresh `setup()` input per iteration; setup
    /// time is excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iterations {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// The benchmark registry/runner.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup { criterion: self, sample_size: None }
    }

    /// Registers and immediately runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_bench(id, self.sample_size, f);
        self
    }
}

/// A group of related benchmarks (mirrors `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    sample_size: Option<u64>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the iteration count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n as u64);
        self
    }

    /// Registers and immediately runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let n = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_bench(id, n, f);
        self
    }

    /// Ends the group (no-op).
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, iterations: u64, mut f: F) {
    let mut b = Bencher { iterations: iterations.max(1), elapsed: Duration::ZERO };
    f(&mut b);
    let per_iter = b.elapsed.as_secs_f64() / b.iterations as f64;
    println!("bench: {id:50} {:>12.3} us/iter ({} iters)", per_iter * 1e6, b.iterations);
}

/// Declares a group-runner function over benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

//! Cross-crate integration tests for the paper's vertical-scaling claims
//! (§5.2), at reduced scale so they run in debug builds.

use dilu::cluster::FunctionId;
use dilu::core::experiments::collocation::{gpu, run_case, GpuSystem, Member};
use dilu::core::funcs;
use dilu::models::ModelId;
use dilu::rckm::RckmConfig;
use dilu::sim::SimTime;
use dilu::workload::{ArrivalProcess, GammaProcess, PoissonProcess};

const HORIZON: u64 = 30;

fn dilu() -> GpuSystem {
    GpuSystem::Dilu(RckmConfig::default())
}

fn pair_case(system: GpuSystem, rps: f64, seed: u64) -> (f64, f64, f64) {
    let arrivals = PoissonProcess::new(rps, seed).generate(SimTime::from_secs(HORIZON));
    let inf = funcs::inference_function(1, ModelId::RobertaLarge);
    let train = funcs::training_function(2, ModelId::BertBase, 1, u64::MAX);
    let members = if matches!(system, GpuSystem::Exclusive) {
        vec![Member::solo(inf, arrivals, gpu(0)), Member::workers(train, &[gpu(1)])]
    } else {
        vec![Member::solo(inf, arrivals, gpu(0)), Member::workers(train, &[gpu(0)])]
    };
    let report = run_case(2, members, system, HORIZON + 5);
    let f = &report.inference[&FunctionId(1)];
    let t = report.training.values().next().unwrap().throughput(report.horizon);
    (f.p95_display().as_millis_f64(), f.svr(), t)
}

#[test]
fn dilu_preserves_qos_while_collocating() {
    // Fig. 7: Dilu's p95 stays within a modest factor of Exclusive while
    // halving the GPUs.
    let (excl_p95, excl_svr, _) = pair_case(GpuSystem::Exclusive, 20.0, 3);
    let (dilu_p95, dilu_svr, dilu_train) = pair_case(dilu(), 20.0, 3);
    assert!(dilu_p95 <= excl_p95 * 2.0, "Dilu p95 {dilu_p95}ms vs exclusive {excl_p95}ms");
    assert!(dilu_svr <= excl_svr + 0.05, "Dilu SVR {dilu_svr}");
    assert!(dilu_train > 0.0, "collocated training must progress");
}

#[test]
fn tgs_nearly_stops_collocated_training() {
    // Fig. 7(b): TGS prioritises the inference instance and starves the
    // collocated training function.
    let (_, _, dilu_train) = pair_case(dilu(), 20.0, 5);
    let (_, _, tgs_train) = pair_case(GpuSystem::Tgs, 20.0, 5);
    assert!(tgs_train < dilu_train * 0.35, "TGS training {tgs_train} vs Dilu {dilu_train}");
}

#[test]
fn dilu_beats_static_mps_under_bursts() {
    // Fig. 10: at high CV, static MPS partitions blow up the p95 while
    // Dilu's fast scale-up keeps it close to Exclusive.
    let cv = 5.0;
    let run = |system: GpuSystem| {
        let arrivals = GammaProcess::new(64.0, cv, 17).generate(SimTime::from_secs(HORIZON));
        let inf = funcs::inference_function(1, ModelId::RobertaLarge);
        let train = funcs::training_function(2, ModelId::BertBase, 1, u64::MAX);
        let members = if matches!(system, GpuSystem::Exclusive) {
            vec![Member::solo(inf, arrivals, gpu(0)), Member::workers(train, &[gpu(1)])]
        } else {
            vec![Member::solo(inf, arrivals, gpu(0)), Member::workers(train, &[gpu(0)])]
        };
        let report = run_case(2, members, system, HORIZON + 5);
        report.inference[&FunctionId(1)].p95_display().as_millis_f64()
    };
    let dilu_p95 = run(dilu());
    let mps_r_p95 = run(GpuSystem::MpsR);
    assert!(
        mps_r_p95 > dilu_p95 * 1.3,
        "MPS-r p95 {mps_r_p95}ms should exceed Dilu {dilu_p95}ms under CV={cv}"
    );
}

#[test]
fn rckm_overhead_is_negligible_for_solo_training() {
    // Fig. 11(a): managing a solo training function costs <1% throughput.
    let job = |system: GpuSystem| {
        let train = funcs::training_function(1, ModelId::BertBase, 1, u64::MAX);
        let report = run_case(2, vec![Member::workers(train, &[gpu(0)])], system, HORIZON);
        report.training.values().next().unwrap().throughput(report.horizon)
    };
    let with = job(dilu());
    let without = job(GpuSystem::Exclusive);
    let ratio = with / without;
    assert!(ratio > 0.99, "vertical scaling overhead too high: {ratio}");
}

#[test]
fn dilu_training_throughput_beats_static_partitions() {
    // Fig. 9: collocated training pairs under Dilu outperform MPS-l/MPS-r
    // because idle communication phases are lent out dynamically.
    let pair = |system: GpuSystem| {
        let a = funcs::training_function(1, ModelId::BertBase, 1, u64::MAX);
        let b = funcs::training_function(2, ModelId::RobertaLarge, 1, u64::MAX);
        let members = vec![Member::workers(a, &[gpu(0)]), Member::workers(b, &[gpu(0)])];
        let report = run_case(2, members, system, HORIZON);
        report.training.values().map(|t| t.throughput(report.horizon)).collect::<Vec<_>>()
    };
    let d = pair(dilu());
    let r = pair(GpuSystem::MpsR);
    let dilu_sum: f64 = d.iter().sum();
    let mps_sum: f64 = r.iter().sum();
    assert!(dilu_sum >= mps_sum * 0.99, "Dilu aggregate {dilu_sum} vs MPS-r {mps_sum}");
}

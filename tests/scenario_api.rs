//! Integration tests of the open composition API: `ScenarioBuilder`,
//! `ScenarioConfig` round-trips, registry lookups, and the guarantee that
//! every `SystemKind` preset composes exactly what the pre-redesign
//! `build_sim_with` path did.

use dilu::cluster::{ClusterReport, ClusterSim, ClusterSpec, DeployError, SimConfig};
use dilu::core::experiments;
use dilu::core::{
    build_sim, funcs, Registry, Scenario, ScenarioBuilder, ScenarioConfig, ScenarioError,
    SystemKind,
};
use dilu::models::ModelId;
use dilu::sim::SimTime;
use dilu::workload::{ArrivalProcess, PoissonProcess};

// ---------------------------------------------------------------------------
// Builder misuse → typed errors, not panics
// ---------------------------------------------------------------------------

#[test]
fn missing_components_are_typed_errors() {
    let err = Scenario::builder()
        .function(funcs::inference_function(1, ModelId::BertBase))
        .arrival_times(Vec::new())
        .build();
    assert!(matches!(err, Err(ScenarioError::MissingPlacement)), "{err:?}");

    let err = SystemKind::Dilu.builder().build();
    assert!(matches!(err, Err(ScenarioError::NoFunctions)), "{err:?}");

    let err = Scenario::builder().build_sim();
    assert!(matches!(err, Err(ScenarioError::MissingPlacement)), "{err:?}");
}

#[test]
fn zero_threads_is_builder_misuse() {
    // The builder rejects `threads(0)` at build, exactly as the TOML
    // (`[sim] threads = 0`) and CLI (`--threads 0`) front doors do.
    let err = SystemKind::Dilu.builder().threads(0).build_sim();
    assert!(matches!(&err, Err(ScenarioError::Config(msg)) if msg.contains("threads")), "{err:?}");
}

#[test]
fn workload_misuse_is_recorded_and_reported() {
    // arrivals() before any function().
    let err = SystemKind::Dilu.builder().arrivals(PoissonProcess::new(5.0, 1)).build();
    assert!(matches!(err, Err(ScenarioError::WorkloadBeforeFunction("arrivals"))), "{err:?}");

    // arrivals() on a training function.
    let err = SystemKind::Dilu
        .builder()
        .function(funcs::training_function(1, ModelId::BertBase, 2, 10))
        .arrivals(PoissonProcess::new(5.0, 1))
        .build();
    assert!(matches!(err, Err(ScenarioError::ArrivalsForTraining(_))), "{err:?}");

    // An inference function with no arrival source at all.
    let err = SystemKind::Dilu
        .builder()
        .cluster(ClusterSpec::single_node(1))
        .function(funcs::inference_function(1, ModelId::BertBase))
        .build();
    assert!(matches!(err, Err(ScenarioError::MissingArrivals(_))), "{err:?}");

    // Duplicate function ids.
    let err = SystemKind::Dilu
        .builder()
        .function(funcs::inference_function(1, ModelId::BertBase))
        .arrival_times(Vec::new())
        .function(funcs::inference_function(1, ModelId::Vgg19))
        .arrival_times(Vec::new())
        .build();
    assert!(matches!(err, Err(ScenarioError::DuplicateFunction(_))), "{err:?}");
}

#[test]
fn invalid_specs_surface_cluster_deploy_errors() {
    let mut bad = funcs::inference_function(1, ModelId::BertBase);
    bad.gpus_per_instance = 0;
    let err = SystemKind::Dilu
        .builder()
        .cluster(ClusterSpec::single_node(1))
        .function(bad)
        .arrival_times(Vec::new())
        .build();
    match err {
        Err(ScenarioError::Deploy(DeployError::InvalidSpec { .. })) => {}
        other => panic!("expected InvalidSpec, got {other:?}"),
    }

    let mut too_big = funcs::inference_function(1, ModelId::BertBase);
    too_big.gpus_per_instance = 9;
    too_big.quotas.mem_bytes /= 16;
    let err = SystemKind::Dilu
        .builder()
        .cluster(ClusterSpec::single_node(2))
        .function(too_big)
        .arrival_times(Vec::new())
        .build();
    match err {
        Err(ScenarioError::Deploy(DeployError::ClusterTooSmall {
            needed: 9,
            available: 2,
            ..
        })) => {}
        other => panic!("expected ClusterTooSmall, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// ScenarioConfig round-trips
// ---------------------------------------------------------------------------

const SCENARIO: &str = r#"
name = "round-trip"

[cluster]
nodes = 1
gpus_per_node = 4

[system]
preset = "infless-l"

[system.autoscaler]
name = "keep-alive"
keep_alive_secs = 12.0

[run]
horizon_secs = 12
seed = 9

[[functions]]
model = "vgg19"
initial = 2
arrivals = { process = "poisson", rate = 18.0 }

[[functions]]
model = "resnet152"
role = "training"
workers = 2
iterations = 30
start_sec = 2
"#;

#[test]
fn toml_and_json_round_trip_to_the_same_config() {
    let config = ScenarioConfig::from_toml_str(SCENARIO).unwrap();
    let json = serde_json::to_string_pretty(&config).unwrap();
    let back = ScenarioConfig::from_json_str(&json).unwrap();
    assert_eq!(config, back);
    // And again through JSON to catch representation drift.
    let json2 = serde_json::to_string_pretty(&back).unwrap();
    assert_eq!(json, json2);
}

#[test]
fn config_preset_with_component_override_composes_correctly() {
    let config = ScenarioConfig::from_toml_str(SCENARIO).unwrap();
    let registry = Registry::with_defaults();
    let scenario = config.into_builder(&registry).unwrap().build().unwrap();
    // Preset infless-l supplies packing placement + mps-l policy; the
    // autoscaler table overrides keep-alive parameters (same name).
    assert_eq!(scenario.sim().placement_name(), "dilu-scheduler");
    assert_eq!(scenario.sim().share_policy_name(), "mps-l");
    assert_eq!(scenario.sim().autoscaler_name(), "infless+-keepalive");
    let report = scenario.run().unwrap();
    assert!(report.inference.values().next().unwrap().completed > 0);
    assert!(report.training.values().next().unwrap().iterations_done > 0);
}

#[test]
fn config_errors_name_the_offender() {
    let registry = Registry::with_defaults();

    let bad_preset = SCENARIO.replace("infless-l", "super-dilu");
    let err = ScenarioConfig::from_toml_str(&bad_preset)
        .unwrap()
        .into_builder(&registry)
        .map(|_| ())
        .map_err(|e| e.to_string());
    assert!(err.as_ref().is_err_and(|e| e.contains("super-dilu")), "{err:?}");

    let bad_param = SCENARIO.replace("keep_alive_secs", "keepalive_secs");
    let err = ScenarioConfig::from_toml_str(&bad_param)
        .unwrap()
        .into_builder(&registry)
        .map(|_| ())
        .map_err(|e| e.to_string());
    assert!(err.as_ref().is_err_and(|e| e.contains("keepalive_secs")), "{err:?}");
}

// ---------------------------------------------------------------------------
// Preset ≡ pre-redesign build_sim_with
// ---------------------------------------------------------------------------

/// The original closed composition, reproduced verbatim from the
/// pre-redesign `build_sim_with` match so the presets are checked against
/// the historical behaviour, not against themselves.
fn legacy_build_sim(kind: SystemKind, spec: ClusterSpec) -> ClusterSim {
    use dilu::baselines::{KeepAliveScaler, QuotaSource, ReactiveScaler};
    use dilu::core::{FairFactory, FastGsFactory, MpsFactory, RckmFactory};
    use dilu::rckm::RckmConfig;
    use dilu::scaler::{LazyScaler, ScalerConfig};
    use dilu::scheduler::{DiluScheduler, ExclusivePlacement, SchedulerConfig};

    let sim_config = SimConfig::default();
    let rckm = RckmConfig::default();
    let dilu_sched = SchedulerConfig::default();
    let scaler = ScalerConfig::default();
    let packing = SchedulerConfig { workload_affinity: false, ..dilu_sched };
    match kind {
        SystemKind::Dilu => ClusterSim::new(
            spec,
            sim_config,
            Box::new(DiluScheduler::new(dilu_sched)),
            Box::new(LazyScaler::new(scaler)),
            &RckmFactory(rckm),
        ),
        SystemKind::DiluNoRc => ClusterSim::new(
            spec,
            sim_config,
            Box::new(DiluScheduler::new(SchedulerConfig {
                resource_complementary: false,
                ..dilu_sched
            })),
            Box::new(LazyScaler::new(scaler)),
            &RckmFactory(rckm),
        ),
        SystemKind::DiluNoWa => ClusterSim::new(
            spec,
            sim_config,
            Box::new(DiluScheduler::new(SchedulerConfig {
                workload_affinity: false,
                ..dilu_sched
            })),
            Box::new(LazyScaler::new(scaler)),
            &RckmFactory(rckm),
        ),
        SystemKind::DiluNoVs => ClusterSim::new(
            spec,
            sim_config,
            Box::new(DiluScheduler::new(dilu_sched)),
            Box::new(LazyScaler::new(scaler)),
            &MpsFactory(QuotaSource::Limit),
        ),
        SystemKind::Exclusive => ClusterSim::new(
            spec,
            sim_config,
            Box::new(ExclusivePlacement::new()),
            Box::new(KeepAliveScaler::default()),
            &FairFactory,
        ),
        SystemKind::InflessPlusL => ClusterSim::new(
            spec,
            sim_config,
            Box::new(DiluScheduler::new(packing)),
            Box::new(KeepAliveScaler::default()),
            &MpsFactory(QuotaSource::Limit),
        ),
        SystemKind::InflessPlusR => ClusterSim::new(
            spec,
            sim_config,
            Box::new(DiluScheduler::new(packing)),
            Box::new(KeepAliveScaler::default()),
            &MpsFactory(QuotaSource::Request),
        ),
        SystemKind::FastGsPlus => ClusterSim::new(
            spec,
            sim_config,
            Box::new(DiluScheduler::new(packing)),
            Box::new(ReactiveScaler::new()),
            &FastGsFactory,
        ),
    }
}

/// Runs the same mixed workload on a simulator and digests the outcome
/// into an exactly comparable form.
fn digest(mut sim: ClusterSim) -> Vec<(String, u64, u64, u64, u64)> {
    let arrivals_a = PoissonProcess::new(30.0, 7).generate(SimTime::from_secs(20));
    let arrivals_b = PoissonProcess::new(12.0, 13).generate(SimTime::from_secs(20));
    sim.deploy_inference(funcs::inference_function(1, ModelId::BertBase), 1, arrivals_a)
        .expect("deploy bert");
    sim.deploy_inference(funcs::inference_function(2, ModelId::ResNet152), 1, arrivals_b)
        .expect("deploy resnet");
    sim.deploy_training(funcs::training_function(3, ModelId::BertBase, 2, 60))
        .expect("deploy training");
    sim.run_until(SimTime::from_secs(25));
    report_digest(sim.into_report())
}

fn report_digest(report: ClusterReport) -> Vec<(String, u64, u64, u64, u64)> {
    let mut rows = Vec::new();
    for (id, f) in &report.inference {
        rows.push((
            format!("inf-{id}"),
            f.arrived,
            f.completed,
            f.latency.p95().as_micros(),
            f.cold_starts.count(),
        ));
    }
    for (id, t) in &report.training {
        rows.push((
            format!("train-{id}"),
            t.iterations_done,
            t.samples_done,
            t.jct().map_or(0, |d| d.as_micros()),
            u64::from(t.workers),
        ));
    }
    rows.push((
        "cluster".into(),
        u64::from(report.peak_gpus),
        report.gpu_time.as_micros(),
        report.instance_gpu_time.as_micros(),
        report.occupied_gpus.len() as u64,
    ));
    rows
}

#[test]
fn every_preset_matches_the_legacy_composition_exactly() {
    for kind in SystemKind::ALL {
        let spec = ClusterSpec::single_node(4);
        let legacy = digest(legacy_build_sim(kind, spec));
        let preset = digest(build_sim(kind, spec));
        assert_eq!(legacy, preset, "preset {kind:?} diverges from legacy build_sim_with");

        let via_builder = digest(kind.builder().cluster(spec).build_sim().expect("preset builds"));
        assert_eq!(legacy, via_builder, "builder path diverges for {kind:?}");
    }
}

// ---------------------------------------------------------------------------
// Full front-door pass: config file → builder → run → report
// ---------------------------------------------------------------------------

#[test]
fn example_scenario_files_run_end_to_end() {
    let registry = Registry::with_defaults();
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/scenarios");
    let mut ran = 0;
    for entry in std::fs::read_dir(&dir).expect("examples/scenarios exists") {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("toml") {
            continue;
        }
        // The production-day macro tier is a full simulated day (~10M+
        // requests) — far beyond a debug-build unit test. It has its own
        // release-mode CI smoke and bench lane.
        if path.file_name().and_then(|n| n.to_str()) == Some("production-day.toml") {
            continue;
        }
        let config =
            ScenarioConfig::load(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let report = config
            .into_builder(&registry)
            .and_then(ScenarioBuilder::build)
            .and_then(Scenario::run)
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert!(
            report.horizon >= SimTime::from_secs(10),
            "{} ran suspiciously short",
            path.display()
        );
        ran += 1;
    }
    assert!(ran >= 3, "expected at least 3 example scenarios, found {ran}");
}

#[test]
fn builder_seed_drives_spec_based_arrivals() {
    use dilu::workload::ArrivalSpec;
    let run = |seed: u64| {
        let report = SystemKind::Dilu
            .builder()
            .cluster(ClusterSpec::single_node(1))
            .seed(seed)
            .horizon(dilu::sim::SimDuration::from_secs(5))
            .function(funcs::inference_function(1, ModelId::BertBase))
            .arrivals_spec(ArrivalSpec::poisson(20.0))
            .build()
            .unwrap()
            .run()
            .unwrap();
        report.inference.values().next().unwrap().arrived
    };
    assert_eq!(run(1), run(1), "same seed must reproduce");
    assert_ne!(run(1), run(2), "different seeds must differ");
}

#[test]
fn scheduled_training_with_invalid_spec_fails_at_build() {
    let mut bad = funcs::training_function(1, ModelId::BertBase, 0, 10);
    bad.kind = dilu::cluster::FunctionKind::Training { workers: 0, iterations: 10 };
    let err = SystemKind::Dilu
        .builder()
        .cluster(ClusterSpec::single_node(2))
        .function(bad)
        .starts_at(SimTime::from_secs(5))
        .build();
    match err {
        Err(ScenarioError::Deploy(DeployError::InvalidSpec { .. })) => {}
        other => panic!("late-scheduled invalid training must fail eagerly, got {other:?}"),
    }
}

#[test]
fn config_rejects_role_mismatched_keys() {
    let registry = Registry::with_defaults();
    let text = r#"
[system]
preset = "dilu"

[[functions]]
model = "bert-base"
workers = 8
arrivals = { process = "poisson", rate = 5.0 }
"#;
    let err = ScenarioConfig::from_toml_str(text)
        .unwrap()
        .into_builder(&registry)
        .map(|_| ())
        .map_err(|e| e.to_string());
    assert!(err.as_ref().is_err_and(|e| e.contains("workers")), "{err:?}");
}

#[test]
fn config_pipeline_functions_match_the_llm_builder() {
    let registry = Registry::with_defaults();
    let text = r#"
[system]
preset = "dilu"

[[functions]]
model = "llama2-7b"
gpus_per_instance = 4
arrivals = { process = "poisson", rate = 2.0 }
"#;
    let config = ScenarioConfig::from_toml_str(text).unwrap();
    let scenario = config
        .into_builder(&registry)
        .unwrap()
        .cluster(ClusterSpec::single_node(4))
        .build()
        .unwrap();
    // The initial instance must span all four stages (the canonical
    // funcs::llm_inference_function path), not sit on one GPU.
    assert_eq!(scenario.sim().occupied_gpus(), 4, "pipeline stages must span 4 GPUs");
    let report = scenario.run().unwrap();
    let f = report.inference.values().next().unwrap();
    assert_eq!(f.model, ModelId::Llama2_7b);
    assert!(f.completed > 0);
}

#[test]
fn arrival_times_are_sorted_on_attach() {
    let report = SystemKind::Dilu
        .builder()
        .cluster(ClusterSpec::single_node(1))
        .function(funcs::inference_function(1, ModelId::BertBase))
        .arrival_times(vec![SimTime::from_secs(5), SimTime::from_secs(1)])
        .horizon(dilu::sim::SimDuration::from_secs(8))
        .build()
        .unwrap()
        .run()
        .unwrap();
    let f = report.inference.values().next().unwrap();
    assert_eq!(f.completed, 2);
    // The t=1s request must not wait behind the t=5s one: both requests
    // execute solo well under 100 ms.
    assert!(
        f.latency.quantile(1.0) < dilu::sim::SimDuration::from_millis(500),
        "unsorted arrivals inflated latency: {}",
        f.latency.quantile(1.0)
    );
}

#[test]
fn wrong_role_workload_methods_are_misuse() {
    let err = SystemKind::Dilu
        .builder()
        .function(funcs::training_function(1, ModelId::BertBase, 2, 10))
        .initial_instances(4)
        .build();
    assert!(matches!(err, Err(ScenarioError::WrongRole { .. })), "{err:?}");

    let err = SystemKind::Dilu
        .builder()
        .function(funcs::inference_function(1, ModelId::BertBase))
        .starts_at(SimTime::from_secs(3))
        .build();
    assert!(matches!(err, Err(ScenarioError::WrongRole { .. })), "{err:?}");
}

#[test]
fn config_rejects_unknown_section_keys() {
    let cases = [
        ("[run]\nhorizon_seconds = 300\n[system]\npreset = \"dilu\"\n", "horizon_seconds"),
        ("[cluster]\ngpus = 4\n[system]\npreset = \"dilu\"\n", "gpus"),
        (
            "[system]\npreset = \"dilu\"\n[[functions]]\nmodel = \"bert-base\"\ninitial_instances = 4\n",
            "initial_instances",
        ),
        (
            "[system]\npreset = \"dilu\"\n[[functions]]\nmodel = \"bert-base\"\narrivals = { process = \"poisson\", rps = 5.0 }\n",
            "rps",
        ),
    ];
    for (text, needle) in cases {
        let err = match ScenarioConfig::from_toml_str(text) {
            Err(e) => e.to_string(),
            Ok(_) => panic!("typo `{needle}` must be rejected"),
        };
        assert!(err.contains(needle), "{err}");
    }
}

#[test]
fn registry_keep_alive_default_matches_the_preset() {
    // `exclusive` preset and registry "keep-alive" with no params must
    // compose identically (Observation-3's 50 s retention).
    let registry = Registry::with_defaults();
    let text = r#"
[cluster]
nodes = 1
gpus_per_node = 2

[system.placement]
name = "exclusive"

[system.autoscaler]
name = "keep-alive"

[system.share_policy]
name = "fair"

[run]
horizon_secs = 12
seed = 9

[[functions]]
model = "bert-base"
arrivals = { process = "poisson", rate = 10.0 }
"#;
    let via_registry = ScenarioConfig::from_toml_str(text)
        .unwrap()
        .into_builder(&registry)
        .unwrap()
        .build()
        .unwrap()
        .run()
        .unwrap();
    let via_preset = SystemKind::Exclusive
        .builder()
        .cluster(ClusterSpec::single_node(2))
        .horizon(dilu::sim::SimDuration::from_secs(12))
        .function(funcs::inference_function(1, ModelId::BertBase))
        .arrivals(PoissonProcess::new(10.0, 9 ^ 1))
        .build()
        .unwrap()
        .run()
        .unwrap();
    let a = via_registry.inference.values().next().unwrap();
    let b = via_preset.inference.values().next().unwrap();
    assert_eq!(a.arrived, b.arrived);
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.latency.p95(), b.latency.p95());
}

#[test]
fn config_zero_gpus_per_instance_is_a_typed_error() {
    let registry = Registry::with_defaults();
    let text = r#"
[system]
preset = "dilu"

[[functions]]
model = "bert-base"
gpus_per_instance = 0
arrivals = { process = "poisson", rate = 5.0 }
"#;
    let err = ScenarioConfig::from_toml_str(text).unwrap().into_builder(&registry).unwrap().build();
    match err {
        Err(ScenarioError::Deploy(DeployError::InvalidSpec { .. })) => {}
        other => panic!("expected InvalidSpec, got {other:?}"),
    }
}

#[test]
fn experiment_registry_is_reachable_from_the_facade() {
    assert_eq!(experiments::all().len(), 16);
    assert!(experiments::find("fig16").is_some());
}

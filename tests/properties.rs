//! Property-based tests on cross-crate invariants.

use dilu::cluster::{
    ClusterReport, ClusterSpec, ClusterView, FunctionId, FunctionKind, FunctionSpec, GpuView,
    Placement, Quotas, ResidentInfo, TimeModel,
};
use dilu::gpu::policies::FairSharePolicy;
use dilu::gpu::{GpuEngine, InstanceId, SlotConfig, SmRate, TaskClass, WorkItem, GB};
use dilu::metrics::LatencyRecorder;
use dilu::rckm::{RckmConfig, RckmPolicy};
use dilu::scheduler::{DiluScheduler, SchedulerConfig};
use dilu::sim::{SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Physical SM capacity is conserved no matter what mix of work the
    /// engine runs: Σ used ≤ 1.0 each quantum.
    #[test]
    fn engine_conserves_physical_capacity(
        sats in proptest::collection::vec(5u32..95, 1..6),
        t_mins in proptest::collection::vec(2u64..80, 1..6),
    ) {
        let mut gpu = GpuEngine::new(100 * GB);
        let n = sats.len().min(t_mins.len());
        for i in 0..n {
            let id = InstanceId(i as u64 + 1);
            gpu.admit(id, SlotConfig {
                class: if i % 2 == 0 { TaskClass::SloSensitive } else { TaskClass::BestEffort },
                request: SmRate::from_percent(30.0),
                limit: SmRate::from_percent(60.0),
                mem_bytes: GB,
            }).unwrap();
            for tag in 0..4u64 {
                gpu.push_work(id, WorkItem::compute(
                    SimDuration::from_millis(t_mins[i]),
                    SmRate::from_percent(f64::from(sats[i])),
                    100,
                    tag,
                )).unwrap();
            }
        }
        let mut policy = FairSharePolicy;
        let mut now = SimTime::ZERO;
        for _ in 0..200 {
            let out = gpu.step(now, &mut policy);
            // Work-item durations are quantised to microseconds, so the
            // accounted usage can exceed capacity by ~1 us per item per
            // 5 ms quantum; anything beyond that is a real violation.
            prop_assert!(out.total_used.as_fraction() <= 1.0 + 1e-3,
                "physical capacity exceeded: {}", out.total_used.as_fraction());
            now += gpu.quantum();
            if gpu.is_idle() {
                break;
            }
        }
    }

    /// RCKM grants stay within [0, MaxTokens × whole-GPU] for any view mix.
    #[test]
    fn rckm_grants_are_bounded(
        requests in proptest::collection::vec(5u32..60, 2..5),
        inflations in proptest::collection::vec(0u32..300, 2..5),
        max_tokens in 1u32..40,
    ) {
        let max_tokens = f64::from(max_tokens) / 10.0;
        let n = requests.len().min(inflations.len());
        let views: Vec<dilu::gpu::InstanceView> = (0..n).map(|i| dilu::gpu::InstanceView {
            id: InstanceId(i as u64),
            class: if i == 0 { TaskClass::SloSensitive } else { TaskClass::BestEffort },
            request: SmRate::from_percent(f64::from(requests[i])),
            limit: SmRate::from_percent(f64::from(requests[i]) * 2.0),
            demand: SmRate::from_percent(50.0),
            queue_len: 1,
            blocks_last_quantum: 10,
            klc_inflation: f64::from(inflations[i]) / 100.0,
            idle_quanta: 0,
        }).collect();
        let mut policy = RckmPolicy::new(RckmConfig { max_tokens, ..RckmConfig::default() });
        use dilu::gpu::SharePolicy as _;
        for _ in 0..20 {
            let grants = policy.allocate(SimTime::ZERO, SimDuration::from_millis(5), &views);
            prop_assert_eq!(grants.len(), views.len());
            for g in &grants {
                prop_assert!(g.smr.as_fraction() >= 0.0);
                prop_assert!(g.smr.as_fraction() <= max_tokens.max(1.0) * 2.0 + 1e-9,
                    "grant {} too large for MaxTokens {}", g.smr.as_fraction(), max_tokens);
            }
        }
    }

    /// The scheduler never violates Ω, γ, or memory capacity, for any
    /// sequence of placements it accepts.
    #[test]
    fn scheduler_respects_caps(
        requests in proptest::collection::vec(5u32..70, 1..25),
        mems in proptest::collection::vec(1u64..20, 1..25),
    ) {
        let config = SchedulerConfig::default();
        let mut sched = DiluScheduler::new(config);
        let n = requests.len().min(mems.len());
        let mut gpus: Vec<GpuView> = (0..6).map(|i| GpuView {
            addr: dilu::cluster::GpuAddr { node: 0, gpu: i },
            mem_capacity: 40 * GB,
            mem_reserved: 0,
            residents: Vec::new(),
        }).collect();
        for i in 0..n {
            let req = SmRate::from_percent(f64::from(requests[i]));
            let spec = FunctionSpec {
                id: FunctionId(i as u32),
                name: format!("f{i}"),
                model: dilu::models::ModelId::BertBase,
                kind: FunctionKind::Inference { slo: SimDuration::from_millis(50), batch: 4 },
                quotas: Quotas::new(req, req.scale(2.0), mems[i] * GB),
                gpus_per_instance: 1,
            };
            let view = ClusterView { gpus: gpus.clone() };
            if let Some(placed) = sched.place(&spec, &view) {
                let addr = placed[0];
                let g = gpus.iter_mut().find(|g| g.addr == addr).unwrap();
                g.mem_reserved += spec.quotas.mem_bytes;
                g.residents.push(ResidentInfo {
                    func: spec.id,
                    class: TaskClass::SloSensitive,
                    request: spec.quotas.request,
                    limit: spec.quotas.limit,
                    mem_bytes: spec.quotas.mem_bytes,
                });
                prop_assert!(g.sum_requests().as_fraction() <= config.omega + 1e-9);
                prop_assert!(g.sum_limits().as_fraction() <= config.gamma + 1e-9);
                prop_assert!(g.mem_reserved <= g.mem_capacity);
            }
        }
    }

    /// Latency percentiles are monotone in the quantile and bounded by the
    /// extremes, for arbitrary samples.
    #[test]
    fn percentiles_are_monotone(samples in proptest::collection::vec(1u64..100_000, 1..200)) {
        let rec: LatencyRecorder =
            samples.iter().map(|&us| SimDuration::from_micros(us)).collect();
        let min = rec.quantile(0.0);
        let max = rec.quantile(1.0);
        let mut last = min;
        for q in [0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0] {
            let v = rec.quantile(q);
            prop_assert!(v >= last, "quantile regression at {q}");
            last = v;
        }
        prop_assert!(min <= max);
        prop_assert!(rec.mean() >= min && rec.mean() <= max);
    }

    /// Workload generators respect the horizon and stay sorted.
    #[test]
    fn arrivals_are_sorted_and_bounded(rate in 1u32..200, secs in 1u64..30, seed in 0u64..1000) {
        use dilu::workload::{ArrivalProcess, PoissonProcess};
        let horizon = SimTime::from_secs(secs);
        let arrivals = PoissonProcess::new(f64::from(rate), seed).generate(horizon);
        prop_assert!(arrivals.windows(2).all(|w| w[0] <= w[1]));
        prop_assert!(arrivals.iter().all(|&t| t < horizon));
    }
}

/// Shape of one randomized equivalence scenario.
#[derive(Debug, Clone)]
struct EquivScenario {
    gpus: u32,
    rate: f64,
    arrival_seed: u64,
    batch: u32,
    horizon_secs: u64,
    initial: u32,
    coscale: bool,
    with_training: bool,
    training_start_sec: u64,
}

/// Builds and runs the scenario under the given time model. Arrival
/// streams are generated outside (seeded), so both models serve the
/// identical request trace.
fn run_equiv(s: &EquivScenario, model: TimeModel) -> ClusterReport {
    use dilu::core::{funcs, SystemKind};
    use dilu::models::ModelId;
    use dilu::workload::{ArrivalProcess, PoissonProcess};

    let horizon = SimDuration::from_secs(s.horizon_secs);
    let arrivals = PoissonProcess::new(s.rate, s.arrival_seed).generate(SimTime::ZERO + horizon);
    let mut spec = funcs::inference_function(1, ModelId::RobertaLarge);
    if let FunctionKind::Inference { slo, .. } = spec.kind {
        spec.kind = FunctionKind::Inference { slo, batch: s.batch };
    }
    let mut builder = SystemKind::Dilu
        .builder()
        .cluster(ClusterSpec::single_node(s.gpus))
        .sim_config(dilu::cluster::SimConfig { time_model: model, ..Default::default() })
        .horizon(horizon)
        .drain(SimDuration::from_secs(3))
        .function(spec)
        .initial_instances(s.initial)
        .arrival_times(arrivals);
    if s.coscale {
        builder = builder.controller(dilu::scaler::CoScaler::new(Default::default()));
    }
    if s.with_training {
        let tspec = funcs::training_function(2, ModelId::BertBase, 1, 40);
        builder = builder.function(tspec).starts_at(SimTime::from_secs(s.training_start_sec));
    }
    builder.build().expect("scenario composes").run().expect("scenario runs")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The event-driven core is not an approximation: on randomized small
    /// scenarios its full report — every latency sample, timeline point,
    /// fragmentation snapshot, resize and cold-start count — is
    /// byte-identical to the dense quantum stepper's.
    #[test]
    fn event_core_matches_dense_stepper(
        gpus in 1u32..4,
        rate in 8u32..50,
        arrival_seed in 0u64..1_000,
        batch_pick in 0u32..2,
        horizon_secs in 5u64..9,
        initial in 0u32..2,
        coscale_pick in 0u32..2,
        training_pick in 0u32..2,
        training_start_sec in 0u64..4,
    ) {
        let scenario = EquivScenario {
            gpus,
            rate: f64::from(rate),
            arrival_seed,
            batch: if batch_pick == 0 { 2 } else { 4 },
            horizon_secs,
            initial,
            coscale: coscale_pick == 1,
            with_training: training_pick == 1,
            training_start_sec,
        };
        let dense = run_equiv(&scenario, TimeModel::DenseQuantum);
        let event = run_equiv(&scenario, TimeModel::EventDriven);
        let dense_json = serde_json::to_string(&dense).expect("report serializes");
        let event_json = serde_json::to_string(&event).expect("report serializes");
        prop_assert!(
            dense_json == event_json,
            "event core diverged from the dense stepper for {scenario:?}\ndense: {}\nevent: {}",
            summary(&dense),
            summary(&event),
        );
    }
}

fn summary(r: &ClusterReport) -> String {
    let f = r.inference.values().next().expect("one inference function");
    format!(
        "arrived {} completed {} svr {:.4} cold {} resizes {} p95 {} occupied {:?}",
        f.arrived,
        f.completed,
        f.svr(),
        f.cold_starts.count(),
        f.resizes.total(),
        f.latency.p95(),
        r.occupied_gpus.len(),
    )
}
/// A long-horizon deterministic case: 60 s of bursty-ish traffic drives the
/// lazy scaler through cold-start scale-outs, scale-ins, and
/// scale-to-zero, plus a late training job — the full lifecycle on both
/// time models, byte-identical.
#[test]
fn event_core_matches_dense_stepper_across_scaling_lifecycle() {
    let scenario = EquivScenario {
        gpus: 4,
        rate: 95.0,
        arrival_seed: 41,
        batch: 4,
        horizon_secs: 60,
        initial: 0,
        coscale: true,
        with_training: true,
        training_start_sec: 12,
    };
    let dense = run_equiv(&scenario, TimeModel::DenseQuantum);
    let event = run_equiv(&scenario, TimeModel::EventDriven);
    let f = event.inference.values().next().expect("inference function");
    assert!(f.cold_starts.count() > 0, "case must exercise the cold-start path");
    assert_eq!(
        serde_json::to_string(&dense).unwrap(),
        serde_json::to_string(&event).unwrap(),
        "event core diverged from the dense stepper\ndense: {}\nevent: {}",
        summary(&dense),
        summary(&event),
    );
}

//! Behavioural pins for the network/topology plane (`dilu-net`): cold-start
//! storms contend on the shared registry link, per-node model caches skip
//! the fetch, and networked runs stay byte-identical across time models and
//! thread counts.

use dilu::cluster::{
    ClusterSpec, ClusterView, ElasticityController, FunctionScaleView, ScaleAction, SimConfig,
    TimeModel,
};
use dilu::core::{funcs, SystemKind};
use dilu::models::ModelId;
use dilu::net::NetworkConfig;
use dilu::sim::{SimDuration, SimTime};

/// Launches `count` instances of the first function on its first tick, then
/// stays quiet — the controlled version of a cold-start storm.
struct StormOnce {
    count: u32,
    fired: bool,
}

impl ElasticityController for StormOnce {
    fn on_tick(
        &mut self,
        _now: SimTime,
        functions: &[FunctionScaleView],
        _cluster: &ClusterView,
    ) -> Vec<ScaleAction> {
        if self.fired || functions.is_empty() {
            return Vec::new();
        }
        self.fired = true;
        vec![ScaleAction::ScaleOut { func: functions[0].func, count: self.count }]
    }

    fn name(&self) -> &str {
        "storm-once"
    }
}

/// Launches one instance at each scheduled second.
struct SpacedLaunches {
    at_secs: Vec<u64>,
    issued: usize,
}

impl ElasticityController for SpacedLaunches {
    fn on_tick(
        &mut self,
        now: SimTime,
        functions: &[FunctionScaleView],
        _cluster: &ClusterView,
    ) -> Vec<ScaleAction> {
        if functions.is_empty() || self.issued >= self.at_secs.len() {
            return Vec::new();
        }
        if now < SimTime::from_secs(self.at_secs[self.issued]) {
            return Vec::new();
        }
        self.issued += 1;
        vec![ScaleAction::ScaleOut { func: functions[0].func, count: 1 }]
    }

    fn name(&self) -> &str {
        "spaced-launches"
    }
}

/// Runs a `k`-way simultaneous cold-start storm on an 8×4 cluster with no
/// model cache and returns the mean per-fetch delay in milliseconds.
fn storm_mean_fetch_ms(k: u32) -> f64 {
    let report = SystemKind::Dilu
        .builder()
        .cluster(ClusterSpec { nodes: 8, gpus_per_node: 4, ..ClusterSpec::single_node(4) })
        .network(NetworkConfig::default())
        .horizon(SimDuration::from_secs(60))
        .controller(StormOnce { count: k, fired: false })
        .function(funcs::inference_function(1, ModelId::BertBase))
        .initial_instances(0)
        .arrival_times(Vec::new())
        .build()
        .expect("storm scenario builds")
        .run()
        .expect("storm scenario runs");
    let f = report.inference.values().next().expect("one function");
    assert_eq!(
        f.cold_starts.fetches(),
        u64::from(k),
        "every launch in a {k}-way storm must fetch weights"
    );
    assert_eq!(f.cold_starts.cache_hits(), 0, "cache_gb = 0 disables the cache");
    f.cold_starts.mean_fetch_ms()
}

#[test]
fn storm_fetch_latency_grows_with_concurrency() {
    let m1 = storm_mean_fetch_ms(1);
    let m4 = storm_mean_fetch_ms(4);
    let m32 = storm_mean_fetch_ms(32);
    // All flows share the registry link, so the fair-share rate drops with
    // the storm width: 4 concurrent fetches take ~4x a solo fetch, 32 take
    // ~32x. The bounds are deliberately loose (2x per 4x width) so only the
    // contention trend is pinned, not the exact fair-share arithmetic
    // (crates/net/tests/fairness.rs owns that).
    assert!(m1 > 0.0, "a solo fetch still pays for its bytes, got {m1}");
    assert!(m4 >= 2.0 * m1, "4-way storm must contend: solo {m1} ms, 4-way {m4} ms");
    assert!(m32 >= 2.0 * m4, "32-way storm must contend harder: 4-way {m4} ms, 32-way {m32} ms");
}

#[test]
fn cache_hit_skips_the_fetch_and_pays_only_provision() {
    let provision = SimDuration::from_secs(2);
    let report = SystemKind::Dilu
        .builder()
        .cluster(ClusterSpec::single_node(4))
        .network(NetworkConfig { cache_gb: 8.0, provision, ..NetworkConfig::default() })
        .horizon(SimDuration::from_secs(60))
        .controller(SpacedLaunches { at_secs: vec![1, 30], issued: 0 })
        .function(funcs::inference_function(1, ModelId::BertBase))
        .initial_instances(0)
        .arrival_times(Vec::new())
        .build()
        .expect("cache scenario builds")
        .run()
        .expect("cache scenario runs");
    let f = report.inference.values().next().expect("one function");
    assert_eq!(f.cold_starts.count(), 2, "two cold starts were issued");
    assert_eq!(f.cold_starts.fetches(), 1, "only the first launch fetches weights");
    assert_eq!(f.cold_starts.cache_hits(), 1, "the relaunch hits the node cache");
    assert!((f.cold_starts.cache_hit_rate() - 0.5).abs() < 1e-9);
    // The cached launch pays exactly the provision residue, so total delay
    // is (fetch + provision-bounded first start) + (provision): strictly
    // less than two fetch-priced starts would cost.
    assert!(
        f.cold_starts.total_delay() < f.cold_starts.fetch_delay() + provision * 2 + provision,
        "cache hit must not pay fetch-class delay: total {:?}, fetch {:?}",
        f.cold_starts.total_delay(),
        f.cold_starts.fetch_delay()
    );
}

/// A networked mixed workload (fetch storms + a pipelined LLM paying
/// activation transfers), rendered to report JSON.
fn networked_report_json(time_model: TimeModel, threads: u32) -> String {
    let sim = SimConfig { time_model, ..SimConfig::default() };
    let burst: Vec<SimTime> = std::iter::repeat_n(SimTime::from_secs(1), 12)
        .chain(std::iter::repeat_n(SimTime::from_secs(15), 12))
        .collect();
    let report = SystemKind::Dilu
        .builder()
        .cluster(ClusterSpec { nodes: 2, gpus_per_node: 4, ..ClusterSpec::single_node(4) })
        .sim_config(sim)
        .threads(threads)
        .network(NetworkConfig { cache_gb: 4.0, ..NetworkConfig::default() })
        .seed(11)
        .horizon(SimDuration::from_secs(30))
        .function(funcs::inference_function(1, ModelId::BertBase))
        .initial_instances(0)
        .arrival_times(burst)
        .function(funcs::llm_inference_function(2, ModelId::Llama2_7b, 4))
        .arrival_times(vec![SimTime::from_secs(2), SimTime::from_secs(8)])
        .build()
        .expect("networked scenario builds")
        .run()
        .expect("networked scenario runs");
    serde_json::to_string(&report).expect("report serializes")
}

#[test]
fn networked_reports_are_byte_identical_across_time_models_and_threads() {
    let reference = networked_report_json(TimeModel::EventDriven, 1);
    assert!(reference.contains("cold_starts"), "sanity: report JSON has content");
    for (time_model, threads) in [
        (TimeModel::EventDriven, 2),
        (TimeModel::EventDriven, 8),
        (TimeModel::DenseQuantum, 1),
        (TimeModel::DenseQuantum, 2),
        (TimeModel::DenseQuantum, 8),
    ] {
        let got = networked_report_json(time_model, threads);
        assert_eq!(
            got, reference,
            "networked report diverges under {time_model:?} with {threads} threads"
        );
    }
}

//! Determinism regression: the event-driven core's reports are a pure
//! function of the scenario — running the same seeded config twice yields
//! byte-identical `ClusterReport` JSON, which pins the event queue's
//! stable same-instant ordering (and every BTree-ordered walk behind it).

use dilu::cluster::ClusterReport;
use dilu::core::{Registry, ScenarioConfig};

/// A scenario touching every event type: bursty arrivals (batch deadlines,
/// arrival batches), a 2D controller (ticks, resize applies, cold starts
/// via scale-out), a collocated training job submitted mid-run
/// (training-submit events), and enough load for pipeline backpressure.
const SCENARIO: &str = r#"
name = "determinism-pin"

[cluster]
nodes = 1
gpus_per_node = 3

[system]
preset = "dilu"

[system.controller]
name = "co-scale"

[run]
horizon_secs = 45
drain_secs = 3
seed = 1337

[[functions]]
model = "roberta-large"
batch = 4
request_pct = 20.0
limit_pct = 40.0
arrivals = { process = "trace", shape = "bursty", rate = 90.0, scale = 3.0 }

[[functions]]
model = "bert-base"
arrivals = { process = "gamma", rate = 25.0, cv = 3.0 }

[[functions]]
model = "bert-base"
name = "bert-train"
role = "training"
workers = 1
iterations = 200
start_sec = 4
"#;

fn run_once() -> ClusterReport {
    let config = ScenarioConfig::from_toml_str(SCENARIO).expect("scenario parses");
    let registry = Registry::with_defaults();
    config
        .into_builder(&registry)
        .and_then(|b| b.build())
        .and_then(|s| s.run())
        .expect("scenario runs")
}

#[test]
fn same_seeded_scenario_twice_is_byte_identical() {
    let a = serde_json::to_string(&run_once()).expect("report serializes");
    let b = serde_json::to_string(&run_once()).expect("report serializes");
    assert!(!a.is_empty());
    assert_eq!(a, b, "two runs of the same seeded scenario must agree byte-for-byte");
}

#[test]
fn report_is_nontrivial() {
    // Guard the pin above against vacuity: the scenario must actually
    // exercise completions, resizes, and the training path.
    let report = run_once();
    let f = report.inference.values().next().expect("inference deployed");
    assert!(f.completed > 0, "requests must complete");
    assert!(report.total_resizes() > 0, "the co-scaler must resize");
    let t = report.training.values().next().expect("training deployed");
    assert!(t.iterations_done > 0, "training must progress");
}

//! Parallel node-plane stepping is a pure wall-clock optimisation: the
//! scaling-lifecycle scenario (cold-start scale-outs, scale-ins,
//! scale-to-zero, vertical resizes, a late training job) must produce a
//! byte-identical `ClusterReport` — and an identical audit stream, one
//! snapshot per controller tick — at `[sim] threads` = 1, 2, and 8, on
//! both time models.

use std::cell::RefCell;
use std::rc::Rc;

use dilu::cluster::{ClusterSpec, FunctionKind, SimConfig, TimeModel};
use dilu::core::{funcs, SystemKind};
use dilu::gpu::GB;
use dilu::models::ModelId;
use dilu::sim::{SimDuration, SimTime};
use dilu::workload::{ArrivalProcess, PoissonProcess};

const HORIZON_SECS: u64 = 60;
const DRAIN_SECS: u64 = 3;

/// Runs the 60 s scaling-lifecycle scenario (the cluster shape from
/// `tests/properties.rs` spread over twelve single-GPU worker nodes, so
/// the step pool genuinely fans out — one node per GPU puts every busy
/// GPU on its own node, and the dense model always steps all twelve) at
/// the given thread count, collecting the audit stream and the final
/// report JSON.
fn run_lifecycle(time_model: TimeModel, threads: u32) -> (Vec<String>, String) {
    let horizon = SimDuration::from_secs(HORIZON_SECS);
    let mut spec = funcs::inference_function(1, ModelId::RobertaLarge);
    if let FunctionKind::Inference { slo, .. } = spec.kind {
        spec.kind = FunctionKind::Inference { slo, batch: 4 };
    }
    // A second hot function keeps several single-GPU nodes busy at once,
    // so event-driven wakes cross the node plane's fan-out threshold (the
    // dense model steps all twelve nodes every quantum regardless). The
    // inflated 5 GB reservations on 6 GB cards defeat the packer: at most
    // one inference instance fits per node, so every replica lands on —
    // and keeps busy — its own node.
    spec.quotas.mem_bytes = 5 * GB;
    let mut spec_b = funcs::inference_function(3, ModelId::ResNet152);
    spec_b.quotas.mem_bytes = 5 * GB;
    let scenario = SystemKind::Dilu
        .builder()
        .cluster(ClusterSpec { nodes: 12, gpus_per_node: 1, gpu_mem_bytes: 6 * GB })
        .sim_config(SimConfig { time_model, threads, ..SimConfig::default() })
        .horizon(horizon)
        .drain(SimDuration::from_secs(DRAIN_SECS))
        .function(spec)
        .initial_instances(0)
        .arrival_times(PoissonProcess::new(95.0, 41).generate(SimTime::ZERO + horizon))
        .function(spec_b)
        .initial_instances(3)
        .arrival_times(PoissonProcess::new(210.0, 43).generate(SimTime::ZERO + horizon))
        .controller(dilu::scaler::CoScaler::new(Default::default()))
        .function(funcs::training_function(2, ModelId::BertBase, 1, 40))
        .starts_at(SimTime::from_secs(12))
        .build()
        .expect("scenario composes");
    let mut sim = scenario.into_sim();
    let ticks: Rc<RefCell<Vec<String>>> = Rc::new(RefCell::new(Vec::new()));
    let sink = ticks.clone();
    sim.set_audit_hook(Box::new(move |snapshot| {
        sink.borrow_mut().push(format!("{snapshot:?}"));
    }));
    sim.run_until(SimTime::from_secs(HORIZON_SECS + DRAIN_SECS));
    let report = serde_json::to_string(&sim.into_report()).expect("report serializes");
    let ticks = ticks.borrow().clone();
    (ticks, report)
}

#[test]
fn audit_stream_and_report_are_identical_across_thread_counts() {
    let (serial_ticks, serial_report) = run_lifecycle(TimeModel::EventDriven, 1);
    // One snapshot per controller tick: the 1 Hz tick fires every
    // simulated second through the 63 s run (horizon + drain).
    assert_eq!(
        serial_ticks.len() as u64,
        HORIZON_SECS + DRAIN_SECS,
        "audit hook must fire exactly once per controller tick"
    );
    let f = &serial_ticks.last().expect("ticks recorded");
    assert!(f.contains("cold_starts"), "snapshots carry function accounting: {f}");
    for threads in [2, 8] {
        let (ticks, report) = run_lifecycle(TimeModel::EventDriven, threads);
        assert_eq!(ticks.len(), serial_ticks.len(), "tick cadence changed at threads={threads}");
        for (i, (a, b)) in serial_ticks.iter().zip(&ticks).enumerate() {
            assert_eq!(a, b, "audit snapshot {i} diverged at threads={threads}");
        }
        assert_eq!(report, serial_report, "report diverged at threads={threads}");
    }
}

#[test]
fn parallel_dense_stepper_matches_serial() {
    let (serial_ticks, serial_report) = run_lifecycle(TimeModel::DenseQuantum, 1);
    let (ticks, report) = run_lifecycle(TimeModel::DenseQuantum, 4);
    assert_eq!(ticks, serial_ticks, "dense audit stream diverged at threads=4");
    assert_eq!(report, serial_report, "dense report diverged at threads=4");
    // And the dense reference agrees with the parallel event core, closing
    // the serial/parallel/dense triangle on the lifecycle scenario.
    let (_, event_report) = run_lifecycle(TimeModel::EventDriven, 4);
    assert_eq!(event_report, serial_report, "parallel event core diverged from dense");
}

//! Integration tests for the co-scaling (§5.3) and scheduling (§5.4/5.5)
//! claims, at reduced scale for debug-build speed.

use dilu::cluster::{ClusterReport, ClusterSpec};
use dilu::core::macrosim::{run_macro, MacroConfig, MacroSystem};
use dilu::core::{build_sim, funcs, ComponentSection, Registry, ScenarioConfig, SystemKind};
use dilu::models::ModelId;
use dilu::sim::{SimDuration, SimTime};
use dilu::workload::{ArrivalProcess, RateTrace, TraceKind, TraceProcess};

const HORIZON: u64 = 240;

fn bursty_run(kind: SystemKind) -> (u64, f64) {
    let trace =
        RateTrace::synthesize(TraceKind::Bursty, 20.0, 5.0, SimDuration::from_secs(HORIZON), 13);
    let arrivals = TraceProcess::new(trace, 13).generate(SimTime::from_secs(HORIZON));
    let mut sim = build_sim(kind, ClusterSpec::single_node(6));
    sim.deploy_inference(funcs::inference_function(1, ModelId::RobertaLarge), 1, arrivals)
        .expect("room at t=0");
    sim.run_until(SimTime::from_secs(HORIZON + 10));
    let report = sim.into_report();
    let f = report.inference.values().next().unwrap();
    (f.cold_starts.count(), f.svr())
}

#[test]
fn lazy_coscaling_reduces_cold_starts() {
    // Table 3: Dilu's lazy scale-out has the fewest cold starts on bursty
    // traces because RCKM absorbs the short bursts vertically.
    let (dilu_csc, dilu_svr) = bursty_run(SystemKind::Dilu);
    let (eager_csc, _) = bursty_run(SystemKind::FastGsPlus);
    assert!(dilu_csc <= eager_csc, "Dilu {dilu_csc} cold starts vs FaST-GS+ {eager_csc}");
    assert!(dilu_svr < 0.25, "Dilu SVR under bursty trace: {dilu_svr}");
}

#[test]
fn dilu_serves_bursts_with_low_violations() {
    let (_, svr) = bursty_run(SystemKind::Dilu);
    let (_, eager_svr) = bursty_run(SystemKind::FastGsPlus);
    assert!(svr <= eager_svr + 0.02, "Dilu SVR {svr} vs FaST-GS+ {eager_svr}");
}

/// Runs the shipped 2D co-scaling scenario, optionally swapping the
/// controller for a horizontal-only autoscaler. Arrival streams derive
/// from the scenario seed, so both runs serve identical traffic.
fn coscaling_scenario_run(horizontal_only: Option<&str>) -> ClusterReport {
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/scenarios/coscaling.toml");
    let mut config = ScenarioConfig::load(&path).expect("shipped scenario parses");
    if let Some(autoscaler) = horizontal_only {
        config.system.controller = None;
        config.system.autoscaler = Some(ComponentSection::named(autoscaler));
    }
    let registry = Registry::with_defaults();
    config
        .into_builder(&registry)
        .and_then(|b| b.build())
        .and_then(|s| s.run())
        .expect("scenario runs")
}

#[test]
fn coscaler_absorbs_bursts_vertically_with_fewer_cold_starts() {
    // The acceptance bar for the 2D redesign: on the shipped burst
    // scenario, the co-scaler must beat the horizontal-only lazy baseline
    // on cold starts *strictly* while holding equal-or-better SLO
    // attainment — because its vertical resizes land in milliseconds where
    // a scale-out pays a multi-second cold start.
    let co = coscaling_scenario_run(None);
    let lazy = coscaling_scenario_run(Some("lazy"));
    let co_f = co.inference.values().next().unwrap();
    let lazy_f = lazy.inference.values().next().unwrap();
    assert!(co.total_resizes() > 0, "the co-scaler must act vertically");
    assert_eq!(lazy.total_resizes(), 0, "the lazy baseline is horizontal-only");
    assert!(
        co_f.cold_starts.count() < lazy_f.cold_starts.count(),
        "co-scaler cold starts ({}) must be strictly below lazy's ({})",
        co_f.cold_starts.count(),
        lazy_f.cold_starts.count()
    );
    assert!(
        co_f.svr() <= lazy_f.svr() + 1e-9,
        "co-scaler SVR {} must not exceed lazy SVR {}",
        co_f.svr(),
        lazy_f.svr()
    );
}

#[test]
fn large_scale_cost_ordering_holds() {
    // Fig. 17 at reduced scale: Dilu < INFless+-l ≤ Exclusive in GPU cost.
    let cfg = MacroConfig {
        nodes: 60,
        gpus_per_node: 4,
        instances: 200,
        arrival_span: SimDuration::from_secs(300),
        mean_lifetime: SimDuration::from_secs(200),
        seed: 21,
    };
    let excl = run_macro(MacroSystem::Exclusive, &cfg, 1.5);
    let infl = run_macro(MacroSystem::InflessPlusL, &cfg, 1.5);
    let dilu = run_macro(MacroSystem::Dilu, &cfg, 1.5);
    assert!(dilu.gpu_seconds < infl.gpu_seconds);
    assert!(infl.gpu_seconds <= excl.gpu_seconds * 1.02);
    assert!(
        dilu.gpu_seconds < excl.gpu_seconds * 0.9,
        "Dilu cost {} vs Exclusive {}",
        dilu.gpu_seconds,
        excl.gpu_seconds
    );
}

#[test]
fn oversubscription_has_diminishing_returns() {
    // Fig. 18(a): occupancy shrinks as γ grows, with little gain past 1.5.
    let cfg = MacroConfig {
        nodes: 60,
        gpus_per_node: 4,
        instances: 200,
        arrival_span: SimDuration::from_secs(300),
        mean_lifetime: SimDuration::from_secs(200),
        seed: 23,
    };
    let g10 = run_macro(MacroSystem::Dilu, &cfg, 1.0).mean_occupied;
    let g15 = run_macro(MacroSystem::Dilu, &cfg, 1.5).mean_occupied;
    let g25 = run_macro(MacroSystem::Dilu, &cfg, 2.5).mean_occupied;
    assert!(g15 <= g10 + 1e-9, "γ=1.5 ({g15}) must not exceed γ=1.0 ({g10})");
    let first_gain = g10 - g15;
    let second_gain = g15 - g25;
    assert!(
        second_gain <= first_gain.max(0.5),
        "returns must diminish: {first_gain} then {second_gain}"
    );
}

//! Dilu's multi-factor profiler (paper §3.2) plus the baseline profiling
//! strategies of Table 2.
//!
//! The profiler determines each DL function's `<request, limit>` SM quotas
//! and (for inference) the optimal batch size, by *pre-running* trials on a
//! private simulated GPU:
//!
//! * **Training**: binary search over the SM rate until measured throughput
//!   reaches `p · T₁ ± 2%` of the exclusive throughput `T₁` — `p = 0.8`
//!   yields the `request` quota, `p = 1.0` the `limit`.
//! * **Inference**: the *Hybrid Growth Search* walks the convex
//!   ⟨IBS, SMR, TE⟩ surface — batch size doubles while the SM rate grows
//!   linearly (10-point steps) — maximising throughput efficacy
//!   `TE = IBS / (t_exec · SMR)` subject to `t_exec ≤ SLO/2`.
//! * **Baselines**: exhaustive traversal (60 trials), GPUlet-style
//!   per-batch binary search (16), and INFless-style operator-decomposition
//!   prediction (20–40, model-dependent).
//!
//! Every trial actually executes work on a [`dilu_gpu::GpuEngine`] under a
//! static partition — the profiler only observes measured durations, never
//! the analytic model underneath.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod baselines;
mod inference;
mod measure;
mod training;

pub use baselines::{gpulet_profile, infless_profile, traversal_profile, BaselineProfile};
pub use inference::{hybrid_growth_search, HgsTrial, InferenceProfile};
pub use measure::{measure_inference_exec, measure_training_throughput};
pub use training::{profile_training, profile_training_quota, TrainingQuotaResult, TrainingQuotas};

//! The profiling baselines of Table 2: Traversal, INFless, GPUlet.

use dilu_gpu::SmRate;
use dilu_models::ModelId;
use serde::{Deserialize, Serialize};

use crate::measure::measure_inference_exec;

/// A baseline profiler's outcome for one model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BaselineProfile {
    /// Chosen batch size.
    pub batch: u32,
    /// Chosen SM rate.
    pub smr: SmRate,
    /// Pre-running (or prediction-sampling) trials consumed.
    pub trials: u32,
    /// Throughput efficacy at the chosen point.
    pub te: f64,
}

const BATCHES: [u32; 6] = [1, 2, 4, 8, 16, 32];

fn te_of(model: ModelId, batch: u32, smr: SmRate) -> (f64, bool) {
    let profile = model.profile();
    let budget = profile.slo / 2;
    let exec = measure_inference_exec(model, batch, smr);
    let te = if exec.is_zero() {
        0.0
    } else {
        f64::from(batch) / exec.as_secs_f64() / smr.as_fraction()
    };
    (te, exec <= budget)
}

/// Exhaustive grid pre-running: 6 batch sizes × 10 SM rates = 60 trials
/// (Table 2, *Traversal*).
pub fn traversal_profile(model: ModelId) -> BaselineProfile {
    let mut best: Option<BaselineProfile> = None;
    let mut trials = 0;
    for &batch in &BATCHES {
        for step in 1..=10 {
            let smr = SmRate::from_fraction(f64::from(step) / 10.0);
            trials += 1;
            let (te, ok) = te_of(model, batch, smr);
            if ok && best.is_none_or(|b| te > b.te) {
                best = Some(BaselineProfile { batch, smr, trials: 0, te });
            }
        }
    }
    let mut out =
        best.unwrap_or(BaselineProfile { batch: 1, smr: SmRate::FULL, trials: 0, te: 0.0 });
    out.trials = trials;
    out
}

/// GPUlet-style pre-running: a 4-step binary search over the SM rate for
/// each of 4 batch sizes = 16 trials (Table 2, *GPUlet*).
pub fn gpulet_profile(model: ModelId) -> BaselineProfile {
    let mut best: Option<BaselineProfile> = None;
    let mut trials = 0;
    for &batch in &BATCHES[..4] {
        let (mut low, mut high) = (0.0_f64, 1.0_f64);
        let mut found: Option<(f64, f64)> = None;
        for _ in 0..4 {
            let mid = 0.5 * (low + high);
            trials += 1;
            let (te, ok) = te_of(model, batch, SmRate::from_fraction(mid));
            if ok {
                found = Some((mid, te));
                high = mid;
            } else {
                low = mid;
            }
        }
        if let Some((smr, te)) = found {
            if best.is_none_or(|b| te > b.te) {
                best =
                    Some(BaselineProfile { batch, smr: SmRate::from_fraction(smr), trials: 0, te });
            }
        }
    }
    let mut out =
        best.unwrap_or(BaselineProfile { batch: 1, smr: SmRate::FULL, trials: 0, te: 0.0 });
    out.trials = trials;
    out
}

/// Operator groups INFless decomposes each model into; its trial count is
/// five prediction samples per group (Table 2 reports 20–40 per model).
fn infless_operator_groups(model: ModelId) -> u32 {
    match model {
        ModelId::ResNet152 => 4,
        ModelId::Vgg19 => 4,
        ModelId::BertBase => 6,
        ModelId::RobertaLarge => 8,
        ModelId::Gpt2Large => 8,
        ModelId::Llama2_7b => 6,
        ModelId::ChatGlm3_6b => 6,
    }
}

/// INFless-style prediction: per-operator profiling plus an execution-time
/// model. Cheaper than traversal, but the composition error makes it
/// overprovision the SM rate by ~10% (the paper notes "lower accuracy due
/// to model decomposition and operator time prediction").
pub fn infless_profile(model: ModelId) -> BaselineProfile {
    let trials = infless_operator_groups(model) * 5;
    // The prediction lands near the true optimum…
    let truth = crate::hybrid_growth_search(model);
    // …but composition error inflates the quota.
    let smr = truth.request.scale(1.1).min(SmRate::FULL);
    let (te, _) = te_of(model, truth.batch, smr);
    BaselineProfile { batch: truth.batch, smr, trials, te }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hybrid_growth_search;

    #[test]
    fn traversal_costs_sixty_trials() {
        let p = traversal_profile(ModelId::ResNet152);
        assert_eq!(p.trials, 60);
        assert!(p.te > 0.0);
    }

    #[test]
    fn gpulet_costs_sixteen_trials() {
        let p = gpulet_profile(ModelId::RobertaLarge);
        assert_eq!(p.trials, 16);
    }

    #[test]
    fn infless_trials_match_table2_band() {
        // Table 2: a=20, b=40, c=40, d=30.
        assert_eq!(infless_profile(ModelId::ResNet152).trials, 20);
        assert_eq!(infless_profile(ModelId::RobertaLarge).trials, 40);
        assert_eq!(infless_profile(ModelId::Gpt2Large).trials, 40);
        assert_eq!(infless_profile(ModelId::Llama2_7b).trials, 30);
    }

    #[test]
    fn dilu_needs_fewest_trials() {
        for model in [ModelId::ResNet152, ModelId::RobertaLarge] {
            let dilu = hybrid_growth_search(model).trials;
            assert!(dilu < gpulet_profile(model).trials);
            assert!(dilu < infless_profile(model).trials);
            assert!(dilu < traversal_profile(model).trials);
        }
    }

    #[test]
    fn hgs_approaches_the_exhaustive_optimum() {
        // The diagonal walk is a heuristic: the paper only guarantees SLO
        // feasibility, so allow a modest efficacy gap to the 60-trial grid.
        let model = ModelId::ResNet152;
        let exhaustive = traversal_profile(model);
        let dilu = hybrid_growth_search(model);
        assert!(
            dilu.best_te >= exhaustive.te * 0.70,
            "dilu TE {} vs exhaustive {}",
            dilu.best_te,
            exhaustive.te
        );
        assert!(dilu.trials < exhaustive.trials / 5, "at a fraction of the trials");
    }

    #[test]
    fn infless_overprovisions_relative_to_dilu() {
        let model = ModelId::RobertaLarge;
        let dilu = hybrid_growth_search(model);
        let infless = infless_profile(model);
        assert!(infless.smr >= dilu.request);
    }
}

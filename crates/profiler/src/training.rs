//! Binary-search profiling of training SM quotas.

use dilu_gpu::SmRate;
use serde::{Deserialize, Serialize};

use crate::measure::measure_training_throughput;
use dilu_models::ModelId;

/// Iterations executed per profiling trial.
const TRIAL_ITERS: u64 = 10;

/// Maximum binary-search trials before settling for the conservative bound.
const MAX_TRIALS: u32 = 10;

/// Result of one quota search.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainingQuotaResult {
    /// The SM rate found.
    pub smr: SmRate,
    /// Pre-running trials consumed (including the exclusive baseline run).
    pub trials: u32,
    /// Throughput measured at `smr`, in samples/s.
    pub throughput: f64,
}

/// The `<request, limit>` pair for a training function.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainingQuotas {
    /// Quota guaranteeing 80% of exclusive throughput.
    pub request: TrainingQuotaResult,
    /// Quota reaching (near-)exclusive throughput.
    pub limit: TrainingQuotaResult,
}

/// Binary-searches the SM rate at which `model`'s training throughput is
/// `p · T₁ ± tolerance`, where `T₁` is the exclusive (100% SMR) throughput
/// (paper §3.2, *Training Profiling*).
///
/// # Panics
///
/// Panics if `p` is not in `(0, 1]` or `tolerance` is not positive.
pub fn profile_training_quota(model: ModelId, p: f64, tolerance: f64) -> TrainingQuotaResult {
    assert!(p > 0.0 && p <= 1.0, "p must be in (0, 1], got {p}");
    assert!(tolerance > 0.0, "tolerance must be positive");
    let mut trials = 1;
    let t1 = measure_training_throughput(model, SmRate::FULL, TRIAL_ITERS);
    let target = p * t1;
    let (mut low, mut high) = (0.0_f64, 1.0_f64);
    let mut best = TrainingQuotaResult { smr: SmRate::FULL, trials, throughput: t1 };
    while trials < MAX_TRIALS {
        let mid = 0.5 * (low + high);
        trials += 1;
        let ti = measure_training_throughput(model, SmRate::from_fraction(mid), TRIAL_ITERS);
        if (ti - target).abs() <= tolerance * target {
            return TrainingQuotaResult { smr: SmRate::from_fraction(mid), trials, throughput: ti };
        }
        if ti < target {
            low = mid;
        } else {
            high = mid;
            best = TrainingQuotaResult { smr: SmRate::from_fraction(mid), trials, throughput: ti };
        }
    }
    // Fall back to the tightest upper bound that met the target.
    TrainingQuotaResult { trials, ..best }
}

/// Profiles both quotas: `request` at `p = 0.8`, `limit` at `p = 1.0`, each
/// within the paper's ±2% tolerance.
pub fn profile_training(model: ModelId) -> TrainingQuotas {
    TrainingQuotas {
        request: profile_training_quota(model, 0.8, 0.02),
        limit: profile_training_quota(model, 1.0, 0.02),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_quota_hits_80_percent_throughput() {
        let model = ModelId::BertBase;
        let t1 = measure_training_throughput(model, SmRate::FULL, TRIAL_ITERS);
        let r = profile_training_quota(model, 0.8, 0.02);
        let ratio = r.throughput / t1;
        assert!((0.75..=0.86).contains(&ratio), "ratio {ratio}");
        assert!(r.smr < SmRate::from_percent(60.0), "request {}", r.smr);
        assert!(r.trials <= MAX_TRIALS);
    }

    #[test]
    fn limit_quota_reaches_saturation() {
        let model = ModelId::BertBase;
        let r = profile_training_quota(model, 1.0, 0.02);
        let sat = model.profile().training.sat;
        // The limit lands at (or just above) the saturation knee.
        assert!(r.smr >= sat.scale(0.9), "limit {} vs sat {sat}", r.smr);
        assert!(r.smr <= sat.scale(1.5), "limit {} far beyond sat {sat}", r.smr);
    }

    #[test]
    fn request_is_below_limit() {
        let q = profile_training(ModelId::ResNet152);
        assert!(q.request.smr <= q.limit.smr);
        assert!(q.request.trials + q.limit.trials <= 2 * MAX_TRIALS);
    }

    #[test]
    #[should_panic(expected = "p must be in")]
    fn invalid_p_rejected() {
        profile_training_quota(ModelId::BertBase, 0.0, 0.02);
    }
}

//! Pre-running measurement harness: one instance, one GPU, fixed SM rate.

use dilu_gpu::policies::StaticPartitionPolicy;
use dilu_gpu::{GpuEngine, InstanceId, SlotConfig, SmRate, TaskClass, GB};
use dilu_models::ModelId;
use dilu_sim::{SimDuration, SimTime};

const PROFILING_INSTANCE: InstanceId = InstanceId(1);

fn profiling_gpu(model: ModelId, class: TaskClass, smr: SmRate) -> GpuEngine {
    let mut gpu = GpuEngine::new(48 * GB);
    let profile = model.profile();
    let mem = match class {
        TaskClass::SloSensitive => profile.infer_mem_bytes,
        TaskClass::BestEffort => profile.training.mem_bytes,
    };
    gpu.admit(PROFILING_INSTANCE, SlotConfig { class, request: smr, limit: smr, mem_bytes: mem })
        .expect("profiling GPU is empty");
    gpu
}

/// Measures the mean execution time of one inference batch of `model` at a
/// fixed SM rate, by running `reps` back-to-back batches through the engine
/// under an MPS-style static partition.
///
/// # Panics
///
/// Panics if `batch` is zero.
pub fn measure_inference_exec(model: ModelId, batch: u32, smr: SmRate) -> SimDuration {
    assert!(batch > 0, "batch size must be positive");
    let profile = model.profile();
    let mut gpu = profiling_gpu(model, TaskClass::SloSensitive, smr);
    let reps: u64 = 3;
    for tag in 0..reps {
        gpu.push_work(PROFILING_INSTANCE, profile.inference_item(batch, tag))
            .expect("instance admitted");
    }
    let mut policy = StaticPartitionPolicy::new([(PROFILING_INSTANCE, smr)]);
    let mut now = SimTime::ZERO;
    let mut total = SimDuration::ZERO;
    let mut seen = 0;
    // Generous bound: a starved batch at 1% SMR still finishes within this.
    for _ in 0..4_000_000 {
        if seen == reps {
            break;
        }
        let out = gpu.step(now, &mut policy);
        for c in out.completions {
            total += c.elapsed;
            seen += 1;
        }
        now += gpu.quantum();
    }
    if seen == 0 {
        // The grant never let a batch finish (e.g. zero SMR).
        return SimDuration::from_secs(3_600);
    }
    total / seen
}

/// Measures training throughput (samples per second) of one worker of
/// `model` at a fixed SM rate over `iters` iterations (compute + sync).
///
/// # Panics
///
/// Panics if `iters` is zero.
pub fn measure_training_throughput(model: ModelId, smr: SmRate, iters: u64) -> f64 {
    assert!(iters > 0, "need at least one iteration");
    let training = model.profile().training;
    let mut gpu = profiling_gpu(model, TaskClass::BestEffort, smr);
    for i in 0..iters {
        gpu.push_work(PROFILING_INSTANCE, training.compute_item(i * 2)).expect("instance admitted");
        gpu.push_work(PROFILING_INSTANCE, training.idle_item(i * 2 + 1))
            .expect("instance admitted");
    }
    let mut policy = StaticPartitionPolicy::new([(PROFILING_INSTANCE, smr)]);
    let mut now = SimTime::ZERO;
    let mut finished_at = None;
    for _ in 0..40_000_000 {
        if gpu.is_idle() {
            finished_at = Some(now);
            break;
        }
        gpu.step(now, &mut policy);
        now += gpu.quantum();
    }
    let Some(end) = finished_at else { return 0.0 };
    let secs = end.as_secs_f64();
    if secs <= 0.0 {
        0.0
    } else {
        (iters * u64::from(training.samples_per_iter)) as f64 / secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_exec_matches_analytic_model() {
        let model = ModelId::RobertaLarge;
        let smr = SmRate::from_percent(50.0);
        let measured = measure_inference_exec(model, 4, smr);
        let analytic = model.profile().inference_exec_time(4, smr);
        let err = (measured.as_millis_f64() - analytic.as_millis_f64()).abs();
        assert!(err < 1.0, "measured {measured} vs analytic {analytic}");
    }

    #[test]
    fn starved_measurement_reports_sentinel() {
        let t = measure_inference_exec(ModelId::BertBase, 1, SmRate::ZERO);
        assert!(t >= SimDuration::from_secs(3_600));
    }

    #[test]
    fn training_throughput_saturates_with_smr() {
        let model = ModelId::BertBase;
        let half = measure_training_throughput(model, SmRate::from_percent(25.0), 10);
        let sat = measure_training_throughput(model, SmRate::from_percent(50.0), 10);
        let full = measure_training_throughput(model, SmRate::from_percent(100.0), 10);
        assert!(half < sat, "{half} !< {sat}");
        assert!((full - sat) / full < 0.05, "beyond saturation: {sat} vs {full}");
        // Analytic check: 8192 samples / 85 ms ≈ 96k samples/s at saturation.
        let analytic = model.profile().training.throughput(SmRate::from_percent(100.0));
        assert!((full - analytic).abs() / analytic < 0.1, "{full} vs {analytic}");
    }
}

//! The Hybrid Growth Search over ⟨IBS, SMR⟩ (paper §3.2, Fig. 4).

use dilu_gpu::SmRate;
use dilu_models::ModelId;
use dilu_sim::SimDuration;
use serde::{Deserialize, Serialize};

use crate::measure::measure_inference_exec;

/// SMR growth step: the paper's "10 units".
const SMR_STEP: f64 = 0.10;

/// One pre-running trial on the search path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HgsTrial {
    /// Batch size tried.
    pub batch: u32,
    /// SM rate tried.
    pub smr: SmRate,
    /// Measured execution time.
    pub exec: SimDuration,
    /// Throughput efficacy `batch / (exec · smr)` in req/s per GPU.
    pub te: f64,
    /// Whether the trial met the `SLO/2` execution budget.
    pub meets_slo: bool,
}

/// The profiled configuration of an inference function.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InferenceProfile {
    /// Optimal inference batch size (IBS).
    pub batch: u32,
    /// The `request` quota: the TE-optimal SM rate.
    pub request: SmRate,
    /// The `limit` quota: empirically 2× request (capped at the whole GPU).
    pub limit: SmRate,
    /// Pre-running trials consumed.
    pub trials: u32,
    /// TE at the optimum.
    pub best_te: f64,
    /// The full search path, for Fig. 4-style plots.
    pub path: Vec<HgsTrial>,
}

fn trial(model: ModelId, batch: u32, smr: f64, budget: SimDuration) -> HgsTrial {
    let smr = SmRate::from_fraction(smr.clamp(0.01, 1.0));
    let exec = measure_inference_exec(model, batch, smr);
    let te = if exec.is_zero() {
        0.0
    } else {
        f64::from(batch) / exec.as_secs_f64() / smr.as_fraction()
    };
    HgsTrial { batch, smr, exec, te, meets_slo: exec <= budget }
}

/// Runs the Hybrid Growth Search for `model`: batch size doubles while the
/// SM rate grows linearly, following the convex TE surface until the SLO
/// blocks or TE drops. Returns the starred configuration of Fig. 4.
pub fn hybrid_growth_search(model: ModelId) -> InferenceProfile {
    let profile = model.profile();
    // t_exec budget = SLO/2, accounting for batching/queueing overheads
    // (the INFless rule the paper adopts).
    let budget = profile.slo / 2;
    let mut path = Vec::new();

    // Phase 1: grow SMR at batch 1 until the SLO budget is met.
    let mut smr = SMR_STEP;
    let mut current = loop {
        let t = trial(model, 1, smr, budget);
        path.push(t);
        if t.meets_slo {
            break t;
        }
        smr += SMR_STEP;
        if smr > 1.0 + 1e-9 {
            // Even the whole GPU misses the budget at batch 1; serve the
            // least-bad configuration.
            let best =
                *path.iter().min_by(|a, b| a.exec.cmp(&b.exec)).expect("at least one trial ran");
            return finish(best, path);
        }
    };

    // Phase 2: walk the diagonal — double IBS, step SMR linearly.
    loop {
        let next_batch = current.batch * 2;
        let next_smr = (current.smr.as_fraction() + SMR_STEP).min(1.0);
        let t = trial(model, next_batch, next_smr, budget);
        path.push(t);
        let candidate = if t.meets_slo {
            t
        } else if next_smr < 1.0 {
            // Blocked path: one pruning probe at the full GPU tells us
            // whether any SM rate can save this batch size.
            let probe = trial(model, next_batch, 1.0, budget);
            path.push(probe);
            if !probe.meets_slo {
                break;
            }
            probe
        } else {
            break;
        };
        if candidate.te <= current.te {
            // Past the peak of the convex surface.
            break;
        }
        current = candidate;
    }
    finish(current, path)
}

fn finish(best: HgsTrial, path: Vec<HgsTrial>) -> InferenceProfile {
    InferenceProfile {
        batch: best.batch,
        request: best.smr,
        limit: best.smr.scale(2.0).min(SmRate::FULL),
        trials: path.len() as u32,
        best_te: best.te,
        path,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn search_meets_slo_budget() {
        for model in ModelId::FIG4 {
            let p = hybrid_growth_search(model);
            let budget = model.profile().slo / 2;
            let exec = measure_inference_exec(model, p.batch, p.request);
            assert!(exec <= budget.mul_f64(1.02), "{model}: exec {exec} over budget {budget}");
        }
    }

    #[test]
    fn trials_stay_single_digit() {
        // Table 2: Dilu profiles models a–d in 6–9 trials.
        for model in ModelId::FIG4 {
            let p = hybrid_growth_search(model);
            assert!(
                (3..=12).contains(&p.trials),
                "{model}: {} trials outside the expected band",
                p.trials
            );
        }
    }

    #[test]
    fn limit_is_twice_request_capped() {
        let p = hybrid_growth_search(ModelId::RobertaLarge);
        let expected = p.request.scale(2.0).min(SmRate::FULL);
        assert_eq!(p.limit, expected);
    }

    #[test]
    fn batching_is_exploited() {
        // The TE objective must push past batch 1 for throughput-friendly
        // models.
        let p = hybrid_growth_search(ModelId::ResNet152);
        assert!(p.batch >= 4, "ResNet152 IBS {}", p.batch);
    }

    #[test]
    fn path_contains_blocked_and_accepted_trials() {
        let p = hybrid_growth_search(ModelId::RobertaLarge);
        assert!(p.path.iter().any(|t| t.meets_slo));
        assert_eq!(p.path.len() as u32, p.trials);
        // TE along accepted prefix is non-decreasing (convex surface walk).
        let best = p.path.iter().map(|t| t.te).fold(0.0, f64::max);
        assert!((best - p.best_te).abs() < 1e-6 || p.best_te <= best);
    }
}

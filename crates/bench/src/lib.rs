//! Benchmark harness support: every bench target in `benches/` regenerates
//! one table or figure of the paper via `dilu_core::experiments`, printing
//! an ASCII table and writing JSON under `target/experiments/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;

use serde::Serialize;

/// Runs one experiment: prints a banner, the rendered result, and persists
/// the JSON dump for EXPERIMENTS.md regeneration.
pub fn run_experiment<T, F>(id: &str, title: &str, run: F)
where
    T: Display + Serialize,
    F: FnOnce() -> T,
{
    println!("== {id}: {title} ==");
    let started = std::time::Instant::now();
    let result = run();
    println!("{result}");
    dilu_core::table::write_json(id, &result);
    println!("[{id} completed in {:.1}s]\n", started.elapsed().as_secs_f64());
}

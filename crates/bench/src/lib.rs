//! Benchmark harness support: every bench target in `benches/` regenerates
//! one table or figure of the paper via the
//! [`dilu_core::experiments`] registry, printing an ASCII table and
//! writing JSON under `target/experiments/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dilu_core::experiments::{self, ExperimentCtx};

/// Runs the registered experiment `name`: prints a banner, the rendered
/// result, and persists the JSON dump for EXPERIMENTS.md regeneration.
///
/// # Panics
///
/// Panics if `name` is not in the registry — bench targets are
/// compile-time fixed, so an unknown name is a programming error.
pub fn run_registered(name: &str) {
    let experiment = experiments::find(name).unwrap_or_else(|| {
        panic!(
            "experiment `{name}` is not registered (known: {})",
            experiments::all().iter().map(|e| e.name()).collect::<Vec<_>>().join(", ")
        )
    });
    println!("== {}: {} ==", experiment.name(), experiment.title());
    // dilu-lint: allow(no-ambient-time) -- wall-clock measurement of the bench run itself; never feeds sim state
    let started = std::time::Instant::now();
    let output = experiment.run(&ExperimentCtx::with_default_json_dir());
    println!("{}", output.rendered);
    if let Some(path) = &output.json_path {
        println!("[json: {}]", path.display());
    }
    println!("[{name} completed in {:.1}s]\n", started.elapsed().as_secs_f64());
}

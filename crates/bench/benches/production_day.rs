//! Production-day macro bench: runs
//! `examples/scenarios/production-day.toml` (10,000 functions, one
//! simulated day, ≥10 million requests) through the streaming arrival
//! plane, then again with `arrival_window = 0` (every schedule
//! materialized up front), verifies the two reports are byte-identical,
//! and records wall time plus peak RSS in `BENCH_production_day.json` at
//! the repository root so future PRs track the macro-tier trajectory.
//!
//! Peak RSS is `VmHWM` from `/proc/self/status` — a process-wide
//! high-water mark, so the streamed lane runs (and is measured) first;
//! the materialized lane can only push the mark up from there, and the
//! delta is what pre-materializing a production day costs.

use std::path::PathBuf;
use std::time::Instant;

use dilu_cluster::ClusterReport;
use dilu_core::{Registry, ScenarioConfig};

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// `VmHWM` (peak resident set) in bytes; 0 where `/proc` is unavailable.
fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

fn run(config: &ScenarioConfig, arrival_window: Option<u32>) -> (ClusterReport, f64) {
    let mut config = config.clone();
    if let Some(window) = arrival_window {
        config.sim.get_or_insert_with(Default::default).arrival_window = Some(window);
    }
    let registry = Registry::with_defaults();
    let scenario = config
        .into_builder(&registry)
        .and_then(|b| b.build())
        .expect("production-day scenario composes");
    let started = Instant::now();
    let report = scenario.run().expect("production-day scenario runs");
    (report, started.elapsed().as_secs_f64())
}

fn main() {
    let path = repo_root().join("examples/scenarios/production-day.toml");
    let config = ScenarioConfig::load(&path).expect("shipped scenario parses");
    let functions = config.fleet.as_ref().map_or(0, |f| f.functions);
    let horizon_secs =
        config.run.as_ref().and_then(|r| r.horizon_secs).expect("run section with horizon");
    assert!(functions >= 10_000, "production day means a 10k-function fleet, got {functions}");
    assert!(horizon_secs >= 86_400, "production day means a full simulated day");

    println!(
        "== production-day: {functions} functions, {horizon_secs} s simulated, \
         streamed then materialized =="
    );

    // Streamed lane first: its peak RSS must be read before anything
    // bigger runs in this process.
    let (streamed_report, streamed_secs) = run(&config, None);
    let streamed_rss = peak_rss_bytes();
    let requests: u64 = streamed_report.inference.values().map(|f| f.arrived).sum();
    println!(
        "streaming (bounded window): {streamed_secs:.1} s wall, peak RSS {} MiB, \
         {requests} requests",
        streamed_rss >> 20,
    );
    assert!(requests >= 10_000_000, "production day means at least 10M requests, got {requests}");

    // Materialized lane: identical simulation, O(total requests) arrival
    // memory. The report must not move by a byte.
    let (materialized_report, materialized_secs) = run(&config, Some(0));
    let materialized_rss = peak_rss_bytes();
    println!(
        "materialized (window = 0):  {materialized_secs:.1} s wall, peak RSS {} MiB",
        materialized_rss >> 20,
    );
    let streamed_json = serde_json::to_string(&streamed_report).expect("report serializes");
    let materialized_json = serde_json::to_string(&materialized_report).expect("report serializes");
    assert_eq!(
        streamed_json, materialized_json,
        "streamed and materialized production-day reports diverged"
    );

    let out = repo_root().join("BENCH_production_day.json");
    let value = serde::Value::Map(vec![
        (s("scenario"), s("examples/scenarios/production-day.toml")),
        (s("functions"), serde::Value::UInt(u64::from(functions))),
        (s("simulated_secs"), serde::Value::UInt(horizon_secs)),
        (s("requests_served"), serde::Value::UInt(requests)),
        (s("streamed_wall_secs"), serde::Value::Float(round2(streamed_secs))),
        (s("streamed_peak_rss_bytes"), serde::Value::UInt(streamed_rss)),
        (s("materialized_wall_secs"), serde::Value::Float(round2(materialized_secs))),
        (s("materialized_peak_rss_bytes"), serde::Value::UInt(materialized_rss)),
        (s("reports_identical"), serde::Value::Bool(true)),
        (s("peak_gpus"), serde::Value::UInt(u64::from(streamed_report.peak_gpus))),
        (s("mean_svr"), serde::Value::Float(round2(streamed_report.mean_svr() * 100.0))),
    ]);
    dilu_core::table::write_json_at(&out, &value);
    println!("[json: {}]", out.display());

    // Acceptance: a production day fits comfortably in commodity memory.
    // The latency samples alone are ~10M × 8 B; the bound leaves room for
    // the serving plane while still catching any O(total requests)
    // regression in arrival handling (a materialized-schedule leak shows
    // up as hundreds of extra MiB here).
    if streamed_rss > 0 {
        assert!(
            streamed_rss < 4 << 30,
            "streamed production day peaked at {streamed_rss} bytes of RSS \
             (acceptance bound: 4 GiB)"
        );
    }
}

fn s(text: &str) -> serde::Value {
    serde::Value::Str(text.to_owned())
}

fn round2(x: f64) -> f64 {
    (x * 100.0).round() / 100.0
}

//! Bench target regenerating Fig. 18 — oversubscription and MaxTokens sensitivity.
fn main() {
    dilu_bench::run_experiment("fig18_sensitivity", "Fig. 18 — oversubscription and MaxTokens sensitivity", dilu_core::experiments::fig18::run);
}

//! Bench target regenerating Fig. 18 — oversubscription and MaxTokens sensitivity via the experiment registry.
fn main() {
    dilu_bench::run_registered("fig18");
}

//! Bench target regenerating Fig. 9 — training-training collocation.
fn main() {
    dilu_bench::run_experiment("fig09_train_train", "Fig. 9 — training-training collocation", dilu_core::experiments::fig09::run);
}

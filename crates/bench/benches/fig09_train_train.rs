//! Bench target regenerating Fig. 9 — training-training collocation via the experiment registry.
fn main() {
    dilu_bench::run_registered("fig09");
}

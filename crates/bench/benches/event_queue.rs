//! Event-queue micro-benchmark: the timer wheel (`dilu_sim::EventQueue`)
//! against the binary-heap + lazy-cancel design it replaced, on an
//! event-loop-shaped workload of one million events with cancellations.
//!
//! Both drivers consume the identical seeded pseudo-random decision
//! stream and must fold the identical pop sequence into their checksum —
//! the wall clocks are only comparable because the work is. Results land
//! in `BENCH_event_queue.json` at the repository root.

use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap};
use std::path::PathBuf;
use std::time::Instant;

use dilu_sim::{EventQueue, EventToken, SimDuration, SimTime};

/// Total events pushed per driver run.
const EVENTS: u64 = 1_000_000;
/// Grid granularity, matching the cluster scheduling quantum.
const QUANTUM_US: u64 = 5_000;
/// Events are pushed 1..=HORIZON_QUANTA quanta into the future.
const HORIZON_QUANTA: u64 = 200;

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// splitmix64: deterministic decision stream shared by both drivers.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

fn mix_checksum(acc: u64, at_us: u64, value: u64) -> u64 {
    acc.rotate_left(17) ^ at_us.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ value
}

/// The queue operations both implementations must serve. `push` returns a
/// cancel handle when asked for one; `pop_due` drains FIFO within an
/// instant, exactly like the simulator's wake loop.
trait Queue {
    type Token;
    fn push(&mut self, at: SimTime, value: u64, cancellable: bool) -> Option<Self::Token>;
    fn cancel(&mut self, token: Self::Token);
    fn peek_time(&mut self) -> Option<SimTime>;
    fn pop_due(&mut self, now: SimTime) -> Option<(SimTime, u64)>;
}

impl Queue for EventQueue<u64> {
    type Token = EventToken;

    fn push(&mut self, at: SimTime, value: u64, cancellable: bool) -> Option<EventToken> {
        if cancellable {
            Some(self.push_cancellable(at, value))
        } else {
            EventQueue::push(self, at, value);
            None
        }
    }

    fn cancel(&mut self, token: EventToken) {
        EventQueue::cancel(self, token);
    }

    fn peek_time(&mut self) -> Option<SimTime> {
        EventQueue::peek_time(self)
    }

    fn pop_due(&mut self, now: SimTime) -> Option<(SimTime, u64)> {
        EventQueue::pop_due(self, now)
    }
}

/// The design the wheel replaced: a min-heap on `(time, seq)` with a
/// cancelled-sequence side set consulted lazily at pop time.
#[derive(Default)]
struct LazyHeap {
    heap: BinaryHeap<Reverse<(u64, u64)>>,
    values: Vec<u64>,
    cancelled: BTreeSet<u64>,
    next_seq: u64,
}

impl Queue for LazyHeap {
    type Token = u64;

    fn push(&mut self, at: SimTime, value: u64, cancellable: bool) -> Option<u64> {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.values.push(value);
        self.heap.push(Reverse((at.as_micros(), seq)));
        cancellable.then_some(seq)
    }

    fn cancel(&mut self, token: u64) {
        self.cancelled.insert(token);
    }

    fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(&Reverse((at, seq))) = self.heap.peek() {
            if self.cancelled.remove(&seq) {
                self.heap.pop();
                continue;
            }
            return Some(SimTime::from_micros(at));
        }
        None
    }

    fn pop_due(&mut self, now: SimTime) -> Option<(SimTime, u64)> {
        let head = self.peek_time()?;
        if head > now {
            return None;
        }
        let Reverse((at, seq)) = self.heap.pop().expect("peeked above");
        Some((SimTime::from_micros(at), self.values[seq as usize]))
    }
}

/// Runs the event-loop workload: keep a working set of pending events;
/// every pop seeds 1–2 future pushes until the budget is spent; every
/// fourth push is cancellable and half of those are cancelled soon after.
fn drive<Q: Queue>(queue: &mut Q, seed: u64) -> (u64, u64) {
    let mut rng = Mix(seed);
    let quantum = SimDuration::from_micros(QUANTUM_US);
    let mut pushed = 0u64;
    let mut pops = 0u64;
    let mut checksum = 0u64;
    let mut open_tokens: Vec<Q::Token> = Vec::new();

    let push_one = |queue: &mut Q,
                    rng: &mut Mix,
                    open_tokens: &mut Vec<Q::Token>,
                    pushed: &mut u64,
                    from: SimTime| {
        let offset = 1 + rng.next() % HORIZON_QUANTA;
        let at = from + quantum * offset;
        let value = *pushed;
        let cancellable = pushed.is_multiple_of(4);
        if let Some(token) = queue.push(at, value, cancellable) {
            open_tokens.push(token);
        }
        *pushed += 1;
        // Cancel roughly half the cancellable events once enough are open.
        if open_tokens.len() >= 32 && rng.next().is_multiple_of(2) {
            let idx = (rng.next() as usize) % open_tokens.len();
            let token = open_tokens.swap_remove(idx);
            queue.cancel(token);
        }
    };

    for _ in 0..1_024 {
        push_one(queue, &mut rng, &mut open_tokens, &mut pushed, SimTime::ZERO);
    }
    while let Some(t) = queue.peek_time() {
        while let Some((at, value)) = queue.pop_due(t) {
            checksum = mix_checksum(checksum, at.as_micros(), value);
            pops += 1;
            if pushed < EVENTS {
                let replacements = 1 + rng.next() % 2;
                for _ in 0..replacements {
                    if pushed < EVENTS {
                        push_one(queue, &mut rng, &mut open_tokens, &mut pushed, at);
                    }
                }
            }
        }
    }
    (checksum, pops)
}

fn main() {
    const SEED: u64 = 0x0000_0d11_u64;

    let started = Instant::now();
    let mut wheel: EventQueue<u64> =
        EventQueue::with_granularity(SimDuration::from_micros(QUANTUM_US));
    let (wheel_checksum, wheel_pops) = drive(&mut wheel, SEED);
    let wheel_secs = started.elapsed().as_secs_f64();

    let started = Instant::now();
    let mut heap = LazyHeap::default();
    let (heap_checksum, heap_pops) = drive(&mut heap, SEED);
    let heap_secs = started.elapsed().as_secs_f64();

    assert_eq!(
        (wheel_checksum, wheel_pops),
        (heap_checksum, heap_pops),
        "wheel and heap must pop the identical event sequence"
    );

    let speedup = heap_secs / wheel_secs;
    println!("== event-queue micro: {EVENTS} events, {wheel_pops} pops ==");
    println!("timer wheel:      {wheel_secs:.3} s");
    println!("heap+lazy-cancel: {heap_secs:.3} s");
    println!("wheel vs heap:    {speedup:.2}x");

    let out = repo_root().join("BENCH_event_queue.json");
    let value = serde::Value::Map(vec![
        (s("events"), serde::Value::UInt(EVENTS)),
        (s("pops"), serde::Value::UInt(wheel_pops)),
        (s("wheel_wall_secs"), serde::Value::Float(round3(wheel_secs))),
        (s("heap_wall_secs"), serde::Value::Float(round3(heap_secs))),
        (s("wheel_speedup"), serde::Value::Float(round3(speedup))),
        (s("pop_sequences_identical"), serde::Value::Bool(true)),
    ]);
    dilu_core::table::write_json_at(&out, &value);
    println!("[json: {}]", out.display());
}

fn s(text: &str) -> serde::Value {
    serde::Value::Str(text.to_owned())
}

fn round3(x: f64) -> f64 {
    (x * 1000.0).round() / 1000.0
}

//! Bench target regenerating Table 2 — profiling iteration comparison via the experiment registry.
fn main() {
    dilu_bench::run_registered("tab02");
}

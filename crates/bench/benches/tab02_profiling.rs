//! Bench target regenerating Table 2 — profiling iteration comparison.
fn main() {
    dilu_bench::run_experiment("tab02_profiling", "Table 2 — profiling iteration comparison", dilu_core::experiments::tab02::run);
}

//! Bench target regenerating Fig. 7 — training-inference collocation via the experiment registry.
fn main() {
    dilu_bench::run_registered("fig07");
}

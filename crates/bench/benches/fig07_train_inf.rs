//! Bench target regenerating Fig. 7 — training-inference collocation.
fn main() {
    dilu_bench::run_experiment("fig07_train_inf", "Fig. 7 — training-inference collocation", dilu_core::experiments::fig07::run);
}

//! Bench target regenerating Table 3 — horizontal scaling (CSC/SVR/SGT).
fn main() {
    dilu_bench::run_experiment("tab03_coscaling", "Table 3 — horizontal scaling (CSC/SVR/SGT)", dilu_core::experiments::tab03::run);
}

//! Bench target regenerating Table 3 — horizontal scaling (CSC/SVR/SGT) via the experiment registry.
fn main() {
    dilu_bench::run_registered("tab03");
}

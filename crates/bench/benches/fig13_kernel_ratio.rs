//! Bench target regenerating Fig. 13 — kernel issuing traces.
fn main() {
    dilu_bench::run_experiment("fig13_kernel_ratio", "Fig. 13 — kernel issuing traces", dilu_core::experiments::fig13::run);
}

//! Bench target regenerating Fig. 13 — kernel issuing traces via the experiment registry.
fn main() {
    dilu_bench::run_registered("fig13");
}

//! Bench target regenerating Fig. 4 — throughput-efficacy surfaces and HGS stars.
fn main() {
    dilu_bench::run_experiment("fig04_te_surface", "Fig. 4 — throughput-efficacy surfaces and HGS stars", dilu_core::experiments::fig04::run);
}

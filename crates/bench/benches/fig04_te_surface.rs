//! Bench target regenerating Fig. 4 — throughput-efficacy surfaces and HGS stars via the experiment registry.
fn main() {
    dilu_bench::run_registered("fig04");
}

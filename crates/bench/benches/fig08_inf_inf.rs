//! Bench target regenerating Fig. 8 — inference-inference collocation.
fn main() {
    dilu_bench::run_experiment("fig08_inf_inf", "Fig. 8 — inference-inference collocation", dilu_core::experiments::fig08::run);
}

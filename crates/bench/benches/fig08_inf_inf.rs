//! Bench target regenerating Fig. 8 — inference-inference collocation via the experiment registry.
fn main() {
    dilu_bench::run_registered("fig08");
}

//! Incremental re-share micro-benchmark: cost of a NetPlane membership
//! change while k flows share the registry link (a cold-start storm), for
//! k in {8, 64, 512}.
//!
//! Each round departs the earliest-finishing flow and starts a
//! replacement fetch, so every operation re-water-fills the storm's
//! connected component twice at steady-state size k. Results land in
//! `BENCH_reshare.json` at the repository root.

use std::path::PathBuf;
use std::time::Instant;

use dilu_net::{NetPlane, NetworkConfig};
use dilu_sim::{SimDuration, SimTime};

/// Storm sizes exercised (concurrent fetches on the shared registry link).
const STORM_SIZES: [usize; 3] = [8, 64, 512];
/// Membership-change rounds timed per storm (scaled down for the largest
/// storm, where one round departs and restarts dozens of flows at once).
fn rounds_for(k: usize) -> u64 {
    if k >= 512 {
        200
    } else {
        2_000
    }
}
/// Nodes in the two-level topology (destinations round-robin over them).
const NODES: usize = 64;

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// splitmix64 for deterministic fetch sizes.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Runs the churn loop for one storm size; returns (wall secs, bytes moved).
fn churn(k: usize, rounds: u64) -> (f64, u64) {
    let quantum = SimDuration::from_millis(5);
    let mut plane: NetPlane<u64> = NetPlane::new(NODES, &NetworkConfig::default(), quantum);
    let mut rng = Mix(0xd11u64 + k as u64);
    // 1–4 GiB fetches: large enough that the storm stays saturated.
    let fetch_bytes = |rng: &mut Mix| (1 + rng.next() % 4) * (1 << 30);
    let mut now = SimTime::ZERO;
    for i in 0..k {
        plane.start_fetch(now, i % NODES, fetch_bytes(&mut rng), i as u64);
    }

    let started = Instant::now();
    let mut tag = k as u64;
    for _ in 0..rounds {
        let next = plane.finish_instants().min().expect("storm is non-empty");
        now = next.max(now);
        let done = plane.take_due(now);
        // Replace every departed flow so the storm holds size k.
        for (_, payload) in done {
            plane.start_fetch(now, (payload as usize) % NODES, fetch_bytes(&mut rng), tag);
            tag += 1;
        }
    }
    let wall = started.elapsed().as_secs_f64();
    (wall, plane.delivered_bytes())
}

fn main() {
    println!("== incremental re-share micro: membership-churn rounds per storm ==");
    let mut rows = Vec::new();
    for &k in &STORM_SIZES {
        let rounds = rounds_for(k);
        let (wall, delivered) = churn(k, rounds);
        let nanos_per_round = wall * 1e9 / rounds as f64;
        println!(
            "k={k:>4}: {wall:.3} s total, {nanos_per_round:>10.0} ns/round \
             ({delivered} bytes delivered)"
        );
        rows.push(serde::Value::Map(vec![
            (s("k"), serde::Value::UInt(k as u64)),
            (s("rounds"), serde::Value::UInt(rounds)),
            (s("wall_secs"), serde::Value::Float(round3(wall))),
            (s("nanos_per_round"), serde::Value::Float(nanos_per_round.round())),
            (s("delivered_bytes"), serde::Value::UInt(delivered)),
        ]));
    }

    let out = repo_root().join("BENCH_reshare.json");
    let value = serde::Value::Map(vec![
        (s("nodes"), serde::Value::UInt(NODES as u64)),
        (s("storms"), serde::Value::Seq(rows)),
    ]);
    dilu_core::table::write_json_at(&out, &value);
    println!("[json: {}]", out.display());
}

fn s(text: &str) -> serde::Value {
    serde::Value::Str(text.to_owned())
}

fn round3(x: f64) -> f64 {
    (x * 1000.0).round() / 1000.0
}

//! Bench target regenerating Fig. 15 — end-to-end scheduling and ablations via the experiment registry.
fn main() {
    dilu_bench::run_registered("fig15");
}

//! Bench target regenerating Fig. 15 — end-to-end scheduling and ablations.
fn main() {
    dilu_bench::run_experiment("fig15_end_to_end", "Fig. 15 — end-to-end scheduling and ablations", dilu_core::experiments::fig15::run);
}

//! Macro-scale time-model benchmark: runs `examples/scenarios/macro-scale.toml`
//! (1024 GPUs, one simulated hour, bursty multi-model traffic) under the
//! wake-on-work event engine (serial and parallel node plane) and the
//! legacy dense quantum stepper, verifies all three produce the identical
//! report, and records the wall-clock speedups in `BENCH_macro_scale.json`
//! at the repository root so future PRs track the perf trajectory.

use std::path::PathBuf;
use std::time::Instant;

use dilu_cluster::ClusterReport;
use dilu_core::{NetworkSection, Registry, ScenarioConfig};

/// Thread count for the parallel event-core run (`[sim] threads`).
const PARALLEL_THREADS: u32 = 4;

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn run(config: &ScenarioConfig, model: &str, threads: u32) -> (ClusterReport, f64) {
    let (report, secs, _) = run_inner(config, model, threads, false);
    (report, secs)
}

fn run_inner(
    config: &ScenarioConfig,
    model: &str,
    threads: u32,
    profile: bool,
) -> (ClusterReport, f64, Option<dilu_metrics::PhaseProfile>) {
    let mut config = config.clone();
    let sim = config.sim.get_or_insert_with(Default::default);
    sim.time_model = Some(model.to_owned());
    sim.threads = Some(threads);
    if profile {
        sim.profile = Some(true);
    }
    let registry = Registry::with_defaults();
    let scenario = config
        .into_builder(&registry)
        .and_then(|b| b.build())
        .expect("macro-scale scenario composes");
    let started = Instant::now();
    let (report, prof) = scenario.run_profiled().expect("macro-scale scenario runs");
    (report, started.elapsed().as_secs_f64(), prof)
}

/// Median of three timed runs of the serial event lane, all of which must
/// produce the identical report. One sample is noise on a shared machine;
/// the committed headline should not move with scheduler luck.
fn run_event_median3(config: &ScenarioConfig) -> (ClusterReport, f64, Vec<f64>) {
    let mut samples = Vec::new();
    let mut reports = Vec::new();
    for _ in 0..3 {
        let (report, secs) = run(config, "event-driven", 1);
        samples.push(secs);
        reports.push(report);
    }
    let json0 = serde_json::to_string(&reports[0]).expect("report serializes");
    for r in &reports[1..] {
        let j = serde_json::to_string(r).expect("report serializes");
        assert_eq!(j, json0, "serial event runs must be deterministic");
    }
    let mut sorted = samples.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite walls"));
    (reports.remove(0), sorted[1], samples)
}

fn main() {
    let path = repo_root().join("examples/scenarios/macro-scale.toml");
    let config = ScenarioConfig::load(&path).expect("shipped scenario parses");
    let gpus = {
        let c = config.cluster.as_ref().expect("cluster section");
        c.nodes.unwrap_or(0) * c.gpus_per_node.unwrap_or(0)
    };
    let horizon_secs =
        config.run.as_ref().and_then(|r| r.horizon_secs).expect("run section with horizon");
    assert!(gpus >= 512, "macro-scale means at least 512 GPUs, got {gpus}");
    assert!(horizon_secs >= 3600, "macro-scale means at least one simulated hour");
    let hardware_threads = std::thread::available_parallelism().map_or(1, |n| n.get() as u32);

    println!(
        "== macro-scale: {gpus} GPUs, {horizon_secs} s simulated, \
         serial/parallel event + dense ({hardware_threads} hardware threads) =="
    );
    let (event_report, event_secs, event_samples) = run_event_median3(&config);
    println!(
        "event-driven (serial):    {event_secs:.2} s wall (median of {:?})",
        event_samples.iter().map(|s| round2(*s)).collect::<Vec<_>>()
    );
    let (parallel_report, parallel_secs) = run(&config, "event-driven", PARALLEL_THREADS);
    println!("event-driven ({PARALLEL_THREADS} threads): {parallel_secs:.2} s wall");
    let (dense_report, dense_secs) = run(&config, "dense-quantum", 1);
    println!("dense-quantum:            {dense_secs:.2} s wall");

    // Same fidelity, not approximately: every execution mode must emit the
    // identical report before the wall clocks are comparable at all.
    let event_json = serde_json::to_string(&event_report).expect("report serializes");
    let parallel_json = serde_json::to_string(&parallel_report).expect("report serializes");
    let dense_json = serde_json::to_string(&dense_report).expect("report serializes");
    assert_eq!(event_json, dense_json, "time models diverged on the macro-scale scenario");
    assert_eq!(
        parallel_json, event_json,
        "parallel node plane diverged from serial on the macro-scale scenario"
    );

    // Network-plane lane: same scenario with the datacenter topology priced
    // in, so the bench tracks what flow bookkeeping costs the event core —
    // and that the parallel node plane stays byte-identical with it on.
    let mut networked = config.clone();
    networked.network =
        Some(NetworkSection { preset: Some("datacenter".to_owned()), ..Default::default() });
    let (network_report, network_secs) = run(&networked, "event-driven", 1);
    println!("event-driven + network:   {network_secs:.2} s wall");
    let (network_parallel_report, network_parallel_secs) =
        run(&networked, "event-driven", PARALLEL_THREADS);
    println!("network ({PARALLEL_THREADS} threads):      {network_parallel_secs:.2} s wall");
    let network_json = serde_json::to_string(&network_report).expect("report serializes");
    let network_parallel_json =
        serde_json::to_string(&network_parallel_report).expect("report serializes");
    assert_eq!(
        network_parallel_json, network_json,
        "parallel node plane diverged from serial with the network plane on"
    );
    let cold_fetches: u64 =
        network_report.inference.values().map(|f| f.cold_starts.fetches()).sum();

    let speedup = dense_secs / event_secs;
    let parallel_speedup = event_secs / parallel_secs;
    let requests: u64 = event_report.inference.values().map(|f| f.arrived).sum();
    println!(
        "event vs dense: {speedup:.2}x | parallel vs serial: {parallel_speedup:.2}x \
         ({requests} requests, mean SVR {:.2}%, peak {} GPUs)",
        event_report.mean_svr() * 100.0,
        event_report.peak_gpus,
    );

    // One extra serial run with the phase profiler on: its wall clock is
    // NOT the headline (timer reads cost a few percent), but its per-phase
    // breakdown explains where the headline seconds go — and its report
    // must still be byte-identical, since profiling is observational.
    let (profiled_report, _, profile) = run_inner(&config, "event-driven", 1, true);
    let profiled_json = serde_json::to_string(&profiled_report).expect("report serializes");
    assert_eq!(profiled_json, event_json, "profiling must not perturb the report");
    let profile = profile.expect("profile requested");

    let out = repo_root().join("BENCH_macro_scale.json");
    let value = serde::Value::Map(vec![
        (s("scenario"), s("examples/scenarios/macro-scale.toml")),
        (s("gpus"), serde::Value::UInt(u64::from(gpus))),
        (s("simulated_secs"), serde::Value::UInt(horizon_secs)),
        (s("requests_served"), serde::Value::UInt(requests)),
        (s("event_driven_wall_secs"), serde::Value::Float(round2(event_secs))),
        (
            s("event_driven_wall_secs_samples"),
            serde::Value::Seq(
                event_samples.iter().map(|&x| serde::Value::Float(round2(x))).collect(),
            ),
        ),
        (s("parallel_event_wall_secs"), serde::Value::Float(round2(parallel_secs))),
        (s("parallel_threads"), serde::Value::UInt(u64::from(PARALLEL_THREADS))),
        (s("hardware_threads"), serde::Value::UInt(u64::from(hardware_threads))),
        (s("dense_quantum_wall_secs"), serde::Value::Float(round2(dense_secs))),
        (s("network_event_wall_secs"), serde::Value::Float(round2(network_secs))),
        (s("network_cold_fetches"), serde::Value::UInt(cold_fetches)),
        (s("speedup"), serde::Value::Float(round2(speedup))),
        (s("parallel_speedup"), serde::Value::Float(round2(parallel_speedup))),
        (s("reports_identical"), serde::Value::Bool(true)),
        (s("peak_gpus"), serde::Value::UInt(u64::from(event_report.peak_gpus))),
        (s("mean_svr"), serde::Value::Float(round2(event_report.mean_svr() * 100.0))),
        (s("profile"), serde::Serialize::to_value(&profile)),
    ]);
    dilu_core::table::write_json_at(&out, &value);
    println!("[json: {}]", out.display());

    assert!(
        speedup >= 5.0,
        "acceptance: event engine must be at least 5x faster than dense stepping \
         on the macro-scale scenario (got {speedup:.2}x)"
    );
    // The parallel acceptance bar only binds where the hardware can
    // actually run the workers: on a machine with fewer cores than the
    // thread count the pool degrades to (correct) time-sliced execution
    // and the measured ratio reflects the scheduler, not the design.
    if hardware_threads >= PARALLEL_THREADS {
        assert!(
            parallel_speedup >= 2.0,
            "acceptance: the parallel event core must be at least 2x faster than serial \
             at {PARALLEL_THREADS} threads on {hardware_threads} hardware threads \
             (got {parallel_speedup:.2}x)"
        );
    } else {
        println!(
            "[skipping the >=2x parallel acceptance assert: {hardware_threads} hardware \
             thread(s) < {PARALLEL_THREADS} workers]"
        );
    }
}

fn s(text: &str) -> serde::Value {
    serde::Value::Str(text.to_owned())
}

fn round2(x: f64) -> f64 {
    (x * 100.0).round() / 100.0
}

//! Bench target regenerating Fig. 11 — vertical scaling overhead.
fn main() {
    dilu_bench::run_experiment("fig11_overhead", "Fig. 11 — vertical scaling overhead", dilu_core::experiments::fig11::run);
}

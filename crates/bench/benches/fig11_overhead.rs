//! Bench target regenerating Fig. 11 — vertical scaling overhead via the experiment registry.
fn main() {
    dilu_bench::run_registered("fig11");
}

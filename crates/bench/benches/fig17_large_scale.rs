//! Bench target regenerating Fig. 17 — 1000-node provisioning efficiency via the experiment registry.
fn main() {
    dilu_bench::run_registered("fig17");
}

//! Bench target regenerating Fig. 17 — 1000-node provisioning efficiency.
fn main() {
    dilu_bench::run_experiment("fig17_large_scale", "Fig. 17 — 1000-node provisioning efficiency", dilu_core::experiments::fig17::run);
}

//! Bench target regenerating Fig. 2 — fragmentation observations and preliminary co-scaling via the experiment registry.
fn main() {
    dilu_bench::run_registered("fig02");
}

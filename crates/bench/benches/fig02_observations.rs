//! Bench target regenerating Fig. 2 — fragmentation observations and preliminary co-scaling.
fn main() {
    dilu_bench::run_experiment("fig02_observations", "Fig. 2 — fragmentation observations and preliminary co-scaling", dilu_core::experiments::fig02::run);
}

//! Bench target regenerating Fig. 12 — co-scaling trace analysis via the experiment registry.
fn main() {
    dilu_bench::run_registered("fig12");
}

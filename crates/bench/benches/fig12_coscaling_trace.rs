//! Bench target regenerating Fig. 12 — co-scaling trace analysis.
fn main() {
    dilu_bench::run_experiment("fig12_coscaling_trace", "Fig. 12 — co-scaling trace analysis", dilu_core::experiments::fig12::run);
}

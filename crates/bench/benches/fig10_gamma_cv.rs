//! Bench target regenerating Fig. 10 — p95 latency vs Gamma CV via the experiment registry.
fn main() {
    dilu_bench::run_registered("fig10");
}

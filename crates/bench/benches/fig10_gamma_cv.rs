//! Bench target regenerating Fig. 10 — p95 latency vs Gamma CV.
fn main() {
    dilu_bench::run_experiment("fig10_gamma_cv", "Fig. 10 — p95 latency vs Gamma CV", dilu_core::experiments::fig10::run);
}

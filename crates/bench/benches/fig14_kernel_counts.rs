//! Bench target regenerating Fig. 14 — total kernel counts via the experiment registry.
fn main() {
    dilu_bench::run_registered("fig14");
}

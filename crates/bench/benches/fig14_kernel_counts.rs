//! Bench target regenerating Fig. 14 — total kernel counts.
fn main() {
    dilu_bench::run_experiment("fig14_kernel_counts", "Fig. 14 — total kernel counts", dilu_core::experiments::fig13::run_fig14);
}

//! Bench target regenerating Fig. 16 — aggregate throughput per GPU.
//!
//! Runs the same end-to-end scenario as Fig. 15 and reports the
//! per-occupied-GPU inference goodput and training throughput, normalised
//! to Exclusive (the paper's aggregate-throughput definition).
use dilu_core::experiments::fig15;
use dilu_core::table::Table;

fn main() {
    println!("== fig16_aggregate: Fig. 16 — aggregate throughput ==");
    let result = fig15::run();
    let excl = result.row("Exclusive").expect("exclusive row").clone();
    let mut t = Table::new(["system", "inference x Exclusive", "training x Exclusive"]);
    for r in &result.rows {
        t.row([
            r.system.clone(),
            format!("{:.2}", r.inf_goodput_per_gpu / excl.inf_goodput_per_gpu.max(1e-9)),
            format!("{:.2}", r.train_throughput_per_gpu / excl.train_throughput_per_gpu.max(1e-9)),
        ]);
    }
    println!("{t}");
    dilu_core::table::write_json("fig16_aggregate", &result);
}

//! Bench target regenerating Fig. 16 — aggregate throughput per GPU via the experiment registry.
fn main() {
    dilu_bench::run_registered("fig16");
}

//! Criterion micro-benchmarks for the paper's overhead claims:
//! scheduling 3,200 instances "within 1.12 seconds" and per-instance
//! token-issue overhead "less than 1 ms".

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dilu_cluster::{
    ClusterView, FunctionId, FunctionKind, FunctionSpec, GpuView, Placement, Quotas,
};
use dilu_gpu::{InstanceId, InstanceView, SharePolicy, SmRate, TaskClass, GB};
use dilu_models::ModelId;
use dilu_rckm::{RckmConfig, RckmPolicy};
use dilu_scheduler::{DiluScheduler, SchedulerConfig};
use dilu_sim::{SimDuration, SimTime};

fn empty_cluster(gpus: u32) -> ClusterView {
    ClusterView {
        gpus: (0..gpus)
            .map(|i| GpuView {
                addr: dilu_cluster::GpuAddr { node: i / 4, gpu: i % 4 },
                mem_capacity: 40 * GB,
                mem_reserved: 0,
                residents: Vec::new(),
            })
            .collect(),
    }
}

fn spec(id: u32) -> FunctionSpec {
    FunctionSpec {
        id: FunctionId(id),
        name: format!("f{id}"),
        model: ModelId::RobertaLarge,
        kind: FunctionKind::Inference { slo: SimDuration::from_millis(100), batch: 4 },
        quotas: Quotas::new(SmRate::from_percent(30.0), SmRate::from_percent(60.0), 4 * GB),
        gpus_per_instance: 1,
    }
}

/// The paper: "Dilu generates scheduling decisions for 3,200 instances
/// concurrently within 1.12 seconds" — here the full placement loop over a
/// 4,000-GPU view.
fn bench_scheduling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduling");
    group.sample_size(10);
    group.bench_function("schedule_3200_instances_4000_gpus", |b| {
        b.iter_batched(
            || (DiluScheduler::new(SchedulerConfig::default()), empty_cluster(4_000)),
            |(mut sched, view)| {
                for i in 0..3_200u32 {
                    let _ = sched.place(&spec(i), &view);
                }
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

/// Token issuing for a full 5 ms cycle on a GPU with 8 residents — must be
/// far below the 1 ms/instance the paper reports for scaling overhead.
fn bench_token_issue(c: &mut Criterion) {
    let views: Vec<InstanceView> = (0..8)
        .map(|i| InstanceView {
            id: InstanceId(i),
            class: if i % 2 == 0 { TaskClass::SloSensitive } else { TaskClass::BestEffort },
            request: SmRate::from_percent(20.0),
            limit: SmRate::from_percent(40.0),
            demand: SmRate::from_percent(30.0),
            queue_len: 2,
            blocks_last_quantum: 50,
            klc_inflation: if i == 0 { 0.8 } else { 0.1 },
            idle_quanta: 0,
        })
        .collect();
    c.bench_function("rckm_token_issue_8_instances", |b| {
        let mut policy = RckmPolicy::new(RckmConfig::default());
        b.iter(|| policy.allocate(SimTime::ZERO, SimDuration::from_millis(5), &views))
    });
}

criterion_group!(benches, bench_scheduling, bench_token_issue);
criterion_main!(benches);

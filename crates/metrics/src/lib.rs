//! Serving metrics for the Dilu reproduction.
//!
//! The paper's evaluation (§5.1) reports inference latency percentiles
//! (p50/p95), SLO violation rate (SVR), cold start counts (CSC), training
//! throughput, saved GPU time (SGT), and GPU fragmentation. This crate
//! provides the recorders that compute all of them from simulation events.
//!
//! # Examples
//!
//! ```
//! use dilu_metrics::LatencyRecorder;
//! use dilu_sim::SimDuration;
//!
//! let mut lat = LatencyRecorder::new();
//! for ms in [10, 20, 30, 40, 100] {
//!     lat.record(SimDuration::from_millis(ms));
//! }
//! assert_eq!(lat.p50(), SimDuration::from_millis(30));
//! assert_eq!(lat.violation_rate(SimDuration::from_millis(50)), 0.2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod counters;
mod fragmentation;
mod latency;
mod profiler;

pub use counters::{ColdStartCounter, GpuTimeMeter, RateWindow, ResizeCounter, SampleClock};
pub use fragmentation::{FragmentationSnapshot, FragmentationStats, GpuUsageSample};
pub use latency::LatencyRecorder;
pub use profiler::{PhaseProfile, PhaseProfiler, PhaseStat, PhaseTimer, SimPhase, PHASE_COUNT};

//! GPU fragmentation accounting.
//!
//! The paper defines fragments as allocated-but-unusable GPU resources on
//! occupied GPUs: SM rate that is reserved (or stranded) but not consumed,
//! and memory left stranded on cards whose remainder cannot host another
//! function. Fig. 2(b) and Fig. 17 report both dimensions.

use serde::{Deserialize, Serialize};

/// One GPU's capacity/usage at a sampling instant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuUsageSample {
    /// Total SM rate of the card (100 = whole GPU).
    pub sm_capacity: f64,
    /// SM rate actually consumed by resident work this sample.
    pub sm_used: f64,
    /// Total device memory in bytes.
    pub mem_capacity: u64,
    /// Device memory held by resident instances in bytes.
    pub mem_used: u64,
    /// `true` if at least one instance is resident.
    pub occupied: bool,
}

/// Aggregated fragmentation over a set of GPUs at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct FragmentationSnapshot {
    /// Fraction of SM capacity on *occupied* GPUs left unused, in `[0, 1]`.
    pub sm_fragmentation: f64,
    /// Fraction of memory on *occupied* GPUs left unused, in `[0, 1]`.
    pub mem_fragmentation: f64,
    /// Number of occupied GPUs.
    pub occupied_gpus: u32,
    /// Number of GPUs observed in total.
    pub total_gpus: u32,
}

impl FragmentationSnapshot {
    /// Computes a snapshot from per-GPU samples.
    ///
    /// Unoccupied GPUs count toward `total_gpus` but contribute no
    /// fragmentation: a fully idle card is spare capacity, not a fragment.
    pub fn from_samples<'a, I>(samples: I) -> Self
    where
        I: IntoIterator<Item = &'a GpuUsageSample>,
    {
        let mut sm_cap = 0.0;
        let mut sm_used = 0.0;
        let mut mem_cap = 0u64;
        let mut mem_used = 0u64;
        let mut occupied = 0u32;
        let mut total = 0u32;
        for s in samples {
            total += 1;
            if s.occupied {
                occupied += 1;
                sm_cap += s.sm_capacity;
                sm_used += s.sm_used.min(s.sm_capacity);
                mem_cap += s.mem_capacity;
                mem_used += s.mem_used.min(s.mem_capacity);
            }
        }
        let sm_fragmentation = if sm_cap > 0.0 { 1.0 - sm_used / sm_cap } else { 0.0 };
        let mem_fragmentation =
            if mem_cap > 0 { 1.0 - mem_used as f64 / mem_cap as f64 } else { 0.0 };
        FragmentationSnapshot {
            sm_fragmentation,
            mem_fragmentation,
            occupied_gpus: occupied,
            total_gpus: total,
        }
    }
}

/// Time-averaged fragmentation statistics over a run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FragmentationStats {
    snapshots: Vec<FragmentationSnapshot>,
}

impl FragmentationStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one sampled snapshot.
    pub fn push(&mut self, snapshot: FragmentationSnapshot) {
        self.snapshots.push(snapshot);
    }

    /// Number of snapshots taken.
    pub fn len(&self) -> usize {
        self.snapshots.len()
    }

    /// `true` if no snapshots were taken.
    pub fn is_empty(&self) -> bool {
        self.snapshots.is_empty()
    }

    /// Mean SM fragmentation across snapshots, or zero when empty.
    pub fn mean_sm_fragmentation(&self) -> f64 {
        self.mean(|s| s.sm_fragmentation)
    }

    /// Mean memory fragmentation across snapshots, or zero when empty.
    pub fn mean_mem_fragmentation(&self) -> f64 {
        self.mean(|s| s.mem_fragmentation)
    }

    /// Mean occupied-GPU count across snapshots, or zero when empty.
    pub fn mean_occupied_gpus(&self) -> f64 {
        self.mean(|s| f64::from(s.occupied_gpus))
    }

    /// The per-snapshot series, oldest first.
    pub fn snapshots(&self) -> &[FragmentationSnapshot] {
        &self.snapshots
    }

    fn mean(&self, f: impl Fn(&FragmentationSnapshot) -> f64) -> f64 {
        if self.snapshots.is_empty() {
            return 0.0;
        }
        self.snapshots.iter().map(f).sum::<f64>() / self.snapshots.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GB: u64 = 1 << 30;

    fn sample(sm_used: f64, mem_used: u64, occupied: bool) -> GpuUsageSample {
        GpuUsageSample { sm_capacity: 100.0, sm_used, mem_capacity: 40 * GB, mem_used, occupied }
    }

    #[test]
    fn idle_gpus_do_not_fragment() {
        let gpus = [sample(0.0, 0, false), sample(0.0, 0, false)];
        let snap = FragmentationSnapshot::from_samples(&gpus);
        assert_eq!(snap.occupied_gpus, 0);
        assert_eq!(snap.total_gpus, 2);
        assert_eq!(snap.sm_fragmentation, 0.0);
        assert_eq!(snap.mem_fragmentation, 0.0);
    }

    #[test]
    fn empty_cluster_snapshot_is_all_zero() {
        // Zero GPUs observed at all: no division by the empty capacity sums.
        let snap = FragmentationSnapshot::from_samples(std::iter::empty::<&GpuUsageSample>());
        assert_eq!(snap.total_gpus, 0);
        assert_eq!(snap.occupied_gpus, 0);
        assert_eq!(snap.sm_fragmentation, 0.0);
        assert_eq!(snap.mem_fragmentation, 0.0);
        // Stats fed only empty snapshots stay zero too.
        let mut stats = FragmentationStats::new();
        stats.push(snap);
        assert_eq!(stats.len(), 1);
        assert_eq!(stats.mean_sm_fragmentation(), 0.0);
        assert_eq!(stats.mean_mem_fragmentation(), 0.0);
        assert_eq!(stats.mean_occupied_gpus(), 0.0);
    }

    #[test]
    fn exclusive_underuse_shows_as_fragmentation() {
        // One occupied GPU using 30% SM and 10 GB of 40 GB: 70% SM frag.
        let gpus = [sample(30.0, 10 * GB, true), sample(0.0, 0, false)];
        let snap = FragmentationSnapshot::from_samples(&gpus);
        assert!((snap.sm_fragmentation - 0.70).abs() < 1e-9);
        assert!((snap.mem_fragmentation - 0.75).abs() < 1e-9);
        assert_eq!(snap.occupied_gpus, 1);
    }

    #[test]
    fn usage_is_clamped_to_capacity() {
        let over = GpuUsageSample {
            sm_capacity: 100.0,
            sm_used: 120.0,
            mem_capacity: GB,
            mem_used: 2 * GB,
            occupied: true,
        };
        let snap = FragmentationSnapshot::from_samples([&over]);
        assert_eq!(snap.sm_fragmentation, 0.0);
        assert_eq!(snap.mem_fragmentation, 0.0);
    }

    #[test]
    fn stats_average_over_snapshots() {
        let mut stats = FragmentationStats::new();
        stats.push(FragmentationSnapshot {
            sm_fragmentation: 0.2,
            mem_fragmentation: 0.4,
            occupied_gpus: 2,
            total_gpus: 4,
        });
        stats.push(FragmentationSnapshot {
            sm_fragmentation: 0.4,
            mem_fragmentation: 0.2,
            occupied_gpus: 4,
            total_gpus: 4,
        });
        assert!((stats.mean_sm_fragmentation() - 0.3).abs() < 1e-12);
        assert!((stats.mean_mem_fragmentation() - 0.3).abs() < 1e-12);
        assert!((stats.mean_occupied_gpus() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_zero() {
        let stats = FragmentationStats::new();
        assert!(stats.is_empty());
        assert_eq!(stats.mean_sm_fragmentation(), 0.0);
    }
}

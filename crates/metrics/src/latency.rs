//! Latency percentiles and SLO violation accounting.

use dilu_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Records request latencies and answers percentile / SLO queries.
///
/// Samples are kept exactly (simulation scale makes this cheap) and sorted
/// lazily on query, so recording stays O(1).
///
/// # Examples
///
/// ```
/// use dilu_metrics::LatencyRecorder;
/// use dilu_sim::SimDuration;
///
/// let mut lat = LatencyRecorder::new();
/// lat.record(SimDuration::from_millis(12));
/// lat.record(SimDuration::from_millis(48));
/// assert_eq!(lat.len(), 2);
/// assert_eq!(lat.p95(), SimDuration::from_millis(48));
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LatencyRecorder {
    samples: Vec<SimDuration>,
}

impl LatencyRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: SimDuration) {
        self.samples.push(latency);
    }

    /// The number of recorded samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The latency at quantile `q` in `[0, 1]` (nearest-rank method).
    ///
    /// Returns [`SimDuration::ZERO`] when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> SimDuration {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
        if self.samples.is_empty() {
            return SimDuration::ZERO;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    /// Median latency.
    pub fn p50(&self) -> SimDuration {
        self.quantile(0.50)
    }

    /// 95th-percentile latency.
    pub fn p95(&self) -> SimDuration {
        self.quantile(0.95)
    }

    /// 99th-percentile latency.
    pub fn p99(&self) -> SimDuration {
        self.quantile(0.99)
    }

    /// Arithmetic mean latency, or zero when empty.
    pub fn mean(&self) -> SimDuration {
        if self.samples.is_empty() {
            return SimDuration::ZERO;
        }
        let total: u64 = self.samples.iter().map(|d| d.as_micros()).sum();
        SimDuration::from_micros(total / self.samples.len() as u64)
    }

    /// Fraction of samples strictly exceeding `slo`, in `[0, 1]`.
    ///
    /// This is the paper's SLO violation rate (SVR). Returns `0.0` when empty.
    pub fn violation_rate(&self, slo: SimDuration) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let violations = self.samples.iter().filter(|&&d| d > slo).count();
        violations as f64 / self.samples.len() as f64
    }

    /// Iterates over the raw samples in recording order.
    pub fn iter(&self) -> impl Iterator<Item = SimDuration> + '_ {
        self.samples.iter().copied()
    }

    /// Merges another recorder's samples into this one.
    pub fn merge(&mut self, other: &LatencyRecorder) {
        self.samples.extend_from_slice(&other.samples);
    }
}

impl Extend<SimDuration> for LatencyRecorder {
    fn extend<I: IntoIterator<Item = SimDuration>>(&mut self, iter: I) {
        self.samples.extend(iter);
    }
}

impl FromIterator<SimDuration> for LatencyRecorder {
    fn from_iter<I: IntoIterator<Item = SimDuration>>(iter: I) -> Self {
        LatencyRecorder { samples: iter.into_iter().collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(ms: &[u64]) -> LatencyRecorder {
        ms.iter().map(|&m| SimDuration::from_millis(m)).collect()
    }

    #[test]
    fn empty_recorder_is_safe() {
        let lat = LatencyRecorder::new();
        assert!(lat.is_empty());
        assert_eq!(lat.p50(), SimDuration::ZERO);
        assert_eq!(lat.mean(), SimDuration::ZERO);
        assert_eq!(lat.violation_rate(SimDuration::from_millis(1)), 0.0);
    }

    #[test]
    fn zero_and_one_sample_percentiles_are_well_defined() {
        // Zero samples: every quantile (including the boundaries) is zero.
        let empty = LatencyRecorder::new();
        for q in [0.0, 0.5, 0.95, 1.0] {
            assert_eq!(empty.quantile(q), SimDuration::ZERO, "q={q}");
        }
        // One sample: every quantile is that sample (nearest rank clamps the
        // rank into [1, 1], so q=0.0 must not underflow).
        let one = rec(&[42]);
        for q in [0.0, 0.5, 0.95, 1.0] {
            assert_eq!(one.quantile(q), SimDuration::from_millis(42), "q={q}");
        }
        assert_eq!(one.mean(), SimDuration::from_millis(42));
        assert_eq!(one.violation_rate(SimDuration::from_millis(42)), 0.0);
        assert_eq!(one.violation_rate(SimDuration::from_millis(41)), 1.0);
    }

    #[test]
    fn nearest_rank_percentiles() {
        let lat = rec(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
        assert_eq!(lat.p50(), SimDuration::from_millis(5));
        assert_eq!(lat.p95(), SimDuration::from_millis(10));
        assert_eq!(lat.quantile(0.0), SimDuration::from_millis(1));
        assert_eq!(lat.quantile(1.0), SimDuration::from_millis(10));
    }

    #[test]
    fn percentiles_are_insensitive_to_order() {
        let a = rec(&[9, 1, 5, 7, 3]);
        let b = rec(&[1, 3, 5, 7, 9]);
        assert_eq!(a.p50(), b.p50());
        assert_eq!(a.p95(), b.p95());
    }

    #[test]
    fn violation_rate_counts_strict_excess() {
        let lat = rec(&[10, 20, 30, 40]);
        assert_eq!(lat.violation_rate(SimDuration::from_millis(30)), 0.25);
        assert_eq!(lat.violation_rate(SimDuration::from_millis(5)), 1.0);
        assert_eq!(lat.violation_rate(SimDuration::from_millis(40)), 0.0);
    }

    #[test]
    fn mean_is_exact_for_uniform() {
        let lat = rec(&[10, 20, 30]);
        assert_eq!(lat.mean(), SimDuration::from_millis(20));
    }

    #[test]
    fn merge_combines_samples() {
        let mut a = rec(&[1, 2]);
        let b = rec(&[3, 4]);
        a.merge(&b);
        assert_eq!(a.len(), 4);
        assert_eq!(a.quantile(1.0), SimDuration::from_millis(4));
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn quantile_rejects_out_of_range() {
        rec(&[1]).quantile(1.5);
    }
}

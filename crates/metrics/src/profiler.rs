//! The phase profiler: per-phase wall-clock and event counters for the
//! simulation hot path.
//!
//! [`PhaseProfiler`] attributes the wall clock of a simulation run to the
//! canonical cluster phases (resize → train → promote → arrive → dispatch
//! → step → reap → tick, plus the network plane), so a macro-scale bench
//! can say *where* the time went and a perf regression can be localized
//! without re-instrumenting. Accumulators are integer nanoseconds and
//! event counts — addition order cannot perturb them, which keeps the
//! profiler lint-clean by construction under the float-accumulation-order
//! rule (see the workspace `lint.toml`).
//!
//! The profiler is a measurement layer only: nothing in simulation state
//! derives from its readings, and a disabled profiler ([`disabled`]) costs
//! one branch per phase. Timing uses the monotonic wall clock, which is
//! this module's documented, reasoned exception to the no-ambient-time
//! audit.
//!
//! [`disabled`]: PhaseProfiler::disabled

use serde::{Serialize, Value};

/// One instrumented phase of the simulation loop, in canonical order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimPhase {
    /// Applying due quota resizes.
    Resize,
    /// Training-job submission and state machine.
    Train,
    /// Cold-start promotions (instances becoming ready).
    Promote,
    /// Arrival ingest and gateway routing.
    Arrive,
    /// Batch formation and dispatch.
    Dispatch,
    /// The GPU phase: node-plane stepping plus completion handling.
    Step,
    /// Reaping drained instances.
    Reap,
    /// Metrics sampling plus the elasticity-controller tick.
    Tick,
    /// The network plane: flow completions and re-shares.
    Net,
}

/// Number of instrumented phases.
pub const PHASE_COUNT: usize = 9;

impl SimPhase {
    /// Every phase, in canonical order.
    pub const ALL: [SimPhase; PHASE_COUNT] = [
        SimPhase::Resize,
        SimPhase::Train,
        SimPhase::Promote,
        SimPhase::Arrive,
        SimPhase::Dispatch,
        SimPhase::Step,
        SimPhase::Reap,
        SimPhase::Tick,
        SimPhase::Net,
    ];

    /// The phase's stable snake_case name (JSON keys, table rows).
    pub fn name(self) -> &'static str {
        match self {
            SimPhase::Resize => "resize",
            SimPhase::Train => "train",
            SimPhase::Promote => "promote",
            SimPhase::Arrive => "arrive",
            SimPhase::Dispatch => "dispatch",
            SimPhase::Step => "step",
            SimPhase::Reap => "reap",
            SimPhase::Tick => "tick",
            SimPhase::Net => "net",
        }
    }

    fn index(self) -> usize {
        match self {
            SimPhase::Resize => 0,
            SimPhase::Train => 1,
            SimPhase::Promote => 2,
            SimPhase::Arrive => 3,
            SimPhase::Dispatch => 4,
            SimPhase::Step => 5,
            SimPhase::Reap => 6,
            SimPhase::Tick => 7,
            SimPhase::Net => 8,
        }
    }
}

/// An in-flight phase measurement, handed out by
/// [`PhaseProfiler::start`] and spent on [`PhaseProfiler::record`].
/// `None` inside means the profiler is disabled and the whole
/// start/record pair collapses to two branches.
#[derive(Debug)]
#[must_use = "a started phase measurement must be recorded"]
pub struct PhaseTimer(Option<std::time::Instant>);

/// Per-phase cumulative wall-clock and event counters.
///
/// Create one [`enabled`](PhaseProfiler::enabled) (or
/// [`disabled`](PhaseProfiler::disabled) for a free no-op), bracket each
/// phase with [`start`](PhaseProfiler::start) /
/// [`record`](PhaseProfiler::record), and read the result as a
/// [`PhaseProfile`] via [`finish`](PhaseProfiler::finish).
#[derive(Debug, Clone)]
pub struct PhaseProfiler {
    enabled: bool,
    nanos: [u64; PHASE_COUNT],
    events: [u64; PHASE_COUNT],
    wakes: u64,
}

impl PhaseProfiler {
    /// A profiler that measures nothing and costs one branch per phase.
    pub fn disabled() -> Self {
        PhaseProfiler {
            enabled: false,
            nanos: [0; PHASE_COUNT],
            events: [0; PHASE_COUNT],
            wakes: 0,
        }
    }

    /// A live profiler.
    pub fn enabled() -> Self {
        PhaseProfiler { enabled: true, ..Self::disabled() }
    }

    /// `true` when measurements are being taken.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Begins a phase measurement. Free (returns an empty timer) when the
    /// profiler is disabled.
    pub fn start(&self) -> PhaseTimer {
        if self.enabled {
            // dilu-lint: allow(no-ambient-time) -- wall-clock phase attribution is this profiler's purpose; no simulation state ever derives from the reading
            PhaseTimer(Some(std::time::Instant::now()))
        } else {
            PhaseTimer(None)
        }
    }

    /// Ends a phase measurement, crediting the elapsed wall clock and
    /// `events` processed items to `phase`.
    pub fn record(&mut self, phase: SimPhase, timer: PhaseTimer, events: u64) {
        if let Some(started) = timer.0 {
            let i = phase.index();
            self.nanos[i] += u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.events[i] += events;
        }
    }

    /// Counts one simulation wake (an event-core wake or a dense quantum).
    pub fn count_wake(&mut self) {
        if self.enabled {
            self.wakes += 1;
        }
    }

    /// Snapshots the accumulated counters as a [`PhaseProfile`].
    pub fn finish(&self) -> PhaseProfile {
        PhaseProfile {
            phases: SimPhase::ALL
                .iter()
                .map(|&p| PhaseStat {
                    phase: p.name(),
                    nanos: self.nanos[p.index()],
                    events: self.events[p.index()],
                })
                .collect(),
            wakes: self.wakes,
        }
    }
}

/// One phase's cumulative counters inside a [`PhaseProfile`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseStat {
    /// Stable phase name (see [`SimPhase::name`]).
    pub phase: &'static str,
    /// Cumulative wall clock spent in the phase, in integer nanoseconds.
    pub nanos: u64,
    /// Items the phase processed (resizes applied, requests ingested,
    /// batches dispatched, GPU slots stepped, flows completed, ...).
    pub events: u64,
}

/// The profiler's result: per-phase cumulative wall+event counters in
/// canonical phase order, plus the wake count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseProfile {
    /// Per-phase counters, in [`SimPhase::ALL`] order.
    pub phases: Vec<PhaseStat>,
    /// Simulation wakes measured (event-core wakes or dense quanta).
    pub wakes: u64,
}

impl PhaseProfile {
    /// Σ nanos over all phases — the instrumented share of the run.
    pub fn total_nanos(&self) -> u64 {
        self.phases.iter().map(|p| p.nanos).sum()
    }

    /// A phase's share of [`total_nanos`](Self::total_nanos), in `[0, 1]`
    /// (0 when nothing was measured).
    pub fn share(&self, phase: &PhaseStat) -> f64 {
        let total = self.total_nanos();
        if total == 0 {
            0.0
        } else {
            phase.nanos as f64 / total as f64
        }
    }

    /// Renders the profile as an aligned text table, phases sorted by
    /// descending wall clock.
    pub fn render(&self) -> String {
        let mut rows: Vec<&PhaseStat> = self.phases.iter().collect();
        rows.sort_by_key(|r| std::cmp::Reverse(r.nanos));
        let mut out = String::from("phase      wall_ms      share      events\n");
        for p in rows {
            out.push_str(&format!(
                "{:<9} {:>9.2} {:>9.1}% {:>11}\n",
                p.phase,
                p.nanos as f64 / 1e6,
                self.share(p) * 100.0,
                p.events,
            ));
        }
        out.push_str(&format!(
            "total     {:>9.2} ms over {} wakes\n",
            self.total_nanos() as f64 / 1e6,
            self.wakes,
        ));
        out
    }
}

impl Serialize for PhaseProfile {
    fn to_value(&self) -> Value {
        let phases: Vec<(Value, Value)> = self
            .phases
            .iter()
            .map(|p| {
                (
                    Value::Str(p.phase.to_owned()),
                    Value::Map(vec![
                        (Value::Str("nanos".into()), Value::UInt(p.nanos)),
                        (Value::Str("events".into()), Value::UInt(p.events)),
                    ]),
                )
            })
            .collect();
        Value::Map(vec![
            (Value::Str("phases".into()), Value::Map(phases)),
            (Value::Str("total_nanos".into()), Value::UInt(self.total_nanos())),
            (Value::Str("wakes".into()), Value::UInt(self.wakes)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_measures_nothing() {
        let mut p = PhaseProfiler::disabled();
        let t = p.start();
        p.record(SimPhase::Step, t, 100);
        p.count_wake();
        let profile = p.finish();
        assert_eq!(profile.total_nanos(), 0);
        assert_eq!(profile.wakes, 0);
        assert!(profile.phases.iter().all(|s| s.events == 0));
    }

    #[test]
    fn enabled_profiler_accumulates_per_phase() {
        let mut p = PhaseProfiler::enabled();
        for _ in 0..3 {
            let t = p.start();
            std::hint::black_box((0..100).sum::<u64>());
            p.record(SimPhase::Dispatch, t, 7);
            p.count_wake();
        }
        let profile = p.finish();
        assert_eq!(profile.wakes, 3);
        let dispatch = &profile.phases[SimPhase::Dispatch.index()];
        assert_eq!(dispatch.phase, "dispatch");
        assert_eq!(dispatch.events, 21);
        assert!(dispatch.nanos > 0, "elapsed time must accumulate");
        assert_eq!(profile.total_nanos(), dispatch.nanos, "only dispatch was measured");
        assert!((profile.share(dispatch) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn phase_names_are_stable_and_ordered() {
        let names: Vec<&str> = SimPhase::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(
            names,
            ["resize", "train", "promote", "arrive", "dispatch", "step", "reap", "tick", "net"]
        );
        for (i, p) in SimPhase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i, "ALL order must match index order");
        }
    }

    #[test]
    fn render_and_serialize_cover_every_phase() {
        let mut p = PhaseProfiler::enabled();
        let t = p.start();
        p.record(SimPhase::Net, t, 2);
        let profile = p.finish();
        let rendered = profile.render();
        for phase in SimPhase::ALL {
            assert!(rendered.contains(phase.name()), "render must list {}", phase.name());
        }
        let json = serde_json::to_string(&profile).expect("profile serializes");
        assert!(json.contains("\"net\""));
        assert!(json.contains("\"wakes\""));
    }
}

//! Event counters: cold starts, per-second request rates, GPU time.

use dilu_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Counts cold starts, their cumulative startup delay, and — when a network
/// plane prices the weight fetch — the fetch/provision breakdown.
///
/// The paper reports cold start counts (CSC) per trace; the cumulative delay
/// feeds the saved-GPU-time comparison. With a network plane configured, a
/// cold start is either a *fetch* (weights pulled from the registry over
/// contended links) or a *cache hit* (weights already resident on the node,
/// only the provision residue is paid); `fetch_delay` isolates the byte-bound
/// part of `total_delay`.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ColdStartCounter {
    count: u64,
    total_delay: SimDuration,
    fetch_delay: SimDuration,
    fetches: u64,
    cache_hits: u64,
}

impl ColdStartCounter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one cold start that took `delay` before serving (no network
    /// plane: the fetch/provision split is unknown).
    pub fn record(&mut self, delay: SimDuration) {
        self.count += 1;
        self.total_delay += delay;
    }

    /// Records one cold start served from the node's model cache: no fetch,
    /// only the provision residue `delay`.
    pub fn record_cached(&mut self, delay: SimDuration) {
        self.count += 1;
        self.total_delay += delay;
        self.cache_hits += 1;
    }

    /// Records one cold start that fetched weights from the registry:
    /// `total` elapsed before serving, of which `fetch` was the transfer.
    pub fn record_fetch(&mut self, total: SimDuration, fetch: SimDuration) {
        self.count += 1;
        self.total_delay += total;
        self.fetch_delay += fetch;
        self.fetches += 1;
    }

    /// Number of cold starts observed.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all cold start delays.
    pub fn total_delay(&self) -> SimDuration {
        self.total_delay
    }

    /// The part of `total_delay` spent transferring weights.
    pub fn fetch_delay(&self) -> SimDuration {
        self.fetch_delay
    }

    /// Cold starts that paid for a registry fetch.
    pub fn fetches(&self) -> u64 {
        self.fetches
    }

    /// Cold starts served from a node's model cache.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits
    }

    /// Fraction of cache-decided cold starts that hit (zero when the
    /// network plane never weighed in).
    pub fn cache_hit_rate(&self) -> f64 {
        let decided = self.cache_hits + self.fetches;
        if decided == 0 {
            0.0
        } else {
            self.cache_hits as f64 / decided as f64
        }
    }

    /// Mean fetch transfer time in milliseconds over fetching cold starts
    /// (zero when none fetched).
    pub fn mean_fetch_ms(&self) -> f64 {
        if self.fetches == 0 {
            0.0
        } else {
            self.fetch_delay.as_millis_f64() / self.fetches as f64
        }
    }
}

/// A sliding window of per-second request counts.
///
/// Dilu's global scaler (§3.4.2) keeps a 40 s window of RPS values and scales
/// out when at least φ_out of them exceed deployed capacity.
///
/// # Examples
///
/// ```
/// use dilu_metrics::RateWindow;
/// use dilu_sim::SimTime;
///
/// let mut w = RateWindow::new(3);
/// w.observe(SimTime::from_millis(500));
/// w.observe(SimTime::from_millis(800));
/// w.observe(SimTime::from_secs(1));
/// w.roll_to(SimTime::from_secs(2));
/// assert_eq!(w.samples(), [2, 1]);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RateWindow {
    capacity: usize,
    /// Closed per-second counts, oldest first.
    closed: Vec<u64>,
    current_second: u64,
    current_count: u64,
}

impl RateWindow {
    /// Creates a window holding up to `capacity` closed one-second buckets.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "window capacity must be positive");
        RateWindow { capacity, closed: Vec::new(), current_second: 0, current_count: 0 }
    }

    /// Records one request arriving at `now`.
    pub fn observe(&mut self, now: SimTime) {
        self.roll_to(now);
        self.current_count += 1;
    }

    /// Advances the window to `now`, closing any completed seconds (recorded
    /// as zero if no requests arrived in them).
    pub fn roll_to(&mut self, now: SimTime) {
        let sec = now.as_secs();
        while self.current_second < sec {
            let count = self.current_count;
            self.push_closed(count);
            self.current_count = 0;
            self.current_second += 1;
        }
    }

    fn push_closed(&mut self, count: u64) {
        if self.closed.len() == self.capacity {
            self.closed.remove(0);
        }
        self.closed.push(count);
    }

    /// The closed per-second samples, oldest first.
    pub fn samples(&self) -> &[u64] {
        &self.closed
    }

    /// How many closed samples exceed `threshold`.
    pub fn count_above(&self, threshold: f64) -> usize {
        self.closed.iter().filter(|&&c| c as f64 > threshold).count()
    }

    /// How many closed samples are strictly below `threshold`.
    pub fn count_below(&self, threshold: f64) -> usize {
        self.closed.iter().filter(|&&c| (c as f64) < threshold).count()
    }

    /// `true` once the window holds `capacity` closed samples.
    pub fn is_full(&self) -> bool {
        self.closed.len() == self.capacity
    }

    /// Mean of the closed samples, or zero when none have closed.
    pub fn mean(&self) -> f64 {
        if self.closed.is_empty() {
            0.0
        } else {
            self.closed.iter().sum::<u64>() as f64 / self.closed.len() as f64
        }
    }
}

/// Counts vertical quota resizes applied to a function's instances.
///
/// Dilu's 2D co-scaling absorbs bursts by growing `<request, limit>` SM
/// quotas of *running* instances (millisecond-scale) before paying a cold
/// start for a new one; this counter is the vertical analogue of
/// [`ColdStartCounter`].
///
/// # Examples
///
/// ```
/// use dilu_metrics::ResizeCounter;
///
/// let mut r = ResizeCounter::new();
/// r.record_grow();
/// r.record_grow();
/// r.record_shrink();
/// assert_eq!((r.grows(), r.shrinks(), r.total()), (2, 1, 3));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResizeCounter {
    grows: u64,
    shrinks: u64,
}

impl ResizeCounter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one quota expansion (vertical scale-up).
    pub fn record_grow(&mut self) {
        self.grows += 1;
    }

    /// Records one quota reduction (vertical scale-down).
    pub fn record_shrink(&mut self) {
        self.shrinks += 1;
    }

    /// Number of quota expansions.
    pub fn grows(&self) -> u64 {
        self.grows
    }

    /// Number of quota reductions.
    pub fn shrinks(&self) -> u64 {
        self.shrinks
    }

    /// Total resizes in either direction.
    pub fn total(&self) -> u64 {
        self.grows + self.shrinks
    }

    /// Folds another counter's events into this one.
    pub fn merge(&mut self, other: &ResizeCounter) {
        self.grows += other.grows;
        self.shrinks += other.shrinks;
    }
}

/// Tracks sampling instants for event-scheduled metrics collection and
/// converts the elapsed window into a quantum count.
///
/// An event-driven simulator samples on *scheduled* tick events rather
/// than counting the quanta it happened to execute — idle quanta are
/// skipped entirely, yet they must still dilute time-averaged gauges
/// (e.g. SM utilisation). `window_quanta` returns the number of scheduling
/// quanta the closing window covered, counting skipped ones; accumulators
/// that sum only executed quanta (skipped quanta contribute exactly zero)
/// divide by it to get the same average a dense per-quantum sampler
/// produces.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SampleClock {
    last_sample: Option<SimTime>,
}

impl SampleClock {
    /// A clock that has never sampled.
    pub fn new() -> Self {
        Self::default()
    }

    /// Instant of the previous sample, if any.
    pub fn last_sample(&self) -> Option<SimTime> {
        self.last_sample
    }

    /// Closes the window at `now` and returns how many `quantum`-length
    /// slots it covered (at least 1). The first window spans simulation
    /// start through `now` inclusive.
    ///
    /// # Panics
    ///
    /// Panics if `quantum` is zero.
    pub fn window_quanta(&mut self, now: SimTime, quantum: SimDuration) -> u64 {
        assert!(!quantum.is_zero(), "quantum must be positive");
        let q = quantum.as_micros();
        let quanta = match self.last_sample {
            None => now.as_micros() / q + 1,
            Some(prev) => (now.saturating_since(prev).as_micros() / q).max(1),
        };
        self.last_sample = Some(now);
        quanta
    }
}

/// Integrates occupied-GPU count over time (GPU-seconds).
///
/// Feeds the paper's saved GPU time (SGT) and the Fig. 17 occupancy curves.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct GpuTimeMeter {
    last_update: SimTime,
    current_occupied: u32,
    gpu_time: SimDuration,
    peak_occupied: u32,
}

impl GpuTimeMeter {
    /// Creates a meter starting at time zero with no GPUs occupied.
    pub fn new() -> Self {
        Self::default()
    }

    /// Updates the occupied-GPU count effective from `now` on.
    ///
    /// Time between the previous update and `now` is charged at the previous
    /// count.
    pub fn set_occupied(&mut self, now: SimTime, occupied: u32) {
        self.accumulate(now);
        self.current_occupied = occupied;
        self.peak_occupied = self.peak_occupied.max(occupied);
    }

    fn accumulate(&mut self, now: SimTime) {
        let elapsed = now.saturating_since(self.last_update);
        self.gpu_time += elapsed.mul_f64(f64::from(self.current_occupied));
        self.last_update = now;
    }

    /// Total GPU time accumulated up to `now`.
    pub fn gpu_time_until(&mut self, now: SimTime) -> SimDuration {
        self.accumulate(now);
        self.gpu_time
    }

    /// Highest occupied-GPU count seen so far.
    pub fn peak_occupied(&self) -> u32 {
        self.peak_occupied
    }

    /// The currently charged GPU count.
    pub fn current_occupied(&self) -> u32 {
        self.current_occupied
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_clock_counts_window_quanta() {
        let q = SimDuration::from_millis(5);
        let mut clock = SampleClock::new();
        assert_eq!(clock.last_sample(), None);
        // First window: everything from t=0 through the sample instant.
        assert_eq!(clock.window_quanta(SimTime::from_millis(995), q), 200);
        // Steady state: exactly one tick of quanta per window.
        assert_eq!(clock.window_quanta(SimTime::from_millis(1995), q), 200);
        assert_eq!(clock.last_sample(), Some(SimTime::from_millis(1995)));
        // A flush right after a sample still divides by at least one.
        assert_eq!(clock.window_quanta(SimTime::from_millis(1995), q), 1);
    }

    #[test]
    fn cold_start_counter_accumulates() {
        let mut c = ColdStartCounter::new();
        c.record(SimDuration::from_secs(2));
        c.record(SimDuration::from_secs(3));
        assert_eq!(c.count(), 2);
        assert_eq!(c.total_delay(), SimDuration::from_secs(5));
        // Legacy records carry no fetch/cache breakdown.
        assert_eq!(c.fetches(), 0);
        assert_eq!(c.cache_hits(), 0);
        assert_eq!(c.cache_hit_rate(), 0.0);
    }

    #[test]
    fn cold_start_counter_splits_fetch_from_provision() {
        let mut c = ColdStartCounter::new();
        c.record_fetch(SimDuration::from_secs(5), SimDuration::from_secs(3));
        c.record_fetch(SimDuration::from_secs(3), SimDuration::from_secs(1));
        c.record_cached(SimDuration::from_secs(2));
        assert_eq!(c.count(), 3);
        assert_eq!(c.total_delay(), SimDuration::from_secs(10));
        assert_eq!(c.fetch_delay(), SimDuration::from_secs(4));
        assert_eq!(c.fetches(), 2);
        assert_eq!(c.cache_hits(), 1);
        assert!((c.cache_hit_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert!((c.mean_fetch_ms() - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn rate_window_buckets_by_second() {
        let mut w = RateWindow::new(10);
        for ms in [100, 200, 900, 1100, 2500] {
            w.observe(SimTime::from_millis(ms));
        }
        w.roll_to(SimTime::from_secs(3));
        assert_eq!(w.samples(), [3, 1, 1]);
    }

    #[test]
    fn rate_window_records_idle_seconds_as_zero() {
        let mut w = RateWindow::new(10);
        w.observe(SimTime::from_millis(100));
        w.roll_to(SimTime::from_secs(4));
        assert_eq!(w.samples(), [1, 0, 0, 0]);
    }

    #[test]
    fn rate_window_evicts_oldest() {
        let mut w = RateWindow::new(2);
        w.observe(SimTime::from_millis(100)); // second 0: 1
        w.roll_to(SimTime::from_secs(3)); // closes seconds 0,1,2
        assert_eq!(w.samples(), [0, 0]);
        assert!(w.is_full());
    }

    #[test]
    fn rate_window_threshold_counts() {
        let mut w = RateWindow::new(5);
        for s in 0..5u64 {
            for _ in 0..s {
                w.observe(SimTime::from_millis(s * 1000 + 1));
            }
        }
        w.roll_to(SimTime::from_secs(5));
        // Closed counts: [0, 1, 2, 3, 4].
        assert_eq!(w.count_above(2.0), 2);
        assert_eq!(w.count_below(2.0), 2);
        assert!((w.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn rate_window_wraps_around_far_beyond_capacity() {
        // Rolling across many more seconds than the window holds must keep
        // exactly `capacity` samples and preserve the newest ones.
        let mut w = RateWindow::new(3);
        for sec in 0..100u64 {
            for _ in 0..sec {
                w.observe(SimTime::from_millis(sec * 1000 + 1));
            }
        }
        w.roll_to(SimTime::from_secs(100));
        assert!(w.is_full());
        assert_eq!(w.samples(), [97, 98, 99]);
        // A long silent gap wraps the same way: all-zero buckets.
        w.roll_to(SimTime::from_secs(500));
        assert_eq!(w.samples(), [0, 0, 0]);
        assert_eq!(w.mean(), 0.0);
        // And the window keeps working after the wrap.
        w.observe(SimTime::from_millis(500_500));
        w.roll_to(SimTime::from_secs(501));
        assert_eq!(w.samples(), [0, 0, 1]);
    }

    #[test]
    fn resize_counter_tracks_directions() {
        let mut r = ResizeCounter::new();
        assert_eq!(r.total(), 0);
        r.record_grow();
        r.record_shrink();
        r.record_shrink();
        assert_eq!(r.grows(), 1);
        assert_eq!(r.shrinks(), 2);
        assert_eq!(r.total(), 3);
        let mut sum = ResizeCounter::new();
        sum.record_grow();
        sum.merge(&r);
        assert_eq!((sum.grows(), sum.shrinks(), sum.total()), (2, 2, 4));
    }

    #[test]
    fn gpu_time_meter_integrates_piecewise() {
        let mut m = GpuTimeMeter::new();
        m.set_occupied(SimTime::ZERO, 4);
        m.set_occupied(SimTime::from_secs(10), 2);
        let total = m.gpu_time_until(SimTime::from_secs(15));
        assert_eq!(total, SimDuration::from_secs(4 * 10 + 2 * 5));
        assert_eq!(m.peak_occupied(), 4);
    }
}

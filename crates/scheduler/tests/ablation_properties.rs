//! Property tests pinning the documented semantics of the scheduler's
//! ablation toggles, and the Ω/Γ caps under random deploy sequences for
//! every toggle combination.

use std::collections::BTreeSet;

use dilu_cluster::{
    ClusterView, FunctionId, FunctionKind, FunctionSpec, GpuAddr, GpuView, Placement, Quotas,
    ResidentInfo,
};
use dilu_gpu::{SmRate, TaskClass, GB};
use dilu_models::ModelId;
use dilu_scheduler::{DiluScheduler, SchedulerConfig};
use dilu_sim::SimDuration;
use proptest::prelude::*;

fn func(id: u32, request: f64, mem_gb: u64) -> FunctionSpec {
    FunctionSpec {
        id: FunctionId(id),
        name: format!("f{id}"),
        model: ModelId::BertBase,
        kind: FunctionKind::Inference { slo: SimDuration::from_millis(50), batch: 4 },
        quotas: Quotas::new(
            SmRate::from_percent(request),
            SmRate::from_percent(request * 2.0),
            mem_gb * GB,
        ),
        gpus_per_instance: 1,
    }
}

fn empty_cluster(gpus: u32) -> Vec<GpuView> {
    (0..gpus)
        .map(|i| GpuView {
            addr: GpuAddr { node: 0, gpu: i },
            mem_capacity: 40 * GB,
            mem_reserved: 0,
            residents: Vec::new(),
        })
        .collect()
}

fn settle(gpus: &mut [GpuView], addr: GpuAddr, spec: &FunctionSpec) {
    let g = gpus.iter_mut().find(|g| g.addr == addr).expect("placed on a known GPU");
    g.mem_reserved += spec.quotas.mem_bytes;
    g.residents.push(ResidentInfo {
        func: spec.id,
        class: TaskClass::SloSensitive,
        request: spec.quotas.request,
        limit: spec.quotas.limit,
        mem_bytes: spec.quotas.mem_bytes,
    });
}

/// Whether `spec` fits `gpu` under the given caps (the documented
/// feasibility rule, re-derived independently of the implementation).
fn feasible(gpu: &GpuView, spec: &FunctionSpec, omega: f64, gamma: f64) -> bool {
    gpu.sum_requests().as_fraction() + spec.quotas.request.as_fraction() <= omega + 1e-9
        && gpu.sum_limits().as_fraction() + spec.quotas.limit.as_fraction() <= gamma + 1e-9
        && gpu.mem_reserved + spec.quotas.mem_bytes <= gpu.mem_capacity
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Ω, Γ, and memory capacity hold under random deploy sequences for
    /// every ablation-toggle combination and random cap values.
    #[test]
    fn caps_hold_for_every_toggle_combination(
        requests in collection::vec(5u32..70, 1..30),
        mems in collection::vec(1u64..20, 1..30),
        toggles in 0u32..4,
        omega_pct in 80u32..121,
        gamma_pct in 120u32..201,
    ) {
        let config = SchedulerConfig {
            omega: f64::from(omega_pct) / 100.0,
            gamma: f64::from(gamma_pct) / 100.0,
            workload_affinity: toggles & 1 == 1,
            resource_complementary: toggles & 2 == 2,
            ..SchedulerConfig::default()
        };
        let mut sched = DiluScheduler::new(config);
        let mut gpus = empty_cluster(5);
        let n = requests.len().min(mems.len());
        for i in 0..n {
            let spec = func(i as u32, f64::from(requests[i]), mems[i]);
            let view = ClusterView { gpus: gpus.clone() };
            if let Some(placed) = sched.place(&spec, &view) {
                settle(&mut gpus, placed[0], &spec);
            }
        }
        for g in &gpus {
            prop_assert!(g.sum_requests().as_fraction() <= config.omega + 1e-9,
                "Ω violated on {}: {}", g.addr, g.sum_requests().as_fraction());
            prop_assert!(g.sum_limits().as_fraction() <= config.gamma + 1e-9,
                "Γ violated on {}: {}", g.addr, g.sum_limits().as_fraction());
            prop_assert!(g.mem_reserved <= g.mem_capacity);
        }
    }

    /// Documented −RC semantics: with `resource_complementary` off (and no
    /// affinity), placement is plain first fit — the lowest-addressed
    /// feasible *active* GPU, else the lowest-addressed feasible idle one.
    #[test]
    fn rc_off_is_first_fit(
        requests in collection::vec(5u32..70, 1..20),
        mems in collection::vec(1u64..20, 1..20),
    ) {
        let config = SchedulerConfig {
            workload_affinity: false,
            resource_complementary: false,
            ..SchedulerConfig::default()
        };
        let mut sched = DiluScheduler::new(config);
        let mut gpus = empty_cluster(4);
        let n = requests.len().min(mems.len());
        for i in 0..n {
            let spec = func(i as u32, f64::from(requests[i]), mems[i]);
            let view = ClusterView { gpus: gpus.clone() };
            let expected = gpus
                .iter()
                .filter(|g| g.occupied() && feasible(g, &spec, config.omega, config.gamma))
                .map(|g| g.addr)
                .min()
                .or_else(|| {
                    gpus.iter()
                        .filter(|g| !g.occupied() && feasible(g, &spec, config.omega, config.gamma))
                        .map(|g| g.addr)
                        .min()
                });
            let placed = sched.place(&spec, &view).map(|p| p[0]);
            prop_assert!(placed == expected, "step {i}: placed {placed:?}, expected {expected:?}");
            if let Some(addr) = placed {
                settle(&mut gpus, addr, &spec);
            }
        }
    }

    /// Documented WA semantics: with `workload_affinity` on, a function
    /// that already shares a GPU with partners lands on a GPU hosting one
    /// of those partners whenever any such GPU is feasible — even when a
    /// stranger GPU scores better. With WA off, partners are invisible.
    #[test]
    fn workload_affinity_prefers_partner_gpus_whenever_feasible(
        partner_request in 5u32..30,
        stranger_request in 40u32..70,
        new_request in 5u32..30,
    ) {
        // GPU 0: the function + its partner. GPU 1: a fuller stranger GPU
        // that best-fit scoring would otherwise prefer. GPU 2: idle.
        let mut gpus = empty_cluster(3);
        let me = func(1, f64::from(new_request), 2);
        let partner = func(2, f64::from(partner_request), 2);
        let stranger = func(3, f64::from(stranger_request), 20);
        settle(&mut gpus, GpuAddr { node: 0, gpu: 0 }, &me);
        settle(&mut gpus, GpuAddr { node: 0, gpu: 0 }, &partner);
        settle(&mut gpus, GpuAddr { node: 0, gpu: 1 }, &stranger);
        let view = ClusterView { gpus: gpus.clone() };
        let d = SchedulerConfig::default();

        let mut with_wa = DiluScheduler::new(d);
        let placed = with_wa.place(&me, &view).map(|p| p[0]);
        let partner_feasible = feasible(&gpus[0], &me, d.omega, d.gamma);
        if partner_feasible {
            prop_assert!(placed == Some(GpuAddr { node: 0, gpu: 0 }),
                "feasible partner GPU must win under WA, got {placed:?}");
        }

        let mut without_wa =
            DiluScheduler::new(SchedulerConfig { workload_affinity: false, ..d });
        let blind = without_wa.place(&me, &view).map(|p| p[0]);
        // Without affinity the choice is pure best-fit scoring: it must
        // equal the choice made when the partner relationship is erased.
        let mut anonymised = gpus.clone();
        for g in &mut anonymised {
            for r in &mut g.residents {
                if r.func == partner.id {
                    r.func = FunctionId(99);
                }
            }
        }
        let mut control = DiluScheduler::new(SchedulerConfig { workload_affinity: false, ..d });
        let expected = control.place(&me, &ClusterView { gpus: anonymised }).map(|p| p[0]);
        prop_assert!(blind == expected, "-WA must be blind to partners: {blind:?} vs {expected:?}");
    }

    /// Multi-GPU placements never reuse a GPU, regardless of toggles.
    #[test]
    fn pipeline_stages_land_on_distinct_gpus(
        stages in 2u32..5,
        toggles in 0u32..4,
        occupancy in collection::vec(0u32..40, 6),
    ) {
        let mut gpus = empty_cluster(6);
        for (i, &req) in occupancy.iter().enumerate() {
            if req > 0 {
                let filler = func(100 + i as u32, f64::from(req), 4);
                let addr = gpus[i].addr;
                settle(&mut gpus, addr, &filler);
            }
        }
        let config = SchedulerConfig {
            workload_affinity: toggles & 1 == 1,
            resource_complementary: toggles & 2 == 2,
            ..SchedulerConfig::default()
        };
        let mut sched = DiluScheduler::new(config);
        let mut spec = func(1, 10.0, 2);
        spec.gpus_per_instance = stages;
        if let Some(placed) = sched.place(&spec, &ClusterView { gpus }) {
            prop_assert_eq!(placed.len(), stages as usize);
            let unique: BTreeSet<_> = placed.iter().collect();
            prop_assert!(unique.len() == stages as usize, "stages must not share GPUs");
        }
    }
}

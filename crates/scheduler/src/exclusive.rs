//! The whole-GPU-per-instance baseline placement.

use dilu_cluster::{ClusterView, FunctionSpec, GpuAddr, Placement};

/// Exclusive pass-through allocation: every instance gets idle GPUs of its
/// own, as in [7, 18, 22] of the paper (Table 1's left column).
#[derive(Debug, Clone, Copy, Default)]
pub struct ExclusivePlacement;

impl ExclusivePlacement {
    /// Creates the exclusive placement policy.
    pub fn new() -> Self {
        ExclusivePlacement
    }
}

impl Placement for ExclusivePlacement {
    fn place(&mut self, func: &FunctionSpec, cluster: &ClusterView) -> Option<Vec<GpuAddr>> {
        let mut chosen = Vec::with_capacity(func.gpus_per_instance as usize);
        for gpu in &cluster.gpus {
            if !gpu.occupied()
                && gpu.mem_free() >= func.quotas.mem_bytes
                && !chosen.contains(&gpu.addr)
            {
                chosen.push(gpu.addr);
                if chosen.len() as u32 == func.gpus_per_instance {
                    return Some(chosen);
                }
            }
        }
        None
    }

    fn name(&self) -> &str {
        "exclusive"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dilu_cluster::{FunctionId, FunctionKind, GpuView, Quotas, ResidentInfo};
    use dilu_gpu::{SmRate, TaskClass, GB};
    use dilu_models::ModelId;
    use dilu_sim::SimDuration;

    fn spec(gpus: u32) -> FunctionSpec {
        FunctionSpec {
            id: FunctionId(7),
            name: "f".into(),
            model: ModelId::BertBase,
            kind: FunctionKind::Inference { slo: SimDuration::from_millis(50), batch: 4 },
            quotas: Quotas::equal(SmRate::FULL, 2 * GB),
            gpus_per_instance: gpus,
        }
    }

    fn idle_gpu(idx: u32) -> GpuView {
        GpuView {
            addr: GpuAddr { node: 0, gpu: idx },
            mem_capacity: 40 * GB,
            mem_reserved: 0,
            residents: Vec::new(),
        }
    }

    #[test]
    fn refuses_occupied_gpus() {
        let mut busy = idle_gpu(0);
        busy.residents.push(ResidentInfo {
            func: FunctionId(1),
            class: TaskClass::BestEffort,
            request: SmRate::FULL,
            limit: SmRate::FULL,
            mem_bytes: GB,
        });
        busy.mem_reserved = GB;
        let cluster = ClusterView { gpus: vec![busy, idle_gpu(1)] };
        let mut p = ExclusivePlacement::new();
        let placed = p.place(&spec(1), &cluster).unwrap();
        assert_eq!(placed, vec![GpuAddr { node: 0, gpu: 1 }]);
    }

    #[test]
    fn takes_multiple_idle_gpus() {
        let cluster = ClusterView { gpus: vec![idle_gpu(0), idle_gpu(1), idle_gpu(2)] };
        let mut p = ExclusivePlacement::new();
        let placed = p.place(&spec(2), &cluster).unwrap();
        assert_eq!(placed.len(), 2);
    }

    #[test]
    fn fails_without_enough_idle_gpus() {
        let cluster = ClusterView { gpus: vec![idle_gpu(0)] };
        let mut p = ExclusivePlacement::new();
        assert!(p.place(&spec(2), &cluster).is_none());
    }
}

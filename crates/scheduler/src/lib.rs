//! Dilu's resourcing-complementary scheduler (paper §3.3, Algorithm 1).
//!
//! Placement of new instances follows three principles:
//!
//! 1. **Workload affinity first** (Fig. 5): prefer GPUs hosting functions
//!    this function is already collocated with elsewhere, so instances of
//!    the same function see similar contention and the barrel effect on
//!    synchronized training is reduced.
//! 2. **Defragmentation through resource complementarity**: among feasible
//!    GPUs pick the one minimising the weighted leftover-fragment score
//!    `α·(1 − ΣSMreq/SM) + β·(1 − mem/M)`; multi-GPU LLM instances instead
//!    use a memory-based *worst-fit* to minimise pipeline stages.
//! 3. **Bounded oversubscription**: per-GPU caps Ω on Σ`request` and γ on
//!    Σ`limit` keep collocation interference in check (Fig. 18(a)).
//!
//! [`DiluScheduler`] implements [`dilu_cluster::Placement`];
//! [`ExclusivePlacement`] is the whole-GPU baseline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dilu;
mod exclusive;

pub use dilu::{DiluScheduler, SchedulerConfig};
pub use exclusive::ExclusivePlacement;

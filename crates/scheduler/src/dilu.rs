//! Algorithm 1: heuristic GPU scheduling.

use std::collections::BTreeSet;

use dilu_cluster::{ClusterView, FunctionId, FunctionSpec, GpuAddr, GpuView, Placement};
use serde::{Deserialize, Serialize};

/// Tunables of Algorithm 1 (paper defaults in parentheses).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SchedulerConfig {
    /// Ω: maximum Σ`request` per GPU (1.0).
    pub omega: f64,
    /// γ: maximum Σ`limit` per GPU (1.5).
    pub gamma: f64,
    /// α: weight of the SM term in the fragmentation score (0.5).
    pub alpha: f64,
    /// β: weight of the memory term in the fragmentation score (0.5).
    pub beta: f64,
    /// Principle-1 toggle; `false` reproduces the paper's −WA ablation.
    pub workload_affinity: bool,
    /// Principle-2 toggle; `false` reproduces the −RC ablation (first-fit
    /// instead of complementarity scoring).
    pub resource_complementary: bool,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            omega: 1.0,
            gamma: 1.5,
            alpha: 0.5,
            beta: 0.5,
            workload_affinity: true,
            resource_complementary: true,
        }
    }
}

/// Dilu's resourcing-complementary placement policy.
///
/// # Examples
///
/// ```
/// use dilu_scheduler::{DiluScheduler, SchedulerConfig};
/// use dilu_cluster::Placement;
///
/// let sched = DiluScheduler::new(SchedulerConfig::default());
/// assert_eq!(sched.name(), "dilu-scheduler");
/// ```
#[derive(Debug, Clone)]
pub struct DiluScheduler {
    config: SchedulerConfig,
}

impl DiluScheduler {
    /// Creates a scheduler with the given tunables.
    pub fn new(config: SchedulerConfig) -> Self {
        DiluScheduler { config }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &SchedulerConfig {
        &self.config
    }

    /// Whether `func` fits on `gpu` under the Ω/γ/memory constraints.
    fn feasible(&self, gpu: &GpuView, func: &FunctionSpec) -> bool {
        let new_req = gpu.sum_requests().as_fraction() + func.quotas.request.as_fraction();
        let new_lim = gpu.sum_limits().as_fraction() + func.quotas.limit.as_fraction();
        let new_mem = gpu.mem_reserved + func.quotas.mem_bytes;
        new_req <= self.config.omega + 1e-9
            && new_lim <= self.config.gamma + 1e-9
            && new_mem <= gpu.mem_capacity
    }

    /// The weighted fragmentation score after placing `func` on `gpu`
    /// (Algorithm 1 line 25); lower is better (best fit).
    fn score(&self, gpu: &GpuView, func: &FunctionSpec) -> f64 {
        let new_req = gpu.sum_requests().as_fraction() + func.quotas.request.as_fraction();
        let new_mem = (gpu.mem_reserved + func.quotas.mem_bytes) as f64;
        self.config.alpha * (1.0 - new_req.min(1.0))
            + self.config.beta * (1.0 - new_mem / gpu.mem_capacity as f64)
    }

    /// `SelectOptGPU` over `candidates` (Algorithm 1 lines 19–29), excluding
    /// already-chosen GPUs of this placement.
    fn select_opt(
        &self,
        candidates: &[&GpuView],
        func: &FunctionSpec,
        exclude: &BTreeSet<GpuAddr>,
        multi_gpu: bool,
    ) -> Option<GpuAddr> {
        let feasible = candidates
            .iter()
            .filter(|g| !exclude.contains(&g.addr))
            .filter(|g| self.feasible(g, func));
        if multi_gpu {
            // Memory-based worst fit: most remaining memory first, to keep
            // pipeline stages few and fat (Principle-2 for LLMs).
            feasible.max_by_key(|g| (g.mem_free(), std::cmp::Reverse(g.addr))).map(|g| g.addr)
        } else if self.config.resource_complementary {
            feasible
                .min_by(|a, b| {
                    self.score(a, func)
                        .total_cmp(&self.score(b, func))
                        .then_with(|| a.addr.cmp(&b.addr))
                })
                .map(|g| g.addr)
        } else {
            // −RC ablation: plain first fit.
            feasible.min_by_key(|g| g.addr).map(|g| g.addr)
        }
    }

    /// Functions already sharing a GPU with `func` anywhere in the cluster.
    fn partners(cluster: &ClusterView, func: FunctionId) -> BTreeSet<FunctionId> {
        let mut partners = BTreeSet::new();
        for gpu in &cluster.gpus {
            if gpu.hosts_function(func) {
                for r in &gpu.residents {
                    if r.func != func {
                        partners.insert(r.func);
                    }
                }
            }
        }
        partners
    }
}

impl Placement for DiluScheduler {
    fn place(&mut self, func: &FunctionSpec, cluster: &ClusterView) -> Option<Vec<GpuAddr>> {
        let partners = if self.config.workload_affinity {
            Self::partners(cluster, func.id)
        } else {
            BTreeSet::new()
        };
        let multi_gpu = func.gpus_per_instance > 1;
        let mut chosen: BTreeSet<GpuAddr> = BTreeSet::new();
        let mut result = Vec::with_capacity(func.gpus_per_instance as usize);

        for _ in 0..func.gpus_per_instance {
            let active: Vec<&GpuView> = cluster.gpus.iter().filter(|g| g.occupied()).collect();
            // Workload-affinity candidates: active GPUs hosting a partner
            // function (Algorithm 1 lines 11-12).
            let wa: Vec<&GpuView> = active
                .iter()
                .copied()
                .filter(|g| g.residents.iter().any(|r| partners.contains(&r.func)))
                .collect();
            let pick = self
                .select_opt(&wa, func, &chosen, multi_gpu)
                .or_else(|| {
                    let rest: Vec<&GpuView> = active
                        .iter()
                        .copied()
                        .filter(|g| !g.residents.iter().any(|r| partners.contains(&r.func)))
                        .collect();
                    self.select_opt(&rest, func, &chosen, multi_gpu)
                })
                .or_else(|| {
                    // No active GPU works: start a new GPU instance
                    // (Algorithm 1 lines 15-16).
                    cluster
                        .gpus
                        .iter()
                        .filter(|g| !g.occupied() && !chosen.contains(&g.addr))
                        .find(|g| self.feasible(g, func))
                        .map(|g| g.addr)
                })?;
            chosen.insert(pick);
            result.push(pick);
        }
        Some(result)
    }

    fn name(&self) -> &str {
        "dilu-scheduler"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dilu_cluster::{FunctionKind, Quotas, ResidentInfo};
    use dilu_gpu::{SmRate, TaskClass, GB};
    use dilu_models::ModelId;
    use dilu_sim::SimDuration;

    fn func(id: u32, request: f64, limit: f64, mem_gb: u64, gpus: u32) -> FunctionSpec {
        FunctionSpec {
            id: FunctionId(id),
            name: format!("f{id}"),
            model: ModelId::RobertaLarge,
            kind: FunctionKind::Inference { slo: SimDuration::from_millis(100), batch: 4 },
            quotas: Quotas::new(
                SmRate::from_percent(request),
                SmRate::from_percent(limit),
                mem_gb * GB,
            ),
            gpus_per_instance: gpus,
        }
    }

    fn gpu(node: u32, idx: u32, residents: Vec<(u32, f64, f64, u64)>) -> GpuView {
        GpuView {
            addr: GpuAddr { node, gpu: idx },
            mem_capacity: 40 * GB,
            mem_reserved: residents.iter().map(|r| r.3 * GB).sum(),
            residents: residents
                .into_iter()
                .map(|(f, req, lim, mem)| ResidentInfo {
                    func: FunctionId(f),
                    class: TaskClass::SloSensitive,
                    request: SmRate::from_percent(req),
                    limit: SmRate::from_percent(lim),
                    mem_bytes: mem * GB,
                })
                .collect(),
        }
    }

    #[test]
    fn prefers_best_fit_fragment() {
        // GPU 0 is fuller; best fit should choose it over the emptier GPU 1.
        let cluster = ClusterView {
            gpus: vec![
                gpu(0, 0, vec![(1, 50.0, 80.0, 20)]),
                gpu(0, 1, vec![(2, 10.0, 20.0, 4)]),
                gpu(0, 2, vec![]),
            ],
        };
        let mut s = DiluScheduler::new(SchedulerConfig::default());
        let placed = s.place(&func(3, 30.0, 60.0, 8, 1), &cluster).unwrap();
        assert_eq!(placed, vec![GpuAddr { node: 0, gpu: 0 }]);
    }

    #[test]
    fn omega_cap_rejects_oversubscribed_requests() {
        let cluster =
            ClusterView { gpus: vec![gpu(0, 0, vec![(1, 80.0, 100.0, 10)]), gpu(0, 1, vec![])] };
        let mut s = DiluScheduler::new(SchedulerConfig::default());
        // 80 + 30 > Ω=100? 110 > 100 → must go to the idle GPU.
        let placed = s.place(&func(2, 30.0, 40.0, 4, 1), &cluster).unwrap();
        assert_eq!(placed, vec![GpuAddr { node: 0, gpu: 1 }]);
    }

    #[test]
    fn gamma_cap_limits_sum_of_limits() {
        let cluster =
            ClusterView { gpus: vec![gpu(0, 0, vec![(1, 40.0, 100.0, 10)]), gpu(0, 1, vec![])] };
        let mut s = DiluScheduler::new(SchedulerConfig::default());
        // Σlimit would be 100 + 60 = 160 > γ=150 → next GPU.
        let placed = s.place(&func(2, 30.0, 60.0, 4, 1), &cluster).unwrap();
        assert_eq!(placed, vec![GpuAddr { node: 0, gpu: 1 }]);
    }

    #[test]
    fn memory_capacity_is_hard() {
        let cluster = ClusterView { gpus: vec![gpu(0, 0, vec![(1, 10.0, 20.0, 38)])] };
        let mut s = DiluScheduler::new(SchedulerConfig::default());
        assert!(s.place(&func(2, 10.0, 20.0, 4, 1), &cluster).is_none());
    }

    #[test]
    fn affinity_prefers_partner_gpus() {
        // func 3 already shares GPU 0 with func 1. A new instance of func 3
        // should prefer the GPU hosting its partner (func 1) over a fuller,
        // better-scoring GPU hosting strangers.
        let cluster = ClusterView {
            gpus: vec![
                gpu(0, 0, vec![(1, 20.0, 40.0, 6), (3, 20.0, 40.0, 6)]),
                gpu(0, 1, vec![(1, 20.0, 40.0, 6)]),
                gpu(0, 2, vec![(2, 60.0, 90.0, 30)]),
            ],
        };
        let mut with_wa = DiluScheduler::new(SchedulerConfig::default());
        let placed = with_wa.place(&func(3, 20.0, 40.0, 6, 1), &cluster).unwrap();
        assert_eq!(placed, vec![GpuAddr { node: 0, gpu: 0 }], "partner GPU 0 or 1 expected");

        let mut without_wa = DiluScheduler::new(SchedulerConfig {
            workload_affinity: false,
            ..SchedulerConfig::default()
        });
        let placed = without_wa.place(&func(3, 20.0, 40.0, 6, 1), &cluster).unwrap();
        assert_eq!(placed, vec![GpuAddr { node: 0, gpu: 2 }], "best fit ignores partners");
    }

    #[test]
    fn multi_gpu_llm_uses_memory_worst_fit_on_distinct_gpus() {
        let cluster = ClusterView {
            gpus: vec![
                gpu(0, 0, vec![(1, 20.0, 40.0, 30)]),
                gpu(0, 1, vec![(2, 20.0, 40.0, 10)]),
                gpu(0, 2, vec![(4, 20.0, 40.0, 5)]),
                gpu(0, 3, vec![(5, 20.0, 40.0, 20)]),
            ],
        };
        let mut s = DiluScheduler::new(SchedulerConfig {
            workload_affinity: false,
            ..SchedulerConfig::default()
        });
        let placed = s.place(&func(9, 15.0, 30.0, 4, 3), &cluster).unwrap();
        assert_eq!(placed.len(), 3);
        let unique: BTreeSet<_> = placed.iter().collect();
        assert_eq!(unique.len(), 3, "stages must land on distinct GPUs");
        // Worst fit: most free memory first → g2 (35 free), then g1 (30).
        assert_eq!(placed[0], GpuAddr { node: 0, gpu: 2 });
        assert_eq!(placed[1], GpuAddr { node: 0, gpu: 1 });
    }

    #[test]
    fn opens_new_gpu_only_when_needed() {
        let cluster =
            ClusterView { gpus: vec![gpu(0, 0, vec![(1, 90.0, 100.0, 35)]), gpu(0, 1, vec![])] };
        let mut s = DiluScheduler::new(SchedulerConfig::default());
        let placed = s.place(&func(2, 30.0, 50.0, 8, 1), &cluster).unwrap();
        assert_eq!(placed, vec![GpuAddr { node: 0, gpu: 1 }]);
    }

    #[test]
    fn fails_when_cluster_is_full() {
        let cluster = ClusterView { gpus: vec![gpu(0, 0, vec![(1, 90.0, 140.0, 39)])] };
        let mut s = DiluScheduler::new(SchedulerConfig::default());
        assert!(s.place(&func(2, 30.0, 50.0, 8, 1), &cluster).is_none());
    }
}

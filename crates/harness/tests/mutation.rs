//! Mutation smoke tests: the fuzzer must catch intentionally broken
//! policies. Each test registers a deliberately wrong component, aims the
//! sampling space at it, and asserts that an oracle fires with a
//! minimized reproducer — the end-to-end proof that the verification
//! subsystem can actually falsify.

use dilu_cluster::{
    ClusterView, ElasticityController, FunctionScaleView, FunctionSpec, GpuAddr, Placement,
    ScaleAction,
};
use dilu_core::Registry;
use dilu_gpu::SmRate;
use dilu_harness::{FuzzOptions, Harness, SpaceConfig};
use dilu_sim::SimTime;

/// BROKEN: packs every instance onto the first GPU with free memory,
/// ignoring the Ω/Γ quota caps placement is responsible for.
struct GreedyPack;

impl Placement for GreedyPack {
    fn place(&mut self, func: &FunctionSpec, cluster: &ClusterView) -> Option<Vec<GpuAddr>> {
        let mut chosen = Vec::new();
        for gpu in &cluster.gpus {
            if gpu.mem_free() >= func.quotas.mem_bytes && !chosen.contains(&gpu.addr) {
                chosen.push(gpu.addr);
                if chosen.len() as u32 == func.gpus_per_instance {
                    return Some(chosen);
                }
            }
        }
        None
    }

    fn name(&self) -> &str {
        "greedy-pack"
    }
}

/// BROKEN: resizes every inference function to a whole GPU every tick,
/// ignoring the per-GPU headroom budget a correct 2D controller deducts.
struct WildResizer;

impl ElasticityController for WildResizer {
    fn on_tick(
        &mut self,
        _now: SimTime,
        functions: &[FunctionScaleView],
        _cluster: &ClusterView,
    ) -> Vec<ScaleAction> {
        functions
            .iter()
            .filter(|f| f.kind.is_inference() && f.ready_instances + f.starting_instances > 0)
            .map(|f| ScaleAction::ResizeQuota {
                func: f.func,
                request: SmRate::FULL,
                limit: SmRate::FULL,
            })
            .collect()
    }

    fn name(&self) -> &str {
        "wild-resizer"
    }
}

fn space_with(placement: &str, controller: &str) -> SpaceConfig {
    SpaceConfig {
        placements: vec![placement.to_owned()],
        controllers: vec![controller.to_owned()],
        share_policies: vec!["rckm".into()],
        max_nodes: 1,
        max_gpus_per_node: 1,
        max_functions: 3,
        allow_training: false,
        allow_pipelined: false,
        ..SpaceConfig::default()
    }
}

#[test]
fn capacity_oracle_catches_a_cap_ignoring_placement() {
    let mut registry = Registry::with_defaults();
    registry.register_placement("greedy-pack", |p| {
        p.expect_keys(&[])?;
        Ok(Box::new(GreedyPack))
    });
    let harness = Harness::with_space(space_with("greedy-pack", "null"), registry);
    let dump_dir = std::path::PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("mutation-dumps");
    let options = FuzzOptions {
        cases: 128,
        seed: 7,
        oracles: vec!["capacity".into()],
        minimize: true,
        dump_dir: Some(dump_dir),
    };
    let report = harness.run(&options).unwrap();
    assert!(
        !report.failures.is_empty(),
        "the capacity oracle must catch quota-cap-blind packing ({} checks passed)",
        report.passed
    );
    let failure = &report.failures[0];
    assert_eq!(failure.oracle, "capacity");
    assert!(
        failure.detail.contains("Σrequest") || failure.detail.contains("Σlimit"),
        "{}",
        failure.detail
    );
    let minimized = failure.minimized.as_ref().expect("minimize was requested and must help");
    assert!(
        minimized.functions.len() <= failure.config.functions.len()
            && minimized.run.as_ref().unwrap().horizon_secs
                <= failure.config.run.as_ref().unwrap().horizon_secs,
        "the reproducer must not grow under shrinking"
    );
    // The dumped TOML is the minimized scenario and parses back whole.
    let dump = failure.dump.as_ref().expect("a dump dir was configured");
    let text = std::fs::read_to_string(dump).expect("dump written");
    let parsed = dilu_core::ScenarioConfig::from_toml_str(&text).expect("dump re-parses");
    assert_eq!(&parsed, minimized, "the dump must be the minimized reproducer");
    // The minimized scenario still reproduces on its own.
    let check: Vec<_> = harness
        .run(&FuzzOptions {
            cases: 1,
            seed: failure.case_seed,
            oracles: vec!["capacity".into()],
            minimize: false,
            dump_dir: None,
        })
        .unwrap()
        .failures;
    assert_eq!(check.len(), 1, "the printed seed reproduces the violation");
}

#[test]
fn capacity_oracle_catches_a_budget_ignoring_resizer() {
    let mut registry = Registry::with_defaults();
    registry.register_controller("wild-resize", |p| {
        p.expect_keys(&[])?;
        Ok(Box::new(WildResizer))
    });
    let harness = Harness::with_space(space_with("first-fit", "wild-resize"), registry);
    let options = FuzzOptions {
        cases: 32,
        seed: 3,
        oracles: vec!["capacity".into()],
        minimize: false,
        dump_dir: None,
    };
    let report = harness.run(&options).unwrap();
    assert!(
        !report.failures.is_empty(),
        "the capacity oracle must catch headroom-blind vertical growth ({} checks passed)",
        report.passed
    );
    assert!(report.failures[0].detail.contains("Σrequest"), "{}", report.failures[0].detail);
}

#[test]
fn the_default_space_is_clean_on_the_ci_budget() {
    // The acceptance gate: `dilu fuzz --cases 64 --seed 7` must hold on
    // every built-in composition. Kept here too so a violation fails
    // `cargo test` with the full failure detail, not just the CI smoke.
    let harness = Harness::new();
    let report =
        harness.run(&FuzzOptions { cases: 16, seed: 7, ..FuzzOptions::default() }).unwrap();
    let details: Vec<String> = report
        .failures
        .iter()
        .map(|f| format!("seed {}: {}: {}", f.case_seed, f.oracle, f.detail))
        .collect();
    assert!(report.clean(), "built-in components violated an oracle:\n{}", details.join("\n"));
    assert!(report.passed > 0);
}

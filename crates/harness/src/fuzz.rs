//! The fuzz driver: generate → check → shrink → dump.

use std::path::{Path, PathBuf};

use dilu_core::{Registry, ScenarioConfig};

use crate::emit::to_toml;
use crate::gen::{generate_case, SpaceConfig};
use crate::oracle::{default_oracles, Oracle, Verdict};

/// Options of one fuzzing run (the `dilu fuzz` flags).
#[derive(Debug, Clone)]
pub struct FuzzOptions {
    /// Number of generated cases.
    pub cases: usize,
    /// Root seed; case `i` uses case seed `seed + i`, so any failing case
    /// reproduces as `--seed <case_seed> --cases 1`.
    pub seed: u64,
    /// Restrict to oracles with these names (empty = all).
    pub oracles: Vec<String>,
    /// Shrink failures to a minimal reproducer before reporting.
    pub minimize: bool,
    /// Where failing scenarios are dumped as TOML (`None` = no dumps).
    pub dump_dir: Option<PathBuf>,
}

impl Default for FuzzOptions {
    fn default() -> Self {
        FuzzOptions { cases: 64, seed: 7, oracles: Vec::new(), minimize: false, dump_dir: None }
    }
}

/// One confirmed oracle violation, with everything needed to reproduce it.
#[derive(Debug)]
pub struct Failure {
    /// The case seed (`dilu fuzz --seed <this> --cases 1` regenerates it).
    pub case_seed: u64,
    /// The violated oracle.
    pub oracle: String,
    /// The oracle's explanation.
    pub detail: String,
    /// The failing scenario as generated.
    pub config: ScenarioConfig,
    /// The shrunk scenario, when `minimize` was on and shrinking helped.
    pub minimized: Option<ScenarioConfig>,
    /// Where the (minimized, if available) scenario TOML was written.
    pub dump: Option<PathBuf>,
    /// Where the oracle's binary reproducer (e.g. the record/replay
    /// oracle's event log) was written, when the oracle produced one.
    pub artifact: Option<PathBuf>,
}

/// Aggregate result of a fuzzing run.
#[derive(Debug, Default)]
pub struct FuzzReport {
    /// Cases generated.
    pub cases: usize,
    /// `(case, oracle)` checks that passed.
    pub passed: usize,
    /// `(case, oracle)` checks skipped as infeasible compositions.
    pub skipped: usize,
    /// Confirmed violations.
    pub failures: Vec<Failure>,
}

impl FuzzReport {
    /// `true` when no oracle fired.
    pub fn clean(&self) -> bool {
        self.failures.is_empty()
    }
}

/// The fuzzing harness: a sampling space, the registry resolving its
/// component names, and the oracle suite.
pub struct Harness {
    space: SpaceConfig,
    registry: Registry,
    oracles: Vec<Box<dyn Oracle>>,
}

impl Default for Harness {
    fn default() -> Self {
        Self::new()
    }
}

impl Harness {
    /// The default harness: every built-in component, all four oracles.
    pub fn new() -> Self {
        Harness {
            space: SpaceConfig::default(),
            registry: Registry::with_defaults(),
            oracles: default_oracles(),
        }
    }

    /// A harness over a custom space and registry — how tests aim the
    /// fuzzer at deliberately broken components.
    pub fn with_space(space: SpaceConfig, registry: Registry) -> Self {
        Harness { space, registry, oracles: default_oracles() }
    }

    /// Replaces the oracle suite.
    pub fn with_oracles(mut self, oracles: Vec<Box<dyn Oracle>>) -> Self {
        self.oracles = oracles;
        self
    }

    /// Oracle names available for `--oracle` filtering.
    pub fn oracle_names(&self) -> Vec<&'static str> {
        self.oracles.iter().map(|o| o.name()).collect()
    }

    /// Runs the full fuzzing loop. Progress lines go through `progress`
    /// (the CLI prints them; library callers may drop them).
    ///
    /// # Errors
    ///
    /// An unknown name in [`FuzzOptions::oracles`] is an error listing the
    /// known oracles — never a silently empty (vacuously clean) run.
    pub fn run_with_progress(
        &self,
        options: &FuzzOptions,
        mut progress: impl FnMut(&str),
    ) -> Result<FuzzReport, String> {
        let known = self.oracle_names();
        for name in &options.oracles {
            if !known.contains(&name.as_str()) {
                return Err(format!("unknown oracle `{name}` (known: {})", known.join(", ")));
            }
        }
        let selected: Vec<&Box<dyn Oracle>> = self
            .oracles
            .iter()
            .filter(|o| options.oracles.is_empty() || options.oracles.iter().any(|n| n == o.name()))
            .collect();
        // An explicit `--oracle <name>` request always runs; only the
        // full default sweep lets expensive oracles sample their cases.
        let explicit = !options.oracles.is_empty();
        let mut report = FuzzReport { cases: options.cases, ..FuzzReport::default() };
        for index in 0..options.cases {
            let case_seed = options.seed.wrapping_add(index as u64);
            let config = generate_case(&self.space, case_seed);
            for oracle in &selected {
                if !explicit && !oracle.samples(case_seed) {
                    continue;
                }
                match oracle.check(&config, &self.registry) {
                    Verdict::Pass => report.passed += 1,
                    Verdict::Skip(_) => report.skipped += 1,
                    Verdict::Fail(detail) => {
                        progress(&format!(
                            "case {index} (seed {case_seed}): {} violated",
                            oracle.name()
                        ));
                        let minimized = if options.minimize {
                            self.shrink(&config, oracle.as_ref())
                        } else {
                            None
                        };
                        let dump = options.dump_dir.as_deref().and_then(|dir| {
                            dump_config(
                                dir,
                                case_seed,
                                oracle.name(),
                                minimized.as_ref().unwrap_or(&config),
                            )
                        });
                        let artifact = options.dump_dir.as_deref().and_then(|dir| {
                            let (ext, bytes) = oracle.artifact()?;
                            dump_artifact(dir, case_seed, oracle.name(), &ext, &bytes)
                        });
                        report.failures.push(Failure {
                            case_seed,
                            oracle: oracle.name().to_owned(),
                            detail,
                            config: config.clone(),
                            minimized,
                            dump,
                            artifact,
                        });
                    }
                }
            }
            if (index + 1) % 16 == 0 {
                progress(&format!(
                    "{}/{} cases, {} checks passed, {} skipped, {} failures",
                    index + 1,
                    options.cases,
                    report.passed,
                    report.skipped,
                    report.failures.len()
                ));
            }
        }
        Ok(report)
    }

    /// [`run_with_progress`](Self::run_with_progress) without progress
    /// output.
    ///
    /// # Errors
    ///
    /// See [`run_with_progress`](Self::run_with_progress).
    pub fn run(&self, options: &FuzzOptions) -> Result<FuzzReport, String> {
        self.run_with_progress(options, |_| {})
    }

    /// Greedily shrinks a failing scenario: repeatedly applies the first
    /// simplification pass that keeps the oracle failing, until none does
    /// (or the run budget is spent). Returns `None` when no pass helped.
    pub fn shrink(&self, config: &ScenarioConfig, oracle: &dyn Oracle) -> Option<ScenarioConfig> {
        let mut current = config.clone();
        let mut shrunk = false;
        let mut budget = 64usize;
        'outer: while budget > 0 {
            for candidate in shrink_candidates(&current) {
                if budget == 0 {
                    break 'outer;
                }
                budget -= 1;
                if oracle.check(&candidate, &self.registry).is_fail() {
                    current = candidate;
                    shrunk = true;
                    continue 'outer;
                }
            }
            break;
        }
        shrunk.then_some(current)
    }
}

/// Candidate one-step simplifications of a scenario, most aggressive
/// first: fewer functions, a shorter horizon, a smaller fleet, default
/// `[sim]` knobs, fewer pre-warmed instances, fewer replayed instants.
fn shrink_candidates(config: &ScenarioConfig) -> Vec<ScenarioConfig> {
    let mut out = Vec::new();
    if config.functions.len() > 1 {
        for drop in 0..config.functions.len() {
            let mut c = config.clone();
            c.functions.remove(drop);
            out.push(c);
        }
    }
    if let Some(run) = &config.run {
        let horizon = run.horizon_secs.unwrap_or(60);
        if horizon > 2 {
            let mut c = config.clone();
            c.run.as_mut().expect("checked").horizon_secs = Some((horizon / 2).max(2));
            out.push(c);
        }
    }
    if let Some(cluster) = &config.cluster {
        if cluster.nodes.unwrap_or(1) > 1 {
            let mut c = config.clone();
            c.cluster.as_mut().expect("checked").nodes = Some(1);
            out.push(c);
        }
        let gpus = cluster.gpus_per_node.unwrap_or(4);
        let min_gpus =
            config.functions.iter().filter_map(|f| f.gpus_per_instance).max().unwrap_or(1).max(1);
        if gpus / 2 >= min_gpus && cluster.nodes.unwrap_or(1) == 1 {
            let mut c = config.clone();
            c.cluster.as_mut().expect("checked").gpus_per_node = Some(gpus / 2);
            out.push(c);
        }
    }
    if config.sim.is_some() {
        let mut c = config.clone();
        c.sim = None;
        out.push(c);
    }
    if config.network.is_some() {
        // Dropping the network plane falls back to the legacy constants —
        // if the failure survives, the network was not the culprit.
        let mut c = config.clone();
        c.network = None;
        out.push(c);
    }
    for (i, f) in config.functions.iter().enumerate() {
        if f.initial.unwrap_or(1) > 1 {
            let mut c = config.clone();
            c.functions[i].initial = Some(1);
            out.push(c);
        }
        if let Some(spec) = &f.arrivals {
            if let Some(times) = &spec.times {
                if times.len() > 1 {
                    let mut c = config.clone();
                    let halved = times[..times.len() / 2].to_vec();
                    c.functions[i].arrivals.as_mut().expect("checked").times = Some(halved);
                    out.push(c);
                }
            }
        }
    }
    out
}

fn dump_config(
    dir: &Path,
    case_seed: u64,
    oracle: &str,
    config: &ScenarioConfig,
) -> Option<PathBuf> {
    std::fs::create_dir_all(dir).ok()?;
    let path = dir.join(format!("fuzz-{case_seed}-{oracle}.toml"));
    std::fs::write(&path, to_toml(config)).ok()?;
    Some(path)
}

/// Writes an oracle's binary reproducer (e.g. the record/replay event
/// log) next to the TOML dump, as `fuzz-<seed>-<oracle>.<ext>`.
fn dump_artifact(
    dir: &Path,
    case_seed: u64,
    oracle: &str,
    ext: &str,
    bytes: &[u8],
) -> Option<PathBuf> {
    std::fs::create_dir_all(dir).ok()?;
    let path = dir.join(format!("fuzz-{case_seed}-{oracle}.{ext}"));
    std::fs::write(&path, bytes).ok()?;
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A harness aimed at a single oracle for shrink tests.
    struct AlwaysFails;

    impl Oracle for AlwaysFails {
        fn name(&self) -> &'static str {
            "always-fails"
        }

        fn check(&self, _config: &ScenarioConfig, _registry: &Registry) -> Verdict {
            Verdict::Fail("synthetic".into())
        }
    }

    #[test]
    fn shrinking_reaches_a_fixed_point_minimum() {
        let harness = Harness::new();
        let config = generate_case(&SpaceConfig::default(), 5);
        let min = harness.shrink(&config, &AlwaysFails).expect("anything shrinks");
        assert_eq!(min.functions.len(), 1, "one function survives");
        assert_eq!(min.run.as_ref().unwrap().horizon_secs, Some(2), "horizon floors at 2 s");
        assert!(min.sim.is_none(), "sim knobs reset to defaults");
        let cluster = min.cluster.as_ref().unwrap();
        assert_eq!(cluster.nodes, Some(1));
    }

    /// A debug-mode conservation-oracle sweep: a third of generated cases
    /// sample a `[network]` plane, so these runs drive the incremental
    /// re-share under arrival/departure churn with the in-plane debug
    /// oracle armed — any incremental-vs-full divergence panics inside
    /// the run, and any byte-ledger leak fails the conservation oracle.
    #[test]
    fn conservation_oracle_exercises_the_reshare_oracle() {
        let harness = Harness::new();
        let options = FuzzOptions {
            cases: 9,
            seed: 23,
            oracles: vec!["conservation".into()],
            ..FuzzOptions::default()
        };
        let report = harness.run(&options).expect("conservation sweep runs");
        assert!(report.clean(), "conservation violations: {:?}", report.failures);
        assert!(report.passed > 0, "at least one case must be feasible");
    }

    /// An always-failing oracle that samples a third of cases and ships
    /// a binary artifact, mirroring the record/replay oracle's shape.
    struct SampledWithArtifact;

    impl Oracle for SampledWithArtifact {
        fn name(&self) -> &'static str {
            "sampled-artifact"
        }

        fn check(&self, _config: &ScenarioConfig, _registry: &Registry) -> Verdict {
            Verdict::Fail("synthetic".into())
        }

        fn samples(&self, case_seed: u64) -> bool {
            case_seed.is_multiple_of(3)
        }

        fn artifact(&self) -> Option<(String, Vec<u8>)> {
            Some(("dlog".to_owned(), b"synthetic log bytes".to_vec()))
        }
    }

    #[test]
    fn sampled_oracles_run_on_their_share_of_cases_only() {
        let harness = Harness::new().with_oracles(vec![Box::new(SampledWithArtifact)]);
        let options = FuzzOptions { cases: 6, seed: 0, ..FuzzOptions::default() };
        let report = harness.run(&options).expect("sweep runs");
        assert_eq!(report.failures.len(), 2, "seeds 0 and 3 of 0..6 are sampled");
        // An explicit --oracle request bypasses sampling.
        let explicit = FuzzOptions { oracles: vec!["sampled-artifact".into()], ..options.clone() };
        let harness = Harness::new().with_oracles(vec![Box::new(SampledWithArtifact)]);
        let report = harness.run(&explicit).expect("sweep runs");
        assert_eq!(report.failures.len(), 6, "explicitly requested oracles check every case");
    }

    #[test]
    fn failing_oracles_dump_toml_and_binary_reproducers() {
        let dir = std::env::temp_dir().join("dilu-harness-artifact-dump-test");
        let _ = std::fs::remove_dir_all(&dir);
        let harness = Harness::new().with_oracles(vec![Box::new(SampledWithArtifact)]);
        let options = FuzzOptions {
            cases: 1,
            seed: 3,
            dump_dir: Some(dir.clone()),
            ..FuzzOptions::default()
        };
        let report = harness.run(&options).expect("sweep runs");
        let failure = &report.failures[0];
        let dump = failure.dump.as_ref().expect("TOML reproducer dumped");
        assert!(dump.exists(), "{}", dump.display());
        let artifact = failure.artifact.as_ref().expect("binary reproducer dumped");
        assert_eq!(artifact.file_name().unwrap().to_str().unwrap(), "fuzz-3-sampled-artifact.dlog");
        assert_eq!(std::fs::read(artifact).unwrap(), b"synthetic log bytes");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn oracle_filter_limits_the_suite() {
        let harness = Harness::new();
        let options = FuzzOptions {
            cases: 1,
            seed: 11,
            oracles: vec!["determinism".into()],
            ..FuzzOptions::default()
        };
        let report = harness.run(&options).unwrap();
        assert_eq!(report.passed + report.skipped, 1, "exactly one oracle ran");
        let typo = FuzzOptions { oracles: vec!["capcity".into()], ..options };
        let err = harness.run(&typo).expect_err("a typo'd oracle must not run vacuously");
        assert!(err.contains("capcity") && err.contains("capacity"), "{err}");
    }
}

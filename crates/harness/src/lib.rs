//! Scenario-space fuzzing with differential oracles.
//!
//! The simulator's headline claims (adaptive 2D co-scaling,
//! resourcing-complementary placement) are only as credible as its
//! correctness, and hand-written scenarios cover a sliver of the
//! composition space. This crate turns the differential-equality trick
//! pinning the event-driven core to the dense-quantum reference into a
//! first-class verification subsystem:
//!
//! * [`SpaceConfig`] + [`generate_case`] — a seeded, model-based generator
//!   sampling valid [`ScenarioConfig`](dilu_core::ScenarioConfig)s across the full registry
//!   cross-product: placements × elasticity controllers × share policies ×
//!   arrival processes (Poisson / Gamma / trace / replay) × fleet sizes ×
//!   `[sim]` knobs × both time models.
//! * [`Oracle`] — a pluggable invariant check over one generated scenario.
//!   Four ship with the crate: [`DifferentialOracle`] (event-driven vs
//!   dense-quantum report byte-equality), [`DeterminismOracle`] (same seed
//!   twice ⇒ identical JSON), [`ConservationOracle`] (no request is ever
//!   created or lost), and [`CapacityOracle`] (Σ`request` ≤ Ω and
//!   Σ`limit` ≤ Γ on every GPU at every controller tick, via the
//!   [`ClusterSim::audit`](dilu_cluster::ClusterSim::audit) hook).
//! * [`Harness`] — the driver: runs every oracle over every generated
//!   case, shrinks failures to a minimal reproducer, and dumps the
//!   failing scenario as copy-pasteable TOML.
//!
//! The CLI front door is `dilu fuzz [--cases N] [--seed S] [--oracle
//! name] [--minimize]`; every future policy or time model lands in the
//! sampled space automatically once registered.
//!
//! # Examples
//!
//! ```
//! use dilu_harness::{FuzzOptions, Harness};
//!
//! let harness = Harness::new();
//! let report = harness.run(&FuzzOptions { cases: 2, seed: 7, ..FuzzOptions::default() })?;
//! assert_eq!(report.failures.len(), 0);
//! # Ok::<(), String>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod emit;
mod fuzz;
mod gen;
mod oracle;

pub use emit::to_toml;
pub use fuzz::{Failure, FuzzOptions, FuzzReport, Harness};
pub use gen::{generate_case, SpaceConfig};
pub use oracle::{
    default_oracles, CapacityOracle, ConservationOracle, DeterminismOracle, DifferentialOracle,
    Oracle, Verdict,
};

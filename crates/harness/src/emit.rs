//! Scenario-config → TOML emission for copy-pasteable reproducers.
//!
//! The vendored `toml` stand-in only parses, so the fuzzer carries its own
//! emitter for the [`ScenarioConfig`] shape: top-level scalar keys, one
//! `[section]` per map, `[section.sub]` for nested component tables,
//! `[[functions]]` for the function array, and inline tables for maps
//! nested inside array elements (`arrivals = { ... }`) — exactly the
//! dialect of `examples/scenarios/*.toml`. Round-tripping through
//! [`ScenarioConfig::from_toml_str`] is pinned by tests.

use dilu_core::ScenarioConfig;
use serde::{Serialize, Value};

/// Renders a scenario config as a TOML document that
/// [`ScenarioConfig::from_toml_str`] parses back to an equal config.
pub fn to_toml(config: &ScenarioConfig) -> String {
    let value = config.to_value();
    let mut out = String::new();
    let Value::Map(entries) = &value else {
        return out;
    };
    // Top-level scalars first (TOML assigns keys to the preceding table
    // header, so they must precede any section).
    for (k, v) in entries {
        if is_scalar(v) {
            push_assignment(&mut out, key_of(k), v);
        }
    }
    for (k, v) in entries {
        match v {
            Value::Map(sub) => emit_table(&mut out, key_of(k), sub),
            Value::Seq(items) if items.iter().any(|i| matches!(i, Value::Map(_))) => {
                for item in items {
                    if let Value::Map(sub) = item {
                        out.push_str(&format!("\n[[{}]]\n", key_of(k)));
                        emit_element(&mut out, sub);
                    }
                }
            }
            Value::Seq(_) => push_assignment(&mut out, key_of(k), v),
            _ => {} // scalars already emitted; Unit dropped (TOML has no null)
        }
    }
    out
}

/// `true` when a map holds nothing TOML-visible (every entry is `Unit`).
fn is_empty_map(entries: &[(Value, Value)]) -> bool {
    entries.iter().all(|(_, v)| matches!(v, Value::Unit))
}

/// Emits `[name]` with its scalar entries, then `[name.sub]` child tables.
fn emit_table(out: &mut String, name: &str, entries: &[(Value, Value)]) {
    if is_empty_map(entries) {
        return;
    }
    // Unconditional header: a section holding only sub-tables ([system]
    // holding just [system.placement]) stays valid TOML either way, and an
    // empty-but-present section round-trips.
    out.push_str(&format!("\n[{name}]\n"));
    for (k, v) in entries {
        if is_scalar(v) || matches!(v, Value::Seq(_)) {
            push_assignment(out, key_of(k), v);
        }
    }
    for (k, v) in entries {
        if let Value::Map(sub) = v {
            emit_table(out, &format!("{name}.{}", key_of(k)), sub);
        }
    }
}

/// Emits the body of one array-of-tables element: scalars, sequences, and
/// nested maps as inline tables (TOML sub-tables of array elements are a
/// dialect corner the parser stand-in does not guarantee).
fn emit_element(out: &mut String, entries: &[(Value, Value)]) {
    for (k, v) in entries {
        match v {
            Value::Unit => {}
            Value::Map(sub) => {
                if !is_empty_map(sub) {
                    out.push_str(&format!("{} = {}\n", key_of(k), inline_table(sub)));
                }
            }
            _ => push_assignment(out, key_of(k), v),
        }
    }
}

fn inline_table(entries: &[(Value, Value)]) -> String {
    let parts: Vec<String> = entries
        .iter()
        .filter(|(_, v)| !matches!(v, Value::Unit))
        .map(|(k, v)| match v {
            Value::Map(sub) => format!("{} = {}", key_of(k), inline_table(sub)),
            _ => format!("{} = {}", key_of(k), scalar(v)),
        })
        .collect();
    format!("{{ {} }}", parts.join(", "))
}

fn push_assignment(out: &mut String, key: &str, v: &Value) {
    out.push_str(&format!("{key} = {}\n", scalar(v)));
}

fn is_scalar(v: &Value) -> bool {
    matches!(v, Value::Bool(_) | Value::Int(_) | Value::UInt(_) | Value::Float(_) | Value::Str(_))
}

fn key_of(k: &Value) -> &str {
    k.as_str().expect("config keys are strings")
}

fn scalar(v: &Value) -> String {
    match v {
        Value::Bool(b) => b.to_string(),
        Value::Int(i) => i.to_string(),
        Value::UInt(u) => u.to_string(),
        // `{:?}` keeps a decimal point (`25.0`), which TOML floats need.
        Value::Float(f) => format!("{f:?}"),
        Value::Str(s) => quote(s),
        Value::Seq(items) => {
            let parts: Vec<String> = items.iter().map(scalar).collect();
            format!("[{}]", parts.join(", "))
        }
        Value::Unit | Value::Map(_) => unreachable!("filtered by callers"),
    }
}

fn quote(s: &str) -> String {
    let mut q = String::with_capacity(s.len() + 2);
    q.push('"');
    for c in s.chars() {
        match c {
            '"' => q.push_str("\\\""),
            '\\' => q.push_str("\\\\"),
            '\n' => q.push_str("\\n"),
            '\t' => q.push_str("\\t"),
            other => q.push(other),
        }
    }
    q.push('"');
    q
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate_case, SpaceConfig};

    #[test]
    fn generated_configs_round_trip_through_toml() {
        let space = SpaceConfig::default();
        for seed in 0..60 {
            let config = generate_case(&space, seed);
            let text = to_toml(&config);
            let back = ScenarioConfig::from_toml_str(&text)
                .unwrap_or_else(|e| panic!("case {seed} does not re-parse: {e}\n{text}"));
            assert_eq!(config, back, "case {seed} round-trip drifted:\n{text}");
        }
    }

    #[test]
    fn emits_the_example_dialect() {
        let space = SpaceConfig::default();
        let config = generate_case(&space, 3);
        let text = to_toml(&config);
        assert!(text.contains("[system.placement]"), "{text}");
        assert!(text.contains("[run]"), "{text}");
        assert!(text.contains("[[functions]]"), "{text}");
    }
}

//! Seeded, model-based sampling of valid scenario configurations across
//! the whole composition space.
//!
//! [`generate_case`] is a pure function of `(space, case_seed)`: the same
//! pair always yields the same [`ScenarioConfig`], which is what makes a
//! printed seed a complete reproducer. Sampled dimensions: fleet shape,
//! placement (with occasional Ω/Γ overrides), elasticity controller
//! (2D co-scaler and every horizontal autoscaler), share policy, `[sim]`
//! knobs (quantum, tick, resize latency, time model, node-plane step
//! threads, streaming arrival-window caps), horizon, and one to three
//! functions mixing inference (Poisson / Gamma / trace / replay / synth /
//! trace-file arrivals, varied batch and initial instances) and training
//! workloads.
//!
//! The generator constructs *valid* configs by construction — composition
//! constraints (tick ≥ quantum, `gpus_per_instance` ≤ fleet, arrival
//! processes with their required knobs) are respected at sampling time, so
//! every case exercises the simulator rather than the config validator.

use dilu_core::{
    ClusterSection, ComponentSection, FunctionSection, NetworkSection, RunSection, ScenarioConfig,
    SimSection, SystemSection,
};
use dilu_sim::rng::component_rng;
use dilu_workload::ArrivalSpec;
use rand::Rng;
use serde::Value;

/// The sampling space: which component names and bounds the generator
/// draws from. [`SpaceConfig::default`] covers every built-in component;
/// tests narrow it (or extend it with deliberately broken components
/// registered on a custom registry) to aim the fuzzer.
#[derive(Debug, Clone)]
pub struct SpaceConfig {
    /// Placement names to sample (registry namespace).
    pub placements: Vec<String>,
    /// Elasticity-controller names to sample; autoscaler names resolve
    /// through the controller slot, so both kinds belong here.
    pub controllers: Vec<String>,
    /// Share-policy names to sample.
    pub share_policies: Vec<String>,
    /// `[sim] time_model` values to sample.
    pub time_models: Vec<String>,
    /// `[sim] threads` values to sample (node-plane step parallelism).
    /// Values above 1 turn the differential oracle into a three-way
    /// serial / parallel / dense sweep for free.
    pub threads: Vec<u32>,
    /// Maximum worker nodes.
    pub max_nodes: u32,
    /// Maximum GPUs per node.
    pub max_gpus_per_node: u32,
    /// Maximum functions per scenario.
    pub max_functions: usize,
    /// Traffic horizon bounds in seconds (inclusive).
    pub horizon_secs: (u64, u64),
    /// Whether to mix in training functions.
    pub allow_training: bool,
    /// Whether to mix in multi-GPU (pipelined LLM) inference functions.
    pub allow_pipelined: bool,
    /// Whether to sample a `[network]` plane on a third of the cases
    /// (preset mixes, link-capacity tiers, cache caps including 0, and
    /// cold-start storm bursts).
    pub allow_network: bool,
}

impl Default for SpaceConfig {
    fn default() -> Self {
        SpaceConfig {
            placements: vec!["dilu", "packing", "first-fit", "exclusive"]
                .into_iter()
                .map(String::from)
                .collect(),
            controllers: vec!["lazy", "keep-alive", "reactive", "null", "co-scale"]
                .into_iter()
                .map(String::from)
                .collect(),
            share_policies: vec!["rckm", "mps-l", "mps-r", "tgs", "fast-gs", "fair"]
                .into_iter()
                .map(String::from)
                .collect(),
            time_models: vec!["event-driven", "dense-quantum"]
                .into_iter()
                .map(String::from)
                .collect(),
            threads: vec![1, 2, 4],
            // Up to 6 worker nodes: enough for the node plane's fan-out
            // threshold, so `threads > 1` cases genuinely step on pool
            // workers (the serial-vs-parallel differential leg would
            // otherwise compare two inline executions).
            max_nodes: 6,
            max_gpus_per_node: 4,
            max_functions: 3,
            horizon_secs: (4, 10),
            allow_training: true,
            allow_pipelined: true,
            allow_network: true,
        }
    }
}

fn pick<'a, T, R: Rng>(rng: &mut R, choices: &'a [T]) -> &'a T {
    &choices[rng.gen_range(0..choices.len())]
}

/// Generates the scenario for one fuzz case. Pure in `(space, case_seed)`.
pub fn generate_case(space: &SpaceConfig, case_seed: u64) -> ScenarioConfig {
    let mut rng = component_rng(case_seed, "fuzz-case");

    let nodes = rng.gen_range(1..=space.max_nodes.max(1));
    let gpus_per_node = rng.gen_range(1..=space.max_gpus_per_node.max(1));
    let total_gpus = nodes * gpus_per_node;
    let horizon =
        rng.gen_range(space.horizon_secs.0..=space.horizon_secs.1.max(space.horizon_secs.0));

    let placement_name = pick(&mut rng, &space.placements).clone();
    let mut placement = ComponentSection::named(placement_name.clone());
    // Occasionally sweep the Γ cap on the Dilu-family packers (the
    // capacity oracle reads it back from this table).
    let dilu_family = matches!(placement_name.as_str(), "dilu" | "packing" | "first-fit");
    if dilu_family && rng.gen_range(0..4) == 0 {
        let gamma = *pick(&mut rng, &[1.2, 1.5, 2.0]);
        placement = ComponentSection {
            name: placement_name,
            params: params([("gamma", Value::Float(gamma))]),
        };
    }
    let controller_name = pick(&mut rng, &space.controllers).clone();
    let controller = ComponentSection::named(controller_name);
    let share_policy = ComponentSection::named(pick(&mut rng, &space.share_policies).clone());

    // `[sim]` knobs on half the cases; the rest run the defaults. The
    // threads dimension is sampled independently so parallel stepping is
    // exercised with default knobs too.
    let threads = *pick(&mut rng, &space.threads);
    let sim = if rng.gen_range(0..2) == 0 {
        Some(SimSection {
            quantum_ms: Some(*pick(&mut rng, &[2.5, 5.0])),
            tick_ms: Some(*pick(&mut rng, &[500.0, 1000.0])),
            batch_timeout_frac: None,
            batch_timeout_cap_ms: None,
            stage_transfer_ms: None,
            resize_latency_ms: Some(*pick(&mut rng, &[0.0, 1.0, 20.0])),
            time_model: Some(pick(&mut rng, &space.time_models).clone()),
            threads: Some(threads),
            profile: None,
            // Tiny windows force chunk boundaries inside almost every
            // quantum; 0 is the materialize-everything comparison path.
            // Reports must be byte-identical at every setting, and the
            // oracles check exactly that.
            arrival_window: Some(*pick(&mut rng, &[0, 1, 3, 64])),
            function_series: None,
        })
    } else if threads != 1 {
        Some(SimSection { threads: Some(threads), ..SimSection::default() })
    } else {
        None
    };

    // `[network]` on a third of the cases: sometimes a bare preset,
    // sometimes explicit capacity tiers (slow registries make storms
    // visible), cache caps including 0 (everything fetches), and varied
    // provision residues including 0 (a cache hit is instantly ready).
    let network = if space.allow_network && rng.gen_range(0..3) == 0 {
        let preset = if rng.gen_range(0..3) == 0 {
            Some((*pick(&mut rng, &dilu_net::NetworkConfig::PRESET_NAMES)).to_owned())
        } else {
            None
        };
        let explicit = preset.is_none() || rng.gen_range(0..2) == 0;
        Some(NetworkSection {
            preset,
            registry_gbps: explicit.then(|| *pick(&mut rng, &[1.0, 10.0, 40.0, 100.0])),
            tor_gbps: explicit.then(|| *pick(&mut rng, &[10.0, 25.0, 100.0])),
            nvlink_gbps: None,
            cache_gb: explicit.then(|| *pick(&mut rng, &[0.0, 2.0, 8.0, 32.0])),
            provision_ms: explicit.then(|| *pick(&mut rng, &[0.0, 250.0, 2000.0])),
        })
    } else {
        None
    };

    let n_functions = rng.gen_range(1..=space.max_functions.max(1));
    let mut functions = Vec::with_capacity(n_functions);
    for index in 0..n_functions {
        // Training only past the first slot, so every scenario serves.
        let training = space.allow_training && index > 0 && rng.gen_range(0..4) == 0;
        if training {
            functions.push(training_function(&mut rng, horizon));
        } else {
            functions.push(inference_function(
                &mut rng,
                space,
                horizon,
                total_gpus,
                network.is_some(),
            ));
        }
    }

    ScenarioConfig {
        name: Some(format!("fuzz-{case_seed}")),
        cluster: Some(ClusterSection {
            nodes: Some(nodes),
            gpus_per_node: Some(gpus_per_node),
            gpu_mem_gb: None,
        }),
        system: SystemSection {
            preset: None,
            placement: Some(placement),
            autoscaler: None,
            controller: Some(controller),
            share_policy: Some(share_policy),
        },
        sim,
        network,
        run: Some(RunSection {
            horizon_secs: Some(horizon),
            drain_secs: Some(rng.gen_range(3..=4)),
            seed: Some(rng.gen::<u64>()),
        }),
        functions,
        fleet: None,
    }
}

fn params(entries: [(&str, Value); 1]) -> dilu_core::Params {
    dilu_core::Params::from_entries(entries.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

fn inference_function<R: Rng>(
    rng: &mut R,
    space: &SpaceConfig,
    horizon: u64,
    total_gpus: u32,
    networked: bool,
) -> FunctionSection {
    let pipelined = space.allow_pipelined && total_gpus >= 2 && rng.gen_range(0..8) == 0;
    let (model, gpus_per_instance, rate_lo, rate_hi) = if pipelined {
        let stages = if total_gpus >= 4 && rng.gen_range(0..2) == 0 { 4 } else { 2 };
        ((*pick(rng, &["llama2-7b", "chatglm3-6b"])).to_owned(), Some(stages), 1.0, 4.0)
    } else {
        (
            (*pick(rng, &["resnet152", "vgg19", "bert-base", "roberta-large"])).to_owned(),
            None,
            5.0,
            60.0,
        )
    };
    // Cold-start storm bursts: with a network plane, sometimes drop every
    // request in one replayed instant with no prewarmed instance, so the
    // autoscaler fans out concurrent fetches that contend on the registry.
    if networked && rng.gen_range(0..3) == 0 {
        let burst = rng.gen_range(4..=32);
        let at = f64::from(rng.gen_range(1..=(horizon as u32 / 2).max(1)));
        return FunctionSection {
            name: None,
            model,
            role: None,
            batch: None,
            slo_ms: None,
            request_pct: None,
            limit_pct: None,
            mem_gb: None,
            gpus_per_instance,
            initial: Some(0),
            workers: None,
            iterations: None,
            start_sec: None,
            arrivals: Some(ArrivalSpec::replay(vec![at; burst])),
        };
    }
    let arrivals = match rng.gen_range(0..6) {
        0 => ArrivalSpec::poisson(rng.gen_range(rate_lo..rate_hi)),
        1 => ArrivalSpec::gamma(rng.gen_range(rate_lo..rate_hi), *pick(rng, &[0.5, 1.0, 4.0])),
        2 => {
            let shape = *pick(rng, &["bursty", "periodic", "sporadic"]);
            let kind = dilu_workload::TraceKind::ALL
                .into_iter()
                .find(|k| k.name().eq_ignore_ascii_case(shape))
                .expect("trace shapes are exhaustive");
            ArrivalSpec::trace(
                kind,
                rng.gen_range(rate_lo..(rate_hi / 2.0).max(rate_lo + 1.0)),
                *pick(rng, &[2.0, 4.0]),
            )
        }
        3 => {
            // Production-day synthesizer, compressed so the diurnal cycle
            // and a burst window both land inside a seconds-scale horizon.
            let mut spec =
                ArrivalSpec::synth(rng.gen_range(rate_lo..rate_hi), *pick(rng, &[0.0, 0.3, 0.8]));
            spec.period = Some(*pick(rng, &[2.0, 5.0, 30.0]));
            spec.phase = Some(*pick(rng, &[0.0, 1.5]));
            spec.scale = Some(*pick(rng, &[1.0, 4.0]));
            spec
        }
        4 => {
            // On-disk trace readers over the checked-in sample fixtures.
            let (path, format): (&str, &str) = *pick(
                rng,
                &[
                    (
                        concat!(
                            env!("CARGO_MANIFEST_DIR"),
                            "/../../examples/traces/alibaba-sample.csv"
                        ),
                        "alibaba",
                    ),
                    (
                        concat!(
                            env!("CARGO_MANIFEST_DIR"),
                            "/../../examples/traces/azure-sample.csv"
                        ),
                        "azure",
                    ),
                ],
            );
            let mut spec = ArrivalSpec::file(path, format);
            if rng.gen_range(0..2) == 0 {
                spec.function = Some((*pick(rng, &["fn-a", "fn-b", "fn-c"])).to_owned());
            }
            spec
        }
        _ => {
            // Deliberately unsorted, possibly duplicated replay instants:
            // the spec contract is that replay sorts (and keeps
            // duplicates), and the fuzzer leans on it.
            let n = rng.gen_range(1..40);
            let mut times: Vec<f64> = (0..n)
                .map(|_| (rng.gen_range(0.0..horizon as f64) * 1000.0).round() / 1000.0)
                .collect();
            if n > 2 && rng.gen_range(0..2) == 0 {
                let dup = times[0];
                times.push(dup);
            }
            ArrivalSpec::replay(times)
        }
    };
    FunctionSection {
        name: None,
        model,
        role: None,
        batch: if rng.gen_range(0..3) == 0 { Some(*pick(rng, &[2, 4])) } else { None },
        slo_ms: None,
        request_pct: None,
        limit_pct: None,
        mem_gb: None,
        gpus_per_instance,
        initial: Some(*pick(rng, &[0, 1, 1, 2])),
        workers: None,
        iterations: None,
        start_sec: None,
        arrivals: Some(arrivals),
    }
}

fn training_function<R: Rng>(rng: &mut R, horizon: u64) -> FunctionSection {
    FunctionSection {
        name: None,
        model: (*pick(rng, &["bert-base", "resnet152"])).to_owned(),
        role: Some("training".into()),
        batch: None,
        slo_ms: None,
        request_pct: None,
        limit_pct: None,
        mem_gb: None,
        gpus_per_instance: None,
        initial: None,
        workers: Some(rng.gen_range(1..=2)),
        iterations: Some(rng.gen_range(10..=60)),
        start_sec: Some(rng.gen_range(0..=horizon / 2)),
        arrivals: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dilu_core::Registry;

    #[test]
    fn generation_is_pure_in_the_case_seed() {
        let space = SpaceConfig::default();
        for seed in [0, 7, 123, u64::MAX] {
            assert_eq!(generate_case(&space, seed), generate_case(&space, seed));
        }
        assert_ne!(generate_case(&space, 1), generate_case(&space, 2));
    }

    #[test]
    fn cases_compose_through_the_registry() {
        let space = SpaceConfig::default();
        let registry = Registry::with_defaults();
        let mut built = 0;
        for seed in 0..60 {
            let config = generate_case(&space, seed);
            match config.into_builder(&registry).and_then(|b| b.build()) {
                Ok(_) => built += 1,
                // Structurally impossible compositions (e.g. exclusive
                // placement with more initial instances than GPUs) are
                // allowed to fail — with a typed error, never a panic.
                Err(e) => assert!(!e.to_string().is_empty()),
            }
        }
        assert!(built >= 40, "most cases must compose, got {built}/60");
    }

    #[test]
    fn the_space_reaches_every_dimension() {
        let space = SpaceConfig::default();
        let mut placements = std::collections::BTreeSet::new();
        let mut controllers = std::collections::BTreeSet::new();
        let mut policies = std::collections::BTreeSet::new();
        let mut processes = std::collections::BTreeSet::new();
        let mut threads = std::collections::BTreeSet::new();
        let mut saw_training = false;
        let mut saw_sim = false;
        for seed in 0..200 {
            let c = generate_case(&space, seed);
            placements.insert(c.system.placement.as_ref().unwrap().name.clone());
            controllers.insert(c.system.controller.as_ref().unwrap().name.clone());
            policies.insert(c.system.share_policy.as_ref().unwrap().name.clone());
            saw_sim |= c.sim.is_some();
            threads.insert(c.sim.as_ref().and_then(|s| s.threads).unwrap_or(1));
            for f in &c.functions {
                if f.role.as_deref() == Some("training") {
                    saw_training = true;
                } else {
                    processes.insert(f.arrivals.as_ref().unwrap().process.clone());
                }
            }
        }
        assert_eq!(placements.len(), space.placements.len(), "{placements:?}");
        assert_eq!(controllers.len(), space.controllers.len(), "{controllers:?}");
        assert_eq!(policies.len(), space.share_policies.len(), "{policies:?}");
        assert_eq!(processes.len(), 6, "{processes:?}");
        assert_eq!(
            threads,
            space.threads.iter().copied().collect::<std::collections::BTreeSet<_>>(),
            "every sampled threads value must be reachable"
        );
        assert!(saw_training && saw_sim);
    }
}

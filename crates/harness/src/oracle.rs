//! The invariant oracles the fuzzer runs over every generated scenario.
//!
//! An [`Oracle`] owns the whole check for one invariant: it builds and
//! runs the scenario itself (as many times as the invariant needs) and
//! returns a [`Verdict`]. Oracles never panic on infeasible compositions —
//! a scenario the serving plane rejects with a typed error is a
//! [`Verdict::Skip`], and a panic anywhere is itself a failure.

use std::cell::RefCell;
use std::panic::AssertUnwindSafe;
use std::rc::Rc;

use dilu_core::{Registry, Scenario, ScenarioConfig};
use dilu_sim::SimTime;

/// Outcome of one oracle over one scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// The invariant held.
    Pass,
    /// The scenario does not compose (typed rejection) — nothing to check.
    Skip(String),
    /// The invariant was violated; the payload explains how.
    Fail(String),
}

impl Verdict {
    /// `true` for [`Verdict::Fail`].
    pub fn is_fail(&self) -> bool {
        matches!(self, Verdict::Fail(_))
    }
}

/// One invariant check over a generated scenario.
pub trait Oracle {
    /// The stable name used by `dilu fuzz --oracle <name>`.
    fn name(&self) -> &'static str;

    /// Runs the scenario however the invariant requires and judges it.
    fn check(&self, config: &ScenarioConfig, registry: &Registry) -> Verdict;

    /// Whether this oracle runs on the case with this seed. Expensive
    /// oracles may deterministically sample a subset of cases; the
    /// default is every case. Filtering with `--oracle <name>` bypasses
    /// sampling (an explicitly requested oracle always runs).
    fn samples(&self, case_seed: u64) -> bool {
        let _ = case_seed;
        true
    }

    /// A binary reproducer from the most recent failing [`check`]
    /// (`(extension, bytes)`), dumped next to the TOML reproducer by the
    /// fuzz driver. The default oracle has none.
    ///
    /// [`check`]: Oracle::check
    fn artifact(&self) -> Option<(String, Vec<u8>)> {
        None
    }
}

/// Every oracle this crate ships, in documentation order.
pub fn default_oracles() -> Vec<Box<dyn Oracle>> {
    vec![
        Box::new(DifferentialOracle),
        Box::new(DeterminismOracle),
        Box::new(ConservationOracle),
        Box::new(CapacityOracle),
        Box::new(RecordReplayOracle::new()),
    ]
}

/// Builds the scenario, shielding the caller from panics.
fn build(config: &ScenarioConfig, registry: &Registry) -> Result<Scenario, String> {
    let config = config.clone();
    std::panic::catch_unwind(AssertUnwindSafe(move || {
        config.into_builder(registry).and_then(|b| b.build()).map_err(|e| e.to_string())
    }))
    .unwrap_or_else(|p| Err(format!("PANIC while composing: {}", panic_text(&p))))
}

/// Builds, runs to horizon + drain, and serializes the report.
fn run_json(config: &ScenarioConfig, registry: &Registry) -> Result<String, String> {
    let scenario = build(config, registry)?;
    std::panic::catch_unwind(AssertUnwindSafe(move || {
        scenario
            .run()
            .map_err(|e| e.to_string())
            .map(|report| serde_json::to_string(&report).expect("reports serialize"))
    }))
    .unwrap_or_else(|p| Err(format!("PANIC while running: {}", panic_text(&p))))
}

fn panic_text(payload: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_owned()
    }
}

/// First byte offset where two reports differ, with context for the
/// failure message.
fn first_divergence(a: &str, b: &str) -> String {
    let at = a.bytes().zip(b.bytes()).position(|(x, y)| x != y).unwrap_or(a.len().min(b.len()));
    let lo = at.saturating_sub(40);
    let snip =
        |s: &str| s.get(lo..(at + 40).min(s.len())).unwrap_or("<non-utf8 boundary>").to_owned();
    format!("reports diverge at byte {at}:\n  a: …{}…\n  b: …{}…", snip(a), snip(b))
}

fn with_time_model(config: &ScenarioConfig, model: &str) -> ScenarioConfig {
    let mut c = config.clone();
    c.sim.get_or_insert_with(Default::default).time_model = Some(model.to_owned());
    c
}

/// Judges a pair of runs that must agree byte-for-byte.
fn judge_pair(
    a: Result<String, String>,
    b: Result<String, String>,
    label_a: &str,
    label_b: &str,
) -> Verdict {
    match (a, b) {
        (Ok(a), Ok(b)) if a == b => Verdict::Pass,
        (Ok(a), Ok(b)) => Verdict::Fail(first_divergence(&a, &b)),
        (Err(ea), Err(eb)) if ea == eb => {
            if ea.starts_with("PANIC") {
                Verdict::Fail(ea)
            } else {
                Verdict::Skip(ea)
            }
        }
        (Err(ea), Err(eb)) => {
            Verdict::Fail(format!("{label_a} and {label_b} reject differently: `{ea}` vs `{eb}`"))
        }
        (Ok(_), Err(e)) => Verdict::Fail(format!("only {label_b} rejects the scenario: {e}")),
        (Err(e), Ok(_)) => Verdict::Fail(format!("only {label_a} rejects the scenario: {e}")),
    }
}

/// Differential oracle: the event-driven core must reproduce the
/// dense-quantum reference byte-for-byte — every latency sample, timeline
/// point, and counter — on any composable scenario. When the case samples
/// `[sim] threads > 1`, both runs already exercise the parallel node
/// plane, and a third serial (`threads = 1`) event run is compared
/// against the parallel one — sweeping serial vs parallel vs dense.
pub struct DifferentialOracle;

impl Oracle for DifferentialOracle {
    fn name(&self) -> &'static str {
        "differential"
    }

    fn check(&self, config: &ScenarioConfig, registry: &Registry) -> Verdict {
        let dense = run_json(&with_time_model(config, "dense-quantum"), registry);
        let event = run_json(&with_time_model(config, "event-driven"), registry);
        let threads = config.sim.as_ref().and_then(|s| s.threads).unwrap_or(1);
        let verdict = judge_pair(dense, event.clone(), "dense-quantum", "event-driven");
        if !matches!(verdict, Verdict::Pass) || threads <= 1 {
            return verdict;
        }
        let mut serial = with_time_model(config, "event-driven");
        serial.sim.get_or_insert_with(Default::default).threads = Some(1);
        judge_pair(
            run_json(&serial, registry),
            event,
            "event-driven(threads=1)",
            &format!("event-driven(threads={threads})"),
        )
    }
}

/// Determinism oracle: the same seed run twice must emit identical JSON.
pub struct DeterminismOracle;

impl Oracle for DeterminismOracle {
    fn name(&self) -> &'static str {
        "determinism"
    }

    fn check(&self, config: &ScenarioConfig, registry: &Registry) -> Verdict {
        judge_pair(run_json(config, registry), run_json(config, registry), "run 1", "run 2")
    }
}

/// Runs the scenario with an audit hook, collecting per-tick violations
/// flagged by `on_tick`, and returns `(violations, final_audit, report)`.
fn run_audited(
    config: &ScenarioConfig,
    registry: &Registry,
    on_tick: impl Fn(&dilu_cluster::AuditSnapshot, &mut Vec<String>) + 'static,
) -> Result<(Vec<String>, dilu_cluster::AuditSnapshot, dilu_cluster::ClusterReport), String> {
    let scenario = build(config, registry)?;
    std::panic::catch_unwind(AssertUnwindSafe(move || {
        let horizon = scenario.horizon();
        let drain = scenario.drain();
        let mut sim = scenario.into_sim();
        let violations: Rc<RefCell<Vec<String>>> = Rc::new(RefCell::new(Vec::new()));
        let sink = violations.clone();
        sim.set_audit_hook(Box::new(move |snapshot| {
            let mut out = sink.borrow_mut();
            if out.len() < 8 {
                on_tick(snapshot, &mut out);
            }
        }));
        sim.run_until(SimTime::ZERO + horizon + drain);
        let final_audit = sim.audit();
        let report = sim.into_report();
        let violations = violations.borrow().clone();
        Ok((violations, final_audit, report))
    }))
    .unwrap_or_else(|p| Err(format!("PANIC while running: {}", panic_text(&p))))
}

/// Conservation oracle: requests are never created or lost. At every
/// controller tick (and at the end of the run)
/// `arrived == completed + backlog + queued + in-flight` per function, all
/// generated arrivals are eventually ingested, and the final report's
/// counters agree with each other (timeline sums, latency sample counts,
/// cold-start and resize bookkeeping).
pub struct ConservationOracle;

/// Network byte ledger: bytes never appear or vanish mid-flow, so
/// `requested == delivered + inflight` at every tick.
fn net_conservation_of(snapshot: &dilu_cluster::AuditSnapshot, out: &mut Vec<String>) {
    if let Some(n) = &snapshot.network {
        if n.requested_bytes != n.delivered_bytes + n.inflight_bytes {
            out.push(format!(
                "network at {}: requested {} B != delivered {} B + inflight {} B \
                 ({} active flows)",
                snapshot.now,
                n.requested_bytes,
                n.delivered_bytes,
                n.inflight_bytes,
                n.active_flows
            ));
        }
    }
}

fn conservation_of(f: &dilu_cluster::FunctionAudit, at: &str, out: &mut Vec<String>) {
    let balance = f.completed + f.outstanding();
    if f.arrived != balance {
        out.push(format!(
            "{} at {at}: arrived {} != completed {} + backlog {} + queued {} + inflight {}",
            f.func, f.arrived, f.completed, f.backlog, f.queued, f.inflight
        ));
    }
}

impl Oracle for ConservationOracle {
    fn name(&self) -> &'static str {
        "conservation"
    }

    fn check(&self, config: &ScenarioConfig, registry: &Registry) -> Verdict {
        let run = run_audited(config, registry, |snapshot, out| {
            for f in &snapshot.functions {
                conservation_of(f, &format!("{}", snapshot.now), out);
            }
            net_conservation_of(snapshot, out);
        });
        let (mut violations, final_audit, report) = match run {
            Ok(r) => r,
            Err(e) if e.starts_with("PANIC") => return Verdict::Fail(e),
            Err(e) => return Verdict::Skip(e),
        };
        net_conservation_of(&final_audit, &mut violations);
        let networked = config.network.is_some();
        for f in &final_audit.functions {
            conservation_of(f, "end", &mut violations);
            if f.pending_arrivals != 0 {
                violations.push(format!(
                    "{}: {} generated arrivals were never ingested",
                    f.func, f.pending_arrivals
                ));
            }
            if f.resize_grows + f.resize_shrinks > 0 && !f.inference {
                violations.push(format!("{}: training function was resized", f.func));
            }
        }
        for (id, f) in &report.inference {
            if f.latency.len() as u64 != f.completed {
                violations.push(format!(
                    "{id}: {} latency samples for {} completions",
                    f.latency.len(),
                    f.completed
                ));
            }
            let t_arrived: u64 = f.timeline.iter().map(|p| p.arrivals).sum();
            let t_completed: u64 = f.timeline.iter().map(|p| p.completions).sum();
            let t_violations: u64 = f.timeline.iter().map(|p| p.violations).sum();
            if t_arrived != f.arrived {
                violations.push(format!(
                    "{id}: timeline sums {t_arrived} arrivals, report {}",
                    f.arrived
                ));
            }
            if t_completed != f.completed {
                violations.push(format!(
                    "{id}: timeline sums {t_completed} completions, report {}",
                    f.completed
                ));
            }
            if t_violations > f.completed {
                violations.push(format!(
                    "{id}: {t_violations} SLO violations exceed {} completions",
                    f.completed
                ));
            }
            if f.resizes.total() != f.resizes.grows() + f.resizes.shrinks() {
                violations.push(format!("{id}: resize counter total drifted from grows+shrinks"));
            }
            if f.cold_starts.count() == 0 && !f.cold_starts.total_delay().is_zero() {
                violations.push(format!("{id}: cold-start delay recorded without a count"));
            }
            if networked {
                // Every networked cold start is either a cache hit or a
                // registry fetch; the breakdown must sum to the count.
                if f.cold_starts.fetches() + f.cold_starts.cache_hits() != f.cold_starts.count() {
                    violations.push(format!(
                        "{id}: {} fetches + {} cache hits != {} cold starts",
                        f.cold_starts.fetches(),
                        f.cold_starts.cache_hits(),
                        f.cold_starts.count()
                    ));
                }
                if f.cold_starts.fetch_delay() > f.cold_starts.total_delay() {
                    violations.push(format!("{id}: fetch delay exceeds total cold-start delay"));
                }
            } else if f.cold_starts.count() > 0 && f.cold_starts.total_delay().is_zero() {
                // Without a network plane every cold start pays the fixed
                // model-dependent delay, so a zero total is impossible.
                violations.push(format!("{id}: cold starts recorded with zero total delay"));
            }
        }
        if violations.is_empty() {
            Verdict::Pass
        } else {
            Verdict::Fail(violations.join("\n"))
        }
    }
}

/// Capacity oracle: allocation guarantees are never oversubscribed. At
/// every controller tick, on every GPU: reserved memory fits the card and
/// Σ resident `request` quotas stay within one whole GPU (the Ω cap the
/// placement and the co-scaler's headroom budget both enforce). For the
/// Dilu-family packers, Σ`limit` additionally respects the configured Γ
/// cap for as long as no vertical resize has retargeted the deployed
/// quotas (a resize intentionally re-derives limits from the grown
/// request, outside placement-time Γ).
pub struct CapacityOracle;

const EPS: f64 = 1e-6;

impl Oracle for CapacityOracle {
    fn name(&self) -> &'static str {
        "capacity"
    }

    fn check(&self, config: &ScenarioConfig, registry: &Registry) -> Verdict {
        let placement = config.system.placement.as_ref();
        let dilu_family = matches!(
            placement.map(|p| p.name.as_str()),
            Some("dilu") | Some("packing") | Some("first-fit")
        );
        let omega =
            placement.and_then(|p| p.params.get("omega")).and_then(|v| v.as_f64()).unwrap_or(1.0);
        let gamma =
            placement.and_then(|p| p.params.get("gamma")).and_then(|v| v.as_f64()).unwrap_or(1.5);
        let check = move |snapshot: &dilu_cluster::AuditSnapshot, out: &mut Vec<String>| {
            let resized: u64 =
                snapshot.functions.iter().map(|f| f.resize_grows + f.resize_shrinks).sum();
            for g in &snapshot.gpus {
                if g.mem_reserved > g.mem_capacity {
                    out.push(format!(
                        "{} at {}: {} B reserved on a {} B card",
                        g.addr, snapshot.now, g.mem_reserved, g.mem_capacity
                    ));
                }
                // Ω: guarantees must fit the card. The placement enforces
                // its configured omega at deploy time; vertical growth may
                // fill the remaining slack but never oversubscribe 1.0.
                let omega_now = if resized == 0 && dilu_family { omega.min(1.0) } else { 1.0 };
                if g.sum_request > omega_now + EPS {
                    out.push(format!(
                        "{} at {}: Σrequest {:.4} exceeds Ω {omega_now}",
                        g.addr, snapshot.now, g.sum_request
                    ));
                }
                if dilu_family && resized == 0 && g.sum_limit > gamma + EPS {
                    out.push(format!(
                        "{} at {}: Σlimit {:.4} exceeds Γ {gamma}",
                        g.addr, snapshot.now, g.sum_limit
                    ));
                }
            }
        };
        let run = run_audited(config, registry, check);
        let (violations, _final_audit, _report) = match run {
            Ok(r) => r,
            Err(e) if e.starts_with("PANIC") => return Verdict::Fail(e),
            Err(e) => return Verdict::Skip(e),
        };
        if violations.is_empty() {
            Verdict::Pass
        } else {
            Verdict::Fail(violations.join("\n"))
        }
    }
}

/// Record-then-replay oracle: recording a run to the binary event log
/// and replaying it from the log alone must reproduce the event stream,
/// every audit digest, and the final report byte-for-byte. The log also
/// round-trips through its wire encoding on the way, so the codec is
/// under test too. Recording and replaying costs two extra full runs per
/// case, so this oracle samples a third of fuzz cases; when it fires,
/// the failing log is kept for the driver to dump next to the TOML
/// reproducer ([`Oracle::artifact`]).
pub struct RecordReplayOracle {
    last_log: RefCell<Option<Vec<u8>>>,
}

impl RecordReplayOracle {
    /// A fresh oracle with no stashed failure artifact.
    pub fn new() -> Self {
        RecordReplayOracle { last_log: RefCell::new(None) }
    }
}

impl Default for RecordReplayOracle {
    fn default() -> Self {
        Self::new()
    }
}

impl Oracle for RecordReplayOracle {
    fn name(&self) -> &'static str {
        "record-replay"
    }

    fn samples(&self, case_seed: u64) -> bool {
        case_seed.is_multiple_of(3)
    }

    fn artifact(&self) -> Option<(String, Vec<u8>)> {
        self.last_log.borrow().as_ref().map(|bytes| ("dlog".to_owned(), bytes.clone()))
    }

    fn check(&self, config: &ScenarioConfig, registry: &Registry) -> Verdict {
        use dilu_replay::{replay, EventLog, ReplayError};
        self.last_log.borrow_mut().take();
        let recorded =
            std::panic::catch_unwind(AssertUnwindSafe(|| dilu_replay::record(config, registry)))
                .unwrap_or_else(|p| {
                    Err(ReplayError::Scenario(format!("PANIC while recording: {}", panic_text(&p))))
                });
        let log = match recorded {
            Ok(log) => log,
            // A scenario the serving plane rejects with a typed error has
            // nothing to record — the same Skip every other oracle gives.
            Err(ReplayError::Scenario(msg)) if !msg.starts_with("PANIC") => {
                return Verdict::Skip(msg)
            }
            Err(e) => return Verdict::Fail(format!("recording failed: {e}")),
        };
        let bytes = log.to_bytes();
        let parsed = match EventLog::from_bytes(&bytes) {
            Ok(parsed) => parsed,
            Err(e) => {
                *self.last_log.borrow_mut() = Some(bytes);
                return Verdict::Fail(format!("recorded log does not parse back: {e}"));
            }
        };
        let verdict = std::panic::catch_unwind(AssertUnwindSafe(|| replay(&parsed, registry)))
            .unwrap_or_else(|p| {
                Err(ReplayError::Scenario(format!("PANIC while replaying: {}", panic_text(&p))))
            });
        match verdict {
            Ok(outcome) if outcome.is_exact() => Verdict::Pass,
            Ok(outcome) => {
                *self.last_log.borrow_mut() = Some(bytes);
                let mut lines = Vec::new();
                if let Some(d) = outcome.event_divergence {
                    lines.push(d);
                }
                if let Some(d) = outcome.audit_divergence {
                    lines.push(d);
                }
                if !outcome.report_matches {
                    lines.push(first_divergence(&outcome.report_json, &parsed.report_json));
                }
                Verdict::Fail(format!("replay diverged from the recording:\n{}", lines.join("\n")))
            }
            Err(e) => {
                *self.last_log.borrow_mut() = Some(bytes);
                Verdict::Fail(format!("replay failed: {e}"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate_case, SpaceConfig};

    fn registry() -> Registry {
        Registry::with_defaults()
    }

    #[test]
    fn all_oracles_pass_a_known_good_case() {
        let config = generate_case(&SpaceConfig::default(), 1);
        for oracle in default_oracles() {
            let verdict = oracle.check(&config, &registry());
            assert!(!verdict.is_fail(), "{}: {verdict:?}", oracle.name());
        }
    }

    #[test]
    fn infeasible_compositions_skip_not_fail() {
        let text = r#"
[cluster]
nodes = 1
gpus_per_node = 1

[system]
preset = "exclusive"

[[functions]]
model = "bert-base"
initial = 2
arrivals = { process = "poisson", rate = 5.0 }

[[functions]]
model = "vgg19"
arrivals = { process = "poisson", rate = 5.0 }
"#;
        let config = ScenarioConfig::from_toml_str(text).unwrap();
        for oracle in default_oracles() {
            let verdict = oracle.check(&config, &registry());
            assert!(
                matches!(verdict, Verdict::Skip(_)),
                "{} must skip the unplaceable scenario: {verdict:?}",
                oracle.name()
            );
        }
    }
}

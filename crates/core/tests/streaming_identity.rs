//! Streaming ≡ materialized, end-to-end: every example scenario must
//! produce a byte-identical `ClusterReport` JSON whether arrivals stream
//! through the bounded window (the default) or are materialized up front
//! (`[sim] arrival_window = 0`).
//!
//! This is the user-visible face of the chunk-invariance contract: the
//! config file, not the deployment path, defines the simulation. A tiny
//! window (1) rides along to hammer chunk boundaries on real scenarios.
//!
//! The heavyweight tiers are covered elsewhere at the same assertion:
//! `macro-scale.toml` by its release-mode bench/CI smoke, and
//! `production-day.toml` by the scaled-down CI smoke — both compare the
//! default window against `--arrival-window 0` byte-for-byte.

use std::path::PathBuf;

use dilu_core::{Registry, ScenarioConfig};

fn scenarios_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/scenarios")
}

/// Runs `config` with the given `[sim] arrival_window` override and
/// returns the report serialized to JSON.
fn report_json(mut config: ScenarioConfig, window: Option<u32>) -> String {
    if let Some(window) = window {
        config.sim.get_or_insert_with(Default::default).arrival_window = Some(window);
    }
    let registry = Registry::with_defaults();
    let report = config
        .into_builder(&registry)
        .and_then(|b| b.build())
        .and_then(|s| s.run())
        .expect("example scenario must build and run");
    serde_json::to_string(&report).expect("report serializes")
}

#[test]
fn every_example_scenario_is_window_invariant() {
    // The macro tiers are asserted identical in release mode by CI (see
    // module docs); in a debug test binary they would dominate the suite.
    let skip = ["macro-scale.toml", "production-day.toml"];
    let mut checked = Vec::new();
    let mut entries: Vec<PathBuf> = std::fs::read_dir(scenarios_dir())
        .expect("examples/scenarios exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "toml"))
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        if skip.contains(&name.as_str()) {
            continue;
        }
        let config = ScenarioConfig::load(&path).expect("example scenario parses");
        let streamed = report_json(config.clone(), None);
        let materialized = report_json(config.clone(), Some(0));
        assert_eq!(streamed, materialized, "{name}: streaming != materialized");
        let tiny = report_json(config, Some(1));
        assert_eq!(streamed, tiny, "{name}: arrival_window = 1 diverged");
        checked.push(name);
    }
    assert!(checked.len() >= 4, "expected the example set, found only {checked:?}");
}

//! The large-scale placement simulator behind §5.5 (Fig. 17, Fig. 18(a)).
//!
//! The paper's 1000-node study concerns *scheduling* — fragmentation and
//! GPU occupancy under thousands of instances — not kernel behaviour, so
//! this simulator works at placement grain: instances arrive, are placed by
//! the same [`Placement`] policies the serving plane uses, live for a
//! while, and depart. No GPU engine is stepped.

use std::collections::BTreeMap;

use dilu_cluster::{
    ClusterView, FunctionId, FunctionKind, FunctionSpec, GpuAddr, GpuView, Placement, Quotas,
    ResidentInfo,
};
use dilu_gpu::{SmRate, TaskClass, GB};
use dilu_models::ModelId;
use dilu_scheduler::{DiluScheduler, ExclusivePlacement, SchedulerConfig};
use dilu_sim::rng::{component_rng, sample_exponential};
use dilu_sim::{EventQueue, SimDuration, SimTime};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::funcs::{profiled_inference, profiled_training};

/// Scale and workload mix of the study.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MacroConfig {
    /// Nodes in the cluster (paper: 1000).
    pub nodes: u32,
    /// GPUs per node (paper: 4).
    pub gpus_per_node: u32,
    /// Instances generated (paper: 3200), mixed 2:2:6
    /// training : LLM inference : non-LLM inference.
    pub instances: u32,
    /// Window over which instances arrive.
    pub arrival_span: SimDuration,
    /// Mean instance lifetime (exponential).
    pub mean_lifetime: SimDuration,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MacroConfig {
    fn default() -> Self {
        MacroConfig {
            nodes: 1000,
            gpus_per_node: 4,
            instances: 3200,
            arrival_span: SimDuration::from_secs(1_200),
            mean_lifetime: SimDuration::from_secs(900),
            seed: 42,
        }
    }
}

/// The systems compared at scale (Fig. 17).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MacroSystem {
    /// Whole-GPU allocation.
    Exclusive,
    /// MPS static partitions at the limit quota, best-fit packed.
    InflessPlusL,
    /// Dilu's resourcing-complementary packing of unequal quotas.
    Dilu,
}

impl MacroSystem {
    /// All systems in Fig. 17 order.
    pub const ALL: [MacroSystem; 3] =
        [MacroSystem::Exclusive, MacroSystem::InflessPlusL, MacroSystem::Dilu];

    /// The paper's label.
    pub fn label(self) -> &'static str {
        match self {
            MacroSystem::Exclusive => "Exclusive",
            MacroSystem::InflessPlusL => "INFless+-l",
            MacroSystem::Dilu => "Dilu",
        }
    }
}

/// Outcome of one large-scale run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MacroResult {
    /// System label.
    pub system: String,
    /// Mean occupied GPUs over the run.
    pub mean_occupied: f64,
    /// Peak occupied GPUs.
    pub peak_occupied: u32,
    /// Mean SM fragmentation on occupied GPUs.
    pub sm_fragmentation: f64,
    /// Mean memory fragmentation on occupied GPUs.
    pub mem_fragmentation: f64,
    /// Occupied-GPU count sampled every 10 s: `(second, gpus)`.
    pub occupied_series: Vec<(u64, u32)>,
    /// Instances that could not be placed (cluster exhausted).
    pub unplaced: u32,
    /// GPU-seconds consumed.
    pub gpu_seconds: f64,
}

#[derive(Debug, Clone)]
struct MacroInstance {
    spec: FunctionSpec,
    /// The SM rate the workload actually needs (its request quota).
    need_sm: f64,
    need_mem: u64,
}

#[derive(Debug, Clone, Default)]
struct GpuState {
    mem_reserved: u64,
    residents: Vec<(u32, ResidentInfo, f64, u64)>, // (instance, info, need_sm, need_mem)
}

enum Event {
    Arrive(u32),
    Depart(u32),
    Sample,
}

/// Generates the 2:2:6 instance mix with profiled quotas.
fn generate_instances(config: &MacroConfig, system: MacroSystem) -> Vec<MacroInstance> {
    let mut rng = component_rng(config.seed, "macro-mix");
    let training_models =
        [ModelId::BertBase, ModelId::ResNet152, ModelId::RobertaLarge, ModelId::Gpt2Large];
    let llm_models = [ModelId::Llama2_7b, ModelId::ChatGlm3_6b];
    let inf_models = [
        ModelId::ResNet152,
        ModelId::Vgg19,
        ModelId::BertBase,
        ModelId::RobertaLarge,
        ModelId::Gpt2Large,
    ];
    (0..config.instances)
        .map(|i| {
            let roll = i % 10;
            let (model, kind, stages) = if roll < 2 {
                let m = training_models[rng.gen_range(0..training_models.len())];
                (m, FunctionKind::Training { workers: 1, iterations: u64::MAX }, 1)
            } else if roll < 4 {
                let m = llm_models[rng.gen_range(0..llm_models.len())];
                // Distributed LLM deployment over GPU fragments is part of
                // Dilu's resource-complementarity (the paper's -RC ablation
                // removes exactly this); baselines deploy LLMs whole.
                let stages = if system == MacroSystem::Dilu { 4 } else { 1 };
                (m, FunctionKind::Inference { slo: m.profile().slo, batch: 2 }, stages)
            } else {
                let m = inf_models[rng.gen_range(0..inf_models.len())];
                (m, FunctionKind::Inference { slo: m.profile().slo, batch: 4 }, 1)
            };
            let profile = model.profile();
            let (request, limit, mem, need_sm) = match kind {
                FunctionKind::Training { .. } => {
                    let q = profiled_training(model);
                    (q.request.smr, q.limit.smr, profile.training.mem_bytes, q.request.smr)
                }
                FunctionKind::Inference { .. } => {
                    let p = profiled_inference(model);
                    let mem = if stages > 1 {
                        profile.infer_mem_bytes / u64::from(stages) + GB / 2
                    } else {
                        profile.infer_mem_bytes
                    };
                    let div = f64::from(stages);
                    (
                        p.request.scale(1.0 / div),
                        p.limit.scale(1.0 / div),
                        mem,
                        p.request.scale(1.0 / div),
                    )
                }
            };
            let quotas = match system {
                MacroSystem::Exclusive => Quotas::equal(SmRate::FULL, mem),
                MacroSystem::InflessPlusL => Quotas::equal(limit, mem),
                MacroSystem::Dilu => Quotas::new(request, limit, mem),
            };
            MacroInstance {
                spec: FunctionSpec {
                    id: FunctionId(i),
                    name: format!("{}-{i}", profile.name),
                    model,
                    kind,
                    quotas,
                    gpus_per_instance: stages,
                },
                need_sm: need_sm.as_fraction(),
                need_mem: mem,
            }
        })
        .collect()
}

fn placement_for(system: MacroSystem, gamma: f64) -> Box<dyn Placement> {
    match system {
        MacroSystem::Exclusive => Box::new(ExclusivePlacement::new()),
        MacroSystem::InflessPlusL => Box::new(DiluScheduler::new(SchedulerConfig {
            workload_affinity: false,
            // Static MPS: the limit *is* the allocation, so Σlimit ≤ 1.
            omega: 1.0,
            gamma: 1.0,
            ..SchedulerConfig::default()
        })),
        MacroSystem::Dilu => {
            Box::new(DiluScheduler::new(SchedulerConfig { gamma, ..SchedulerConfig::default() }))
        }
    }
}

/// Runs the large-scale placement study for one system.
///
/// `gamma` is Dilu's oversubscription coefficient (Fig. 18(a) sweeps it;
/// use `1.5` for the paper's default).
pub fn run_macro(system: MacroSystem, config: &MacroConfig, gamma: f64) -> MacroResult {
    let instances = generate_instances(config, system);
    let mut placement = placement_for(system, gamma);
    let mut rng = component_rng(config.seed, "macro-times");
    let gpu_mem = 40 * GB;
    let addrs: Vec<GpuAddr> = (0..config.nodes)
        .flat_map(|n| (0..config.gpus_per_node).map(move |g| GpuAddr { node: n, gpu: g }))
        .collect();
    let mut gpus: BTreeMap<GpuAddr, GpuState> =
        addrs.iter().map(|&a| (a, GpuState::default())).collect();
    let mut assignments: BTreeMap<u32, Vec<GpuAddr>> = BTreeMap::new();

    let mut events = EventQueue::new();
    let horizon = SimTime::ZERO + config.arrival_span + config.mean_lifetime * 2;
    for inst in &instances {
        let at =
            SimTime::from_secs_f64(rng.gen_range(0.0..config.arrival_span.as_secs_f64().max(1.0)));
        events.push(at, Event::Arrive(inst.spec.id.0));
    }
    let mut t = SimTime::ZERO;
    while t < horizon {
        events.push(t, Event::Sample);
        t += SimDuration::from_secs(10);
    }

    let mut unplaced = 0u32;
    let mut samples: Vec<(u64, u32, f64, f64)> = Vec::new();
    let mut gpu_seconds = 0.0;
    let mut last_sample = SimTime::ZERO;
    let mut occupied_now = 0u32;

    while let Some((now, event)) = events.pop() {
        match event {
            Event::Arrive(id) => {
                let inst = &instances[id as usize];
                let view = ClusterView {
                    gpus: gpus
                        .iter()
                        .map(|(&addr, st)| GpuView {
                            addr,
                            mem_capacity: gpu_mem,
                            mem_reserved: st.mem_reserved,
                            residents: st.residents.iter().map(|r| r.1).collect(),
                        })
                        .collect(),
                };
                match placement.place(&inst.spec, &view) {
                    Some(chosen) => {
                        let class = if inst.spec.kind.is_inference() {
                            TaskClass::SloSensitive
                        } else {
                            TaskClass::BestEffort
                        };
                        for addr in &chosen {
                            let st = gpus.get_mut(addr).expect("valid GPU");
                            st.mem_reserved += inst.spec.quotas.mem_bytes;
                            st.residents.push((
                                id,
                                ResidentInfo {
                                    func: inst.spec.id,
                                    class,
                                    request: inst.spec.quotas.request,
                                    limit: inst.spec.quotas.limit,
                                    mem_bytes: inst.spec.quotas.mem_bytes,
                                },
                                // need_sm is already a per-stage quantity.
                                inst.need_sm,
                                inst.need_mem,
                            ));
                        }
                        assignments.insert(id, chosen);
                        let life =
                            sample_exponential(&mut rng, 1.0 / config.mean_lifetime.as_secs_f64());
                        events.push(now + SimDuration::from_secs_f64(life), Event::Depart(id));
                    }
                    None => unplaced += 1,
                }
            }
            Event::Depart(id) => {
                if let Some(chosen) = assignments.remove(&id) {
                    for addr in chosen {
                        let st = gpus.get_mut(&addr).expect("valid GPU");
                        let inst = &instances[id as usize];
                        st.mem_reserved -= inst.spec.quotas.mem_bytes;
                        st.residents.retain(|(rid, ..)| *rid != id);
                    }
                }
            }
            Event::Sample => {
                gpu_seconds +=
                    f64::from(occupied_now) * now.saturating_since(last_sample).as_secs_f64();
                last_sample = now;
                let mut occupied = 0u32;
                let mut sm_frag = 0.0;
                let mut mem_frag = 0.0;
                for st in gpus.values() {
                    if st.residents.is_empty() {
                        continue;
                    }
                    occupied += 1;
                    let used_sm: f64 = st.residents.iter().map(|r| r.2).sum();
                    sm_frag += 1.0 - used_sm.min(1.0);
                    let used_mem: u64 = st.residents.iter().map(|r| r.1.mem_bytes).sum();
                    mem_frag += 1.0 - (used_mem.min(gpu_mem) as f64 / gpu_mem as f64);
                }
                occupied_now = occupied;
                let (s, m) = if occupied > 0 {
                    (sm_frag / f64::from(occupied), mem_frag / f64::from(occupied))
                } else {
                    (0.0, 0.0)
                };
                samples.push((now.as_secs(), occupied, s, m));
            }
        }
    }

    let busy: Vec<&(u64, u32, f64, f64)> = samples.iter().filter(|s| s.1 > 0).collect();
    let n = busy.len().max(1) as f64;
    MacroResult {
        system: system.label().to_string(),
        mean_occupied: busy.iter().map(|s| f64::from(s.1)).sum::<f64>() / n,
        peak_occupied: samples.iter().map(|s| s.1).max().unwrap_or(0),
        sm_fragmentation: busy.iter().map(|s| s.2).sum::<f64>() / n,
        mem_fragmentation: busy.iter().map(|s| s.3).sum::<f64>() / n,
        occupied_series: samples.iter().map(|s| (s.0, s.1)).collect(),
        unplaced,
        gpu_seconds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> MacroConfig {
        MacroConfig {
            nodes: 40,
            gpus_per_node: 4,
            instances: 120,
            arrival_span: SimDuration::from_secs(200),
            mean_lifetime: SimDuration::from_secs(150),
            seed: 7,
        }
    }

    #[test]
    fn dilu_occupies_fewer_gpus_than_exclusive() {
        let cfg = small();
        let excl = run_macro(MacroSystem::Exclusive, &cfg, 1.5);
        let dilu = run_macro(MacroSystem::Dilu, &cfg, 1.5);
        assert_eq!(excl.unplaced, 0);
        assert_eq!(dilu.unplaced, 0);
        assert!(
            dilu.mean_occupied < excl.mean_occupied * 0.9,
            "dilu {} vs exclusive {}",
            dilu.mean_occupied,
            excl.mean_occupied
        );
        assert!(
            dilu.gpu_seconds < excl.gpu_seconds * 0.9,
            "dilu cost {} vs exclusive {}",
            dilu.gpu_seconds,
            excl.gpu_seconds
        );
    }

    #[test]
    fn fragmentation_ordering_matches_fig17() {
        let cfg = small();
        let excl = run_macro(MacroSystem::Exclusive, &cfg, 1.5);
        let infl = run_macro(MacroSystem::InflessPlusL, &cfg, 1.5);
        let dilu = run_macro(MacroSystem::Dilu, &cfg, 1.5);
        // Dilu keeps the least fragmentation in both dimensions; memory
        // fragmentation also orders Exclusive worst (whole cards per
        // instance). The Exclusive-vs-INFless SM ordering needs paper scale
        // to separate cleanly, so it is asserted only in EXPERIMENTS.md.
        assert!(dilu.sm_fragmentation < infl.sm_fragmentation);
        assert!(dilu.sm_fragmentation < excl.sm_fragmentation);
        assert!(dilu.mem_fragmentation <= infl.mem_fragmentation + 1e-9);
        assert!(infl.mem_fragmentation < excl.mem_fragmentation);
    }

    #[test]
    fn higher_gamma_does_not_increase_occupancy() {
        let cfg = small();
        let tight = run_macro(MacroSystem::Dilu, &cfg, 1.0);
        let loose = run_macro(MacroSystem::Dilu, &cfg, 2.0);
        assert!(loose.mean_occupied <= tight.mean_occupied + 1e-9);
    }
}

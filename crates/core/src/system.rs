//! System presets: Dilu, its ablations, and the cluster-level baselines of
//! §5.1, expressed as pre-populated [`ScenarioBuilder`]s.
//!
//! [`SystemKind`] is no longer the closed front door of composition — any
//! mix of placement/autoscaler/share policy goes through
//! [`ScenarioBuilder`] directly. Each variant here is a *preset*: a
//! builder with the paper's composition filled in, every knob still
//! swappable before `build()`.

use dilu_baselines::{KeepAliveScaler, QuotaSource, ReactiveScaler};
use dilu_cluster::{ClusterSim, ClusterSpec, SimConfig};
use dilu_rckm::RckmConfig;
use dilu_scaler::{LazyScaler, ScalerConfig};
use dilu_scheduler::{DiluScheduler, ExclusivePlacement, SchedulerConfig};
use serde::{Deserialize, Serialize};

use crate::factories::{FairFactory, FastGsFactory, MpsFactory, RckmFactory};
use crate::ScenarioBuilder;

/// Every preset system of the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SystemKind {
    /// The full system: Algorithm 1 scheduling, lazy scaling, RCKM tokens.
    Dilu,
    /// Ablation −RC: first-fit packing, no multi-GPU LLM deployment.
    DiluNoRc,
    /// Ablation −WA: no workload-affinity preference.
    DiluNoWa,
    /// Ablation −VS: Dilu scheduling/scaling over static MPS-l grants.
    DiluNoVs,
    /// Whole-GPU allocation with keep-alive scaling (Kubernetes-style).
    Exclusive,
    /// INFless+ with MPS partitions at the `limit` quota.
    InflessPlusL,
    /// INFless+ with MPS partitions at the `request` quota.
    InflessPlusR,
    /// FaST-GS+ — eager scaling over FaST-GS spatio-temporal sharing.
    FastGsPlus,
}

impl SystemKind {
    /// The systems compared in the end-to-end study (Fig. 15).
    pub const END_TO_END: [SystemKind; 7] = [
        SystemKind::Exclusive,
        SystemKind::InflessPlusL,
        SystemKind::InflessPlusR,
        SystemKind::Dilu,
        SystemKind::DiluNoRc,
        SystemKind::DiluNoWa,
        SystemKind::DiluNoVs,
    ];

    /// Every preset.
    pub const ALL: [SystemKind; 8] = [
        SystemKind::Dilu,
        SystemKind::DiluNoRc,
        SystemKind::DiluNoWa,
        SystemKind::DiluNoVs,
        SystemKind::Exclusive,
        SystemKind::InflessPlusL,
        SystemKind::InflessPlusR,
        SystemKind::FastGsPlus,
    ];

    /// The paper's label for the system.
    pub fn label(self) -> &'static str {
        match self {
            SystemKind::Dilu => "Dilu",
            SystemKind::DiluNoRc => "-RC",
            SystemKind::DiluNoWa => "-WA",
            SystemKind::DiluNoVs => "-VS",
            SystemKind::Exclusive => "Exclusive",
            SystemKind::InflessPlusL => "INFless+-l",
            SystemKind::InflessPlusR => "INFless+-r",
            SystemKind::FastGsPlus => "FaST-GS+",
        }
    }

    /// The stable kebab-case preset name used by scenario configs.
    pub fn name(self) -> &'static str {
        match self {
            SystemKind::Dilu => "dilu",
            SystemKind::DiluNoRc => "dilu-no-rc",
            SystemKind::DiluNoWa => "dilu-no-wa",
            SystemKind::DiluNoVs => "dilu-no-vs",
            SystemKind::Exclusive => "exclusive",
            SystemKind::InflessPlusL => "infless-l",
            SystemKind::InflessPlusR => "infless-r",
            SystemKind::FastGsPlus => "fast-gs",
        }
    }

    /// All preset names, in [`SystemKind::ALL`] order.
    pub fn names() -> [&'static str; 8] {
        SystemKind::ALL.map(SystemKind::name)
    }

    /// Looks a preset up by its config name ([`name`](Self::name)) or the
    /// paper label ([`label`](Self::label)), case-insensitively.
    pub fn from_name(name: &str) -> Option<SystemKind> {
        SystemKind::ALL
            .into_iter()
            .find(|k| k.name().eq_ignore_ascii_case(name) || k.label().eq_ignore_ascii_case(name))
    }

    /// `true` if this system deploys LLM inference across multiple GPUs.
    ///
    /// Distributed LLM deployment over GPU fragments belongs to Dilu's
    /// resource complementarity — the −RC ablation removes exactly it, and
    /// the baselines deploy LLMs whole.
    pub fn distributes_llms(self) -> bool {
        matches!(self, SystemKind::Dilu | SystemKind::DiluNoWa | SystemKind::DiluNoVs)
    }

    /// A [`ScenarioBuilder`] pre-populated with this system's composition
    /// and default knobs. Every component can still be swapped before
    /// `build()`.
    pub fn builder(self) -> ScenarioBuilder {
        self.builder_with(SystemOverrides::default())
    }

    /// [`builder`](Self::builder) with explicit knob overrides
    /// (sensitivity studies).
    pub fn builder_with(self, ov: SystemOverrides) -> ScenarioBuilder {
        let sim_config = ov.sim.unwrap_or_default();
        let rckm = ov.rckm.unwrap_or_default();
        let dilu_sched = ov.scheduler.unwrap_or_default();
        let scaler = ov.scaler.unwrap_or_default();
        // INFless-style packers: complementarity scoring without Dilu's
        // affinity pass.
        let packing = SchedulerConfig { workload_affinity: false, ..dilu_sched };
        let builder = ScenarioBuilder::new().sim_config(sim_config);
        match self {
            SystemKind::Dilu => builder
                .placement(DiluScheduler::new(dilu_sched))
                .autoscaler(LazyScaler::new(scaler))
                .share_policy(RckmFactory(rckm)),
            SystemKind::DiluNoRc => builder
                .placement(DiluScheduler::new(SchedulerConfig {
                    resource_complementary: false,
                    ..dilu_sched
                }))
                .autoscaler(LazyScaler::new(scaler))
                .share_policy(RckmFactory(rckm)),
            SystemKind::DiluNoWa => builder
                .placement(DiluScheduler::new(SchedulerConfig {
                    workload_affinity: false,
                    ..dilu_sched
                }))
                .autoscaler(LazyScaler::new(scaler))
                .share_policy(RckmFactory(rckm)),
            SystemKind::DiluNoVs => builder
                .placement(DiluScheduler::new(dilu_sched))
                .autoscaler(LazyScaler::new(scaler))
                .share_policy(MpsFactory(QuotaSource::Limit)),
            SystemKind::Exclusive => builder
                .placement(ExclusivePlacement::new())
                .autoscaler(KeepAliveScaler::default())
                .share_policy(FairFactory),
            SystemKind::InflessPlusL => builder
                .placement(DiluScheduler::new(packing))
                .autoscaler(KeepAliveScaler::default())
                .share_policy(MpsFactory(QuotaSource::Limit)),
            SystemKind::InflessPlusR => builder
                .placement(DiluScheduler::new(packing))
                .autoscaler(KeepAliveScaler::default())
                .share_policy(MpsFactory(QuotaSource::Request)),
            SystemKind::FastGsPlus => builder
                .placement(DiluScheduler::new(packing))
                .autoscaler(ReactiveScaler::new())
                .share_policy(FastGsFactory),
        }
    }
}

/// Knob overrides for sensitivity studies.
#[derive(Debug, Clone, Copy, Default)]
pub struct SystemOverrides {
    /// Overrides the RCKM configuration (Fig. 18(b) MaxTokens sweep).
    pub rckm: Option<RckmConfig>,
    /// Overrides the scheduler configuration (Fig. 18(a) γ sweep).
    pub scheduler: Option<SchedulerConfig>,
    /// Overrides the lazy-scaler configuration.
    pub scaler: Option<ScalerConfig>,
    /// Overrides the serving-plane configuration.
    pub sim: Option<SimConfig>,
}

/// Builds a ready-to-use cluster simulator for `kind` with default knobs.
pub fn build_sim(kind: SystemKind, spec: ClusterSpec) -> ClusterSim {
    build_sim_with(kind, spec, SystemOverrides::default())
}

/// Builds a cluster simulator for `kind` with explicit overrides.
///
/// Equivalent to `kind.builder_with(ov).cluster(spec).build_sim()` — the
/// presets populate every component, so this cannot fail.
pub fn build_sim_with(kind: SystemKind, spec: ClusterSpec, ov: SystemOverrides) -> ClusterSim {
    kind.builder_with(ov).cluster(spec).build_sim().expect("presets populate every component")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper() {
        assert_eq!(SystemKind::Dilu.label(), "Dilu");
        assert_eq!(SystemKind::InflessPlusL.label(), "INFless+-l");
        assert_eq!(SystemKind::DiluNoVs.label(), "-VS");
    }

    #[test]
    fn names_round_trip() {
        for kind in SystemKind::ALL {
            assert_eq!(SystemKind::from_name(kind.name()), Some(kind));
            assert_eq!(SystemKind::from_name(kind.label()), Some(kind));
        }
        assert_eq!(SystemKind::from_name("DILU"), Some(SystemKind::Dilu));
        assert_eq!(SystemKind::from_name("nope"), None);
    }

    #[test]
    fn llm_distribution_matches_rc_semantics() {
        assert!(SystemKind::Dilu.distributes_llms());
        assert!(SystemKind::DiluNoVs.distributes_llms());
        assert!(!SystemKind::DiluNoRc.distributes_llms());
        assert!(!SystemKind::Exclusive.distributes_llms());
        assert!(!SystemKind::InflessPlusL.distributes_llms());
    }

    #[test]
    fn every_system_builds() {
        for kind in SystemKind::END_TO_END {
            let sim = build_sim(kind, ClusterSpec::single_node(2));
            assert_eq!(sim.spec().total_gpus(), 2);
        }
        build_sim(SystemKind::FastGsPlus, ClusterSpec::single_node(1));
    }

    #[test]
    fn presets_expose_component_names() {
        let sim = build_sim(SystemKind::Dilu, ClusterSpec::single_node(1));
        assert_eq!(sim.placement_name(), "dilu-scheduler");
        assert_eq!(sim.autoscaler_name(), "dilu-lazy-scaler");
        assert_eq!(sim.share_policy_name(), "dilu-rckm");
        let excl = build_sim(SystemKind::Exclusive, ClusterSpec::single_node(1));
        assert_eq!(excl.placement_name(), "exclusive");
        assert_eq!(excl.share_policy_name(), "fair-share");
    }
}

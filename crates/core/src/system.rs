//! System compositions: Dilu, its ablations, and the cluster-level
//! baselines of §5.1.

use dilu_baselines::{KeepAliveScaler, QuotaSource, ReactiveScaler};
use dilu_cluster::{ClusterSim, ClusterSpec, SimConfig};
use dilu_rckm::RckmConfig;
use dilu_scaler::{LazyScaler, ScalerConfig};
use dilu_scheduler::{DiluScheduler, ExclusivePlacement, SchedulerConfig};
use serde::{Deserialize, Serialize};

use crate::factories::{FairFactory, FastGsFactory, MpsFactory, RckmFactory};

/// Every runnable system of the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SystemKind {
    /// The full system: Algorithm 1 scheduling, lazy scaling, RCKM tokens.
    Dilu,
    /// Ablation −RC: first-fit packing, no multi-GPU LLM deployment.
    DiluNoRc,
    /// Ablation −WA: no workload-affinity preference.
    DiluNoWa,
    /// Ablation −VS: Dilu scheduling/scaling over static MPS-l grants.
    DiluNoVs,
    /// Whole-GPU allocation with keep-alive scaling (Kubernetes-style).
    Exclusive,
    /// INFless+ with MPS partitions at the `limit` quota.
    InflessPlusL,
    /// INFless+ with MPS partitions at the `request` quota.
    InflessPlusR,
    /// FaST-GS+ — eager scaling over FaST-GS spatio-temporal sharing.
    FastGsPlus,
}

impl SystemKind {
    /// The systems compared in the end-to-end study (Fig. 15).
    pub const END_TO_END: [SystemKind; 7] = [
        SystemKind::Exclusive,
        SystemKind::InflessPlusL,
        SystemKind::InflessPlusR,
        SystemKind::Dilu,
        SystemKind::DiluNoRc,
        SystemKind::DiluNoWa,
        SystemKind::DiluNoVs,
    ];

    /// The paper's label for the system.
    pub fn label(self) -> &'static str {
        match self {
            SystemKind::Dilu => "Dilu",
            SystemKind::DiluNoRc => "-RC",
            SystemKind::DiluNoWa => "-WA",
            SystemKind::DiluNoVs => "-VS",
            SystemKind::Exclusive => "Exclusive",
            SystemKind::InflessPlusL => "INFless+-l",
            SystemKind::InflessPlusR => "INFless+-r",
            SystemKind::FastGsPlus => "FaST-GS+",
        }
    }

    /// `true` if this system deploys LLM inference across multiple GPUs.
    ///
    /// Distributed LLM deployment over GPU fragments belongs to Dilu's
    /// resource complementarity — the −RC ablation removes exactly it, and
    /// the baselines deploy LLMs whole.
    pub fn distributes_llms(self) -> bool {
        matches!(self, SystemKind::Dilu | SystemKind::DiluNoWa | SystemKind::DiluNoVs)
    }
}

/// Knob overrides for sensitivity studies.
#[derive(Debug, Clone, Copy, Default)]
pub struct SystemOverrides {
    /// Overrides the RCKM configuration (Fig. 18(b) MaxTokens sweep).
    pub rckm: Option<RckmConfig>,
    /// Overrides the scheduler configuration (Fig. 18(a) γ sweep).
    pub scheduler: Option<SchedulerConfig>,
    /// Overrides the lazy-scaler configuration.
    pub scaler: Option<ScalerConfig>,
    /// Overrides the serving-plane configuration.
    pub sim: Option<SimConfig>,
}

/// Builds a ready-to-use cluster simulator for `kind` with default knobs.
pub fn build_sim(kind: SystemKind, spec: ClusterSpec) -> ClusterSim {
    build_sim_with(kind, spec, SystemOverrides::default())
}

/// Builds a cluster simulator for `kind` with explicit overrides.
pub fn build_sim_with(kind: SystemKind, spec: ClusterSpec, ov: SystemOverrides) -> ClusterSim {
    let sim_config = ov.sim.unwrap_or_default();
    let rckm = ov.rckm.unwrap_or_default();
    let dilu_sched = ov.scheduler.unwrap_or_default();
    let scaler = ov.scaler.unwrap_or_default();
    // INFless-style packers: complementarity scoring without Dilu's
    // affinity pass.
    let packing = SchedulerConfig { workload_affinity: false, ..dilu_sched };
    match kind {
        SystemKind::Dilu => ClusterSim::new(
            spec,
            sim_config,
            Box::new(DiluScheduler::new(dilu_sched)),
            Box::new(LazyScaler::new(scaler)),
            &RckmFactory(rckm),
        ),
        SystemKind::DiluNoRc => ClusterSim::new(
            spec,
            sim_config,
            Box::new(DiluScheduler::new(SchedulerConfig {
                resource_complementary: false,
                ..dilu_sched
            })),
            Box::new(LazyScaler::new(scaler)),
            &RckmFactory(rckm),
        ),
        SystemKind::DiluNoWa => ClusterSim::new(
            spec,
            sim_config,
            Box::new(DiluScheduler::new(SchedulerConfig {
                workload_affinity: false,
                ..dilu_sched
            })),
            Box::new(LazyScaler::new(scaler)),
            &RckmFactory(rckm),
        ),
        SystemKind::DiluNoVs => ClusterSim::new(
            spec,
            sim_config,
            Box::new(DiluScheduler::new(dilu_sched)),
            Box::new(LazyScaler::new(scaler)),
            &MpsFactory(QuotaSource::Limit),
        ),
        SystemKind::Exclusive => ClusterSim::new(
            spec,
            sim_config,
            Box::new(ExclusivePlacement::new()),
            Box::new(KeepAliveScaler::default()),
            &FairFactory,
        ),
        SystemKind::InflessPlusL => ClusterSim::new(
            spec,
            sim_config,
            Box::new(DiluScheduler::new(packing)),
            Box::new(KeepAliveScaler::default()),
            &MpsFactory(QuotaSource::Limit),
        ),
        SystemKind::InflessPlusR => ClusterSim::new(
            spec,
            sim_config,
            Box::new(DiluScheduler::new(packing)),
            Box::new(KeepAliveScaler::default()),
            &MpsFactory(QuotaSource::Request),
        ),
        SystemKind::FastGsPlus => ClusterSim::new(
            spec,
            sim_config,
            Box::new(DiluScheduler::new(packing)),
            Box::new(ReactiveScaler::new()),
            &FastGsFactory,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper() {
        assert_eq!(SystemKind::Dilu.label(), "Dilu");
        assert_eq!(SystemKind::InflessPlusL.label(), "INFless+-l");
        assert_eq!(SystemKind::DiluNoVs.label(), "-VS");
    }

    #[test]
    fn llm_distribution_matches_rc_semantics() {
        assert!(SystemKind::Dilu.distributes_llms());
        assert!(SystemKind::DiluNoVs.distributes_llms());
        assert!(!SystemKind::DiluNoRc.distributes_llms());
        assert!(!SystemKind::Exclusive.distributes_llms());
        assert!(!SystemKind::InflessPlusL.distributes_llms());
    }

    #[test]
    fn every_system_builds() {
        for kind in SystemKind::END_TO_END {
            let sim = build_sim(kind, ClusterSpec::single_node(2));
            assert_eq!(sim.spec().total_gpus(), 2);
        }
        build_sim(SystemKind::FastGsPlus, ClusterSpec::single_node(1));
    }
}

//! ASCII tables and JSON dumps for the experiment harness.

use std::fmt::Write as _;
use std::path::PathBuf;

use serde::Serialize;

/// A simple fixed-width ASCII table builder for bench output.
///
/// # Examples
///
/// ```
/// use dilu_core::table::Table;
///
/// let mut t = Table::new(["system", "p95 (ms)"]);
/// t.row(["Dilu", "31.2"]);
/// let s = t.to_string();
/// assert!(s.contains("Dilu"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<I, S>(headers: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Table { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends one row; missing cells render empty, extras are kept.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no data rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let cols = self.headers.len().max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut line = String::new();
        for (i, h) in self.headers.iter().enumerate() {
            let _ = write!(line, "{:<width$}  ", h, width = widths[i]);
        }
        writeln!(f, "{}", line.trim_end())?;
        writeln!(f, "{}", "-".repeat(line.trim_end().len()))?;
        for row in &self.rows {
            let mut line = String::new();
            for (i, cell) in row.iter().enumerate() {
                let _ = write!(line, "{:<width$}  ", cell, width = widths[i]);
            }
            writeln!(f, "{}", line.trim_end())?;
        }
        Ok(())
    }
}

/// The shared JSON dump directory: `target/experiments/` under the
/// workspace root (found by walking up to the directory holding
/// `Cargo.lock`; bench binaries run with the package as cwd).
pub fn experiments_dir() -> PathBuf {
    let mut root = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    while !root.join("Cargo.lock").exists() {
        if !root.pop() {
            root = PathBuf::from(".");
            break;
        }
    }
    root.join("target/experiments")
}

/// Writes an experiment result as JSON under the workspace's
/// `target/experiments/<name>.json` so EXPERIMENTS.md rows are regenerable.
/// Failures are reported, not fatal.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    write_json_at(&experiments_dir().join(format!("{name}.json")), value);
}

/// Writes `value` as pretty JSON to `path`, creating parent directories.
/// Failures are reported, not fatal.
pub fn write_json_at<T: Serialize + ?Sized>(path: &std::path::Path, value: &T) {
    if let Some(dir) = path.parent() {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("warning: cannot create {}: {e}", dir.display());
            return;
        }
    }
    match serde_json::to_string_pretty(value) {
        Ok(json) => {
            if let Err(e) = std::fs::write(path, json) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            }
        }
        Err(e) => eprintln!("warning: cannot serialise {}: {e}", path.display()),
    }
}

/// Formats a ratio as `x.xx×`.
pub fn times(x: f64) -> String {
    format!("{x:.2}x")
}

/// Formats a fraction as a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let mut t = Table::new(["a", "long-header"]);
        t.row(["wide-cell", "1"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].contains("long-header"));
        assert!(lines[1].starts_with('-'));
        assert!(lines[2].starts_with("wide-cell"));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(times(1.8), "1.80x");
        assert_eq!(pct(0.123), "12.3%");
    }
}

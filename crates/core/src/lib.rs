//! The Dilu system: composing the control plane (profiler + scheduler),
//! scaling plane (global lazy scaler + per-GPU RCKM), and serving plane
//! (cluster simulator) into runnable systems — Dilu, its ablations, and
//! every baseline of the paper's evaluation — plus the experiment harness
//! that regenerates each table and figure.
//!
//! # Examples
//!
//! Build a full Dilu cluster and serve a bursty inference function:
//!
//! ```
//! use dilu_core::{SystemKind, build_sim, funcs};
//! use dilu_cluster::ClusterSpec;
//! use dilu_models::ModelId;
//! use dilu_sim::SimTime;
//! use dilu_workload::{ArrivalProcess, PoissonProcess};
//!
//! let mut sim = build_sim(SystemKind::Dilu, ClusterSpec::single_node(2));
//! let spec = funcs::inference_function(1, ModelId::BertBase);
//! let arrivals = PoissonProcess::new(30.0, 7).generate(SimTime::from_secs(10));
//! sim.deploy_inference(spec, 1, arrivals)?;
//! sim.run_until(SimTime::from_secs(12));
//! let report = sim.into_report();
//! assert!(report.inference.values().next().unwrap().completed > 0);
//! # Ok::<(), dilu_cluster::DeployError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod factories;
pub mod funcs;
pub mod macrosim;
mod system;
pub mod table;

pub mod experiments;

pub use factories::{
    FairFactory, FastGsFactory, MpsFactory, NullAutoscaler, PinnedPlacement, RckmFactory,
    TgsFactory,
};
pub use system::{build_sim, build_sim_with, SystemKind, SystemOverrides};

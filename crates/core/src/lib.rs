//! The Dilu system: composing the control plane (profiler + scheduler),
//! scaling plane (global lazy scaler + per-GPU RCKM), and serving plane
//! (cluster simulator) into runnable systems — Dilu, its ablations, and
//! every baseline of the paper's evaluation — plus the experiment harness
//! that regenerates each table and figure.
//!
//! # Examples
//!
//! Serve a bursty inference function on the full Dilu stack via a
//! [`SystemKind`] preset builder:
//!
//! ```
//! use dilu_core::{funcs, SystemKind};
//! use dilu_cluster::ClusterSpec;
//! use dilu_models::ModelId;
//! use dilu_sim::SimDuration;
//! use dilu_workload::PoissonProcess;
//!
//! let report = SystemKind::Dilu
//!     .builder()
//!     .cluster(ClusterSpec::single_node(2))
//!     .horizon(SimDuration::from_secs(10))
//!     .function(funcs::inference_function(1, ModelId::BertBase))
//!     .arrivals(PoissonProcess::new(30.0, 7))
//!     .build()?
//!     .run()?;
//! assert!(report.inference.values().next().unwrap().completed > 0);
//! # Ok::<(), dilu_core::ScenarioError>(())
//! ```
//!
//! Or compose a system no preset describes — any
//! [`Placement`](dilu_cluster::Placement) /
//! [`Autoscaler`](dilu_cluster::Autoscaler) /
//! [`PolicyFactory`](dilu_cluster::PolicyFactory) mix goes:
//!
//! ```
//! use dilu_core::{funcs, MpsFactory, Scenario};
//! use dilu_baselines::{KeepAliveScaler, QuotaSource};
//! use dilu_cluster::ClusterSpec;
//! use dilu_models::ModelId;
//! use dilu_scheduler::{DiluScheduler, SchedulerConfig};
//! use dilu_sim::SimDuration;
//!
//! let scenario = Scenario::builder()
//!     .cluster(ClusterSpec::single_node(2))
//!     .placement(DiluScheduler::new(SchedulerConfig { gamma: 2.0, ..Default::default() }))
//!     .autoscaler(KeepAliveScaler::default())
//!     .share_policy(MpsFactory(QuotaSource::Request))
//!     .horizon(SimDuration::from_secs(5))
//!     .function(funcs::inference_function(1, ModelId::Vgg19))
//!     .arrival_times(Vec::new())
//!     .build()?;
//! assert_eq!(scenario.sim().share_policy_name(), "mps-r");
//! # Ok::<(), dilu_core::ScenarioError>(())
//! ```
//!
//! The same compositions load from TOML/JSON via [`ScenarioConfig`] +
//! [`Registry`], and `build_sim`/[`build_sim_with`] keep the original
//! closed API working on top of the presets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod factories;
pub mod funcs;
pub mod macrosim;
pub mod registry;
mod scenario;
mod system;
pub mod table;

pub mod experiments;

pub use config::{
    ClusterSection, ComponentSection, FunctionSection, NetworkSection, RunSection, ScenarioConfig,
    SimSection, SystemSection,
};
pub use factories::{
    custom_share_policy, FairFactory, FastGsFactory, MpsFactory, NullAutoscaler, PinnedPlacement,
    RckmFactory, TgsFactory,
};
pub use registry::{Params, Registry};
pub use scenario::{Scenario, ScenarioBuilder, ScenarioError};
pub use system::{build_sim, build_sim_with, SystemKind, SystemOverrides};

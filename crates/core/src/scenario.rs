//! The open composition API: build any system — Dilu, an ablation, a
//! baseline, or something new — from parts, then attach functions and
//! workloads and run it.
//!
//! [`ScenarioBuilder`] is the single front door over the serving-plane
//! substrate: any [`Placement`], [`Autoscaler`], and [`PolicyFactory`] can
//! be mixed freely, so new configurations (hybrid autoscalers,
//! spatial-partition baselines, ...) need no enum variant or match arm.
//! [`SystemKind`](crate::SystemKind) presets return pre-populated builders,
//! and [`ScenarioConfig`](crate::ScenarioConfig) deserializes TOML/JSON
//! straight into one.
//!
//! # Examples
//!
//! ```
//! use dilu_core::{funcs, Scenario, SystemKind};
//! use dilu_cluster::ClusterSpec;
//! use dilu_models::ModelId;
//! use dilu_sim::SimDuration;
//! use dilu_workload::PoissonProcess;
//!
//! let report = SystemKind::Dilu
//!     .builder()
//!     .cluster(ClusterSpec::single_node(2))
//!     .horizon(SimDuration::from_secs(10))
//!     .function(funcs::inference_function(1, ModelId::BertBase))
//!     .arrivals(PoissonProcess::new(20.0, 7))
//!     .build()?
//!     .run()?;
//! assert!(report.inference.values().next().unwrap().completed > 0);
//! # Ok::<(), dilu_core::ScenarioError>(())
//! ```

use dilu_cluster::ClusterReport;
use dilu_cluster::{
    Autoscaler, ClusterSim, ClusterSpec, DeployError, ElasticityController, FunctionId,
    FunctionSpec, Placement, PolicyFactory, SimConfig,
};
use dilu_sim::{SimDuration, SimTime};
use dilu_workload::{ArrivalProcess, ArrivalSpec};

/// Why a scenario could not be composed or run.
#[derive(Debug)]
#[non_exhaustive]
pub enum ScenarioError {
    /// No placement policy was supplied (and no preset provided one).
    MissingPlacement,
    /// No elasticity controller (or autoscaler) was supplied, and no preset
    /// provided one.
    MissingAutoscaler,
    /// No share-policy factory was supplied (and no preset provided one).
    MissingSharePolicy,
    /// An inference function has no arrival source; use
    /// [`ScenarioBuilder::arrivals`] or [`ScenarioBuilder::arrival_times`].
    MissingArrivals(FunctionId),
    /// A workload method was called before any [`ScenarioBuilder::function`].
    WorkloadBeforeFunction(&'static str),
    /// Arrivals were attached to a training function.
    ArrivalsForTraining(FunctionId),
    /// A workload method was applied to a function of the wrong role
    /// (e.g. `initial_instances` on training, `starts_at` on inference).
    WrongRole {
        /// The function the method was applied to.
        func: FunctionId,
        /// The builder method that does not apply.
        method: &'static str,
    },
    /// Two functions share an id.
    DuplicateFunction(FunctionId),
    /// The scenario defines no functions at all.
    NoFunctions,
    /// The serving plane rejected a deployment.
    Deploy(DeployError),
    /// A registry lookup failed (unknown name).
    Unknown {
        /// What was looked up: "placement", "autoscaler", ...
        kind: &'static str,
        /// The name that matched nothing.
        name: String,
        /// The names that would have matched.
        known: Vec<String>,
    },
    /// A config file could not be parsed or mapped onto the builder.
    Config(String),
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::MissingPlacement => write!(f, "scenario has no placement policy"),
            ScenarioError::MissingAutoscaler => write!(f, "scenario has no autoscaler"),
            ScenarioError::MissingSharePolicy => {
                write!(f, "scenario has no share-policy factory")
            }
            ScenarioError::MissingArrivals(id) => {
                write!(f, "inference function {id} has no arrival source")
            }
            ScenarioError::WorkloadBeforeFunction(method) => {
                write!(f, "`{method}` called before any `function(...)`")
            }
            ScenarioError::ArrivalsForTraining(id) => {
                write!(f, "arrivals attached to training function {id}")
            }
            ScenarioError::WrongRole { func, method } => {
                write!(f, "`{method}` does not apply to function {func}'s role")
            }
            ScenarioError::DuplicateFunction(id) => {
                write!(f, "function id {id} declared twice")
            }
            ScenarioError::NoFunctions => write!(f, "scenario declares no functions"),
            ScenarioError::Deploy(e) => write!(f, "deployment failed: {e}"),
            ScenarioError::Unknown { kind, name, known } => {
                write!(f, "unknown {kind} `{name}` (known: {})", known.join(", "))
            }
            ScenarioError::Config(msg) => write!(f, "invalid scenario config: {msg}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<DeployError> for ScenarioError {
    fn from(e: DeployError) -> Self {
        ScenarioError::Deploy(e)
    }
}

/// Where an inference function's requests come from.
enum ArrivalSource {
    /// A generator streamed in bounded chunks up to the scenario horizon.
    Process(Box<dyn ArrivalProcess>),
    /// A declarative spec, built at `build()` time with the scenario seed
    /// as the default.
    Spec(Box<ArrivalSpec>),
    /// Explicit instants.
    Times(Vec<SimTime>),
    /// Nothing attached yet — an error at `build()`.
    Unset,
}

enum Workload {
    Inference { initial: u32, arrivals: ArrivalSource },
    Training { start: SimTime },
}

struct FunctionEntry {
    spec: FunctionSpec,
    workload: Workload,
}

/// The three substrate components a scenario composes.
type Components = (Box<dyn Placement>, Box<dyn ElasticityController>, Box<dyn PolicyFactory>);

/// Fluent, open composition of a complete serving scenario.
///
/// Start from [`Scenario::builder`] (empty) or a
/// [`SystemKind`](crate::SystemKind) preset, swap any component, attach
/// functions and workloads, then [`build`](ScenarioBuilder::build).
///
/// The type is `#[must_use]`: every fluent method consumes and returns the
/// builder, so a dropped return value silently discards the whole
/// composition step.
#[must_use = "ScenarioBuilder methods return the updated builder; dropping it discards the step"]
pub struct ScenarioBuilder {
    cluster: ClusterSpec,
    sim: SimConfig,
    placement: Option<Box<dyn Placement>>,
    controller: Option<Box<dyn ElasticityController>>,
    share_policy: Option<Box<dyn PolicyFactory>>,
    functions: Vec<FunctionEntry>,
    horizon: SimDuration,
    drain: SimDuration,
    seed: u64,
    misuse: Option<ScenarioError>,
}

impl Default for ScenarioBuilder {
    fn default() -> Self {
        ScenarioBuilder {
            cluster: ClusterSpec::paper_testbed(),
            sim: SimConfig::default(),
            placement: None,
            controller: None,
            share_policy: None,
            functions: Vec::new(),
            horizon: SimDuration::from_secs(60),
            drain: SimDuration::from_secs(5),
            seed: 7,
            misuse: None,
        }
    }
}

impl ScenarioBuilder {
    /// An empty builder: the paper's testbed cluster, default sim config,
    /// no policies, no functions.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the cluster shape.
    pub fn cluster(mut self, spec: ClusterSpec) -> Self {
        self.cluster = spec;
        self
    }

    /// Sets the serving-plane tunables.
    pub fn sim_config(mut self, config: SimConfig) -> Self {
        self.sim = config;
        self
    }

    /// Sets the node-plane step parallelism (`[sim] threads`), keeping the
    /// rest of the sim config. Reports are byte-identical at every
    /// setting, so this trades wall clock only. Zero is rejected at
    /// [`build`](Self::build), exactly as the TOML and CLI front doors
    /// reject it.
    pub fn threads(mut self, threads: u32) -> Self {
        if threads == 0 {
            self.misuse
                .get_or_insert(ScenarioError::Config("`threads` must be at least 1".to_owned()));
        } else {
            self.sim.threads = threads;
        }
        self
    }

    /// Attaches a shared-bandwidth network plane (`[network]`): cold
    /// starts become registry weight-fetch flows (storms contend, node
    /// caches absorb repeats) and pipeline stage handoffs become
    /// activation transfers. Without this call the legacy constants apply
    /// and reports reproduce byte-for-byte. Invalid capacities are
    /// rejected at [`build`](Self::build), exactly as the TOML front door
    /// rejects them.
    pub fn network(mut self, cfg: dilu_net::NetworkConfig) -> Self {
        if let Err(e) = cfg.validate() {
            self.misuse.get_or_insert(ScenarioError::Config(format!("[network] {e}")));
        } else {
            self.sim.network = Some(cfg);
        }
        self
    }

    /// Sets the placement policy.
    pub fn placement(mut self, placement: impl Placement + 'static) -> Self {
        self.placement = Some(Box::new(placement));
        self
    }

    /// Sets the placement policy from a box (registry path).
    pub fn placement_boxed(mut self, placement: Box<dyn Placement>) -> Self {
        self.placement = Some(placement);
        self
    }

    /// Sets a horizontal-only autoscaler as the elasticity controller
    /// (through the blanket [`ElasticityController`] adapter).
    pub fn autoscaler(mut self, autoscaler: impl Autoscaler + 'static) -> Self {
        self.controller = Some(Box::new(autoscaler));
        self
    }

    /// Sets the autoscaler from a box (registry path).
    pub fn autoscaler_boxed(mut self, autoscaler: Box<dyn Autoscaler>) -> Self {
        self.controller = Some(Box::new(autoscaler));
        self
    }

    /// Sets a 2D elasticity controller (vertical quota resizing plus
    /// horizontal scaling). Replaces whatever
    /// [`autoscaler`](Self::autoscaler) set and vice versa — they fill the
    /// same slot.
    pub fn controller(mut self, controller: impl ElasticityController + 'static) -> Self {
        self.controller = Some(Box::new(controller));
        self
    }

    /// Sets the elasticity controller from a box (registry path).
    pub fn controller_boxed(mut self, controller: Box<dyn ElasticityController>) -> Self {
        self.controller = Some(controller);
        self
    }

    /// Sets the per-GPU share-policy factory.
    pub fn share_policy(mut self, factory: impl PolicyFactory + 'static) -> Self {
        self.share_policy = Some(Box::new(factory));
        self
    }

    /// Sets the share-policy factory from a box (registry path).
    pub fn share_policy_boxed(mut self, factory: Box<dyn PolicyFactory>) -> Self {
        self.share_policy = Some(factory);
        self
    }

    /// Simulated time to serve traffic for (arrival generators sample up to
    /// this horizon). Default 60 s.
    pub fn horizon(mut self, horizon: SimDuration) -> Self {
        self.horizon = horizon;
        self
    }

    /// Extra tail after the horizon letting in-flight work finish.
    /// Default 5 s.
    pub fn drain(mut self, drain: SimDuration) -> Self {
        self.drain = drain;
        self
    }

    /// Root seed used by [`arrivals_spec`](Self::arrivals_spec) entries
    /// that carry no seed of their own (salted per function id).
    /// Processes attached via [`arrivals`](Self::arrivals) keep their own
    /// seeds. Default 7.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Adds a function. Subsequent workload calls
    /// ([`arrivals`](Self::arrivals), [`initial_instances`](Self::initial_instances),
    /// [`starts_at`](Self::starts_at)) apply to this function.
    pub fn function(mut self, spec: FunctionSpec) -> Self {
        if self.functions.iter().any(|e| e.spec.id == spec.id) && self.misuse.is_none() {
            self.misuse = Some(ScenarioError::DuplicateFunction(spec.id));
        }
        let workload = if spec.kind.is_inference() {
            Workload::Inference { initial: 1, arrivals: ArrivalSource::Unset }
        } else {
            Workload::Training { start: SimTime::ZERO }
        };
        self.functions.push(FunctionEntry { spec, workload });
        self
    }

    fn with_last<F: FnOnce(&mut FunctionEntry) -> Result<(), ScenarioError>>(
        mut self,
        method: &'static str,
        apply: F,
    ) -> Self {
        match self.functions.last_mut() {
            Some(entry) => {
                if let Err(e) = apply(entry) {
                    self.misuse.get_or_insert(e);
                }
            }
            None => {
                self.misuse.get_or_insert(ScenarioError::WorkloadBeforeFunction(method));
            }
        }
        self
    }

    /// Attaches an arrival process to the last-added (inference) function.
    /// The process is sampled over the scenario horizon at build time.
    pub fn arrivals(self, process: impl ArrivalProcess + 'static) -> Self {
        self.arrivals_boxed(Box::new(process))
    }

    /// [`arrivals`](Self::arrivals) from a box (registry path).
    pub fn arrivals_boxed(self, process: Box<dyn ArrivalProcess>) -> Self {
        self.with_last("arrivals", |entry| match &mut entry.workload {
            Workload::Inference { arrivals, .. } => {
                *arrivals = ArrivalSource::Process(process);
                Ok(())
            }
            Workload::Training { .. } => Err(ScenarioError::ArrivalsForTraining(entry.spec.id)),
        })
    }

    /// Attaches a declarative [`ArrivalSpec`] to the last-added
    /// (inference) function. The process is constructed at build time,
    /// defaulting its seed to the scenario [`seed`](Self::seed) salted
    /// with the function id — so sweeping the scenario seed re-randomises
    /// every spec-based workload at once.
    pub fn arrivals_spec(self, spec: ArrivalSpec) -> Self {
        self.with_last("arrivals_spec", |entry| match &mut entry.workload {
            Workload::Inference { arrivals, .. } => {
                *arrivals = ArrivalSource::Spec(Box::new(spec));
                Ok(())
            }
            Workload::Training { .. } => Err(ScenarioError::ArrivalsForTraining(entry.spec.id)),
        })
    }

    /// Attaches explicit arrival instants to the last-added (inference)
    /// function; instants are sorted on attach (the serving plane consumes
    /// a time-ordered stream). An empty list is allowed (a
    /// deployed-but-idle function).
    pub fn arrival_times(self, mut times: Vec<SimTime>) -> Self {
        times.sort_unstable();
        self.with_last("arrival_times", |entry| match &mut entry.workload {
            Workload::Inference { arrivals, .. } => {
                *arrivals = ArrivalSource::Times(times);
                Ok(())
            }
            Workload::Training { .. } => Err(ScenarioError::ArrivalsForTraining(entry.spec.id)),
        })
    }

    /// Attaches explicit arrival instants to the (inference) function with
    /// id `func`, wherever it sits in the composition — replacing whatever
    /// arrival source the function had.
    ///
    /// This is `dilu-replay`'s no-resampling path: replay overrides every
    /// recorded arrival schedule with the exact logged micro-instants, so
    /// no arrival process is ever sampled again. Unlike the TOML
    /// `arrivals.times` field (seconds as `f64`), instants pass through
    /// unconverted. An unknown id or a training function records a misuse
    /// error surfaced at [`build`](Self::build).
    pub fn arrival_times_for(
        mut self,
        func: dilu_cluster::FunctionId,
        mut times: Vec<SimTime>,
    ) -> Self {
        times.sort_unstable();
        match self.functions.iter_mut().find(|e| e.spec.id == func) {
            Some(entry) => match &mut entry.workload {
                Workload::Inference { arrivals, .. } => *arrivals = ArrivalSource::Times(times),
                Workload::Training { .. } => {
                    self.misuse.get_or_insert(ScenarioError::ArrivalsForTraining(func));
                }
            },
            None => {
                self.misuse
                    .get_or_insert(ScenarioError::WrongRole { func, method: "arrival_times_for" });
            }
        }
        self
    }

    /// Pre-warmed instances for the last-added (inference) function.
    /// Default 1.
    pub fn initial_instances(self, initial: u32) -> Self {
        self.with_last("initial_instances", |entry| match &mut entry.workload {
            Workload::Inference { initial: slot, .. } => {
                *slot = initial;
                Ok(())
            }
            Workload::Training { .. } => {
                Err(ScenarioError::WrongRole { func: entry.spec.id, method: "initial_instances" })
            }
        })
    }

    /// Submission time of the last-added (training) function. Default 0.
    pub fn starts_at(self, at: SimTime) -> Self {
        self.with_last("starts_at", |entry| match &mut entry.workload {
            Workload::Training { start } => {
                *start = at;
                Ok(())
            }
            Workload::Inference { .. } => {
                Err(ScenarioError::WrongRole { func: entry.spec.id, method: "starts_at" })
            }
        })
    }

    fn take_components(&mut self) -> Result<Components, ScenarioError> {
        if let Some(misuse) = self.misuse.take() {
            return Err(misuse);
        }
        let placement = self.placement.take().ok_or(ScenarioError::MissingPlacement)?;
        let controller = self.controller.take().ok_or(ScenarioError::MissingAutoscaler)?;
        let share_policy = self.share_policy.take().ok_or(ScenarioError::MissingSharePolicy)?;
        Ok((placement, controller, share_policy))
    }

    /// Builds just the composed serving substrate, with no functions
    /// attached — the old `build_sim_with` contract.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::MissingPlacement`] /
    /// [`ScenarioError::MissingAutoscaler`] /
    /// [`ScenarioError::MissingSharePolicy`] when a component is absent,
    /// or any recorded builder misuse.
    pub fn build_sim(mut self) -> Result<ClusterSim, ScenarioError> {
        let (placement, controller, share_policy) = self.take_components()?;
        Ok(ClusterSim::with_controller(
            self.cluster,
            self.sim,
            placement,
            controller,
            &*share_policy,
        ))
    }

    /// Builds the full scenario: validates the composition and deploys
    /// every function, attaching each arrival source as a *stream* — the
    /// serving plane pulls instants in bounded chunks up to the horizon
    /// (see [`SimConfig::arrival_window`](dilu_cluster::SimConfig)), so a
    /// scenario's memory scales with functions × window, not with total
    /// request count. Results are byte-identical to materializing every
    /// schedule up front (arrival processes draw the same instants at
    /// every chunking).
    ///
    /// # Errors
    ///
    /// Any missing component or recorded misuse (see
    /// [`build_sim`](Self::build_sim)), [`ScenarioError::NoFunctions`],
    /// [`ScenarioError::MissingArrivals`] for an inference function with no
    /// arrival source, and [`ScenarioError::Deploy`] when the serving plane
    /// rejects a function.
    pub fn build(mut self) -> Result<Scenario, ScenarioError> {
        let (placement, controller, share_policy) = self.take_components()?;
        if self.functions.is_empty() {
            return Err(ScenarioError::NoFunctions);
        }
        let mut sim = ClusterSim::with_controller(
            self.cluster,
            self.sim,
            placement,
            controller,
            &*share_policy,
        );
        let end = SimTime::ZERO + self.horizon;
        for entry in self.functions {
            match entry.workload {
                Workload::Inference { initial, arrivals } => {
                    // Explicit instants historically passed through
                    // unclamped (ones beyond the horizon can still ingest
                    // during the drain tail), so their stream end is MAX;
                    // generators sample up to the horizon as always.
                    let (process, stream_end): (Box<dyn ArrivalProcess>, SimTime) = match arrivals {
                        ArrivalSource::Process(p) => (p, end),
                        ArrivalSource::Spec(spec) => (
                            spec.build(self.seed ^ u64::from(entry.spec.id.0), self.horizon)
                                .map_err(|e| ScenarioError::Config(e.to_string()))?,
                            end,
                        ),
                        ArrivalSource::Times(times) => {
                            (Box::new(dilu_workload::ReplayProcess::new(times)), SimTime::MAX)
                        }
                        ArrivalSource::Unset => {
                            return Err(ScenarioError::MissingArrivals(entry.spec.id));
                        }
                    };
                    sim.deploy_inference_streaming(entry.spec, initial, process, stream_end)?;
                }
                Workload::Training { start } => {
                    if start == SimTime::ZERO {
                        sim.deploy_training(entry.spec)?;
                    } else {
                        sim.schedule_training(entry.spec, start)?;
                    }
                }
            }
        }
        Ok(Scenario { sim, horizon: self.horizon, drain: self.drain, seed: self.seed })
    }
}

impl std::fmt::Debug for ScenarioBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScenarioBuilder")
            .field("cluster", &self.cluster)
            .field("placement", &self.placement.as_ref().map(|p| p.name().to_owned()))
            .field("controller", &self.controller.as_ref().map(|a| a.name().to_owned()))
            .field("share_policy", &self.share_policy.as_ref().map(|s| s.name().to_owned()))
            .field("functions", &self.functions.len())
            .field("horizon", &self.horizon)
            .field("seed", &self.seed)
            .finish_non_exhaustive()
    }
}

/// A fully composed, deployed scenario, ready to run.
pub struct Scenario {
    sim: ClusterSim,
    horizon: SimDuration,
    drain: SimDuration,
    seed: u64,
}

impl std::fmt::Debug for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scenario")
            .field("cluster", self.sim.spec())
            .field("placement", &self.sim.placement_name())
            .field("autoscaler", &self.sim.autoscaler_name())
            .field("share_policy", &self.sim.share_policy_name())
            .field("horizon", &self.horizon)
            .finish_non_exhaustive()
    }
}

impl Scenario {
    /// An empty [`ScenarioBuilder`].
    pub fn builder() -> ScenarioBuilder {
        ScenarioBuilder::new()
    }

    /// The underlying simulator (e.g. to inspect composition names).
    #[must_use]
    pub fn sim(&self) -> &ClusterSim {
        &self.sim
    }

    /// The traffic horizon.
    #[must_use]
    pub fn horizon(&self) -> SimDuration {
        self.horizon
    }

    /// The drain tail after the horizon.
    #[must_use]
    pub fn drain(&self) -> SimDuration {
        self.drain
    }

    /// The root seed used for arrival sampling fallbacks.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Runs to the horizon plus the drain tail and reports.
    pub fn run(self) -> Result<ClusterReport, ScenarioError> {
        self.run_profiled().map(|(report, _)| report)
    }

    /// Runs like [`run`](Self::run) and also returns the per-phase
    /// profile when the scenario was composed with
    /// [`SimConfig::profile`](dilu_cluster::SimConfig) on (the `[sim]
    /// profile` knob / `dilu run --profile`); `None` otherwise. The
    /// report is byte-identical either way — profiling is observational.
    pub fn run_profiled(
        mut self,
    ) -> Result<(ClusterReport, Option<dilu_metrics::PhaseProfile>), ScenarioError> {
        self.sim.run_until(SimTime::ZERO + self.horizon + self.drain);
        let profile = self.sim.phase_profile();
        Ok((self.sim.into_report(), profile))
    }

    /// Hands back the simulator for custom stepping instead of
    /// [`run`](Self::run).
    pub fn into_sim(self) -> ClusterSim {
        self.sim
    }
}

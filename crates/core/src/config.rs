//! Serde-backed scenario configuration: the TOML/JSON front door onto
//! [`ScenarioBuilder`].
//!
//! ```toml
//! name = "dilu-vs-burst"
//!
//! [cluster]
//! nodes = 1
//! gpus_per_node = 4
//!
//! [system]
//! preset = "dilu"              # or compose placement/autoscaler/share_policy
//!
//! [system.controller]          # optional: a 2D elasticity controller
//! name = "co-scale"            # (accepts autoscaler names too)
//!
//! [sim]                        # optional serving-plane tunables
//! quantum_ms = 5.0
//! resize_latency_ms = 1.0
//! threads = 4                  # node-plane step parallelism (same results)
//!
//! [run]
//! horizon_secs = 30
//! seed = 7
//!
//! [[functions]]
//! model = "bert-base"
//! arrivals = { process = "poisson", rate = 25.0 }
//! ```
//!
//! Component tables resolve through a [`Registry`], so registered external
//! policies are addressable from config files too:
//!
//! ```toml
//! [system.placement]
//! name = "dilu"
//! gamma = 5.0                  # any extra key is a component parameter
//! ```

use dilu_cluster::{ClusterSpec, SimConfig};
use dilu_models::ModelId;
use dilu_sim::{SimDuration, SimTime};
use dilu_workload::ArrivalSpec;
use serde::{DeError, Deserialize, Serialize, Value};

use crate::registry::{Params, Registry};
use crate::{funcs, ScenarioBuilder, ScenarioError, SystemKind};

/// Cluster shape section (`[cluster]`). Every field defaults to the
/// paper's testbed (5 × 4 × A100-40GB).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSection {
    /// Worker nodes.
    pub nodes: Option<u32>,
    /// GPUs per node.
    pub gpus_per_node: Option<u32>,
    /// Device memory per GPU in GiB.
    pub gpu_mem_gb: Option<u64>,
}

impl ClusterSection {
    fn to_spec(&self) -> ClusterSpec {
        let d = ClusterSpec::paper_testbed();
        ClusterSpec {
            nodes: self.nodes.unwrap_or(d.nodes),
            gpus_per_node: self.gpus_per_node.unwrap_or(d.gpus_per_node),
            gpu_mem_bytes: self.gpu_mem_gb.map(|gb| gb * dilu_gpu::GB).unwrap_or(d.gpu_mem_bytes),
        }
    }
}

/// One composable component (`[system.placement]` etc.): a registry `name`
/// plus arbitrary parameter keys passed through to its constructor.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentSection {
    /// Registry name of the component.
    pub name: String,
    /// Every other key of the table, as constructor parameters.
    pub params: Params,
}

impl ComponentSection {
    /// A component reference with no parameters.
    pub fn named(name: impl Into<String>) -> Self {
        ComponentSection { name: name.into(), params: Params::empty() }
    }
}

impl Serialize for ComponentSection {
    fn to_value(&self) -> Value {
        let mut entries = vec![(Value::Str("name".into()), Value::Str(self.name.clone()))];
        entries
            .extend(self.params.entries().iter().map(|(k, v)| (Value::Str(k.clone()), v.clone())));
        Value::Map(entries)
    }
}

impl Deserialize for ComponentSection {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let entries = v.as_map().ok_or_else(|| DeError::expected("table", "component"))?;
        let mut name = None;
        let mut params = Vec::new();
        for (k, val) in entries {
            let key = k.as_str().ok_or_else(|| DeError::expected("string key", "component"))?;
            if key == "name" {
                name = Some(
                    val.as_str()
                        .ok_or_else(|| DeError::expected("string", "component name"))?
                        .to_owned(),
                );
            } else {
                params.push((key.to_owned(), val.clone()));
            }
        }
        Ok(ComponentSection {
            name: name.ok_or_else(|| DeError::missing_field("name", "component"))?,
            params: Params::from_entries(params),
        })
    }
}

/// System composition section (`[system]`): a preset, individual
/// components, or a preset with individual overrides.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemSection {
    /// A [`SystemKind`] preset name (`"dilu"`, `"exclusive"`, ...).
    pub preset: Option<String>,
    /// Placement override.
    pub placement: Option<ComponentSection>,
    /// Autoscaler override (horizontal-only controllers).
    pub autoscaler: Option<ComponentSection>,
    /// Elasticity-controller override (2D co-scaling; also accepts every
    /// autoscaler name). Mutually exclusive with `autoscaler` — they fill
    /// the same slot.
    pub controller: Option<ComponentSection>,
    /// Share-policy override.
    pub share_policy: Option<ComponentSection>,
}

/// Serving-plane tunables section (`[sim]`); every field defaults to
/// [`SimConfig::default`]. Durations are in (fractional) milliseconds.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SimSection {
    /// GPU scheduling quantum (the RCKM token period) in ms.
    pub quantum_ms: Option<f64>,
    /// Controller tick and metrics sampling period in ms.
    pub tick_ms: Option<f64>,
    /// Fraction of the SLO a partial batch may wait before dispatch.
    pub batch_timeout_frac: Option<f64>,
    /// Cap on the batching wait regardless of SLO, in ms.
    pub batch_timeout_cap_ms: Option<f64>,
    /// Extra per-stage cost modelling activation transfer, in ms.
    pub stage_transfer_ms: Option<f64>,
    /// Delay before a vertical quota resize reaches the GPUs, in ms.
    pub resize_latency_ms: Option<f64>,
    /// Time model: `"event-driven"` (default) or `"dense-quantum"` (the
    /// legacy stepper, kept as the executable specification).
    pub time_model: Option<String>,
    /// Threads stepping the node plane (≥ 1). Defaults to the
    /// `DILU_THREADS` environment variable, else 1. Reports are
    /// byte-identical at every setting; this knob trades wall clock only.
    pub threads: Option<u32>,
    /// Enables the per-phase wall-clock profiler (`dilu run --profile`).
    /// Observational only: reports are byte-identical either way.
    pub profile: Option<bool>,
    /// Cap on the per-function pending-arrival window a streaming run
    /// keeps in memory (default 256 instants; `0` = unbounded, i.e. the
    /// whole schedule is materialized up front). Reports are
    /// byte-identical at every setting; this knob trades peak memory only.
    pub arrival_window: Option<u32>,
    /// Records per-function time series (timelines, kernel series) in the
    /// report (default `true`). Production-scale scenarios turn this off:
    /// the series cost O(functions × seconds) memory.
    pub function_series: Option<bool>,
}

impl SimSection {
    /// Validates the section and maps it onto a [`SimConfig`].
    ///
    /// # Errors
    ///
    /// [`ScenarioError::Config`] for non-finite or negative values, a zero
    /// quantum, a `batch_timeout_frac` outside `[0, 1]`, or a tick shorter
    /// than the quantum.
    pub fn to_config(&self) -> Result<SimConfig, ScenarioError> {
        fn duration(
            key: &str,
            ms: Option<f64>,
            default: SimDuration,
            allow_zero: bool,
        ) -> Result<SimDuration, ScenarioError> {
            let Some(ms) = ms else { return Ok(default) };
            if !ms.is_finite() || ms < 0.0 || (ms == 0.0 && !allow_zero) {
                return Err(ScenarioError::Config(format!(
                    "[sim] `{key}` must be a {} number of milliseconds, got {ms}",
                    if allow_zero { "non-negative" } else { "positive" }
                )));
            }
            Ok(SimDuration::from_millis_f64(ms))
        }
        let d = SimConfig::default();
        let quantum = duration("quantum_ms", self.quantum_ms, d.quantum, false)?;
        let tick = duration("tick_ms", self.tick_ms, d.tick, false)?;
        if tick < quantum {
            return Err(ScenarioError::Config(format!(
                "[sim] `tick_ms` ({tick}) must not be shorter than `quantum_ms` ({quantum})"
            )));
        }
        let frac = self.batch_timeout_frac.unwrap_or(d.batch_timeout_frac);
        if !(frac.is_finite() && (0.0..=1.0).contains(&frac)) {
            return Err(ScenarioError::Config(format!(
                "[sim] `batch_timeout_frac` must be in [0, 1], got {frac}"
            )));
        }
        let threads = match self.threads {
            None => d.threads,
            Some(0) => {
                return Err(ScenarioError::Config("[sim] `threads` must be at least 1".to_owned()));
            }
            Some(t) => t,
        };
        let time_model = match self.time_model.as_deref() {
            None => d.time_model,
            Some("event-driven") => dilu_cluster::TimeModel::EventDriven,
            Some("dense-quantum") => dilu_cluster::TimeModel::DenseQuantum,
            Some(other) => {
                return Err(ScenarioError::Config(format!(
                    "[sim] unknown `time_model` `{other}` (event-driven | dense-quantum)"
                )));
            }
        };
        Ok(SimConfig {
            quantum,
            tick,
            batch_timeout_frac: frac,
            batch_timeout_cap: duration(
                "batch_timeout_cap_ms",
                self.batch_timeout_cap_ms,
                d.batch_timeout_cap,
                true,
            )?,
            stage_transfer: duration(
                "stage_transfer_ms",
                self.stage_transfer_ms,
                d.stage_transfer,
                true,
            )?,
            resize_latency: duration(
                "resize_latency_ms",
                self.resize_latency_ms,
                d.resize_latency,
                true,
            )?,
            time_model,
            threads,
            network: d.network,
            profile: self.profile.unwrap_or(d.profile),
            arrival_window: self.arrival_window.unwrap_or(d.arrival_window),
            function_series: self.function_series.unwrap_or(d.function_series),
        })
    }
}

/// Network/topology plane section (`[network]`).
///
/// Present at all, the cluster prices bytes: cold starts become registry
/// weight-fetch flows (concurrent storms contend on the shared link, node
/// caches absorb repeats) and pipeline stage handoffs become activation
/// transfers. Absent, the legacy constants apply and reports reproduce
/// byte-for-byte. A `preset` fills defaults, individual keys override it.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct NetworkSection {
    /// A [`dilu_net::NetworkConfig::preset`] name (`"datacenter"`,
    /// `"edge"`, `"congested"`).
    pub preset: Option<String>,
    /// Shared core/registry link capacity in Gbps.
    pub registry_gbps: Option<f64>,
    /// Per-node top-of-rack uplink capacity in Gbps.
    pub tor_gbps: Option<f64>,
    /// Intra-node (NVLink-class) link capacity in Gbps.
    pub nvlink_gbps: Option<f64>,
    /// Per-node model cache capacity in GiB (`0` disables caching).
    pub cache_gb: Option<f64>,
    /// Post-fetch provision residue (container/runtime init) in ms.
    pub provision_ms: Option<f64>,
}

impl NetworkSection {
    /// Validates the section and maps it onto a
    /// [`dilu_net::NetworkConfig`].
    ///
    /// # Errors
    ///
    /// [`ScenarioError::Unknown`] for an unknown preset name;
    /// [`ScenarioError::Config`] for non-finite/non-positive capacities or
    /// a negative cache or provision residue.
    pub fn to_config(&self) -> Result<dilu_net::NetworkConfig, ScenarioError> {
        let mut cfg = match &self.preset {
            Some(name) => {
                dilu_net::NetworkConfig::preset(name).ok_or_else(|| ScenarioError::Unknown {
                    kind: "network preset",
                    name: name.clone(),
                    known: dilu_net::NetworkConfig::PRESET_NAMES
                        .iter()
                        .map(|&s| s.to_owned())
                        .collect(),
                })?
            }
            None => dilu_net::NetworkConfig::default(),
        };
        if let Some(v) = self.registry_gbps {
            cfg.registry_gbps = v;
        }
        if let Some(v) = self.tor_gbps {
            cfg.tor_gbps = v;
        }
        if let Some(v) = self.nvlink_gbps {
            cfg.nvlink_gbps = v;
        }
        if let Some(v) = self.cache_gb {
            cfg.cache_gb = v;
        }
        if let Some(ms) = self.provision_ms {
            if !ms.is_finite() || ms < 0.0 {
                return Err(ScenarioError::Config(format!(
                    "[network] `provision_ms` must be a non-negative number of milliseconds, \
                     got {ms}"
                )));
            }
            cfg.provision = SimDuration::from_millis_f64(ms);
        }
        cfg.validate().map_err(|e| ScenarioError::Config(format!("[network] {e}")))?;
        Ok(cfg)
    }
}

/// Run parameters section (`[run]`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunSection {
    /// Traffic horizon in seconds (default 60).
    pub horizon_secs: Option<u64>,
    /// Drain tail in seconds (default 5).
    pub drain_secs: Option<u64>,
    /// Root seed (default 7).
    pub seed: Option<u64>,
}

/// Deterministic fleet synthesizer section (`[fleet]`): expands to
/// `functions` additional inference functions (appended after the explicit
/// `[[functions]]` entries) whose per-function rates follow a Zipf-like
/// popularity curve summing to `total_rps`, each driven by a `synth`
/// arrival process (diurnal sinusoid + lazily drawn burst windows) with a
/// deterministic per-index phase spread across the diurnal period. This is
/// what makes production-scale scenarios (tens of thousands of functions)
/// declarable in a few lines with bounded config size.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetSection {
    /// Number of functions to synthesize (≥ 1).
    pub functions: u32,
    /// Fleet-wide mean request rate in RPS, split across functions by the
    /// popularity curve.
    pub total_rps: f64,
    /// Model every fleet function serves, resolved via
    /// [`ModelId::from_name`].
    pub model: String,
    /// Pre-warmed instances per function (default 0 — the fleet scales
    /// from zero).
    pub initial: Option<u32>,
    /// Diurnal amplitude in `[0, 1)` (default 0.5).
    pub amp: Option<f64>,
    /// Diurnal period in seconds (default 86 400 — one day).
    pub period_secs: Option<f64>,
    /// Burst intensity multiplier ≥ 1 (default 4).
    pub burst_scale: Option<f64>,
}

/// One function (`[[functions]]`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FunctionSection {
    /// Display name; defaults to `<model>-<role>`.
    pub name: Option<String>,
    /// Model name resolved via [`ModelId::from_name`].
    pub model: String,
    /// `"inference"` (default) or `"training"`.
    pub role: Option<String>,
    /// Inference batch size override (default: profiled optimum).
    pub batch: Option<u32>,
    /// Inference SLO override in milliseconds.
    pub slo_ms: Option<u64>,
    /// SM `request` quota override in percent.
    pub request_pct: Option<f64>,
    /// SM `limit` quota override in percent.
    pub limit_pct: Option<f64>,
    /// Per-GPU memory override in GiB (fractional allowed).
    pub mem_gb: Option<f64>,
    /// GPUs per instance (LLM pipeline stages).
    pub gpus_per_instance: Option<u32>,
    /// Pre-warmed instances for inference (default 1).
    pub initial: Option<u32>,
    /// Training worker count (default 2).
    pub workers: Option<u32>,
    /// Training iteration target (default 50).
    pub iterations: Option<u64>,
    /// Training submission time in seconds (default 0).
    pub start_sec: Option<u64>,
    /// Arrival process for inference functions.
    pub arrivals: Option<ArrivalSpec>,
}

/// A whole scenario file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// Scenario name (for reports).
    pub name: Option<String>,
    /// Cluster shape; defaults to the paper testbed.
    pub cluster: Option<ClusterSection>,
    /// System composition.
    pub system: SystemSection,
    /// Serving-plane tunables; defaults to [`SimConfig::default`].
    pub sim: Option<SimSection>,
    /// Network/topology plane; `None` keeps the legacy constants.
    pub network: Option<NetworkSection>,
    /// Run parameters.
    pub run: Option<RunSection>,
    /// The deployed functions.
    pub functions: Vec<FunctionSection>,
    /// Synthesized fleet appended after the explicit functions.
    pub fleet: Option<FleetSection>,
}

impl ScenarioConfig {
    /// Parses a TOML scenario. Unknown keys anywhere in the file are
    /// rejected (the loud-typo contract; component tables accept arbitrary
    /// parameter keys by design).
    pub fn from_toml_str(text: &str) -> Result<Self, ScenarioError> {
        let value = toml::parse_value(text).map_err(|e| ScenarioError::Config(e.to_string()))?;
        Self::from_checked_value(&value)
    }

    /// Parses a JSON scenario with the same unknown-key rejection as
    /// [`from_toml_str`](Self::from_toml_str).
    pub fn from_json_str(text: &str) -> Result<Self, ScenarioError> {
        let value =
            serde_json::parse_value(text).map_err(|e| ScenarioError::Config(e.to_string()))?;
        Self::from_checked_value(&value)
    }

    fn from_checked_value(value: &Value) -> Result<Self, ScenarioError> {
        reject_unknown_keys(value)?;
        Deserialize::from_value(value).map_err(|e| ScenarioError::Config(e.to_string()))
    }

    /// Loads a scenario file, dispatching on the `.toml`/`.json` extension
    /// (anything else is tried as TOML).
    pub fn load(path: &std::path::Path) -> Result<Self, ScenarioError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| ScenarioError::Config(format!("cannot read {}: {e}", path.display())))?;
        match path.extension().and_then(|e| e.to_str()) {
            Some("json") => Self::from_json_str(&text),
            _ => Self::from_toml_str(&text),
        }
        .map_err(|e| {
            // Re-wrap with the path, without stacking the "invalid scenario
            // config" prefix twice.
            let inner = match e {
                ScenarioError::Config(msg) => msg,
                other => other.to_string(),
            };
            ScenarioError::Config(format!("{}: {inner}", path.display()))
        })
    }

    /// Maps the config onto a [`ScenarioBuilder`], resolving component
    /// names through `registry`.
    pub fn into_builder(self, registry: &Registry) -> Result<ScenarioBuilder, ScenarioError> {
        let run =
            self.run.unwrap_or(RunSection { horizon_secs: None, drain_secs: None, seed: None });
        let horizon = SimDuration::from_secs(run.horizon_secs.unwrap_or(60));
        let seed = run.seed.unwrap_or(7);

        let mut builder = match &self.system.preset {
            Some(preset) => SystemKind::from_name(preset)
                .ok_or_else(|| ScenarioError::Unknown {
                    kind: "preset",
                    name: preset.clone(),
                    known: SystemKind::names().iter().map(|&s| s.to_owned()).collect(),
                })?
                .builder(),
            None => ScenarioBuilder::new(),
        };
        builder = builder
            .cluster(self.cluster.as_ref().map(ClusterSection::to_spec).unwrap_or_default())
            .horizon(horizon)
            .drain(SimDuration::from_secs(run.drain_secs.unwrap_or(5)))
            .seed(seed);
        if let Some(sim) = &self.sim {
            builder = builder.sim_config(sim.to_config()?);
        }
        // After sim_config: that call replaces the whole SimConfig, and the
        // network plane rides inside it.
        if let Some(net) = &self.network {
            builder = builder.network(net.to_config()?);
        }

        if let Some(p) = &self.system.placement {
            builder = builder.placement_boxed(registry.placement(&p.name, &p.params)?);
        }
        if self.system.autoscaler.is_some() && self.system.controller.is_some() {
            return Err(ScenarioError::Config(
                "[system] declares both `autoscaler` and `controller`; they fill the same \
                 slot — keep one"
                    .into(),
            ));
        }
        if let Some(a) = &self.system.autoscaler {
            builder = builder.autoscaler_boxed(registry.autoscaler(&a.name, &a.params)?);
        }
        if let Some(c) = &self.system.controller {
            builder = builder.controller_boxed(registry.controller(&c.name, &c.params)?);
        }
        if let Some(s) = &self.system.share_policy {
            builder = builder.share_policy_boxed(registry.share_policy(&s.name, &s.params)?);
        }

        for (index, f) in self.functions.iter().enumerate() {
            let id = index as u32 + 1;
            let model = ModelId::from_name(&f.model).ok_or_else(|| ScenarioError::Unknown {
                kind: "model",
                name: f.model.clone(),
                known: ModelId::ALL.iter().map(|m| m.name().to_owned()).collect(),
            })?;
            let role = f.role.as_deref().unwrap_or("inference");
            reject_role_mismatched_keys(id, role, f)?;
            match role {
                "inference" => {
                    // Pipelined (multi-GPU) functions go through the
                    // canonical LLM builder so per-stage SM/memory scaling
                    // matches the experiment harness exactly.
                    let mut spec = match f.gpus_per_instance {
                        Some(stages) if stages > 1 => {
                            funcs::llm_inference_function(id, model, stages)
                        }
                        _ => funcs::inference_function(id, model),
                    };
                    if f.gpus_per_instance == Some(0) {
                        // Pass the invalid value through so the serving
                        // plane rejects it with a typed InvalidSpec instead
                        // of silently correcting it to one GPU.
                        spec.gpus_per_instance = 0;
                    }
                    if let Some(batch) = f.batch {
                        if let dilu_cluster::FunctionKind::Inference { slo, .. } = spec.kind {
                            spec.kind = dilu_cluster::FunctionKind::Inference { slo, batch };
                        }
                    }
                    if let Some(slo_ms) = f.slo_ms {
                        if let dilu_cluster::FunctionKind::Inference { batch, .. } = spec.kind {
                            spec.kind = dilu_cluster::FunctionKind::Inference {
                                slo: SimDuration::from_millis(slo_ms),
                                batch,
                            };
                        }
                    }
                    if let Some(pct) = f.request_pct {
                        spec.quotas.request = dilu_gpu::SmRate::from_percent(pct);
                    }
                    if let Some(pct) = f.limit_pct {
                        spec.quotas.limit = dilu_gpu::SmRate::from_percent(pct);
                    }
                    if let Some(gb) = f.mem_gb {
                        spec.quotas.mem_bytes = (gb * dilu_gpu::GB as f64) as u64;
                    }
                    if let Some(name) = &f.name {
                        spec.name = name.clone();
                    }
                    let arrivals = f.arrivals.clone().ok_or_else(|| {
                        ScenarioError::Config(format!(
                            "function {id} ({}) is inference but has no `arrivals`",
                            f.model
                        ))
                    })?;
                    builder = builder
                        .function(spec)
                        .initial_instances(f.initial.unwrap_or(1))
                        .arrivals_spec(arrivals);
                }
                "training" => {
                    let workers = f.workers.unwrap_or(2);
                    let iterations = f.iterations.unwrap_or(50);
                    let mut spec = funcs::training_function(id, model, workers, iterations);
                    if let Some(name) = &f.name {
                        spec.name = name.clone();
                    }
                    builder = builder
                        .function(spec)
                        .starts_at(SimTime::from_secs(f.start_sec.unwrap_or(0)));
                }
                other => {
                    return Err(ScenarioError::Config(format!(
                        "function {id}: unknown role `{other}` (inference | training)"
                    )));
                }
            }
        }
        if let Some(fleet) = &self.fleet {
            builder = expand_fleet(builder, fleet, self.functions.len() as u32)?;
        }
        Ok(builder)
    }
}

/// Expands `[fleet]` onto the builder: `functions` synthetic inference
/// functions with ids following the explicit ones, per-function rates on a
/// Zipf-like curve (weight ∝ 1/(i+1)^0.9) normalized to `total_rps`, and
/// `synth` arrivals whose diurnal phases spread evenly over the period so
/// the fleet's load is not phase-locked. Fully deterministic: everything
/// derives from the index and the scenario seed.
fn expand_fleet(
    mut builder: ScenarioBuilder,
    fleet: &FleetSection,
    explicit: u32,
) -> Result<ScenarioBuilder, ScenarioError> {
    if fleet.functions == 0 {
        return Err(ScenarioError::Config("[fleet] `functions` must be at least 1".into()));
    }
    if !(fleet.total_rps.is_finite() && fleet.total_rps > 0.0) {
        return Err(ScenarioError::Config(format!(
            "[fleet] `total_rps` must be a positive number, got {}",
            fleet.total_rps
        )));
    }
    let model = ModelId::from_name(&fleet.model).ok_or_else(|| ScenarioError::Unknown {
        kind: "model",
        name: fleet.model.clone(),
        known: ModelId::ALL.iter().map(|m| m.name().to_owned()).collect(),
    })?;
    let n = fleet.functions;
    let amp = fleet.amp.unwrap_or(0.5);
    let period = fleet.period_secs.unwrap_or(86_400.0);
    if !(period.is_finite() && period > 0.0) {
        return Err(ScenarioError::Config(format!(
            "[fleet] `period_secs` must be a positive number, got {period}"
        )));
    }
    let weight = |i: u32| 1.0 / f64::from(i + 1).powf(0.9);
    let total_weight: f64 = (0..n).map(weight).sum();
    for i in 0..n {
        let id = explicit + i + 1;
        let mut spec = funcs::inference_function(id, model);
        spec.name = format!("fleet-{i:05}");
        let rate = fleet.total_rps * weight(i) / total_weight;
        let mut arrivals = ArrivalSpec::synth(rate, amp);
        arrivals.period = Some(period);
        arrivals.phase = Some(period * f64::from(i) / f64::from(n));
        arrivals.scale = fleet.burst_scale;
        builder = builder
            .function(spec)
            .initial_instances(fleet.initial.unwrap_or(0))
            .arrivals_spec(arrivals);
    }
    Ok(builder)
}

/// Key schema of every fixed-shape section; `[system.placement]` etc. are
/// exempt (their extra keys *are* the component parameters).
fn reject_unknown_keys(root: &Value) -> Result<(), ScenarioError> {
    fn check(section: &str, v: &Value, known: &[&str]) -> Result<(), ScenarioError> {
        let Some(entries) = v.as_map() else { return Ok(()) };
        for (k, _) in entries {
            let key = k.as_str().unwrap_or("<non-string>");
            if !known.contains(&key) {
                return Err(ScenarioError::Config(format!(
                    "unknown key `{key}` in {section} (known: {})",
                    known.join(", ")
                )));
            }
        }
        Ok(())
    }
    check(
        "the scenario root",
        root,
        &["name", "cluster", "system", "sim", "network", "run", "functions", "fleet"],
    )?;
    if let Some(fleet) = root.get("fleet") {
        check(
            "[fleet]",
            fleet,
            &["functions", "total_rps", "model", "initial", "amp", "period_secs", "burst_scale"],
        )?;
    }
    if let Some(cluster) = root.get("cluster") {
        check("[cluster]", cluster, &["nodes", "gpus_per_node", "gpu_mem_gb"])?;
    }
    if let Some(sim) = root.get("sim") {
        check(
            "[sim]",
            sim,
            &[
                "quantum_ms",
                "tick_ms",
                "batch_timeout_frac",
                "batch_timeout_cap_ms",
                "stage_transfer_ms",
                "resize_latency_ms",
                "time_model",
                "threads",
                "profile",
                "arrival_window",
                "function_series",
            ],
        )?;
    }
    if let Some(network) = root.get("network") {
        check(
            "[network]",
            network,
            &["preset", "registry_gbps", "tor_gbps", "nvlink_gbps", "cache_gb", "provision_ms"],
        )?;
    }
    if let Some(run) = root.get("run") {
        check("[run]", run, &["horizon_secs", "drain_secs", "seed"])?;
    }
    if let Some(system) = root.get("system") {
        check(
            "[system]",
            system,
            &["preset", "placement", "autoscaler", "controller", "share_policy"],
        )?;
    }
    if let Some(Value::Seq(functions)) = root.get("functions") {
        for f in functions {
            check(
                "[[functions]]",
                f,
                &[
                    "name",
                    "model",
                    "role",
                    "batch",
                    "slo_ms",
                    "request_pct",
                    "limit_pct",
                    "mem_gb",
                    "gpus_per_instance",
                    "initial",
                    "workers",
                    "iterations",
                    "start_sec",
                    "arrivals",
                ],
            )?;
            if let Some(arrivals) = f.get("arrivals") {
                check(
                    "arrivals",
                    arrivals,
                    &[
                        "process", "rate", "cv", "shape", "scale", "times", "seed", "path",
                        "format", "function", "amp", "period", "phase",
                    ],
                )?;
            }
        }
    }
    Ok(())
}

/// Rejects function keys that belong to the other role, so a
/// misconfigured function fails loudly instead of silently dropping the
/// keys (mirrors the registry's unknown-parameter protection).
fn reject_role_mismatched_keys(
    id: u32,
    role: &str,
    f: &FunctionSection,
) -> Result<(), ScenarioError> {
    let offending: Vec<&str> = match role {
        "inference" => [
            ("workers", f.workers.is_some()),
            ("iterations", f.iterations.is_some()),
            ("start_sec", f.start_sec.is_some()),
        ]
        .into_iter()
        .filter_map(|(k, set)| set.then_some(k))
        .collect(),
        "training" => [
            ("batch", f.batch.is_some()),
            ("slo_ms", f.slo_ms.is_some()),
            ("request_pct", f.request_pct.is_some()),
            ("limit_pct", f.limit_pct.is_some()),
            ("mem_gb", f.mem_gb.is_some()),
            ("gpus_per_instance", f.gpus_per_instance.is_some()),
            ("initial", f.initial.is_some()),
            ("arrivals", f.arrivals.is_some()),
        ]
        .into_iter()
        .filter_map(|(k, set)| set.then_some(k))
        .collect(),
        _ => Vec::new(),
    };
    if offending.is_empty() {
        Ok(())
    } else {
        Err(ScenarioError::Config(format!(
            "function {id}: `{}` does not apply to role `{role}`",
            offending.join("`, `")
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DEMO: &str = r#"
name = "demo"

[cluster]
nodes = 1
gpus_per_node = 2

[system]
preset = "dilu"

[run]
horizon_secs = 8
seed = 3

[[functions]]
model = "bert-base"
arrivals = { process = "poisson", rate = 20.0 }
"#;

    #[test]
    fn toml_config_builds_and_runs() {
        let config = ScenarioConfig::from_toml_str(DEMO).unwrap();
        assert_eq!(config.name.as_deref(), Some("demo"));
        let registry = Registry::with_defaults();
        let scenario = config.into_builder(&registry).unwrap().build().unwrap();
        assert_eq!(scenario.sim().placement_name(), "dilu-scheduler");
        assert_eq!(scenario.sim().share_policy_name(), "dilu-rckm");
        let report = scenario.run().unwrap();
        assert!(report.inference.values().next().unwrap().completed > 0);
    }

    #[test]
    fn component_tables_override_presets() {
        let text = r#"
[system]
preset = "dilu"

[system.share_policy]
name = "mps-l"

[[functions]]
model = "vgg19"
arrivals = { process = "poisson", rate = 5.0 }
"#;
        let config = ScenarioConfig::from_toml_str(text).unwrap();
        let registry = Registry::with_defaults();
        let scenario = config.into_builder(&registry).unwrap().build().unwrap();
        assert_eq!(scenario.sim().share_policy_name(), "mps-l");
        assert_eq!(scenario.sim().placement_name(), "dilu-scheduler");
    }

    #[test]
    fn idle_gaps_longer_than_the_replay_cap_match_dense_stepping() {
        // Two arrivals separated by ~2.9 s of complete idleness — about
        // 580 skipped 5 ms token cycles, far past the dilu preset's
        // RCKM idle-history bound (`SharePolicy::idle_history_cycles`,
        // 96 cycles at the defaults). The event core replays only that
        // bounded tail of the gap into the policy; the bound is the
        // policy's own convergence fixed point, so the dense reference
        // (which steps every one of the ~580 idle cycles) must still
        // agree byte-for-byte.
        let text = |model: &str| {
            format!(
                r#"
[cluster]
nodes = 1
gpus_per_node = 1

[system]
preset = "dilu"

[sim]
time_model = "{model}"

[run]
horizon_secs = 6
seed = 11

[[functions]]
model = "bert-base"
arrivals = {{ process = "replay", times = [0.1, 3.0] }}
"#
            )
        };
        let run = |model: &str| {
            let config = ScenarioConfig::from_toml_str(&text(model)).unwrap();
            let registry = Registry::with_defaults();
            config.into_builder(&registry).unwrap().build().unwrap().run().unwrap()
        };
        let event = run("event-driven");
        let dense = run("dense-quantum");
        assert_eq!(
            serde_json::to_string(&event).unwrap(),
            serde_json::to_string(&dense).unwrap(),
            "bounded idle replay must equal dense idle stepping across a >cap gap"
        );
        let f = event.inference.values().next().unwrap();
        assert_eq!(f.arrived, 2);
        assert_eq!(f.completed, 2, "both sides of the idle gap serve their request");
    }

    #[test]
    fn json_round_trip_preserves_the_config() {
        let config = ScenarioConfig::from_toml_str(DEMO).unwrap();
        let json = serde_json::to_string_pretty(&config).unwrap();
        let back = ScenarioConfig::from_json_str(&json).unwrap();
        assert_eq!(config, back);
    }

    #[test]
    fn sim_section_round_trips_and_applies() {
        let text = r#"
[system]
preset = "dilu"

[sim]
quantum_ms = 2.5
tick_ms = 500.0
batch_timeout_frac = 0.5
batch_timeout_cap_ms = 50.0
stage_transfer_ms = 1.0
resize_latency_ms = 2.0

[run]
horizon_secs = 5

[[functions]]
model = "bert-base"
arrivals = { process = "poisson", rate = 10.0 }
"#;
        let config = ScenarioConfig::from_toml_str(text).unwrap();
        // TOML → JSON → TOML-equivalent structure round-trips exactly.
        let json = serde_json::to_string_pretty(&config).unwrap();
        let back = ScenarioConfig::from_json_str(&json).unwrap();
        assert_eq!(config, back);
        // And the values land in the running simulator's SimConfig.
        let registry = Registry::with_defaults();
        let scenario = config.into_builder(&registry).unwrap().build().unwrap();
        let sim_config = *scenario.sim().config();
        assert_eq!(sim_config.quantum, SimDuration::from_micros(2_500));
        assert_eq!(sim_config.tick, SimDuration::from_millis(500));
        assert!((sim_config.batch_timeout_frac - 0.5).abs() < 1e-12);
        assert_eq!(sim_config.batch_timeout_cap, SimDuration::from_millis(50));
        assert_eq!(sim_config.stage_transfer, SimDuration::from_millis(1));
        assert_eq!(sim_config.resize_latency, SimDuration::from_millis(2));
    }

    #[test]
    fn sim_section_rejects_invalid_values() {
        let registry = Registry::with_defaults();
        let cases = [
            ("quantum_ms = 0.0", "quantum_ms"),
            ("quantum_ms = -1.0", "quantum_ms"),
            ("tick_ms = 1.0", "tick_ms"), // shorter than the default 5 ms quantum
            ("batch_timeout_frac = 1.5", "batch_timeout_frac"),
            ("quantum_typo_ms = 5.0", "quantum_typo_ms"),
        ];
        for (line, needle) in cases {
            let text = format!(
                "[system]\npreset = \"dilu\"\n\n[sim]\n{line}\n\n[[functions]]\nmodel = \
                 \"bert-base\"\narrivals = {{ process = \"poisson\", rate = 5.0 }}\n"
            );
            let err = ScenarioConfig::from_toml_str(&text)
                .and_then(|c| c.into_builder(&registry).map(|_| ()))
                .map_err(|e| e.to_string());
            assert!(err.as_ref().is_err_and(|e| e.contains(needle)), "{line}: {err:?}");
        }
    }

    #[test]
    fn controller_section_selects_2d_coscaling() {
        let text = r#"
[system]
preset = "dilu"

[system.controller]
name = "co-scale"
max_request_pct = 80.0
phi_out = 10

[[functions]]
model = "bert-base"
arrivals = { process = "poisson", rate = 10.0 }
"#;
        let config = ScenarioConfig::from_toml_str(text).unwrap();
        let registry = Registry::with_defaults();
        let scenario = config.into_builder(&registry).unwrap().build().unwrap();
        assert_eq!(scenario.sim().controller_name(), "dilu-co-scaler");
        // Autoscaler names resolve through the controller slot too.
        let fallback = ScenarioConfig::from_toml_str(
            &text
                .replace("name = \"co-scale\"", "name = \"reactive\"")
                .replace("max_request_pct = 80.0\nphi_out = 10\n", ""),
        )
        .unwrap();
        let scenario = fallback.into_builder(&registry).unwrap().build().unwrap();
        assert_eq!(scenario.sim().controller_name(), "fast-gs+-reactive");
    }

    #[test]
    fn autoscaler_and_controller_conflict_is_rejected() {
        let text = r#"
[system]
preset = "dilu"

[system.autoscaler]
name = "lazy"

[system.controller]
name = "co-scale"

[[functions]]
model = "bert-base"
arrivals = { process = "poisson", rate = 10.0 }
"#;
        let registry = Registry::with_defaults();
        let err = ScenarioConfig::from_toml_str(text)
            .unwrap()
            .into_builder(&registry)
            .map(|_| ())
            .map_err(|e| e.to_string());
        assert!(err.as_ref().is_err_and(|e| e.contains("same slot")), "{err:?}");
    }

    #[test]
    fn unknown_names_are_typed_errors() {
        let bad_model = DEMO.replace("bert-base", "bert-gigantic");
        let config = ScenarioConfig::from_toml_str(&bad_model).unwrap();
        let registry = Registry::with_defaults();
        let err = match config.into_builder(&registry) {
            Err(e) => e.to_string(),
            Ok(_) => panic!("unknown model must fail"),
        };
        assert!(err.contains("bert-gigantic") && err.contains("bert-base"), "{err}");
    }
}

//! Function-spec builders wired to the profiler's `<request, limit>` quotas.
//!
//! The control plane profiles each model once (results are memoised per
//! process) and the builders here turn those quotas into deployable
//! [`FunctionSpec`]s, exactly as Dilu's gateway would after step ❶/❷ of the
//! paper's workflow.

use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

use dilu_cluster::{FunctionId, FunctionKind, FunctionSpec, Quotas};
use dilu_gpu::SmRate;
use dilu_models::ModelId;
use dilu_profiler::{hybrid_growth_search, profile_training, InferenceProfile, TrainingQuotas};

fn inference_cache() -> &'static Mutex<BTreeMap<ModelId, InferenceProfile>> {
    static CACHE: OnceLock<Mutex<BTreeMap<ModelId, InferenceProfile>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(BTreeMap::new()))
}

fn training_cache() -> &'static Mutex<BTreeMap<ModelId, TrainingQuotas>> {
    static CACHE: OnceLock<Mutex<BTreeMap<ModelId, TrainingQuotas>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// The memoised Hybrid-Growth-Search profile of `model`.
pub fn profiled_inference(model: ModelId) -> InferenceProfile {
    let mut cache = inference_cache().lock().expect("profiler cache poisoned");
    cache.entry(model).or_insert_with(|| hybrid_growth_search(model)).clone()
}

/// The memoised binary-search training quotas of `model`.
pub fn profiled_training(model: ModelId) -> TrainingQuotas {
    let mut cache = training_cache().lock().expect("profiler cache poisoned");
    *cache.entry(model).or_insert_with(|| profile_training(model))
}

/// Builds an inference function from the profiled optimum of `model`.
pub fn inference_function(id: u32, model: ModelId) -> FunctionSpec {
    let p = profiled_inference(model);
    let profile = model.profile();
    FunctionSpec {
        id: FunctionId(id),
        name: format!("{}-inf", profile.name),
        model,
        kind: FunctionKind::Inference { slo: profile.slo, batch: p.batch },
        quotas: Quotas::new(p.request, p.limit, profile.infer_mem_bytes),
        gpus_per_instance: 1,
    }
}

/// Builds an inference function with explicit quotas (for sweeps).
pub fn inference_function_with(
    id: u32,
    model: ModelId,
    batch: u32,
    request: SmRate,
    limit: SmRate,
) -> FunctionSpec {
    let profile = model.profile();
    FunctionSpec {
        id: FunctionId(id),
        name: format!("{}-inf", profile.name),
        model,
        kind: FunctionKind::Inference { slo: profile.slo, batch },
        quotas: Quotas::new(request, limit, profile.infer_mem_bytes),
        gpus_per_instance: 1,
    }
}

/// Builds an LLM inference function pipelined over `stages` GPU fragments
/// (the paper deploys LLaMA2-7B on four fragmented GPUs).
pub fn llm_inference_function(id: u32, model: ModelId, stages: u32) -> FunctionSpec {
    assert!(stages >= 1, "need at least one stage");
    let p = profiled_inference(model);
    let profile = model.profile();
    FunctionSpec {
        id: FunctionId(id),
        name: format!("{}-inf", profile.name),
        model,
        kind: FunctionKind::Inference { slo: profile.slo, batch: p.batch },
        quotas: Quotas::new(
            // Per-stage slice: each fragment carries 1/stages of the load.
            p.request.scale(1.0 / f64::from(stages)).max(SmRate::from_percent(10.0)),
            p.limit.scale(1.0 / f64::from(stages)).max(SmRate::from_percent(20.0)),
            profile.infer_mem_bytes / u64::from(stages) + dilu_gpu::GB / 2,
        ),
        gpus_per_instance: stages,
    }
}

/// Builds a training function with profiled `<request, limit>` quotas.
pub fn training_function(id: u32, model: ModelId, workers: u32, iterations: u64) -> FunctionSpec {
    let q = profiled_training(model);
    let profile = model.profile();
    FunctionSpec {
        id: FunctionId(id),
        name: format!("{}-train", profile.name),
        model,
        kind: FunctionKind::Training { workers, iterations },
        quotas: Quotas::new(q.request.smr, q.limit.smr, profile.training.mem_bytes),
        gpus_per_instance: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inference_functions_carry_profiled_quotas() {
        let f = inference_function(1, ModelId::RobertaLarge);
        let p = profiled_inference(ModelId::RobertaLarge);
        assert_eq!(f.quotas.request, p.request);
        assert_eq!(f.quotas.limit, p.limit);
        assert!(f.capacity_rps() > 0.0);
    }

    #[test]
    fn training_functions_have_request_below_limit() {
        let f = training_function(2, ModelId::BertBase, 4, 100);
        assert!(f.quotas.request <= f.quotas.limit);
        assert_eq!(f.gpus_per_instance, 1);
    }

    #[test]
    fn llm_functions_split_memory_across_stages() {
        let solo = inference_function(3, ModelId::Llama2_7b);
        let staged = llm_inference_function(4, ModelId::Llama2_7b, 4);
        assert_eq!(staged.gpus_per_instance, 4);
        assert!(staged.quotas.mem_bytes < solo.quotas.mem_bytes / 2);
    }

    #[test]
    fn profiles_are_memoised() {
        let a = profiled_inference(ModelId::BertBase);
        let b = profiled_inference(ModelId::BertBase);
        assert_eq!(a, b);
    }
}

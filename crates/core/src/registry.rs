//! String-keyed registries for placements, autoscalers, and share
//! policies, so scenario config files (and external users) can name any
//! component — built-in or registered at runtime — without touching an
//! enum.
//!
//! Every constructor receives the component's parameter table as a
//! [`serde::Value`] map; unknown parameter keys are rejected so config
//! typos fail loudly.

use std::collections::BTreeMap;

use dilu_baselines::{KeepAliveScaler, QuotaSource, ReactiveScaler};
use dilu_cluster::{Autoscaler, ElasticityController, Placement, PolicyFactory};
use dilu_gpu::SmRate;
use dilu_rckm::RckmConfig;
use dilu_scaler::{CoScaler, CoScalerConfig, LazyScaler, ScalerConfig};
use dilu_scheduler::{DiluScheduler, ExclusivePlacement, SchedulerConfig};
use dilu_sim::SimDuration;
use serde::Value;

use crate::factories::{
    FairFactory, FastGsFactory, MpsFactory, NullAutoscaler, RckmFactory, TgsFactory,
};
use crate::ScenarioError;

/// Constructor signature for registered placements.
pub type PlacementCtor =
    Box<dyn Fn(&Params) -> Result<Box<dyn Placement>, ScenarioError> + Send + Sync>;
/// Constructor signature for registered autoscalers.
pub type AutoscalerCtor =
    Box<dyn Fn(&Params) -> Result<Box<dyn Autoscaler>, ScenarioError> + Send + Sync>;
/// Constructor signature for registered 2D elasticity controllers.
pub type ControllerCtor =
    Box<dyn Fn(&Params) -> Result<Box<dyn ElasticityController>, ScenarioError> + Send + Sync>;
/// Constructor signature for registered share-policy factories.
pub type SharePolicyCtor =
    Box<dyn Fn(&Params) -> Result<Box<dyn PolicyFactory>, ScenarioError> + Send + Sync>;

/// A component's parameter table from the config file (string keys).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Params {
    entries: Vec<(String, Value)>,
}

impl Params {
    /// An empty table (component defaults).
    pub fn empty() -> Self {
        Params::default()
    }

    /// Builds a table from `(key, value)` pairs.
    pub fn from_entries(entries: Vec<(String, Value)>) -> Self {
        Params { entries }
    }

    /// The raw entries.
    pub fn entries(&self) -> &[(String, Value)] {
        &self.entries
    }

    /// Looks a key up.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// `f64` value of `key`, or `default` when absent.
    pub fn f64_or(&self, key: &str, default: f64) -> Result<f64, ScenarioError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.as_f64().ok_or_else(|| {
                ScenarioError::Config(format!("parameter `{key}` must be a number"))
            }),
        }
    }

    /// `u64` value of `key`, or `default` when absent.
    pub fn u64_or(&self, key: &str, default: u64) -> Result<u64, ScenarioError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.as_u64().ok_or_else(|| {
                ScenarioError::Config(format!("parameter `{key}` must be an unsigned integer"))
            }),
        }
    }

    /// `bool` value of `key`, or `default` when absent.
    pub fn bool_or(&self, key: &str, default: bool) -> Result<bool, ScenarioError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.as_bool().ok_or_else(|| {
                ScenarioError::Config(format!("parameter `{key}` must be a boolean"))
            }),
        }
    }

    /// Rejects any key outside `known` (typo protection for config files).
    pub fn expect_keys(&self, known: &[&str]) -> Result<(), ScenarioError> {
        for (k, _) in &self.entries {
            if !known.contains(&k.as_str()) {
                return Err(ScenarioError::Config(format!(
                    "unknown parameter `{k}` (known: {})",
                    known.join(", ")
                )));
            }
        }
        Ok(())
    }
}

fn scheduler_config(params: &Params) -> Result<SchedulerConfig, ScenarioError> {
    params.expect_keys(&[
        "omega",
        "gamma",
        "alpha",
        "beta",
        "workload_affinity",
        "resource_complementary",
    ])?;
    let d = SchedulerConfig::default();
    Ok(SchedulerConfig {
        omega: params.f64_or("omega", d.omega)?,
        gamma: params.f64_or("gamma", d.gamma)?,
        alpha: params.f64_or("alpha", d.alpha)?,
        beta: params.f64_or("beta", d.beta)?,
        workload_affinity: params.bool_or("workload_affinity", d.workload_affinity)?,
        resource_complementary: params
            .bool_or("resource_complementary", d.resource_complementary)?,
    })
}

fn scaler_config(params: &Params) -> Result<ScalerConfig, ScenarioError> {
    params.expect_keys(&["window", "phi_out", "phi_in", "scale_to_zero"])?;
    let d = ScalerConfig::default();
    Ok(ScalerConfig {
        window: params.u64_or("window", d.window as u64)? as usize,
        phi_out: params.u64_or("phi_out", d.phi_out as u64)? as usize,
        phi_in: params.u64_or("phi_in", d.phi_in as u64)? as usize,
        scale_to_zero: params.bool_or("scale_to_zero", d.scale_to_zero)?,
    })
}

fn coscaler_config(params: &Params) -> Result<CoScalerConfig, ScenarioError> {
    params.expect_keys(&[
        "window",
        "phi_out",
        "phi_in",
        "phi_vertical",
        "scale_to_zero",
        "max_request_pct",
        "target_headroom",
    ])?;
    let d = CoScalerConfig::default();
    let max_request_pct = params.f64_or("max_request_pct", d.max_request.as_percent())?;
    if !(max_request_pct.is_finite() && 0.0 < max_request_pct && max_request_pct <= 100.0) {
        return Err(ScenarioError::Config(format!(
            "parameter `max_request_pct` must be in (0, 100], got {max_request_pct}"
        )));
    }
    let target_headroom = params.f64_or("target_headroom", d.target_headroom)?;
    if !(target_headroom.is_finite() && target_headroom >= 1.0) {
        return Err(ScenarioError::Config(format!(
            "parameter `target_headroom` must be at least 1.0, got {target_headroom}"
        )));
    }
    let h = d.horizontal;
    Ok(CoScalerConfig {
        horizontal: ScalerConfig {
            window: params.u64_or("window", h.window as u64)? as usize,
            phi_out: params.u64_or("phi_out", h.phi_out as u64)? as usize,
            phi_in: params.u64_or("phi_in", h.phi_in as u64)? as usize,
            scale_to_zero: params.bool_or("scale_to_zero", h.scale_to_zero)?,
        },
        phi_vertical: params.u64_or("phi_vertical", d.phi_vertical as u64)? as usize,
        max_request: SmRate::from_percent(max_request_pct),
        target_headroom,
    })
}

fn rckm_config(params: &Params) -> Result<RckmConfig, ScenarioError> {
    params.expect_keys(&[
        "max_tokens",
        "eta_violation",
        "eta_increase",
        "rate_window",
        "queue_pressure",
    ])?;
    let d = RckmConfig::default();
    Ok(RckmConfig {
        max_tokens: params.f64_or("max_tokens", d.max_tokens)?,
        eta_violation: params.f64_or("eta_violation", d.eta_violation)?,
        eta_increase: params.f64_or("eta_increase", d.eta_increase)?,
        rate_window: params.u64_or("rate_window", d.rate_window as u64)? as usize,
        queue_pressure: params.u64_or("queue_pressure", d.queue_pressure as u64)? as usize,
    })
}

/// Instance-based registry of named components.
///
/// [`Registry::with_defaults`] knows every component shipped by this
/// workspace; `register_*` adds more. Config loading
/// ([`ScenarioConfig`](crate::ScenarioConfig)) resolves names through a
/// registry, so external policies become config-addressable by
/// registering them.
#[derive(Default)]
pub struct Registry {
    placements: BTreeMap<String, PlacementCtor>,
    autoscalers: BTreeMap<String, AutoscalerCtor>,
    controllers: BTreeMap<String, ControllerCtor>,
    share_policies: BTreeMap<String, SharePolicyCtor>,
}

impl Registry {
    /// An empty registry (no names known).
    pub fn empty() -> Self {
        Registry::default()
    }

    /// The registry of every built-in component.
    pub fn with_defaults() -> Self {
        let mut r = Registry::empty();

        // Placements.
        r.register_placement("dilu", |p| Ok(Box::new(DiluScheduler::new(scheduler_config(p)?))));
        r.register_placement("packing", |p| {
            // INFless-style complementarity packing without the affinity
            // pass; `workload_affinity` is what this name turns off, so it
            // is not an accepted parameter here.
            p.expect_keys(&["omega", "gamma", "alpha", "beta"])?;
            let config = SchedulerConfig { workload_affinity: false, ..scheduler_config(p)? };
            Ok(Box::new(DiluScheduler::new(config)))
        });
        r.register_placement("first-fit", |p| {
            // Both principles are what this name turns off; neither is an
            // accepted parameter.
            p.expect_keys(&["omega", "gamma", "alpha", "beta"])?;
            let config = SchedulerConfig {
                resource_complementary: false,
                workload_affinity: false,
                ..scheduler_config(p)?
            };
            Ok(Box::new(DiluScheduler::new(config)))
        });
        r.register_placement("exclusive", |p| {
            p.expect_keys(&[])?;
            Ok(Box::new(ExclusivePlacement::new()))
        });

        // Autoscalers.
        r.register_autoscaler("lazy", |p| Ok(Box::new(LazyScaler::new(scaler_config(p)?))));
        r.register_autoscaler("keep-alive", |p| {
            p.expect_keys(&["keep_alive_secs"])?;
            // Observation-3 default (50 s) — must match
            // KeepAliveScaler::default() so the registry spelling composes
            // the same system as the presets.
            match p.get("keep_alive_secs") {
                None => Ok(Box::new(KeepAliveScaler::default())),
                Some(_) => {
                    let secs = p.f64_or("keep_alive_secs", 0.0)?;
                    Ok(Box::new(KeepAliveScaler::new(SimDuration::from_secs_f64(secs))))
                }
            }
        });
        r.register_autoscaler("reactive", |p| {
            p.expect_keys(&[])?;
            Ok(Box::new(ReactiveScaler::new()))
        });
        r.register_autoscaler("null", |p| {
            p.expect_keys(&[])?;
            Ok(Box::new(NullAutoscaler))
        });

        // 2D elasticity controllers.
        r.register_controller("co-scale", |p| Ok(Box::new(CoScaler::new(coscaler_config(p)?))));

        // Share policies.
        r.register_share_policy("rckm", |p| Ok(Box::new(RckmFactory(rckm_config(p)?))));
        r.register_share_policy("mps-l", |p| {
            p.expect_keys(&[])?;
            Ok(Box::new(MpsFactory(QuotaSource::Limit)))
        });
        r.register_share_policy("mps-r", |p| {
            p.expect_keys(&[])?;
            Ok(Box::new(MpsFactory(QuotaSource::Request)))
        });
        r.register_share_policy("tgs", |p| {
            p.expect_keys(&[])?;
            Ok(Box::new(TgsFactory))
        });
        r.register_share_policy("fast-gs", |p| {
            p.expect_keys(&[])?;
            Ok(Box::new(FastGsFactory))
        });
        r.register_share_policy("fair", |p| {
            p.expect_keys(&[])?;
            Ok(Box::new(FairFactory))
        });
        r
    }

    /// Registers (or replaces) a placement constructor under `name`.
    pub fn register_placement<F>(&mut self, name: impl Into<String>, ctor: F)
    where
        F: Fn(&Params) -> Result<Box<dyn Placement>, ScenarioError> + Send + Sync + 'static,
    {
        self.placements.insert(name.into(), Box::new(ctor));
    }

    /// Registers (or replaces) an autoscaler constructor under `name`.
    pub fn register_autoscaler<F>(&mut self, name: impl Into<String>, ctor: F)
    where
        F: Fn(&Params) -> Result<Box<dyn Autoscaler>, ScenarioError> + Send + Sync + 'static,
    {
        self.autoscalers.insert(name.into(), Box::new(ctor));
    }

    /// Registers (or replaces) a 2D elasticity-controller constructor under
    /// `name`.
    pub fn register_controller<F>(&mut self, name: impl Into<String>, ctor: F)
    where
        F: Fn(&Params) -> Result<Box<dyn ElasticityController>, ScenarioError>
            + Send
            + Sync
            + 'static,
    {
        self.controllers.insert(name.into(), Box::new(ctor));
    }

    /// Registers (or replaces) a share-policy constructor under `name`.
    pub fn register_share_policy<F>(&mut self, name: impl Into<String>, ctor: F)
    where
        F: Fn(&Params) -> Result<Box<dyn PolicyFactory>, ScenarioError> + Send + Sync + 'static,
    {
        self.share_policies.insert(name.into(), Box::new(ctor));
    }

    /// Builds the placement registered under `name`.
    pub fn placement(
        &self,
        name: &str,
        params: &Params,
    ) -> Result<Box<dyn Placement>, ScenarioError> {
        match self.placements.get(name) {
            Some(ctor) => ctor(params),
            None => Err(ScenarioError::Unknown {
                kind: "placement",
                name: name.to_owned(),
                known: self.placement_names(),
            }),
        }
    }

    /// Builds the autoscaler registered under `name`.
    pub fn autoscaler(
        &self,
        name: &str,
        params: &Params,
    ) -> Result<Box<dyn Autoscaler>, ScenarioError> {
        match self.autoscalers.get(name) {
            Some(ctor) => ctor(params),
            None => Err(ScenarioError::Unknown {
                kind: "autoscaler",
                name: name.to_owned(),
                known: self.autoscaler_names(),
            }),
        }
    }

    /// Builds the elasticity controller registered under `name`.
    ///
    /// Falls back to the autoscaler namespace: any registered
    /// [`Autoscaler`] resolves here too, adapted into a horizontal-only
    /// controller — so `[system.controller]` accepts every name
    /// `[system.autoscaler]` does, plus the true 2D controllers.
    pub fn controller(
        &self,
        name: &str,
        params: &Params,
    ) -> Result<Box<dyn ElasticityController>, ScenarioError> {
        if let Some(ctor) = self.controllers.get(name) {
            return ctor(params);
        }
        if self.autoscalers.contains_key(name) {
            let autoscaler = self.autoscaler(name, params)?;
            return Ok(Box::new(autoscaler));
        }
        let mut known = self.controller_names();
        known.extend(self.autoscaler_names());
        Err(ScenarioError::Unknown { kind: "controller", name: name.to_owned(), known })
    }

    /// Builds the share-policy factory registered under `name`.
    pub fn share_policy(
        &self,
        name: &str,
        params: &Params,
    ) -> Result<Box<dyn PolicyFactory>, ScenarioError> {
        match self.share_policies.get(name) {
            Some(ctor) => ctor(params),
            None => Err(ScenarioError::Unknown {
                kind: "share policy",
                name: name.to_owned(),
                known: self.share_policy_names(),
            }),
        }
    }

    /// Registered placement names, sorted.
    pub fn placement_names(&self) -> Vec<String> {
        self.placements.keys().cloned().collect()
    }

    /// Registered autoscaler names, sorted.
    pub fn autoscaler_names(&self) -> Vec<String> {
        self.autoscalers.keys().cloned().collect()
    }

    /// Registered 2D-controller names, sorted (autoscaler names resolve as
    /// controllers too but are listed by [`autoscaler_names`](Self::autoscaler_names)).
    pub fn controller_names(&self) -> Vec<String> {
        self.controllers.keys().cloned().collect()
    }

    /// Registered share-policy names, sorted.
    pub fn share_policy_names(&self) -> Vec<String> {
        self.share_policies.keys().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_cover_every_builtin() {
        let r = Registry::with_defaults();
        assert_eq!(r.placement_names(), ["dilu", "exclusive", "first-fit", "packing"]);
        assert_eq!(r.autoscaler_names(), ["keep-alive", "lazy", "null", "reactive"]);
        assert_eq!(r.controller_names(), ["co-scale"]);
        assert_eq!(r.share_policy_names(), ["fair", "fast-gs", "mps-l", "mps-r", "rckm", "tgs"]);
        for name in r.placement_names() {
            assert!(r.placement(&name, &Params::empty()).is_ok(), "placement {name}");
        }
        for name in r.autoscaler_names() {
            assert!(r.autoscaler(&name, &Params::empty()).is_ok(), "autoscaler {name}");
        }
        for name in r.controller_names() {
            assert!(r.controller(&name, &Params::empty()).is_ok(), "controller {name}");
        }
        for name in r.share_policy_names() {
            let f = r.share_policy(&name, &Params::empty()).unwrap();
            assert!(!f.name().is_empty());
            let _ = f.make();
        }
    }

    #[test]
    fn unknown_names_list_alternatives() {
        let r = Registry::with_defaults();
        let err = r.placement("no-such", &Params::empty());
        let msg = match err {
            Err(e) => e.to_string(),
            Ok(_) => panic!("lookup must fail"),
        };
        assert!(msg.contains("no-such") && msg.contains("dilu"), "{msg}");
    }

    #[test]
    fn params_override_and_reject_typos() {
        let r = Registry::with_defaults();
        let params = Params::from_entries(vec![("gamma".into(), Value::Float(5.0))]);
        assert!(r.placement("dilu", &params).is_ok());
        let typo = Params::from_entries(vec![("gamm".into(), Value::Float(5.0))]);
        let msg = match r.placement("dilu", &typo) {
            Err(e) => e.to_string(),
            Ok(_) => panic!("typo must fail"),
        };
        assert!(msg.contains("gamm"), "{msg}");
    }

    #[test]
    fn autoscalers_resolve_as_controllers() {
        let r = Registry::with_defaults();
        // Horizontal-only names adapt through the blanket impl.
        let lazy = r.controller("lazy", &Params::empty()).unwrap();
        assert_eq!(lazy.name(), "dilu-lazy-scaler");
        // The true 2D controller resolves directly, with its knobs.
        let params = Params::from_entries(vec![
            ("max_request_pct".into(), Value::Float(80.0)),
            ("phi_out".into(), Value::UInt(10)),
        ]);
        let co = r.controller("co-scale", &params).unwrap();
        assert_eq!(co.name(), "dilu-co-scaler");
        // Unknown names list both namespaces.
        let err = match r.controller("no-such", &Params::empty()) {
            Err(e) => e.to_string(),
            Ok(_) => panic!("lookup must fail"),
        };
        assert!(err.contains("co-scale") && err.contains("lazy"), "{err}");
        // Bad knobs are typed errors.
        let bad = Params::from_entries(vec![("max_request_pct".into(), Value::Float(0.0))]);
        assert!(r.controller("co-scale", &bad).is_err());
    }

    #[test]
    fn user_registration_extends_the_namespace() {
        let mut r = Registry::with_defaults();
        r.register_autoscaler("noop", |p| {
            p.expect_keys(&[])?;
            Ok(Box::new(NullAutoscaler))
        });
        assert!(r.autoscaler("noop", &Params::empty()).is_ok());
    }
}

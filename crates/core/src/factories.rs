//! Named policy factories and experiment-harness placement/scaling stubs.

use std::collections::BTreeMap;
use std::collections::VecDeque;

use dilu_baselines::{FastGsPolicy, MpsPolicy, QuotaSource, TgsPolicy};
use dilu_cluster::{
    Autoscaler, ClusterView, FunctionId, FunctionScaleView, FunctionSpec, GpuAddr, Placement,
    PolicyFactory, ScaleAction,
};
use dilu_gpu::policies::FairSharePolicy;
use dilu_gpu::SharePolicy;
use dilu_rckm::{RckmConfig, RckmPolicy};
use dilu_sim::SimTime;

/// Builds one Dilu RCKM token manager per GPU.
#[derive(Debug, Clone, Copy, Default)]
pub struct RckmFactory(pub RckmConfig);

impl PolicyFactory for RckmFactory {
    fn make(&self) -> Box<dyn SharePolicy> {
        Box::new(RckmPolicy::new(self.0))
    }

    fn name(&self) -> &str {
        "dilu-rckm"
    }
}

/// Builds static MPS partitions per GPU (−l or −r flavour).
#[derive(Debug, Clone, Copy)]
pub struct MpsFactory(pub QuotaSource);

impl PolicyFactory for MpsFactory {
    fn make(&self) -> Box<dyn SharePolicy> {
        Box::new(MpsPolicy::new(self.0))
    }

    fn name(&self) -> &str {
        match self.0 {
            QuotaSource::Request => "mps-r",
            QuotaSource::Limit => "mps-l",
        }
    }
}

/// Builds TGS transparent-sharing policies per GPU.
#[derive(Debug, Clone, Copy, Default)]
pub struct TgsFactory;

impl PolicyFactory for TgsFactory {
    fn make(&self) -> Box<dyn SharePolicy> {
        Box::new(TgsPolicy::new())
    }

    fn name(&self) -> &str {
        "tgs"
    }
}

/// Builds FaST-GS spatio-temporal policies per GPU.
#[derive(Debug, Clone, Copy, Default)]
pub struct FastGsFactory;

impl PolicyFactory for FastGsFactory {
    fn make(&self) -> Box<dyn SharePolicy> {
        Box::new(FastGsPolicy::new())
    }

    fn name(&self) -> &str {
        "fast-gs"
    }
}

/// Builds unmanaged fair-share policies (Exclusive pass-through).
#[derive(Debug, Clone, Copy, Default)]
pub struct FairFactory;

impl PolicyFactory for FairFactory {
    fn make(&self) -> Box<dyn SharePolicy> {
        Box::new(FairSharePolicy)
    }

    fn name(&self) -> &str {
        "fair-share"
    }
}

/// A share-policy factory from a closure plus a report name.
///
/// This is the ergonomic way to plug a custom per-GPU policy into
/// [`ScenarioBuilder::share_policy`](crate::ScenarioBuilder::share_policy)
/// without defining a factory struct. It is also the *only* closure path:
/// bare closures are not factories (an old blanket impl gave them all the
/// same uninformative `"closure-policy"` name), so every custom policy
/// carries a meaningful name in scenario listings and reports.
///
/// # Examples
///
/// ```
/// use dilu_cluster::PolicyFactory;
/// use dilu_core::custom_share_policy;
/// use dilu_gpu::policies::FairSharePolicy;
///
/// let factory = custom_share_policy("my-fair", || Box::new(FairSharePolicy));
/// assert_eq!(factory.name(), "my-fair");
/// assert_eq!(factory.make().name(), "fair-share");
/// ```
pub fn custom_share_policy<F>(
    name: impl Into<String>,
    make: F,
) -> dilu_cluster::NamedPolicyFactory<F>
where
    F: Fn() -> Box<dyn SharePolicy>,
{
    dilu_cluster::named(name, make)
}

/// A placement that hands out pre-determined GPU lists per function —
/// used by the GPU-level collocation experiments (Figs. 7–11, 13–14) where
/// the paper pins instances to specific cards.
///
/// Each launch of a function pops the next pinned assignment; when a
/// function's queue is exhausted the last assignment is reused (repeat
/// launches land on the same GPUs).
#[derive(Debug, Clone, Default)]
pub struct PinnedPlacement {
    assignments: BTreeMap<FunctionId, VecDeque<Vec<GpuAddr>>>,
    last: BTreeMap<FunctionId, Vec<GpuAddr>>,
}

impl PinnedPlacement {
    /// Creates an empty pinning table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queues a pinned assignment for the next launch of `func`.
    pub fn pin(&mut self, func: FunctionId, gpus: Vec<GpuAddr>) -> &mut Self {
        self.assignments.entry(func).or_default().push_back(gpus);
        self
    }
}

impl Placement for PinnedPlacement {
    fn place(&mut self, func: &FunctionSpec, _cluster: &ClusterView) -> Option<Vec<GpuAddr>> {
        let next = self
            .assignments
            .get_mut(&func.id)
            .and_then(VecDeque::pop_front)
            .or_else(|| self.last.get(&func.id).cloned())?;
        self.last.insert(func.id, next.clone());
        Some(next)
    }

    fn name(&self) -> &str {
        "pinned"
    }
}

/// An autoscaler that never acts — for experiments with fixed deployments.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullAutoscaler;

impl Autoscaler for NullAutoscaler {
    fn on_tick(&mut self, _now: SimTime, _functions: &[FunctionScaleView]) -> Vec<ScaleAction> {
        Vec::new()
    }

    fn name(&self) -> &str {
        "null"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dilu_cluster::{FunctionKind, Quotas};
    use dilu_gpu::{SmRate, GB};
    use dilu_models::ModelId;
    use dilu_sim::SimDuration;

    fn spec(id: u32) -> FunctionSpec {
        FunctionSpec {
            id: FunctionId(id),
            name: "f".into(),
            model: ModelId::BertBase,
            kind: FunctionKind::Inference { slo: SimDuration::from_millis(50), batch: 4 },
            quotas: Quotas::equal(SmRate::from_percent(30.0), GB),
            gpus_per_instance: 1,
        }
    }

    #[test]
    fn pinned_placement_pops_then_repeats() {
        let mut p = PinnedPlacement::new();
        let a = GpuAddr { node: 0, gpu: 0 };
        let b = GpuAddr { node: 0, gpu: 1 };
        p.pin(FunctionId(1), vec![a]).pin(FunctionId(1), vec![b]);
        let cv = ClusterView { gpus: Vec::new() };
        assert_eq!(p.place(&spec(1), &cv), Some(vec![a]));
        assert_eq!(p.place(&spec(1), &cv), Some(vec![b]));
        // Exhausted: repeats the last assignment.
        assert_eq!(p.place(&spec(1), &cv), Some(vec![b]));
        // Unknown function: no placement.
        assert_eq!(p.place(&spec(2), &cv), None);
    }

    #[test]
    fn custom_share_policies_are_named() {
        let f = custom_share_policy("tgs-tuned", || Box::new(dilu_baselines::TgsPolicy::new()));
        assert_eq!(f.name(), "tgs-tuned");
        assert_eq!(f.make().name(), "tgs");
    }

    #[test]
    fn factories_name_their_policies() {
        assert_eq!(RckmFactory::default().make().name(), "dilu-rckm");
        assert_eq!(MpsFactory(QuotaSource::Limit).name(), "mps-l");
        assert_eq!(MpsFactory(QuotaSource::Request).make().name(), "mps-r");
        assert_eq!(TgsFactory.make().name(), "tgs");
        assert_eq!(FastGsFactory.make().name(), "fast-gs");
        assert_eq!(FairFactory.make().name(), "fair-share");
    }
}

//! Fig. 17: GPU provisioning efficiency at 1000-node scale.

use serde::{Deserialize, Serialize};

use crate::macrosim::{run_macro, MacroConfig, MacroResult, MacroSystem};
use crate::table::Table;

/// The three-system large-scale comparison.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig17 {
    /// One result per system.
    pub results: Vec<MacroResult>,
}

/// Runs the 1000-node, 3200-instance study for all three systems.
pub fn run() -> Fig17 {
    run_with(&MacroConfig::default())
}

/// Runs the study with an explicit configuration (tests use smaller ones).
pub fn run_with(config: &MacroConfig) -> Fig17 {
    Fig17 { results: MacroSystem::ALL.iter().map(|&s| run_macro(s, config, 1.5)).collect() }
}

impl Fig17 {
    /// Result of one system by label.
    pub fn result(&self, label: &str) -> Option<&MacroResult> {
        self.results.iter().find(|r| r.system == label)
    }

    /// Dilu's GPU-cost reduction versus `label` (paper: 30% vs Exclusive,
    /// 23% vs INFless+-l).
    pub fn cost_reduction_vs(&self, label: &str) -> f64 {
        let (Some(dilu), Some(other)) = (self.result("Dilu"), self.result(label)) else {
            return 0.0;
        };
        1.0 - dilu.gpu_seconds / other.gpu_seconds.max(1e-9)
    }
}

impl std::fmt::Display for Fig17 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut t = Table::new([
            "system",
            "mean GPUs",
            "peak GPUs",
            "SM frag",
            "mem frag",
            "GPU-hours",
            "unplaced",
        ]);
        for r in &self.results {
            t.row([
                r.system.clone(),
                format!("{:.0}", r.mean_occupied),
                r.peak_occupied.to_string(),
                format!("{:.1}%", r.sm_fragmentation * 100.0),
                format!("{:.1}%", r.mem_fragmentation * 100.0),
                format!("{:.1}", r.gpu_seconds / 3600.0),
                r.unplaced.to_string(),
            ]);
        }
        writeln!(f, "{t}")?;
        writeln!(
            f,
            "Dilu cost reduction: {:.0}% vs Exclusive, {:.0}% vs INFless+-l",
            self.cost_reduction_vs("Exclusive") * 100.0,
            self.cost_reduction_vs("INFless+-l") * 100.0,
        )
    }
}

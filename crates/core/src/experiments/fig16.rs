//! Fig. 16 — aggregate throughput per GPU, normalised to Exclusive.
//!
//! Derived from the Fig. 15 end-to-end run: per-occupied-GPU inference
//! goodput and training throughput of every system, divided by
//! Exclusive's (the paper's aggregate-throughput definition).

use serde::{Deserialize, Serialize};

use crate::experiments::fig15;
use crate::table::Table;

/// One system's normalised aggregate throughput.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Row {
    /// System label.
    pub system: String,
    /// Inference goodput per GPU over Exclusive's.
    pub inference_x_exclusive: f64,
    /// Training throughput per GPU over Exclusive's.
    pub training_x_exclusive: f64,
}

/// The full normalised comparison.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig16 {
    /// One row per system, END_TO_END order.
    pub rows: Vec<Row>,
}

/// Runs (or reuses this process's memoised) Fig. 15 scenario and
/// normalises to Exclusive.
pub fn run() -> Fig16 {
    from_fig15(fig15::run_cached())
}

/// Normalises an existing Fig. 15 result.
pub fn from_fig15(result: &fig15::Fig15) -> Fig16 {
    let excl = result.row("Exclusive").expect("Fig. 15 includes Exclusive").clone();
    Fig16 {
        rows: result
            .rows
            .iter()
            .map(|r| Row {
                system: r.system.clone(),
                inference_x_exclusive: r.inf_goodput_per_gpu / excl.inf_goodput_per_gpu.max(1e-9),
                training_x_exclusive: r.train_throughput_per_gpu
                    / excl.train_throughput_per_gpu.max(1e-9),
            })
            .collect(),
    }
}

impl std::fmt::Display for Fig16 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut t = Table::new(["system", "inference x Exclusive", "training x Exclusive"]);
        for r in &self.rows {
            t.row([
                r.system.clone(),
                format!("{:.2}", r.inference_x_exclusive),
                format!("{:.2}", r.training_x_exclusive),
            ]);
        }
        write!(f, "{t}")
    }
}

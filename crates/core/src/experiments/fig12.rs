//! Fig. 12: trace analysis of co-scaling — offered load, instance count and
//! per-second SLO violations under a bursty workload on the full Dilu stack.

use dilu_models::ModelId;
use dilu_sim::{SimDuration, SimTime};
use dilu_workload::{ArrivalProcess, RateTrace, TraceKind, TraceProcess};
use serde::{Deserialize, Serialize};

use crate::funcs;
use crate::table::Table;
use crate::{build_sim, SystemKind};

const HORIZON_SECS: u64 = 400;

/// One timeline sample.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Point {
    /// Second since start.
    pub sec: u64,
    /// Offered requests in the second.
    pub rps: u64,
    /// Ready instances at the end of the second.
    pub instances: u32,
    /// Violation rate within the second.
    pub svr: f64,
}

/// The co-scaling timeline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig12 {
    /// Per-second samples.
    pub points: Vec<Point>,
    /// Overall SLO violation rate.
    pub total_svr: f64,
    /// Cold starts over the run.
    pub cold_starts: u64,
}

/// Runs the bursty-trace co-scaling analysis on full Dilu.
pub fn run() -> Fig12 {
    let trace = RateTrace::synthesize(
        TraceKind::Bursty,
        20.0,
        5.0,
        SimDuration::from_secs(HORIZON_SECS),
        81,
    );
    let arrivals = TraceProcess::new(trace, 81).generate(SimTime::from_secs(HORIZON_SECS));
    let mut sim = build_sim(SystemKind::Dilu, dilu_cluster::ClusterSpec::single_node(8));
    let spec = funcs::inference_function(1, ModelId::RobertaLarge);
    sim.deploy_inference(spec, 1, arrivals).expect("deploys on an empty cluster");
    // A collocated training function keeps the GPUs contended, as in §5.3.
    sim.deploy_training(funcs::training_function(2, ModelId::BertBase, 2, u64::MAX))
        .expect("training deploys");
    sim.run_until(SimTime::from_secs(HORIZON_SECS + 10));
    let report = sim.into_report();
    let f = report.inference.values().next().expect("inference function");
    let points = f
        .timeline
        .iter()
        .map(|p| Point {
            sec: p.sec,
            rps: p.arrivals,
            instances: p.ready_instances,
            svr: if p.completions == 0 { 0.0 } else { p.violations as f64 / p.completions as f64 },
        })
        .collect();
    Fig12 { points, total_svr: f.svr(), cold_starts: f.cold_starts.count() }
}

impl std::fmt::Display for Fig12 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut t = Table::new(["sec", "rps", "instances", "SVR/s"]);
        for p in self.points.iter().step_by(20) {
            t.row([
                p.sec.to_string(),
                p.rps.to_string(),
                p.instances.to_string(),
                format!("{:.1}%", p.svr * 100.0),
            ]);
        }
        writeln!(f, "{t}")?;
        writeln!(f, "overall SVR {:.2}%  cold starts {}", self.total_svr * 100.0, self.cold_starts)
    }
}

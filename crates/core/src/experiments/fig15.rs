//! Fig. 15 (end-to-end scheduling + ablations) and Fig. 16 (aggregate
//! throughput): 4 training functions submitted over time plus 4 inference
//! functions with mixed workloads on the 20-GPU testbed.

use dilu_cluster::{ClusterReport, ClusterSpec, FunctionId};
use dilu_models::ModelId;
use dilu_sim::{SimDuration, SimTime};
use dilu_workload::{ArrivalProcess, PoissonProcess, RateTrace, TraceKind, TraceProcess};
use serde::{Deserialize, Serialize};

use crate::funcs;
use crate::table::Table;
use crate::{build_sim, SystemKind};

const HORIZON_SECS: u64 = 600;

/// One system's end-to-end outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Row {
    /// System label.
    pub system: String,
    /// Mean SVR across inference functions.
    pub mean_svr: f64,
    /// Worst per-function SVR.
    pub max_svr: f64,
    /// Mean training JCT normalised to Exclusive (finished jobs only).
    pub norm_jct: f64,
    /// Peak GPUs occupied.
    pub max_gpus: u32,
    /// Inference goodput (completed req/s) per occupied GPU.
    pub inf_goodput_per_gpu: f64,
    /// Training throughput (samples/s) per occupied GPU.
    pub train_throughput_per_gpu: f64,
}

/// The full end-to-end comparison.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig15 {
    /// One row per system, END_TO_END order.
    pub rows: Vec<Row>,
}

fn deploy_workload(sim: &mut dilu_cluster::ClusterSim, kind: SystemKind) {
    // Four training functions submitted at different times (§5.4): two
    // 2-worker and two 4-worker jobs sized to finish within the run.
    let trainings = [
        (10, ModelId::BertBase, 2, 2_000u64, 0u64),
        (11, ModelId::ResNet152, 2, 1_800, 60),
        (12, ModelId::Gpt2Large, 4, 700, 120),
        (13, ModelId::RobertaLarge, 4, 1_200, 180),
    ];
    for (id, model, workers, iters, at) in trainings {
        let spec = funcs::training_function(id, model, workers, iters);
        if at == 0 {
            sim.deploy_training(spec).expect("cluster has room at t=0");
        } else {
            sim.schedule_training(spec, SimTime::from_secs(at)).expect("valid training spec");
        }
    }
    // Three mixed-workload inference functions plus an LLM.
    let bursty = RateTrace::synthesize(
        TraceKind::Bursty,
        30.0,
        4.0,
        SimDuration::from_secs(HORIZON_SECS),
        101,
    );
    let periodic = RateTrace::synthesize(
        TraceKind::Periodic,
        40.0,
        2.0,
        SimDuration::from_secs(HORIZON_SECS),
        103,
    );
    let horizon = SimTime::from_secs(HORIZON_SECS);
    let specs = [
        (1u32, ModelId::RobertaLarge, TraceProcess::new(bursty, 101).generate(horizon)),
        (2, ModelId::ResNet152, TraceProcess::new(periodic, 103).generate(horizon)),
        (3, ModelId::BertBase, PoissonProcess::new(50.0, 107).generate(horizon)),
    ];
    for (id, model, arrivals) in specs {
        sim.deploy_inference(funcs::inference_function(id, model), 1, arrivals)
            .expect("cluster has room at t=0");
    }
    let llm = if kind.distributes_llms() {
        funcs::llm_inference_function(4, ModelId::Llama2_7b, 4)
    } else {
        funcs::inference_function(4, ModelId::Llama2_7b)
    };
    let llm_arrivals = PoissonProcess::new(2.0, 109).generate(horizon);
    sim.deploy_inference(llm, 1, llm_arrivals).expect("cluster has room at t=0");
}

fn collect(report: &ClusterReport) -> (f64, f64, Vec<(FunctionId, f64)>, u32, f64, f64) {
    let svrs: Vec<f64> = report.inference.values().map(|f| f.svr()).collect();
    let mean_svr = svrs.iter().sum::<f64>() / svrs.len().max(1) as f64;
    let max_svr = svrs.iter().copied().fold(0.0, f64::max);
    let jcts: Vec<(FunctionId, f64)> = report
        .training
        .iter()
        .filter_map(|(&id, t)| t.jct().map(|j| (id, j.as_secs_f64())))
        .collect();
    let mean_gpus = report.mean_occupied_gpus().max(1e-9);
    let train_rate: f64 = report.training.values().map(|t| t.throughput(report.horizon)).sum();
    (
        mean_svr,
        max_svr,
        jcts,
        report.peak_gpus,
        report.inference_goodput_per_gpu(),
        train_rate / mean_gpus,
    )
}

/// The memoised end-to-end run — Fig. 15 and Fig. 16 both derive from the
/// same (deterministic) result, so one process never pays for it twice.
pub fn run_cached() -> &'static Fig15 {
    static CACHE: std::sync::OnceLock<Fig15> = std::sync::OnceLock::new();
    CACHE.get_or_init(run)
}

/// Runs the end-to-end study over all systems and ablations.
pub fn run() -> Fig15 {
    let mut rows = Vec::new();
    let mut exclusive_jcts: Vec<(FunctionId, f64)> = Vec::new();
    for kind in SystemKind::END_TO_END {
        let mut sim = build_sim(kind, ClusterSpec::paper_testbed());
        deploy_workload(&mut sim, kind);
        sim.run_until(SimTime::from_secs(HORIZON_SECS + 30));
        let report = sim.into_report();
        let (mean_svr, max_svr, jcts, max_gpus, inf_good, train_good) = collect(&report);
        if kind == SystemKind::Exclusive {
            exclusive_jcts = jcts.clone();
        }
        let norm: Vec<f64> = jcts
            .iter()
            .filter_map(|(id, j)| {
                exclusive_jcts.iter().find(|(eid, _)| eid == id).map(|(_, e)| {
                    if *e > 0.0 {
                        j / e
                    } else {
                        1.0
                    }
                })
            })
            .collect();
        let norm_jct =
            if norm.is_empty() { 0.0 } else { norm.iter().sum::<f64>() / norm.len() as f64 };
        rows.push(Row {
            system: kind.label().to_string(),
            mean_svr,
            max_svr,
            norm_jct,
            max_gpus,
            inf_goodput_per_gpu: inf_good,
            train_throughput_per_gpu: train_good,
        });
    }
    Fig15 { rows }
}

impl Fig15 {
    /// The row of `system`, if present.
    pub fn row(&self, system: &str) -> Option<&Row> {
        self.rows.iter().find(|r| r.system == system)
    }
}

impl std::fmt::Display for Fig15 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut t = Table::new([
            "system",
            "mean SVR",
            "max SVR",
            "norm JCT",
            "max GPUs",
            "inf rps/GPU",
            "train samples/s/GPU",
        ]);
        for r in &self.rows {
            t.row([
                r.system.clone(),
                format!("{:.2}%", r.mean_svr * 100.0),
                format!("{:.2}%", r.max_svr * 100.0),
                format!("{:.2}", r.norm_jct),
                r.max_gpus.to_string(),
                format!("{:.2}", r.inf_goodput_per_gpu),
                format!("{:.0}", r.train_throughput_per_gpu),
            ]);
        }
        write!(f, "{t}")
    }
}

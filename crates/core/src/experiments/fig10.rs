//! Fig. 10: p95 inference latency under Gamma arrivals of growing CV,
//! collocated with a training instance.

use dilu_cluster::FunctionId;
use dilu_models::ModelId;
use dilu_rckm::RckmConfig;
use dilu_sim::SimTime;
use dilu_workload::{ArrivalProcess, GammaProcess};
use serde::{Deserialize, Serialize};

use super::collocation::{gpu, run_case, GpuSystem, Member};
use crate::funcs;
use crate::table::Table;

const HORIZON_SECS: u64 = 60;

/// The CV grid of the paper's sweep.
pub const CVS: [f64; 7] = [0.001, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0];

/// One (case, system, CV) measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Row {
    /// Inference model name.
    pub case: String,
    /// System label.
    pub system: String,
    /// Coefficient of variation of the inter-arrival Gamma.
    pub cv: f64,
    /// p95 latency in ms.
    pub p95_ms: f64,
}

/// All Fig. 10 measurements.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig10 {
    /// One row per (case, system, CV).
    pub rows: Vec<Row>,
}

/// Runs both panels: RoBERTa-large\@64 rps (+ BERT-base training) and
/// GPT2-large\@48 rps (+ RoBERTa-large training).
pub fn run() -> Fig10 {
    let cases = [
        (ModelId::RobertaLarge, 64.0, ModelId::BertBase),
        (ModelId::Gpt2Large, 48.0, ModelId::RobertaLarge),
    ];
    let systems = [
        GpuSystem::Exclusive,
        GpuSystem::Dilu(RckmConfig::default()),
        GpuSystem::MpsR,
        GpuSystem::MpsL,
    ];
    let mut rows = Vec::new();
    for (model, rps, train_model) in cases {
        for &cv in &CVS {
            let arrivals =
                GammaProcess::new(rps, cv, 31).generate(SimTime::from_secs(HORIZON_SECS));
            for system in systems {
                let inf = funcs::inference_function(1, model);
                let train = funcs::training_function(2, train_model, 1, u64::MAX);
                let members = if matches!(system, GpuSystem::Exclusive) {
                    vec![
                        Member::solo(inf, arrivals.clone(), gpu(0)),
                        Member::workers(train, &[gpu(1)]),
                    ]
                } else {
                    vec![
                        Member::solo(inf, arrivals.clone(), gpu(0)),
                        Member::workers(train, &[gpu(0)]),
                    ]
                };
                let report = run_case(2, members, system, HORIZON_SECS + 5);
                let f = &report.inference[&FunctionId(1)];
                rows.push(Row {
                    case: model.to_string(),
                    system: system.label().to_string(),
                    cv,
                    p95_ms: f.p95_display().as_millis_f64(),
                });
            }
        }
    }
    Fig10 { rows }
}

impl Fig10 {
    /// The p95 of (case, system) at the given CV, if measured.
    pub fn p95(&self, case: &str, system: &str, cv: f64) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.case == case && r.system == system && (r.cv - cv).abs() < 1e-9)
            .map(|r| r.p95_ms)
    }
}

impl std::fmt::Display for Fig10 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut t = Table::new(["case", "system", "CV", "p95(ms)"]);
        for r in &self.rows {
            t.row([
                r.case.clone(),
                r.system.clone(),
                format!("{:.3}", r.cv),
                format!("{:.1}", r.p95_ms),
            ]);
        }
        write!(f, "{t}")
    }
}

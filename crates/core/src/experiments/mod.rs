//! Experiment harness: one module per table/figure of the paper's
//! evaluation (§2 observations and §5), each exposing `run()` returning a
//! serialisable result and implementing `Display` for the bench output.
//!
//! All experiments are deterministic given their built-in seeds. Durations
//! are scaled down from the paper's wall-clock hours to simulated minutes —
//! the *shape* of each result (orderings, ratios, crossovers) is the
//! reproduction target, recorded in `EXPERIMENTS.md`.
//!
//! # The [`Experiment`] registry
//!
//! Every figure/table is also registered behind the [`Experiment`] trait,
//! giving the bench targets and `dilu-cli` one uniform entry point:
//!
//! ```
//! use dilu_core::experiments;
//!
//! assert!(experiments::find("fig15").is_some());
//! assert_eq!(experiments::all().len(), 16);
//! ```

use std::path::PathBuf;

use serde::Serialize;

pub mod collocation;
pub mod fig02;
pub mod fig04;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fig18;
pub mod tab02;
pub mod tab03;

/// Context handed to [`Experiment::run`].
///
/// When `json_dir` is set, the runner persists the result as
/// `<json_dir>/<name>.json` (reported in
/// [`ExperimentOutput::json_path`]).
#[derive(Debug, Clone, Default)]
pub struct ExperimentCtx {
    /// Where to write the JSON dump, if anywhere.
    pub json_dir: Option<PathBuf>,
}

impl ExperimentCtx {
    /// A context writing JSON under the workspace's `target/experiments/`
    /// (the bench harness convention).
    pub fn with_default_json_dir() -> Self {
        ExperimentCtx { json_dir: Some(crate::table::experiments_dir()) }
    }
}

/// What one experiment run produced.
#[derive(Debug, Clone)]
pub struct ExperimentOutput {
    /// The rendered ASCII table(s), ready to print.
    pub rendered: String,
    /// The result as a dynamic value (what the JSON dump contains).
    pub json: serde::Value,
    /// Where the JSON dump was written, when the context asked for one.
    pub json_path: Option<PathBuf>,
}

/// A registered table/figure of the paper, runnable by name.
pub trait Experiment: Sync {
    /// Stable registry name (`"fig15"`, `"tab02"`, ...).
    fn name(&self) -> &'static str;

    /// Human title as printed by the harness banner.
    fn title(&self) -> &'static str;

    /// Regenerates the result.
    fn run(&self, ctx: &ExperimentCtx) -> ExperimentOutput;
}

struct FnExperiment {
    name: &'static str,
    title: &'static str,
    runner: fn() -> (String, serde::Value),
}

impl Experiment for FnExperiment {
    fn name(&self) -> &'static str {
        self.name
    }

    fn title(&self) -> &'static str {
        self.title
    }

    fn run(&self, ctx: &ExperimentCtx) -> ExperimentOutput {
        let (rendered, json) = (self.runner)();
        let json_path = ctx.json_dir.as_ref().map(|dir| {
            let path = dir.join(format!("{}.json", self.name));
            crate::table::write_json_at(&path, &json);
            path
        });
        ExperimentOutput { rendered, json, json_path }
    }
}

fn capture<T: std::fmt::Display + Serialize>(result: T) -> (String, serde::Value) {
    (result.to_string(), serde_json::to_value(&result))
}

macro_rules! experiments {
    ($($name:literal, $title:literal, $run:expr;)*) => {
        static REGISTRY: &[FnExperiment] = &[
            $(FnExperiment { name: $name, title: $title, runner: || capture($run) },)*
        ];
    };
}

experiments! {
    "fig02", "Fig. 2 — fragmentation observations and preliminary co-scaling", fig02::run();
    "fig04", "Fig. 4 — the <IBS, SMR, TE> trade-off surface", fig04::run();
    "fig07", "Fig. 7 — training/inference collocation", fig07::run();
    "fig08", "Fig. 8 — inference/inference collocation", fig08::run();
    "fig09", "Fig. 9 — training/training collocation", fig09::run();
    "fig10", "Fig. 10 — burstiness sensitivity (Gamma CV sweep)", fig10::run();
    "fig11", "Fig. 11 — vertical-scaling overhead", fig11::run();
    "fig12", "Fig. 12 — co-scaling on a bursty trace", fig12::run();
    "fig13", "Fig. 13 — kernel-launch ratio under contention", fig13::run();
    "fig14", "Fig. 14 — total kernel counts", fig13::run_fig14();
    "fig15", "Fig. 15 — end-to-end scheduling and ablations", fig15::run_cached().clone();
    "fig16", "Fig. 16 — aggregate throughput per GPU", fig16::run();
    "fig17", "Fig. 17 — large-scale simulation", fig17::run();
    "fig18", "Fig. 18 — sensitivity to gamma and MaxTokens", fig18::run();
    "tab02", "Table 2 — profiled quotas of the model zoo", tab02::run();
    "tab03", "Table 3 — co-scaling under Azure trace shapes", tab03::run();
}

/// Every registered experiment, in figure/table order.
pub fn all() -> &'static [&'static dyn Experiment] {
    static DYN: std::sync::OnceLock<Vec<&'static dyn Experiment>> = std::sync::OnceLock::new();
    DYN.get_or_init(|| REGISTRY.iter().map(|e| e as &dyn Experiment).collect())
}

/// Looks an experiment up by registry name.
pub fn find(name: &str) -> Option<&'static dyn Experiment> {
    all().iter().copied().find(|e| e.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_findable() {
        let mut names: Vec<&str> = all().iter().map(|e| e.name()).collect();
        assert_eq!(names.len(), 16);
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 16, "duplicate experiment names");
        assert!(find("fig15").is_some());
        assert!(find("tab02").is_some());
        assert!(find("fig99").is_none());
    }

    #[test]
    fn a_cheap_experiment_runs_through_the_trait() {
        // tab02 only runs the profiler — cheap enough for a unit test.
        let out = find("tab02").unwrap().run(&ExperimentCtx::default());
        assert!(out.rendered.contains("ResNet152"), "{}", out.rendered);
        assert!(out.json_path.is_none());
        assert!(matches!(out.json, serde::Value::Map(_)));
    }
}

//! Experiment harness: one module per table/figure of the paper's
//! evaluation (§2 observations and §5), each exposing `run()` returning a
//! serialisable result and implementing `Display` for the bench output.
//!
//! All experiments are deterministic given their built-in seeds. Durations
//! are scaled down from the paper's wall-clock hours to simulated minutes —
//! the *shape* of each result (orderings, ratios, crossovers) is the
//! reproduction target, recorded in `EXPERIMENTS.md`.

pub mod collocation;
pub mod fig02;
pub mod fig04;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig15;
pub mod fig17;
pub mod fig18;
pub mod tab02;
pub mod tab03;

//! Fig. 13 (kernel-issuing traces) and Fig. 14 (total kernel counts).
//!
//! Case 1: low RoBERTa-large inference load (~10 rps) collocated with
//! BERT-base training. Case 2: fluctuating GPT2-large load (Gamma CV = 5)
//! collocated with RoBERTa-large training. Dilu should keep the inference
//! kernel ratio low when load is low (lending SMs to training) while MPS-r
//! pins it high; total kernel counts show Dilu driving the GPU hardest.

use dilu_cluster::{ClusterReport, FunctionId};
use dilu_models::ModelId;
use dilu_rckm::RckmConfig;
use dilu_sim::SimTime;
use dilu_workload::{ArrivalProcess, GammaProcess, PoissonProcess};
use serde::{Deserialize, Serialize};

use super::collocation::{gpu, run_case, GpuSystem, Member};
use crate::funcs;
use crate::table::Table;

const HORIZON_SECS: u64 = 50;

/// A per-second normalised inference-kernel-ratio series.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RatioSeries {
    /// System label.
    pub system: String,
    /// `(second, inference blocks / total blocks)`.
    pub points: Vec<(u64, f64)>,
}

/// One case of Fig. 13.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Case {
    /// Case name.
    pub name: String,
    /// Ratio traces for Dilu and MPS-r.
    pub series: Vec<RatioSeries>,
}

/// Fig. 13 output (both cases).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig13 {
    /// Case-1 and case-2 traces.
    pub cases: Vec<Case>,
}

/// Fig. 14 output: total kernel blocks per second per configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig14 {
    /// `(label, total blocks over the run)`.
    pub totals: Vec<(String, u64)>,
    /// Per-second series per configuration.
    pub series: Vec<(String, Vec<(u64, u64)>)>,
}

fn case1_arrivals() -> Vec<SimTime> {
    PoissonProcess::new(10.0, 51).generate(SimTime::from_secs(HORIZON_SECS))
}

fn case2_arrivals() -> Vec<SimTime> {
    GammaProcess::new(48.0, 5.0, 53).generate(SimTime::from_secs(HORIZON_SECS))
}

fn run_collocated(
    infer: ModelId,
    train: ModelId,
    arrivals: Vec<SimTime>,
    system: GpuSystem,
) -> ClusterReport {
    let inf = funcs::inference_function(1, infer);
    let job = funcs::training_function(2, train, 1, u64::MAX);
    let members = if matches!(system, GpuSystem::Exclusive) {
        vec![Member::solo(inf, arrivals, gpu(0)), Member::workers(job, &[gpu(1)])]
    } else {
        vec![Member::solo(inf, arrivals, gpu(0)), Member::workers(job, &[gpu(0)])]
    };
    run_case(2, members, system, HORIZON_SECS)
}

fn ratio_series(report: &ClusterReport) -> Vec<(u64, f64)> {
    let inf = report.kernel_series.get(&FunctionId(1)).cloned().unwrap_or_default();
    let train = report.kernel_series.get(&FunctionId(2)).cloned().unwrap_or_default();
    inf.iter()
        .zip(train.iter())
        .map(|(&(sec, i), &(_, t))| {
            let total = i + t;
            (sec, if total == 0 { 0.0 } else { i as f64 / total as f64 })
        })
        .collect()
}

/// Runs Fig. 13: kernel-ratio traces for both cases, Dilu vs MPS-r.
pub fn run() -> Fig13 {
    let dilu = GpuSystem::Dilu(RckmConfig::default());
    let mut cases = Vec::new();
    for (name, infer, train, arrivals) in [
        ("case-1 low load", ModelId::RobertaLarge, ModelId::BertBase, case1_arrivals()),
        ("case-2 fluctuating", ModelId::Gpt2Large, ModelId::RobertaLarge, case2_arrivals()),
    ] {
        let mut series = Vec::new();
        for system in [dilu, GpuSystem::MpsR] {
            let report = run_collocated(infer, train, arrivals.clone(), system);
            series.push(RatioSeries {
                system: system.label().to_string(),
                points: ratio_series(&report),
            });
        }
        cases.push(Case { name: name.to_string(), series });
    }
    Fig13 { cases }
}

/// Runs Fig. 14: total kernel counts for case-1 under Exclusive-train,
/// Exclusive-inference, MPS-r, and Dilu.
pub fn run_fig14() -> Fig14 {
    let mut totals = Vec::new();
    let mut series = Vec::new();
    // Exclusive runs: each task alone on the GPU.
    let excl = run_collocated(
        ModelId::RobertaLarge,
        ModelId::BertBase,
        case1_arrivals(),
        GpuSystem::Exclusive,
    );
    let train_series = excl.kernel_series.get(&FunctionId(2)).cloned().unwrap_or_default();
    let inf_series = excl.kernel_series.get(&FunctionId(1)).cloned().unwrap_or_default();
    totals.push(("Exclusive-train".to_string(), train_series.iter().map(|&(_, b)| b).sum()));
    series.push(("Exclusive-train".to_string(), train_series));
    totals.push(("Exclusive-inf".to_string(), inf_series.iter().map(|&(_, b)| b).sum()));
    series.push(("Exclusive-inf".to_string(), inf_series));
    for system in [GpuSystem::MpsR, GpuSystem::Dilu(RckmConfig::default())] {
        let report =
            run_collocated(ModelId::RobertaLarge, ModelId::BertBase, case1_arrivals(), system);
        totals.push((
            system.label().to_string(),
            report.total_kernel_series.iter().map(|&(_, b)| b).sum(),
        ));
        series.push((system.label().to_string(), report.total_kernel_series.clone()));
    }
    Fig14 { totals, series }
}

impl Fig13 {
    /// Mean inference-kernel ratio of `system` within a case.
    pub fn mean_ratio(&self, case_idx: usize, system: &str) -> f64 {
        let Some(case) = self.cases.get(case_idx) else {
            return 0.0;
        };
        let Some(s) = case.series.iter().find(|s| s.system == system) else {
            return 0.0;
        };
        let active: Vec<f64> = s.points.iter().map(|&(_, r)| r).filter(|&r| r > 0.0).collect();
        if active.is_empty() {
            0.0
        } else {
            active.iter().sum::<f64>() / active.len() as f64
        }
    }
}

impl std::fmt::Display for Fig13 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for case in &self.cases {
            writeln!(f, "{}:", case.name)?;
            let mut t = Table::new(["sec", "Dilu ratio", "MPS-r ratio"]);
            let dilu = &case.series[0].points;
            let mps = &case.series[1].points;
            for (d, m) in dilu.iter().zip(mps.iter()).step_by(5) {
                t.row([d.0.to_string(), format!("{:.3}", d.1), format!("{:.3}", m.1)]);
            }
            writeln!(f, "{t}")?;
        }
        Ok(())
    }
}

impl std::fmt::Display for Fig14 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut t = Table::new(["configuration", "total kernel blocks"]);
        for (label, total) in &self.totals {
            t.row([label.clone(), total.to_string()]);
        }
        write!(f, "{t}")
    }
}

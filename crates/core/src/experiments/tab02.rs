//! Table 2: profiling-iteration comparison for models (a)–(d).

use dilu_models::ModelId;
use dilu_profiler::{gpulet_profile, hybrid_growth_search, infless_profile, traversal_profile};
use serde::{Deserialize, Serialize};

use crate::table::Table;

/// Trials per (method, model).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Tab02 {
    /// Model names a–d.
    pub models: Vec<String>,
    /// `(method, trials per model)` in paper row order.
    pub rows: Vec<(String, Vec<u32>)>,
}

/// Runs all four profilers over models a–d.
pub fn run() -> Tab02 {
    let models = ModelId::FIG4;
    let traversal: Vec<u32> = models.iter().map(|&m| traversal_profile(m).trials).collect();
    let infless: Vec<u32> = models.iter().map(|&m| infless_profile(m).trials).collect();
    let gpulet: Vec<u32> = models.iter().map(|&m| gpulet_profile(m).trials).collect();
    let dilu: Vec<u32> = models.iter().map(|&m| hybrid_growth_search(m).trials).collect();
    Tab02 {
        models: models.iter().map(ToString::to_string).collect(),
        rows: vec![
            ("Traversal".into(), traversal),
            ("INFless".into(), infless),
            ("GPUlet".into(), gpulet),
            ("Dilu".into(), dilu),
        ],
    }
}

impl std::fmt::Display for Tab02 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut headers = vec!["method".to_string()];
        headers.extend(self.models.clone());
        let mut t = Table::new(headers);
        for (method, trials) in &self.rows {
            let mut row = vec![method.clone()];
            row.extend(trials.iter().map(ToString::to_string));
            t.row(row);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dilu_row_is_the_cheapest() {
        let t = run();
        let dilu = &t.rows[3].1;
        for (method, trials) in &t.rows[..3] {
            for (d, other) in dilu.iter().zip(trials) {
                assert!(d < other, "Dilu {d} !< {method} {other}");
            }
        }
    }
}

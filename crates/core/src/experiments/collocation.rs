//! Shared harness for the GPU-level collocation studies (Figs. 7–11, 13,
//! 14, 18(b)): a handful of functions pinned to specific GPUs under one
//! share policy, no autoscaling.

use dilu_baselines::QuotaSource;
use dilu_cluster::{
    ClusterReport, ClusterSim, ClusterSpec, FunctionSpec, GpuAddr, PolicyFactory, SimConfig,
};
use dilu_rckm::RckmConfig;
use dilu_sim::SimTime;
use serde::{Deserialize, Serialize};

use crate::factories::{
    FairFactory, FastGsFactory, MpsFactory, NullAutoscaler, PinnedPlacement, RckmFactory,
    TgsFactory,
};

/// The share policies compared at GPU level.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum GpuSystem {
    /// One function per GPU, unthrottled.
    Exclusive,
    /// Dilu's RCKM token manager.
    Dilu(RckmConfig),
    /// TGS transparent sharing.
    Tgs,
    /// MPS static partitions at the limit quota.
    MpsL,
    /// MPS static partitions at the request quota.
    MpsR,
    /// FaST-GS spatio-temporal sharing.
    FastGs,
}

impl GpuSystem {
    /// The five collocation policies of Fig. 7 in paper order.
    pub fn fig7_set() -> [GpuSystem; 5] {
        [
            GpuSystem::Exclusive,
            GpuSystem::Dilu(RckmConfig::default()),
            GpuSystem::Tgs,
            GpuSystem::MpsL,
            GpuSystem::MpsR,
        ]
    }

    /// The paper's label.
    pub fn label(self) -> &'static str {
        match self {
            GpuSystem::Exclusive => "Exclusive",
            GpuSystem::Dilu(_) => "Dilu",
            GpuSystem::Tgs => "TGS",
            GpuSystem::MpsL => "MPS-l",
            GpuSystem::MpsR => "MPS-r",
            GpuSystem::FastGs => "FaST-GS",
        }
    }

    fn factory(self) -> Box<dyn PolicyFactory> {
        match self {
            GpuSystem::Exclusive => Box::new(FairFactory),
            GpuSystem::Dilu(cfg) => Box::new(RckmFactory(cfg)),
            GpuSystem::Tgs => Box::new(TgsFactory),
            GpuSystem::MpsL => Box::new(MpsFactory(QuotaSource::Limit)),
            GpuSystem::MpsR => Box::new(MpsFactory(QuotaSource::Request)),
            GpuSystem::FastGs => Box::new(FastGsFactory),
        }
    }
}

/// One function of a collocation case with its pinned GPUs.
#[derive(Debug, Clone)]
pub struct Member {
    /// The deployed function.
    pub spec: FunctionSpec,
    /// Arrival instants (empty for training functions).
    pub arrivals: Vec<SimTime>,
    /// One pin per instance/worker; each pin lists the GPUs of its stages.
    pub pins: Vec<Vec<GpuAddr>>,
}

impl Member {
    /// A single-instance member pinned to one GPU.
    pub fn solo(spec: FunctionSpec, arrivals: Vec<SimTime>, gpu: GpuAddr) -> Self {
        Member { spec, arrivals, pins: vec![vec![gpu]] }
    }

    /// A pipelined single-instance member spanning several GPUs.
    pub fn pipelined(spec: FunctionSpec, arrivals: Vec<SimTime>, gpus: Vec<GpuAddr>) -> Self {
        Member { spec, arrivals, pins: vec![gpus] }
    }

    /// A training member with one worker per listed GPU.
    pub fn workers(spec: FunctionSpec, gpus: &[GpuAddr]) -> Self {
        Member { spec, arrivals: Vec::new(), pins: gpus.iter().map(|&g| vec![g]).collect() }
    }
}

/// Runs one collocation case under `system` for `horizon_secs`.
///
/// # Panics
///
/// Panics if any member fails to deploy (pins must be feasible).
pub fn run_case(
    gpus: u32,
    members: Vec<Member>,
    system: GpuSystem,
    horizon_secs: u64,
) -> ClusterReport {
    let mut placement = PinnedPlacement::new();
    for m in &members {
        for pin in &m.pins {
            placement.pin(m.spec.id, pin.clone());
        }
    }
    let factory = system.factory();
    let mut sim = ClusterSim::new(
        ClusterSpec::single_node(gpus),
        SimConfig::default(),
        Box::new(placement),
        Box::new(NullAutoscaler),
        factory.as_ref(),
    );
    for m in members {
        if m.spec.kind.is_inference() {
            sim.deploy_inference(m.spec.clone(), m.pins.len() as u32, m.arrivals)
                .unwrap_or_else(|e| panic!("deploy {}: {e}", m.spec.name));
        } else {
            sim.deploy_training(m.spec.clone())
                .unwrap_or_else(|e| panic!("deploy {}: {e}", m.spec.name));
        }
    }
    sim.run_until(SimTime::from_secs(horizon_secs));
    sim.into_report()
}

/// Convenience: GPU 0 of a single-node cluster.
pub fn gpu(idx: u32) -> GpuAddr {
    GpuAddr { node: 0, gpu: idx }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::funcs;
    use dilu_models::ModelId;
    use dilu_workload::{ArrivalProcess, PoissonProcess};

    #[test]
    fn collocated_pair_serves_under_every_policy() {
        let arrivals = PoissonProcess::new(20.0, 3).generate(SimTime::from_secs(10));
        for system in GpuSystem::fig7_set() {
            let inf = funcs::inference_function(1, ModelId::RobertaLarge);
            let train = funcs::training_function(2, ModelId::BertBase, 1, u64::MAX);
            let members = if matches!(system, GpuSystem::Exclusive) {
                vec![Member::solo(inf, arrivals.clone(), gpu(0)), Member::workers(train, &[gpu(1)])]
            } else {
                vec![Member::solo(inf, arrivals.clone(), gpu(0)), Member::workers(train, &[gpu(0)])]
            };
            let report = run_case(2, members, system, 15);
            let f = report.inference.values().next().unwrap();
            assert!(f.completed > 0, "{}: no requests served", system.label());
        }
    }
}

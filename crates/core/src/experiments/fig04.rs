//! Fig. 4: throughput-efficacy surfaces over ⟨IBS, SMR⟩ with the HGS
//! search path and starred optimum.

use dilu_gpu::SmRate;
use dilu_models::ModelId;
use dilu_profiler::{hybrid_growth_search, measure_inference_exec};
use serde::{Deserialize, Serialize};

use crate::table::Table;

/// One grid point of a model's surface.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SurfacePoint {
    /// Batch size.
    pub batch: u32,
    /// SM rate percentage.
    pub smr_pct: f64,
    /// Measured throughput efficacy.
    pub te: f64,
    /// Whether the point meets the SLO/2 budget (blue dot vs red cross).
    pub meets_slo: bool,
}

/// One model's panel.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Panel {
    /// Model name.
    pub model: String,
    /// Full measured grid.
    pub surface: Vec<SurfacePoint>,
    /// The starred optimum ⟨IBS, SMR⟩.
    pub star: (u32, f64),
    /// TE at the star.
    pub star_te: f64,
    /// HGS trials consumed.
    pub trials: u32,
}

/// All four panels.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig04 {
    /// Panels (a)–(d).
    pub panels: Vec<Panel>,
}

/// Measures the surfaces and runs HGS for models a–d.
pub fn run() -> Fig04 {
    let panels = ModelId::FIG4
        .iter()
        .map(|&model| {
            let profile = model.profile();
            let budget = profile.slo / 2;
            let mut surface = Vec::new();
            for batch in [1u32, 2, 4, 8, 16, 32] {
                for step in 1..=10u32 {
                    let smr = SmRate::from_fraction(f64::from(step) / 10.0);
                    let exec = measure_inference_exec(model, batch, smr);
                    let te = if exec.is_zero() {
                        0.0
                    } else {
                        f64::from(batch) / exec.as_secs_f64() / smr.as_fraction()
                    };
                    surface.push(SurfacePoint {
                        batch,
                        smr_pct: smr.as_percent(),
                        te,
                        meets_slo: exec <= budget,
                    });
                }
            }
            let hgs = hybrid_growth_search(model);
            Panel {
                model: model.to_string(),
                surface,
                star: (hgs.batch, hgs.request.as_percent()),
                star_te: hgs.best_te,
                trials: hgs.trials,
            }
        })
        .collect();
    Fig04 { panels }
}

impl Fig04 {
    /// Best TE on the measured grid among SLO-feasible points.
    pub fn grid_optimum(&self, panel: usize) -> f64 {
        self.panels[panel].surface.iter().filter(|p| p.meets_slo).map(|p| p.te).fold(0.0, f64::max)
    }
}

impl std::fmt::Display for Fig04 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, p) in self.panels.iter().enumerate() {
            writeln!(
                f,
                "{}: star <IBS={}, SMR={:.0}%> TE {:.0} (grid optimum {:.0}) in {} trials",
                p.model,
                p.star.0,
                p.star.1,
                p.star_te,
                self.grid_optimum(i),
                p.trials
            )?;
            let mut t = Table::new(["batch\\smr", "20%", "40%", "60%", "80%", "100%"]);
            for batch in [1u32, 2, 4, 8, 16, 32] {
                let mut row = vec![batch.to_string()];
                for pct in [20.0, 40.0, 60.0, 80.0, 100.0] {
                    let cell = p
                        .surface
                        .iter()
                        .find(|s| s.batch == batch && (s.smr_pct - pct).abs() < 1e-9)
                        .map(|s| {
                            if s.meets_slo {
                                format!("{:.0}", s.te)
                            } else {
                                format!("({:.0})", s.te)
                            }
                        })
                        .unwrap_or_default();
                    row.push(cell);
                }
                t.row(row);
            }
            writeln!(f, "{t}")?;
        }
        writeln!(f, "(parenthesised cells violate the SLO/2 budget)")
    }
}

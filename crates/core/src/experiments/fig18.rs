//! Fig. 18: sensitivity to (a) the oversubscription coefficient γ and
//! (b) the RCKM MaxTokens budget.

use dilu_cluster::FunctionId;
use dilu_models::ModelId;
use dilu_rckm::RckmConfig;
use dilu_sim::SimTime;
use dilu_workload::{ArrivalProcess, PoissonProcess};
use serde::{Deserialize, Serialize};

use super::collocation::{gpu, run_case, GpuSystem, Member};
use crate::funcs;
use crate::macrosim::{run_macro, MacroConfig, MacroSystem};
use crate::table::Table;

/// One γ sweep point (panel (a), at 3200-instance scale).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GammaPoint {
    /// Oversubscription coefficient (Σlimit cap per GPU).
    pub gamma: f64,
    /// Mean occupied GPUs.
    pub mean_gpus: f64,
    /// Mean SM fragmentation.
    pub sm_fragmentation: f64,
}

/// One MaxTokens sweep point (panel (b)).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TokenPoint {
    /// MaxTokens scale (1.0 = one whole GPU per cycle).
    pub max_tokens: f64,
    /// Collocated inference p95 in ms.
    pub inference_p95_ms: f64,
    /// Inference SVR.
    pub inference_svr: f64,
    /// Collocated training throughput in samples/s.
    pub train_throughput: f64,
}

/// Both sensitivity panels.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig18 {
    /// Panel (a).
    pub gamma: Vec<GammaPoint>,
    /// Panel (b).
    pub tokens: Vec<TokenPoint>,
}

/// The γ grid of panel (a).
pub const GAMMAS: [f64; 5] = [1.0, 1.25, 1.5, 2.0, 2.5];

/// The MaxTokens grid of panel (b).
pub const MAX_TOKENS: [f64; 5] = [0.25, 0.5, 1.0, 2.0, 4.0];

/// Runs both panels at paper scale.
pub fn run() -> Fig18 {
    run_with(&MacroConfig::default())
}

/// Runs with an explicit macro-simulation scale (tests shrink it).
pub fn run_with(config: &MacroConfig) -> Fig18 {
    let gamma = GAMMAS
        .iter()
        .map(|&g| {
            let r = run_macro(MacroSystem::Dilu, config, g);
            GammaPoint {
                gamma: g,
                mean_gpus: r.mean_occupied,
                sm_fragmentation: r.sm_fragmentation,
            }
        })
        .collect();
    let tokens = MAX_TOKENS
        .iter()
        .map(|&mt| {
            let arrivals = PoissonProcess::new(20.0, 111).generate(SimTime::from_secs(45));
            let inf = funcs::inference_function(1, ModelId::RobertaLarge);
            let train = funcs::training_function(2, ModelId::BertBase, 1, u64::MAX);
            let members =
                vec![Member::solo(inf, arrivals, gpu(0)), Member::workers(train, &[gpu(0)])];
            let system = GpuSystem::Dilu(RckmConfig { max_tokens: mt, ..RckmConfig::default() });
            let report = run_case(2, members, system, 50);
            let f = &report.inference[&FunctionId(1)];
            let t = report.training.values().next().expect("training deployed");
            TokenPoint {
                max_tokens: mt,
                inference_p95_ms: f.p95_display().as_millis_f64(),
                inference_svr: f.svr(),
                train_throughput: t.throughput(report.horizon),
            }
        })
        .collect();
    Fig18 { gamma, tokens }
}

impl std::fmt::Display for Fig18 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut a = Table::new(["gamma", "mean GPUs", "SM frag"]);
        for p in &self.gamma {
            a.row([
                format!("{:.2}", p.gamma),
                format!("{:.0}", p.mean_gpus),
                format!("{:.1}%", p.sm_fragmentation * 100.0),
            ]);
        }
        let mut b = Table::new(["MaxTokens", "inf p95(ms)", "inf SVR", "train samples/s"]);
        for p in &self.tokens {
            b.row([
                format!("{:.2}", p.max_tokens),
                format!("{:.1}", p.inference_p95_ms),
                format!("{:.1}%", p.inference_svr * 100.0),
                format!("{:.0}", p.train_throughput),
            ]);
        }
        write!(f, "(a) oversubscription coefficient\n{a}\n(b) MaxTokens\n{b}")
    }
}

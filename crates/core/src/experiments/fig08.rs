//! Fig. 8: inference–inference collocation under (a) bursty traces and
//! (b) Poisson arrivals.

use dilu_cluster::FunctionId;
use dilu_models::ModelId;
use dilu_rckm::RckmConfig;
use dilu_sim::{SimDuration, SimTime};
use dilu_workload::{ArrivalProcess, PoissonProcess, RateTrace, TraceKind, TraceProcess};
use serde::{Deserialize, Serialize};

use super::collocation::{gpu, run_case, GpuSystem, Member};
use crate::funcs;
use crate::table::Table;

const HORIZON_SECS: u64 = 60;

/// One (case, system) measurement of the primary model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Row {
    /// Which panel the row belongs to ("bursty" or "poisson").
    pub panel: String,
    /// Primary model name.
    pub case: String,
    /// System label.
    pub system: String,
    /// Median latency in ms (per token for LLMs).
    pub p50_ms: f64,
    /// p95 latency in ms (per token for LLMs).
    pub p95_ms: f64,
    /// SLO violation rate of the primary model.
    pub svr: f64,
}

/// All Fig. 8 measurements.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig08 {
    /// Rows for both panels.
    pub rows: Vec<Row>,
}

fn systems(include_tgs: bool) -> Vec<GpuSystem> {
    let mut v = vec![
        GpuSystem::Exclusive,
        GpuSystem::Dilu(RckmConfig::default()),
        GpuSystem::MpsL,
        GpuSystem::MpsR,
        GpuSystem::FastGs,
    ];
    if include_tgs {
        v.push(GpuSystem::Tgs);
    }
    v
}

fn run_pair(
    panel: &str,
    primary: ModelId,
    stages: u32,
    arrivals: Vec<SimTime>,
    companion_rps: f64,
    include_tgs: bool,
    rows: &mut Vec<Row>,
) {
    for system in systems(include_tgs) {
        let companion_arrivals =
            PoissonProcess::new(companion_rps, 11).generate(SimTime::from_secs(HORIZON_SECS));
        // The companion takes the lower id: under TGS it becomes the
        // productive job and the measured primary is the opportunistic
        // victim — the configuration behind the paper's 400x observation.
        let companion = funcs::inference_function(0, ModelId::BertBase);
        let (gpus, members) = if matches!(system, GpuSystem::Exclusive) {
            let inf = funcs::inference_function(1, primary);
            (
                2,
                vec![
                    Member::solo(inf, arrivals.clone(), gpu(0)),
                    Member::solo(companion, companion_arrivals, gpu(1)),
                ],
            )
        } else if stages > 1 {
            let inf = funcs::llm_inference_function(1, primary, stages);
            let pin: Vec<_> = (0..stages).map(gpu).collect();
            (
                stages,
                vec![
                    Member::pipelined(inf, arrivals.clone(), pin),
                    Member::solo(companion, companion_arrivals, gpu(0)),
                ],
            )
        } else {
            let inf = funcs::inference_function(1, primary);
            // The companion deploys first so it takes the lower engine id:
            // TGS treats it as the productive job and the measured primary
            // becomes the opportunistic victim.
            (
                1,
                vec![
                    Member::solo(companion, companion_arrivals, gpu(0)),
                    Member::solo(inf, arrivals.clone(), gpu(0)),
                ],
            )
        };
        let report = run_case(gpus.max(2), members, system, HORIZON_SECS + 5);
        let inf = &report.inference[&FunctionId(1)];
        rows.push(Row {
            panel: panel.to_string(),
            case: primary.to_string(),
            system: system.label().to_string(),
            p50_ms: inf.p50_display().as_millis_f64(),
            p95_ms: inf.p95_display().as_millis_f64(),
            svr: inf.svr(),
        });
    }
}

/// Runs both panels of Fig. 8.
pub fn run() -> Fig08 {
    let mut rows = Vec::new();
    // Panel (a): bursty traces with initial burst scale factors 4, 6, 6, 4.
    let bursty: [(ModelId, f64, f64, u32); 4] = [
        (ModelId::ResNet152, 20.0, 4.0, 1),
        (ModelId::RobertaLarge, 10.0, 6.0, 1),
        (ModelId::Gpt2Large, 5.0, 6.0, 1),
        (ModelId::Llama2_7b, 1.0, 4.0, 4),
    ];
    for (model, base, scale, stages) in bursty {
        let trace = RateTrace::synthesize(
            TraceKind::Bursty,
            base,
            scale,
            SimDuration::from_secs(HORIZON_SECS),
            23,
        );
        let arrivals = TraceProcess::new(trace, 23).generate(SimTime::from_secs(HORIZON_SECS));
        run_pair("bursty", model, stages, arrivals, 10.0, false, &mut rows);
    }
    // Panel (b): Poisson at mean RPS 20, 30, 20, 3 — including TGS, whose
    // opportunistic victim shows the paper's 400× latency blow-up.
    let poisson: [(ModelId, f64, u32); 4] = [
        (ModelId::RobertaLarge, 20.0, 1),
        (ModelId::BertBase, 30.0, 1),
        (ModelId::Vgg19, 20.0, 1),
        (ModelId::Llama2_7b, 3.0, 4),
    ];
    for (model, rps, stages) in poisson {
        let arrivals = PoissonProcess::new(rps, 29).generate(SimTime::from_secs(HORIZON_SECS));
        run_pair("poisson", model, stages, arrivals, 15.0, true, &mut rows);
    }
    Fig08 { rows }
}

impl std::fmt::Display for Fig08 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut t = Table::new(["panel", "case", "system", "p50(ms)", "p95(ms)", "SVR"]);
        for r in &self.rows {
            t.row([
                r.panel.clone(),
                r.case.clone(),
                r.system.clone(),
                format!("{:.1}", r.p50_ms),
                format!("{:.1}", r.p95_ms),
                format!("{:.1}%", r.svr * 100.0),
            ]);
        }
        write!(f, "{t}")
    }
}

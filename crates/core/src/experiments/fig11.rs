//! Fig. 11: vertical-scaling overhead — RCKM management must cost <1%
//! throughput for solo training and ~0% latency for managed inference.

use dilu_models::ModelId;
use dilu_rckm::RckmConfig;
use dilu_sim::SimTime;
use dilu_workload::{ArrivalProcess, PoissonProcess};
use serde::{Deserialize, Serialize};

use super::collocation::{gpu, run_case, GpuSystem, Member};
use crate::funcs;
use crate::table::Table;

const HORIZON_SECS: u64 = 30;

/// Fig. 11(a): one row per training model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainRow {
    /// Model name.
    pub model: String,
    /// Throughput with RCKM / throughput without.
    pub normalized_throughput: f64,
}

/// Fig. 11(b): one row per managed-instance count.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InferRow {
    /// Collocated instances on the GPU.
    pub instances: u32,
    /// Mean latency with RCKM / mean latency without.
    pub normalized_latency: f64,
}

/// Both panels of Fig. 11.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig11 {
    /// Panel (a).
    pub training: Vec<TrainRow>,
    /// Panel (b).
    pub inference: Vec<InferRow>,
}

fn solo_training_throughput(model: ModelId, system: GpuSystem) -> f64 {
    let job = funcs::training_function(1, model, 1, u64::MAX);
    let report = run_case(2, vec![Member::workers(job, &[gpu(0)])], system, HORIZON_SECS);
    report.training.values().next().expect("job deployed").throughput(report.horizon)
}

fn inference_mean_latency(n: u32, system: GpuSystem) -> f64 {
    let mut members = Vec::new();
    for i in 0..n {
        let spec = funcs::inference_function(i, ModelId::BertBase);
        let arrivals =
            PoissonProcess::new(5.0, 41 + u64::from(i)).generate(SimTime::from_secs(HORIZON_SECS));
        members.push(Member::solo(spec, arrivals, gpu(0)));
    }
    let report = run_case(2, members, system, HORIZON_SECS + 2);
    let mut total = 0.0;
    let mut count = 0usize;
    for f in report.inference.values() {
        total += f.latency.mean().as_millis_f64() * f.latency.len() as f64;
        count += f.latency.len();
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

/// Runs both panels.
pub fn run() -> Fig11 {
    let dilu = GpuSystem::Dilu(RckmConfig::default());
    let training =
        [ModelId::BertBase, ModelId::RobertaLarge, ModelId::Gpt2Large, ModelId::Llama2_7b]
            .into_iter()
            .map(|m| {
                let with = solo_training_throughput(m, dilu);
                let without = solo_training_throughput(m, GpuSystem::Exclusive);
                TrainRow {
                    model: m.to_string(),
                    normalized_throughput: if without > 0.0 { with / without } else { 0.0 },
                }
            })
            .collect();
    let inference = [1u32, 2, 4, 8]
        .into_iter()
        .map(|n| {
            let with = inference_mean_latency(n, dilu);
            let without = inference_mean_latency(n, GpuSystem::Exclusive);
            InferRow {
                instances: n,
                normalized_latency: if without > 0.0 { with / without } else { 0.0 },
            }
        })
        .collect();
    Fig11 { training, inference }
}

impl std::fmt::Display for Fig11 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut a = Table::new(["training model", "throughput w/ Dilu ÷ w/o"]);
        for r in &self.training {
            a.row([r.model.clone(), format!("{:.3}", r.normalized_throughput)]);
        }
        let mut b = Table::new(["# collocated instances", "latency w/ Dilu ÷ w/o"]);
        for r in &self.inference {
            b.row([r.instances.to_string(), format!("{:.3}", r.normalized_latency)]);
        }
        write!(f, "(a) training overhead\n{a}\n(b) inference overhead\n{b}")
    }
}

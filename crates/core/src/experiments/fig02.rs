//! Fig. 2: the motivating observations.
//!
//! (a)/(b) static allocation strands GPU resources — temporal (idle quota
//! under low load, keep-alive waste) and spatial (DDP sync and pipeline
//! bubbles); (c)/(d) the preliminary co-scaling verification: 3 collocated
//! GPUs vs 4 exclusive GPUs across an RPS sweep.

use dilu_cluster::FunctionId;
use dilu_models::ModelId;
use dilu_rckm::RckmConfig;
use dilu_sim::{SimDuration, SimTime};
use dilu_workload::{ArrivalProcess, PoissonProcess, RateTrace, TraceKind};
use serde::{Deserialize, Serialize};

use super::collocation::{gpu, run_case, GpuSystem, Member};
use crate::funcs;
use crate::table::Table;

/// Observation rows of panels (a)/(b).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Observation {
    /// What was observed.
    pub name: String,
    /// Allocated share (quota / keep-alive time).
    pub allocated: f64,
    /// Actually used share.
    pub used: f64,
}

/// One point of the co-scaling sweep (panels (c)/(d)).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Offered load.
    pub rps: f64,
    /// Collocated p95 / exclusive p95.
    pub p95_ratio: f64,
    /// Collocated inference goodput / exclusive goodput.
    pub goodput_ratio: f64,
    /// Collocated training throughput / exclusive.
    pub train_ratio: f64,
}

/// The full Fig. 2 reproduction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig02 {
    /// Panels (a)/(b).
    pub observations: Vec<Observation>,
    /// Panels (c)/(d): 3-GPU collocation vs 4-GPU exclusive.
    pub sweep: Vec<SweepPoint>,
}

/// Observation-1: a static 30% quota serving RoBERTa at low load.
fn static_quota_waste() -> Observation {
    let profile = ModelId::RobertaLarge.profile();
    let spec = funcs::inference_function_with(
        1,
        ModelId::RobertaLarge,
        4,
        dilu_gpu::SmRate::from_percent(30.0),
        dilu_gpu::SmRate::from_percent(30.0),
    );
    let _ = profile;
    let arrivals = PoissonProcess::new(4.0, 61).generate(SimTime::from_secs(60));
    let report = run_case(2, vec![Member::solo(spec, arrivals, gpu(0))], GpuSystem::MpsL, 60);
    // Used SM on the occupied GPU, against the static 30% allocation.
    let used = (1.0 - report.fragmentation.mean_sm_fragmentation()).max(0.0);
    Observation { name: "INFless static 30% SM, RoBERTa @4rps".into(), allocated: 0.30, used }
}

/// Observation-2: GPU idling of synchronised training.
fn training_idle(model: ModelId, workers: u32) -> Observation {
    let job = funcs::training_function(1, model, workers, u64::MAX);
    let gpus: Vec<_> = (0..workers).map(gpu).collect();
    let report =
        run_case(workers.max(2), vec![Member::workers(job, &gpus)], GpuSystem::Exclusive, 40);
    let used = (1.0 - report.fragmentation.mean_sm_fragmentation()).max(0.0);
    Observation { name: format!("{model} x{workers} training (exclusive)"), allocated: 1.0, used }
}

/// Observation-3: keep-alive waste under a sporadic trace — the fraction of
/// alive seconds with no arrivals.
fn keep_alive_waste() -> Observation {
    let trace =
        RateTrace::synthesize(TraceKind::Sporadic, 4.0, 1.0, SimDuration::from_secs(300), 67);
    let active_secs = trace.rps().iter().filter(|&&r| r > 0.0).count() as f64;
    let alive = trace.rps().len() as f64; // a keep-alive instance stays up throughout
    Observation {
        name: "keep-alive instance on sporadic trace".into(),
        allocated: 1.0,
        used: active_secs / alive,
    }
}

/// Panels (c)/(d): the preliminary co-scaling verification.
fn coscaling_sweep() -> Vec<SweepPoint> {
    let mut out = Vec::new();
    for rps in [32.0, 64.0, 128.0, 256.0, 512.0] {
        // Exclusive: 3 training GPUs + 1 inference GPU.
        let train = funcs::training_function(10, ModelId::BertBase, 3, u64::MAX);
        let inf = funcs::inference_function(1, ModelId::RobertaLarge);
        let arrivals = PoissonProcess::new(rps, 71).generate(SimTime::from_secs(40));
        let excl = run_case(
            4,
            vec![
                Member::solo(inf.clone(), arrivals.clone(), gpu(3)),
                Member::workers(train.clone(), &[gpu(0), gpu(1), gpu(2)]),
            ],
            GpuSystem::Exclusive,
            45,
        );
        // Collocation: 3 GPUs, each hosting one trainer and one inference
        // replica; requests load-balanced across the three replicas.
        let mut coll_members = vec![Member {
            spec: inf.clone(),
            arrivals,
            pins: vec![vec![gpu(0)], vec![gpu(1)], vec![gpu(2)]],
        }];
        coll_members.push(Member::workers(train, &[gpu(0), gpu(1), gpu(2)]));
        let coll = run_case(3, coll_members, GpuSystem::Dilu(RckmConfig::default()), 45);

        let e_inf = &excl.inference[&FunctionId(1)];
        let c_inf = &coll.inference[&FunctionId(1)];
        let e_train = excl.training.values().next().expect("train").throughput(excl.horizon);
        let c_train = coll.training.values().next().expect("train").throughput(coll.horizon);
        let e_p95 = e_inf.p95_display().as_millis_f64().max(1e-9);
        let e_good = e_inf.completed.max(1) as f64;
        out.push(SweepPoint {
            rps,
            p95_ratio: c_inf.p95_display().as_millis_f64() / e_p95,
            goodput_ratio: c_inf.completed as f64 / e_good,
            train_ratio: if e_train > 0.0 { c_train / e_train } else { 0.0 },
        });
    }
    out
}

/// Runs all panels of Fig. 2.
pub fn run() -> Fig02 {
    let observations = vec![
        static_quota_waste(),
        training_idle(ModelId::Gpt2Large, 4),
        training_idle(ModelId::Llama2_7b, 4),
        keep_alive_waste(),
    ];
    Fig02 { observations, sweep: coscaling_sweep() }
}

impl std::fmt::Display for Fig02 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut a = Table::new(["observation", "allocated", "used", "fragment"]);
        for o in &self.observations {
            a.row([
                o.name.clone(),
                format!("{:.0}%", o.allocated * 100.0),
                format!("{:.0}%", o.used * 100.0),
                format!("{:.0}%", (o.allocated - o.used).max(0.0) / o.allocated * 100.0),
            ]);
        }
        let mut b = Table::new(["RPS", "p95 coll/excl", "goodput coll/excl", "train coll/excl"]);
        for p in &self.sweep {
            b.row([
                format!("{:.0}", p.rps),
                format!("{:.2}", p.p95_ratio),
                format!("{:.2}", p.goodput_ratio),
                format!("{:.2}", p.train_ratio),
            ]);
        }
        write!(
            f,
            "(a)(b) fragmentation observations\n{a}\n(c)(d) co-scaling on 3 GPUs vs exclusive on 4\n{b}"
        )
    }
}

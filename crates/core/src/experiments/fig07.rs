//! Fig. 7: training–inference collocation performance.
//!
//! Four pairs — ResNet152\@35 rps, RoBERTa-large\@20, GPT2-large\@10 and
//! LLaMA2-7B\@3 (pipelined over four fragmented GPUs) — each collocated
//! with a training function, under Exclusive / Dilu / TGS / MPS-l / MPS-r.

use dilu_models::ModelId;
use dilu_sim::SimTime;
use dilu_workload::{ArrivalProcess, PoissonProcess};
use serde::{Deserialize, Serialize};

use super::collocation::{gpu, run_case, GpuSystem, Member};
use crate::funcs;
use crate::table::Table;

const HORIZON_SECS: u64 = 60;

/// One (case, system) measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Row {
    /// Inference model name.
    pub case: String,
    /// System label.
    pub system: String,
    /// Median inference latency in ms (per token for LLMs).
    pub p50_ms: f64,
    /// p95 inference latency in ms (per token for LLMs).
    pub p95_ms: f64,
    /// Inference SLO violation rate.
    pub svr: f64,
    /// Collocated training throughput in samples/s.
    pub train_throughput: f64,
    /// Training throughput normalised to the Exclusive run of the case.
    pub train_norm: f64,
    /// GPUs the deployment occupies.
    pub gpus_used: u32,
}

/// All Fig. 7 measurements.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig07 {
    /// One row per (case, system).
    pub rows: Vec<Row>,
}

struct Case {
    infer: ModelId,
    rps: f64,
    train: ModelId,
    /// Pipeline stages for the inference function (collocated systems).
    stages: u32,
    train_workers: u32,
}

fn cases() -> Vec<Case> {
    vec![
        Case {
            infer: ModelId::ResNet152,
            rps: 35.0,
            train: ModelId::BertBase,
            stages: 1,
            train_workers: 1,
        },
        Case {
            infer: ModelId::RobertaLarge,
            rps: 20.0,
            train: ModelId::RobertaLarge,
            stages: 1,
            train_workers: 1,
        },
        Case {
            infer: ModelId::Gpt2Large,
            rps: 10.0,
            train: ModelId::Gpt2Large,
            stages: 1,
            train_workers: 1,
        },
        Case {
            infer: ModelId::Llama2_7b,
            rps: 3.0,
            train: ModelId::Llama2_7b,
            stages: 4,
            train_workers: 4,
        },
    ]
}

fn members_for(case: &Case, system: GpuSystem, arrivals: Vec<SimTime>) -> (u32, Vec<Member>) {
    let train = funcs::training_function(2, case.train, case.train_workers, u64::MAX);
    if matches!(system, GpuSystem::Exclusive) {
        // Inference on its own GPU(s); training workers on their own GPUs.
        let inf = funcs::inference_function(1, case.infer);
        let train_gpus: Vec<_> = (0..case.train_workers).map(gpu).collect();
        let inf_gpu = gpu(case.train_workers);
        (
            case.train_workers + 1,
            vec![Member::solo(inf, arrivals, inf_gpu), Member::workers(train, &train_gpus)],
        )
    } else if case.stages > 1 {
        // LLaMA2: inference stages share the four training-worker GPUs.
        let gpus: Vec<_> = (0..case.stages).map(gpu).collect();
        let inf = funcs::llm_inference_function(1, case.infer, case.stages);
        (
            case.stages,
            vec![Member::pipelined(inf, arrivals, gpus.clone()), Member::workers(train, &gpus)],
        )
    } else {
        let inf = funcs::inference_function(1, case.infer);
        (1, vec![Member::solo(inf, arrivals, gpu(0)), Member::workers(train, &[gpu(0)])])
    }
}

/// Runs the full Fig. 7 study.
pub fn run() -> Fig07 {
    let mut rows = Vec::new();
    for case in cases() {
        let mut exclusive_throughput = 0.0;
        for system in GpuSystem::fig7_set() {
            let arrivals =
                PoissonProcess::new(case.rps, 7).generate(SimTime::from_secs(HORIZON_SECS));
            let (gpus, members) = members_for(&case, system, arrivals);
            let report = run_case(gpus.max(2), members, system, HORIZON_SECS + 5);
            let inf = report.inference.values().next().expect("inference deployed");
            let train = report.training.values().next().expect("training deployed");
            let throughput = train.throughput(report.horizon);
            if matches!(system, GpuSystem::Exclusive) {
                exclusive_throughput = throughput;
            }
            rows.push(Row {
                case: case.infer.to_string(),
                system: system.label().to_string(),
                p50_ms: inf.p50_display().as_millis_f64(),
                p95_ms: inf.p95_display().as_millis_f64(),
                svr: inf.svr(),
                train_throughput: throughput,
                train_norm: if exclusive_throughput > 0.0 {
                    throughput / exclusive_throughput
                } else {
                    0.0
                },
                gpus_used: report.peak_gpus,
            });
        }
    }
    Fig07 { rows }
}

impl std::fmt::Display for Fig07 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut t = Table::new([
            "case",
            "system",
            "p50(ms)",
            "p95(ms)",
            "SVR",
            "train(samples/s)",
            "train/Excl",
            "GPUs",
        ]);
        for r in &self.rows {
            t.row([
                r.case.clone(),
                r.system.clone(),
                format!("{:.1}", r.p50_ms),
                format!("{:.1}", r.p95_ms),
                format!("{:.1}%", r.svr * 100.0),
                format!("{:.0}", r.train_throughput),
                format!("{:.2}", r.train_norm),
                r.gpus_used.to_string(),
            ]);
        }
        write!(f, "{t}")
    }
}

//! Fig. 9: training–training collocation — aggregate throughput of two
//! training jobs sharing one GPU, normalised to their Exclusive runs.

use dilu_models::ModelId;
use dilu_rckm::RckmConfig;
use serde::{Deserialize, Serialize};

use super::collocation::{gpu, run_case, GpuSystem, Member};
use crate::funcs;
use crate::table::Table;

const HORIZON_SECS: u64 = 45;

/// One (pair, system) measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Row {
    /// "modelA + modelB".
    pub case: String,
    /// System label.
    pub system: String,
    /// First job's throughput / its exclusive throughput.
    pub norm_a: f64,
    /// Second job's throughput / its exclusive throughput.
    pub norm_b: f64,
    /// Aggregate per-GPU normalised throughput (Exclusive = 1.0/GPU).
    pub aggregate: f64,
}

/// All Fig. 9 measurements.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig09 {
    /// One row per (pair, system).
    pub rows: Vec<Row>,
}

fn pairs() -> [(ModelId, ModelId); 4] {
    [
        (ModelId::BertBase, ModelId::RobertaLarge),
        (ModelId::ResNet152, ModelId::Vgg19),
        (ModelId::Gpt2Large, ModelId::BertBase),
        (ModelId::RobertaLarge, ModelId::Vgg19),
    ]
}

fn throughputs(a: ModelId, b: ModelId, system: GpuSystem) -> (f64, f64) {
    let ja = funcs::training_function(1, a, 1, u64::MAX);
    let jb = funcs::training_function(2, b, 1, u64::MAX);
    let members = if matches!(system, GpuSystem::Exclusive) {
        vec![Member::workers(ja, &[gpu(0)]), Member::workers(jb, &[gpu(1)])]
    } else {
        vec![Member::workers(ja, &[gpu(0)]), Member::workers(jb, &[gpu(0)])]
    };
    let report = run_case(2, members, system, HORIZON_SECS);
    let mut it = report.training.values();
    let ta = it.next().expect("job a").throughput(report.horizon);
    let tb = it.next().expect("job b").throughput(report.horizon);
    (ta, tb)
}

/// Runs the full Fig. 9 study.
pub fn run() -> Fig09 {
    let systems =
        [GpuSystem::Dilu(RckmConfig::default()), GpuSystem::MpsL, GpuSystem::MpsR, GpuSystem::Tgs];
    let mut rows = Vec::new();
    for (a, b) in pairs() {
        let (ex_a, ex_b) = throughputs(a, b, GpuSystem::Exclusive);
        for system in systems {
            let (ta, tb) = throughputs(a, b, system);
            let norm_a = if ex_a > 0.0 { ta / ex_a } else { 0.0 };
            let norm_b = if ex_b > 0.0 { tb / ex_b } else { 0.0 };
            rows.push(Row {
                case: format!("{a} + {b}"),
                system: system.label().to_string(),
                norm_a,
                norm_b,
                // Exclusive needs 2 GPUs for aggregate 2.0; collocation
                // packs both jobs onto one, so per-GPU aggregate is the sum.
                aggregate: norm_a + norm_b,
            });
        }
    }
    Fig09 { rows }
}

impl Fig09 {
    /// Mean aggregate (per-GPU normalised) throughput of one system.
    pub fn mean_aggregate(&self, system: &str) -> f64 {
        let v: Vec<f64> =
            self.rows.iter().filter(|r| r.system == system).map(|r| r.aggregate).collect();
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    }
}

impl std::fmt::Display for Fig09 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut t = Table::new(["pair", "system", "normA", "normB", "aggregate/GPU"]);
        for r in &self.rows {
            t.row([
                r.case.clone(),
                r.system.clone(),
                format!("{:.2}", r.norm_a),
                format!("{:.2}", r.norm_b),
                format!("{:.2}", r.aggregate),
            ]);
        }
        writeln!(f, "{t}")?;
        writeln!(
            f,
            "mean aggregate: Dilu {:.2}  MPS-l {:.2}  MPS-r {:.2}  TGS {:.2}  (Exclusive = 1.00/GPU)",
            self.mean_aggregate("Dilu"),
            self.mean_aggregate("MPS-l"),
            self.mean_aggregate("MPS-r"),
            self.mean_aggregate("TGS"),
        )
    }
}

//! Table 3: horizontal-scaling performance — cold start counts (CSC), SLO
//! violation rate (SVR) and saved GPU time (SGT) per trace, for FaST-GS+,
//! INFless+ and Dilu.

use dilu_models::ModelId;
use dilu_sim::{SimDuration, SimTime};
use dilu_workload::{ArrivalProcess, RateTrace, TraceKind, TraceProcess};
use serde::{Deserialize, Serialize};

use crate::funcs;
use crate::table::Table;
use crate::{build_sim, SystemKind};

const HORIZON_SECS: u64 = 600;

/// One (trace, system) measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Row {
    /// Trace name.
    pub trace: String,
    /// System label.
    pub system: String,
    /// Cold start count.
    pub csc: u64,
    /// SLO violation rate.
    pub svr: f64,
    /// GPU time consumed over the run.
    pub gpu_seconds: f64,
    /// GPU time this system wastes relative to Dilu on the same trace
    /// (the paper's SGT column; 0 for Dilu itself).
    pub sgt_seconds: f64,
}

/// All Table 3 measurements.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Tab03 {
    /// One row per (trace, system).
    pub rows: Vec<Row>,
}

fn run_one(kind: SystemKind, trace_kind: TraceKind) -> (u64, f64, f64) {
    let (base, scale) = match trace_kind {
        TraceKind::Bursty => (20.0, 5.0),
        TraceKind::Periodic => (25.0, 2.5),
        TraceKind::Sporadic => (10.0, 1.0),
    };
    let trace =
        RateTrace::synthesize(trace_kind, base, scale, SimDuration::from_secs(HORIZON_SECS), 91);
    let arrivals = TraceProcess::new(trace, 91).generate(SimTime::from_secs(HORIZON_SECS));
    let mut sim = build_sim(kind, dilu_cluster::ClusterSpec::single_node(8));
    sim.deploy_inference(funcs::inference_function(1, ModelId::RobertaLarge), 1, arrivals)
        .expect("deploys on an empty cluster");
    // Background training occupies GPUs so scaling decisions have
    // collocation consequences.
    sim.deploy_training(funcs::training_function(2, ModelId::BertBase, 2, u64::MAX))
        .expect("training deploys");
    sim.run_until(SimTime::from_secs(HORIZON_SECS + 20));
    let report = sim.into_report();
    let f = report.inference.values().next().expect("inference function");
    (f.cold_starts.count(), f.svr(), report.instance_gpu_time.as_secs_f64())
}

/// Runs the full Table 3 matrix.
pub fn run() -> Tab03 {
    let systems = [SystemKind::FastGsPlus, SystemKind::InflessPlusL, SystemKind::Dilu];
    let mut rows = Vec::new();
    for trace_kind in TraceKind::ALL {
        let results: Vec<(SystemKind, u64, f64, f64)> = systems
            .iter()
            .map(|&k| {
                let (csc, svr, gpu) = run_one(k, trace_kind);
                (k, csc, svr, gpu)
            })
            .collect();
        let dilu_gpu_time = results
            .iter()
            .find(|(k, ..)| *k == SystemKind::Dilu)
            .map(|&(_, _, _, g)| g)
            .unwrap_or(0.0);
        for (kind, csc, svr, gpu) in results {
            rows.push(Row {
                trace: trace_kind.name().to_string(),
                system: kind.label().to_string(),
                csc,
                svr,
                gpu_seconds: gpu,
                sgt_seconds: (gpu - dilu_gpu_time).max(0.0),
            });
        }
    }
    Tab03 { rows }
}

impl Tab03 {
    /// The row for (trace, system), if present.
    pub fn row(&self, trace: &str, system: &str) -> Option<&Row> {
        self.rows.iter().find(|r| r.trace == trace && r.system == system)
    }
}

impl std::fmt::Display for Tab03 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut t = Table::new(["trace", "system", "CSC", "SVR", "SGT"]);
        for r in &self.rows {
            t.row([
                r.trace.clone(),
                r.system.clone(),
                r.csc.to_string(),
                format!("{:.2}%", r.svr * 100.0),
                if r.system == "Dilu" { "-".to_string() } else { format!("{:.1}s", r.sgt_seconds) },
            ]);
        }
        write!(f, "{t}")
    }
}

//! Dilu's global scalers (paper §3.4.2): the lazy horizontal scaler and
//! the adaptive 2D co-scaler.
//!
//! Classic serverless scalers react instantly to load changes and pay the
//! cold-start price for every few-second burst. Dilu instead lets the fast
//! *vertical* scaler absorb short bursts and only scales out when a
//! 40-second sliding window shows a *sustained* overload:
//!
//! * **scale out** when at least φ_out (20) per-second RPS samples exceed
//!   the serving throughput of the deployed instances;
//! * **scale in** when more than φ_in (30) samples fall below the capacity
//!   of one fewer instance — avoiding termination/restart churn.
//!
//! Two controllers implement this:
//!
//! * [`LazyScaler`] — horizontal-only ([`dilu_cluster::Autoscaler`]); it
//!   *assumes* per-GPU vertical scaling (RCKM) handles the bursts;
//! * [`CoScaler`] — a true 2D [`dilu_cluster::ElasticityController`]: it
//!   observes per-GPU quota headroom, grows a function's `<request, limit>`
//!   quotas in place (millisecond apply latency) up to the Ω cap, and only
//!   falls back to cold-start-bound scale-out beyond that; on quiet windows
//!   it shrinks grown quotas back before terminating instances.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod coscale;
mod lazy;

pub use coscale::{CoScaler, CoScalerConfig};
pub use lazy::{LazyScaler, ScalerConfig};

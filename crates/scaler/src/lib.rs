//! Dilu's lazy horizontal scaler (paper §3.4.2).
//!
//! Classic serverless scalers react instantly to load changes and pay the
//! cold-start price for every few-second burst. Dilu instead lets the fast
//! *vertical* scaler (RCKM) absorb short bursts and only scales out when a
//! 40-second sliding window shows a *sustained* overload:
//!
//! * **scale out** when at least φ_out (20) per-second RPS samples exceed
//!   the serving throughput of the deployed instances;
//! * **scale in** when more than φ_in (30) samples fall below the capacity
//!   of one fewer instance — avoiding termination/restart churn.
//!
//! [`LazyScaler`] implements [`dilu_cluster::Autoscaler`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod lazy;

pub use lazy::{LazyScaler, ScalerConfig};

//! Dilu's adaptive 2D co-scaler: vertical quota resizing first, horizontal
//! scale-out only when vertical headroom is exhausted.

use std::collections::BTreeMap;

use dilu_cluster::{
    ClusterView, ElasticityController, FunctionId, FunctionScaleView, GpuAddr, ScaleAction,
};
use dilu_gpu::SmRate;
use dilu_sim::SimTime;
use serde::{Deserialize, Serialize};

use crate::ScalerConfig;

/// Tunables of the 2D co-scaler.
///
/// The sliding-window thresholds are shared with the horizontal
/// [`LazyScaler`](crate::LazyScaler); the vertical knobs bound how far a
/// function's per-slice `request` quota may grow (Ω) and how much capacity
/// headroom a resize targets over the observed window mean.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoScalerConfig {
    /// Sliding-window and φ thresholds shared with the lazy scaler.
    pub horizontal: ScalerConfig,
    /// Samples above capacity required to trigger a *vertical* grow
    /// (default 5). Deliberately far below φ_out: a resize costs
    /// milliseconds and no cold start, so the controller can afford to
    /// react to bursts the lazy horizontal threshold must sit out.
    pub phi_vertical: usize,
    /// Per-slice ceiling on vertical `request` growth (the Ω cap; default
    /// one whole GPU).
    pub max_request: SmRate,
    /// Capacity target as a multiple of the window-mean demand; a little
    /// slack (default 1.1) damps resize oscillation around the mean.
    pub target_headroom: f64,
}

impl Default for CoScalerConfig {
    fn default() -> Self {
        CoScalerConfig {
            horizontal: ScalerConfig::default(),
            phi_vertical: 5,
            max_request: SmRate::FULL,
            target_headroom: 1.1,
        }
    }
}

/// Dilu's global scaler as a true 2D controller.
///
/// Where [`LazyScaler`](crate::LazyScaler) merely *assumes* per-GPU vertical
/// scaling absorbed a burst, `CoScaler` observes vertical headroom and acts
/// on it: on a sustained overload it grows the function's `<request, limit>`
/// quotas (millisecond apply latency, no cold start) up to the tightest
/// hosting GPU's guaranteed-SM slack and the Ω cap, and only emits
/// [`ScaleAction::ScaleOut`] for demand beyond that. On the way down it
/// shrinks grown quotas back toward the profiled baseline before it
/// considers terminating instances.
///
/// # Examples
///
/// ```
/// use dilu_scaler::{CoScaler, CoScalerConfig};
/// use dilu_cluster::ElasticityController;
///
/// let scaler = CoScaler::new(CoScalerConfig::default());
/// assert_eq!(scaler.name(), "dilu-co-scaler");
/// ```
#[derive(Debug, Clone)]
pub struct CoScaler {
    config: CoScalerConfig,
    /// First-seen (profiled) `<request, limit>` per function — the shrink
    /// floor, and the source of the limit/request growth ratio.
    ///
    /// A `BTreeMap` (like every map in the per-tick budget below): the
    /// event-driven core pins byte-identical reports across runs, so the
    /// controller must never iterate hash-ordered state.
    baselines: BTreeMap<FunctionId, (SmRate, SmRate)>,
}

impl CoScaler {
    /// Creates a co-scaler with the given tunables.
    pub fn new(config: CoScalerConfig) -> Self {
        CoScaler { config, baselines: BTreeMap::new() }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &CoScalerConfig {
        &self.config
    }

    /// Estimated capacity slope in RPS per unit of SM fraction, from the
    /// two capacity points the view carries. Falls back to the
    /// through-origin proportional slope when the quota interval is
    /// degenerate; returns 0 when growing the quota buys nothing
    /// (saturated).
    fn capacity_slope(f: &FunctionScaleView) -> f64 {
        let q = &f.quota;
        let span = q.limit.as_fraction() - q.request.as_fraction();
        let gain = q.capacity_rps_at_limit - f.capacity_rps;
        if span > 1e-9 {
            (gain / span).max(0.0)
        } else if q.request.as_fraction() > 1e-9 {
            f.capacity_rps / q.request.as_fraction()
        } else {
            0.0
        }
    }

    /// The vertical move meeting `wanted_per_instance` RPS, if any:
    /// `(new_request, estimated_capacity_after)`. `headroom` is the
    /// effective vertical room — the view's snapshot already clamped by
    /// this tick's running per-GPU budget.
    fn grow_quota(
        &self,
        f: &FunctionScaleView,
        headroom: SmRate,
        wanted_per_instance: f64,
    ) -> (SmRate, f64) {
        let q = &f.quota;
        let slope = Self::capacity_slope(f);
        let ceiling = (q.request + headroom).min(self.config.max_request);
        if slope <= 1e-9 || ceiling <= q.request {
            return (q.request, f.capacity_rps);
        }
        let deficit = (wanted_per_instance - f.capacity_rps).max(0.0);
        let grown = SmRate::from_fraction(q.request.as_fraction() + deficit / slope).min(ceiling);
        let capacity_after =
            f.capacity_rps + slope * (grown.as_fraction() - q.request.as_fraction());
        (grown, capacity_after)
    }

    /// New limit for a resized request: preserve the profiled
    /// limit/request ratio, never shrinking the limit on a grow.
    fn limit_for(
        &self,
        f: &FunctionScaleView,
        baseline: (SmRate, SmRate),
        request: SmRate,
    ) -> SmRate {
        let (base_req, base_lim) = baseline;
        let ratio = if base_req.as_fraction() > 1e-9 {
            base_lim.as_fraction() / base_req.as_fraction()
        } else {
            2.0
        };
        let scaled = request.scale(ratio.max(1.0));
        if request >= f.quota.request {
            scaled.max(f.quota.limit)
        } else {
            scaled
        }
    }

    fn decide(&mut self, f: &FunctionScaleView, headroom: SmRate) -> Vec<ScaleAction> {
        if !f.kind.is_inference() {
            return Vec::new();
        }
        let baseline = *self.baselines.entry(f.func).or_insert((f.quota.request, f.quota.limit));
        let cfg = self.config.horizontal;
        let deployed = f.ready_instances + f.starting_instances;
        if deployed == 0 {
            // Nothing deployed: the vertical dimension does not exist yet.
            if f.backlog > 0 {
                return vec![ScaleAction::ScaleOut { func: f.func, count: 1 }];
            }
            return Vec::new();
        }
        let window: &[u64] = if f.rps_window.len() > cfg.window {
            &f.rps_window[f.rps_window.len() - cfg.window..]
        } else {
            &f.rps_window
        };
        let capacity_now = f.capacity_rps * f64::from(deployed);
        let above = window.iter().filter(|&&rps| rps as f64 > capacity_now).count();
        // Vertical reacts at φ_vertical (cheap, millisecond-scale);
        // horizontal stays lazy at φ_out (each scale-out is a cold start).
        if above >= self.config.phi_vertical.min(cfg.phi_out) {
            let mean = window.iter().sum::<u64>() as f64 / window.len().max(1) as f64;
            // A short burst barely moves the 40 s mean; the vertical move
            // sizes against the recent seconds so it tracks the burst
            // itself (a resize is cheap enough to oversize and shrink
            // later). The horizontal fallback keeps the lazy window-mean
            // sizing — each scale-out is a cold start.
            let tail = self.config.phi_vertical.max(1).min(window.len());
            let recent = window[window.len() - tail..].iter().sum::<u64>() as f64 / tail as f64;
            let wanted_v = mean.max(recent) * self.config.target_headroom;
            let wanted_h = mean * self.config.target_headroom;
            if wanted_v <= capacity_now {
                return Vec::new();
            }
            let mut actions = Vec::new();
            let (grown, capacity_after) =
                self.grow_quota(f, headroom, wanted_v / f64::from(deployed));
            if grown.as_fraction() > f.quota.request.as_fraction() + 1e-9 {
                actions.push(ScaleAction::ResizeQuota {
                    func: f.func,
                    request: grown,
                    limit: self.limit_for(f, baseline, grown),
                });
            }
            let total_after = capacity_after * f64::from(deployed);
            if above >= cfg.phi_out && wanted_h > total_after * (1.0 + 1e-9) {
                // Sustained overload beyond the vertical ceiling: scale out
                // for the remainder.
                let count =
                    ((wanted_h - total_after) / capacity_after.max(1e-9)).ceil().max(1.0) as u32;
                actions.push(ScaleAction::ScaleOut { func: f.func, count });
            }
            return actions;
        }
        // Quiet side. Shrink grown quotas back toward the baseline before
        // touching instance counts — the reverse of the grow order. Bursty
        // traffic keeps recent samples above capacity even when the mean is
        // low, so a shrink additionally requires a fully-subdued window.
        if above == 0 && window.len() >= cfg.phi_in && f.quota.request > baseline.0 {
            let mean = window.iter().sum::<u64>() as f64 / window.len().max(1) as f64;
            let wanted = (mean * self.config.target_headroom) / f64::from(deployed);
            let slope = Self::capacity_slope(f);
            if slope > 1e-9 {
                let surplus = (f.capacity_rps - wanted).max(0.0);
                let target = SmRate::from_fraction(
                    (f.quota.request.as_fraction() - surplus / slope).max(0.0),
                )
                .max(baseline.0);
                // Require the window to actually fit at the lower quota and
                // a non-trivial step (≥ 1% of the card) to avoid churn.
                let capacity_at_target =
                    f.capacity_rps - slope * (f.quota.request - target).as_fraction();
                let fits = window
                    .iter()
                    .filter(|&&rps| (rps as f64) < capacity_at_target * f64::from(deployed))
                    .count()
                    > cfg.phi_in;
                if fits && f.quota.request.as_fraction() - target.as_fraction() > 0.01 {
                    return vec![ScaleAction::ResizeQuota {
                        func: f.func,
                        request: target,
                        limit: self.limit_for(f, baseline, target),
                    }];
                }
            }
        }
        // Horizontal scale-in/scale-to-zero is exactly the lazy scaler's
        // decision — one shared implementation, not a copy.
        crate::lazy::horizontal_scale_in(&cfg, f, window).into_iter().collect()
    }
}

impl ElasticityController for CoScaler {
    fn on_tick(
        &mut self,
        _now: SimTime,
        functions: &[FunctionScaleView],
        cluster: &ClusterView,
    ) -> Vec<ScaleAction> {
        // Per-tick vertical budget: the view's headroom is a snapshot taken
        // before any of this tick's decisions, so grows emitted for one
        // function must be deducted from the slack of the GPUs it shares
        // before the next function sizes its own grow — otherwise two
        // functions bursting in the same tick both claim the same SMs and
        // the "guaranteed" requests oversubscribe the card.
        let mut slack: BTreeMap<GpuAddr, f64> =
            cluster.gpus.iter().map(|g| (g.addr, g.request_slack().as_fraction())).collect();
        let mut slices: BTreeMap<(FunctionId, GpuAddr), f64> = BTreeMap::new();
        for gpu in &cluster.gpus {
            for r in &gpu.residents {
                *slices.entry((r.func, gpu.addr)).or_insert(0.0) += 1.0;
            }
        }
        let mut actions = Vec::new();
        let mut hosting: Vec<(GpuAddr, f64)> = Vec::new();
        for f in functions {
            // This function's hosting GPUs via a key-range probe — a full
            // scan of `slices` here is O(functions × residents) per tick,
            // which dominated the whole simulation at 10k-function fleet
            // scale.
            let span = (f.func, GpuAddr { node: 0, gpu: 0 })
                ..=(f.func, GpuAddr { node: u32::MAX, gpu: u32::MAX });
            hosting.clear();
            hosting.extend(slices.range(span).map(|((_, gpu), &n)| (*gpu, n)));
            let budget = hosting
                .iter()
                .map(|(gpu, n)| slack.get(gpu).copied().unwrap_or(0.0) / n.max(1.0))
                .fold(f64::INFINITY, f64::min);
            let mut headroom = f.quota.headroom;
            if budget.is_finite() {
                headroom = headroom.min(SmRate::from_fraction(budget.max(0.0)));
            }
            let decided = self.decide(f, headroom);
            for action in &decided {
                if let ScaleAction::ResizeQuota { request, .. } = action {
                    let delta = (request.as_fraction() - f.quota.request.as_fraction()).max(0.0);
                    if delta > 0.0 {
                        for (gpu, n) in &hosting {
                            if let Some(s) = slack.get_mut(gpu) {
                                *s = (*s - delta * n).max(0.0);
                            }
                        }
                    }
                }
            }
            actions.extend(decided);
        }
        actions
    }

    fn name(&self) -> &str {
        "dilu-co-scaler"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dilu_cluster::{FunctionKind, QuotaView};
    use dilu_sim::SimDuration;

    fn view(window: Vec<u64>, ready: u32, quota: QuotaView) -> FunctionScaleView {
        FunctionScaleView {
            func: FunctionId(1),
            kind: FunctionKind::Inference { slo: SimDuration::from_millis(100), batch: 4 },
            rps_window: window,
            ready_instances: ready,
            starting_instances: 0,
            backlog: 0,
            capacity_rps: 50.0,
            max_idle: SimDuration::ZERO,
            pending_fetch_bytes: 0,
            quota,
        }
    }

    fn quota(request: f64, limit: f64, headroom: f64, cap_at_limit: f64) -> QuotaView {
        QuotaView {
            request: SmRate::from_percent(request),
            limit: SmRate::from_percent(limit),
            headroom: SmRate::from_percent(headroom),
            capacity_rps_at_limit: cap_at_limit,
        }
    }

    fn hot_window() -> Vec<u64> {
        // 25 of 40 seconds at 160 rps against 50 rps of capacity.
        let mut w = vec![10u64; 15];
        w.extend([160u64; 25]);
        w
    }

    fn tick(scaler: &mut CoScaler, v: FunctionScaleView) -> Vec<ScaleAction> {
        let cluster = ClusterView { gpus: Vec::new() };
        scaler.on_tick(SimTime::from_secs(60), &[v], &cluster)
    }

    #[test]
    fn burst_with_headroom_resizes_instead_of_scaling_out() {
        let mut s = CoScaler::new(CoScalerConfig::default());
        // 20%→40% quotas, 60% slack on the GPU, capacity doubling at limit.
        let actions = tick(&mut s, view(hot_window(), 1, quota(20.0, 40.0, 60.0, 100.0)));
        assert_eq!(actions.len(), 1, "{actions:?}");
        let ScaleAction::ResizeQuota { request, limit, .. } = actions[0] else {
            panic!("expected a resize, got {:?}", actions[0]);
        };
        // Recent seconds run at 160 rps → wanted ≈ 176; slope =
        // (100−50)/0.2 = 250 rps/unit → grow ≈ 0.2 + 126/250 ≈ 0.70,
        // within the 0.8 headroom bound.
        assert!(request > SmRate::from_percent(40.0), "request {request}");
        assert!(request <= SmRate::from_percent(80.0), "request {request}");
        assert!(limit >= request, "limit {limit} under request {request}");
    }

    #[test]
    fn short_bursts_trigger_vertical_but_never_horizontal() {
        let mut s = CoScaler::new(CoScalerConfig::default());
        // 8 hot seconds: above φ_vertical (5) but far below φ_out (20).
        let mut w = vec![10u64; 32];
        w.extend([160u64; 8]);
        let actions = tick(&mut s, view(w.clone(), 1, quota(20.0, 40.0, 60.0, 100.0)));
        assert_eq!(actions.len(), 1, "{actions:?}");
        assert!(matches!(actions[0], ScaleAction::ResizeQuota { .. }), "{actions:?}");
        // Same burst with zero vertical headroom: still no cold start — the
        // horizontal dimension stays lazy below φ_out.
        let actions = tick(&mut s, view(w, 1, quota(20.0, 40.0, 0.0, 100.0)));
        assert!(actions.is_empty(), "{actions:?}");
    }

    #[test]
    fn burst_without_headroom_falls_back_to_scale_out() {
        let mut s = CoScaler::new(CoScalerConfig::default());
        let actions = tick(&mut s, view(hot_window(), 1, quota(20.0, 40.0, 0.0, 100.0)));
        assert_eq!(actions.len(), 1, "{actions:?}");
        let ScaleAction::ScaleOut { count, .. } = actions[0] else {
            panic!("expected scale out, got {:?}", actions[0]);
        };
        // wanted ≈ 114 against 50 rps deployed → 2 more instances.
        assert_eq!(count, 2);
    }

    #[test]
    fn partial_headroom_combines_both_dimensions() {
        let mut s = CoScaler::new(CoScalerConfig::default());
        // Only 10% slack: vertical buys ~25 rps, the rest must scale out.
        let actions = tick(&mut s, view(hot_window(), 1, quota(20.0, 40.0, 10.0, 100.0)));
        assert_eq!(actions.len(), 2, "{actions:?}");
        assert!(matches!(actions[0], ScaleAction::ResizeQuota { .. }), "{actions:?}");
        assert!(matches!(actions[1], ScaleAction::ScaleOut { .. }), "{actions:?}");
    }

    #[test]
    fn omega_caps_vertical_growth() {
        let config =
            CoScalerConfig { max_request: SmRate::from_percent(25.0), ..CoScalerConfig::default() };
        let mut s = CoScaler::new(config);
        let actions = tick(&mut s, view(hot_window(), 1, quota(20.0, 40.0, 60.0, 100.0)));
        let ScaleAction::ResizeQuota { request, .. } = actions[0] else {
            panic!("expected a resize, got {:?}", actions[0]);
        };
        assert_eq!(request, SmRate::from_percent(25.0));
        assert!(
            actions.iter().any(|a| matches!(a, ScaleAction::ScaleOut { .. })),
            "capped vertical must scale out for the remainder: {actions:?}"
        );
    }

    #[test]
    fn quiet_window_shrinks_grown_quotas_before_scaling_in() {
        let mut s = CoScaler::new(CoScalerConfig::default());
        // Record the 20%/40% baseline.
        tick(&mut s, view(hot_window(), 1, quota(20.0, 40.0, 60.0, 100.0)));
        // Later: quotas grown to 60%, demand collapsed to ~5 rps.
        let mut grown = view(vec![5u64; 40], 2, quota(60.0, 120.0, 20.0, 90.0));
        grown.capacity_rps = 80.0;
        let actions = tick(&mut s, grown);
        assert_eq!(actions.len(), 1, "{actions:?}");
        let ScaleAction::ResizeQuota { request, limit, .. } = actions[0] else {
            panic!("expected a shrink, got {:?}", actions[0]);
        };
        assert_eq!(request, SmRate::from_percent(20.0), "shrink floors at the baseline");
        assert_eq!(limit, SmRate::from_percent(40.0));
    }

    #[test]
    fn at_baseline_quotas_horizontal_scale_in_applies() {
        let mut s = CoScaler::new(CoScalerConfig::default());
        tick(&mut s, view(hot_window(), 1, quota(20.0, 40.0, 60.0, 100.0)));
        // Back at baseline quotas with 2 instances and a long quiet window.
        let mut w = vec![80u64; 5];
        w.extend([20u64; 35]);
        let actions = tick(&mut s, view(w, 2, quota(20.0, 40.0, 60.0, 100.0)));
        assert_eq!(actions, vec![ScaleAction::ScaleIn { func: FunctionId(1), count: 1 }]);
    }

    #[test]
    fn scales_to_zero_like_the_lazy_scaler() {
        let mut s = CoScaler::new(CoScalerConfig::default());
        let actions = tick(&mut s, view(vec![0u64; 40], 1, quota(20.0, 40.0, 60.0, 100.0)));
        assert_eq!(actions, vec![ScaleAction::ScaleIn { func: FunctionId(1), count: 1 }]);
    }

    #[test]
    fn concurrent_bursts_share_the_per_gpu_headroom_budget() {
        use dilu_cluster::{GpuView, ResidentInfo};
        use dilu_gpu::TaskClass;
        // Two functions on one GPU, 20% request each → 60% guaranteed slack.
        // Both burst in the same tick; their combined grows must fit the
        // slack instead of both claiming all of it.
        let resident = |id: u32| ResidentInfo {
            func: FunctionId(id),
            class: TaskClass::SloSensitive,
            request: SmRate::from_percent(20.0),
            limit: SmRate::from_percent(40.0),
            mem_bytes: dilu_gpu::GB,
        };
        let cluster = ClusterView {
            gpus: vec![GpuView {
                addr: GpuAddr::default(),
                mem_capacity: 40 * dilu_gpu::GB,
                mem_reserved: 2 * dilu_gpu::GB,
                residents: vec![resident(1), resident(2)],
            }],
        };
        let mut s = CoScaler::new(CoScalerConfig::default());
        let mut f1 = view(hot_window(), 1, quota(20.0, 40.0, 60.0, 100.0));
        let mut f2 = f1.clone();
        f2.func = FunctionId(2);
        let actions = s.on_tick(SimTime::from_secs(60), &[f1.clone(), f2.clone()], &cluster);
        let grown: f64 = actions
            .iter()
            .filter_map(|a| match a {
                ScaleAction::ResizeQuota { request, .. } => Some(request.as_fraction() - 0.20),
                _ => None,
            })
            .sum();
        assert!(
            actions.iter().filter(|a| matches!(a, ScaleAction::ResizeQuota { .. })).count() == 2,
            "both functions should get a vertical grow: {actions:?}"
        );
        assert!(grown <= 0.60 + 1e-9, "combined grows {grown} must fit the 60% slack");
        // And the pipelined case: one function with two slices on the GPU
        // can only grow by half the slack per slice.
        f1.func = FunctionId(3);
        f1.quota.headroom = SmRate::from_percent(60.0);
        let two_slices = ClusterView {
            gpus: vec![GpuView {
                addr: GpuAddr::default(),
                mem_capacity: 40 * dilu_gpu::GB,
                mem_reserved: 2 * dilu_gpu::GB,
                residents: vec![
                    ResidentInfo { func: FunctionId(3), ..resident(3) },
                    ResidentInfo { func: FunctionId(3), ..resident(3) },
                ],
            }],
        };
        let actions = s.on_tick(SimTime::from_secs(60), &[f1], &two_slices);
        let ScaleAction::ResizeQuota { request, .. } = actions[0] else {
            panic!("expected a resize, got {:?}", actions[0]);
        };
        // Slack 60% over two slices → at most +30% per slice (0.2 → ≤ 0.5).
        assert!(
            request <= SmRate::from_percent(50.0) + SmRate::from_percent(1e-6),
            "per-slice grow must halve for two slices: {request}"
        );
    }

    #[test]
    fn decisions_are_deterministic_across_reconstructions() {
        // The event-driven serving core pins byte-identical reports, which
        // requires every controller decision (including multi-function,
        // multi-GPU budget sharing) to be a pure function of its inputs —
        // no hash-iteration order may leak into action order or sizing.
        use dilu_cluster::{GpuView, ResidentInfo};
        use dilu_gpu::TaskClass;
        let resident = |id: u32| ResidentInfo {
            func: FunctionId(id),
            class: TaskClass::SloSensitive,
            request: SmRate::from_percent(15.0),
            limit: SmRate::from_percent(30.0),
            mem_bytes: dilu_gpu::GB,
        };
        let cluster = ClusterView {
            gpus: (0..4)
                .map(|g| GpuView {
                    addr: GpuAddr { node: 0, gpu: g },
                    mem_capacity: 40 * dilu_gpu::GB,
                    mem_reserved: 3 * dilu_gpu::GB,
                    residents: vec![resident(g), resident(g + 1), resident(g + 2)],
                })
                .collect(),
        };
        let views: Vec<FunctionScaleView> = (0..6)
            .map(|id| {
                let mut v = view(hot_window(), 1, quota(15.0, 30.0, 55.0, 100.0));
                v.func = FunctionId(id);
                v
            })
            .collect();
        let run = || {
            let mut s = CoScaler::new(CoScalerConfig::default());
            let a = s.on_tick(SimTime::from_secs(60), &views, &cluster);
            let b = s.on_tick(SimTime::from_secs(61), &views, &cluster);
            (a, b)
        };
        assert_eq!(run(), run(), "same inputs must yield identical action sequences");
    }

    #[test]
    fn training_functions_are_ignored() {
        let mut s = CoScaler::new(CoScalerConfig::default());
        let mut v = view(vec![100; 40], 1, quota(20.0, 40.0, 60.0, 100.0));
        v.kind = FunctionKind::Training { workers: 2, iterations: 10 };
        assert!(tick(&mut s, v).is_empty());
    }

    #[test]
    fn zero_instances_with_backlog_cold_starts() {
        let mut s = CoScaler::new(CoScalerConfig::default());
        let mut v = view(vec![0; 40], 0, quota(20.0, 40.0, 0.0, 100.0));
        v.backlog = 3;
        let actions = tick(&mut s, v);
        assert_eq!(actions, vec![ScaleAction::ScaleOut { func: FunctionId(1), count: 1 }]);
    }
}

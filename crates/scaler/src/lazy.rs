//! The lazy scaling-out/in controller.

use dilu_cluster::{Autoscaler, FunctionScaleView, ScaleAction};
use dilu_sim::SimTime;
use serde::{Deserialize, Serialize};

/// Tunables of the lazy scaler (paper defaults in parentheses).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScalerConfig {
    /// Sliding-window length in seconds (40).
    pub window: usize,
    /// Samples above capacity required to scale out (20).
    pub phi_out: usize,
    /// Samples below reduced capacity required to scale in (30).
    pub phi_in: usize,
    /// Allow dropping the last ready instance when the window is fully idle.
    pub scale_to_zero: bool,
}

impl Default for ScalerConfig {
    fn default() -> Self {
        ScalerConfig { window: 40, phi_out: 20, phi_in: 30, scale_to_zero: true }
    }
}

/// Dilu's global scaler: lazy scale-out/in coordinated with RCKM's fast
/// vertical scaling.
///
/// # Examples
///
/// ```
/// use dilu_scaler::{LazyScaler, ScalerConfig};
/// use dilu_cluster::Autoscaler;
///
/// let scaler = LazyScaler::new(ScalerConfig::default());
/// assert_eq!(scaler.name(), "dilu-lazy-scaler");
/// ```
#[derive(Debug, Clone)]
pub struct LazyScaler {
    config: ScalerConfig,
}

impl LazyScaler {
    /// Creates a scaler with the given tunables.
    pub fn new(config: ScalerConfig) -> Self {
        LazyScaler { config }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &ScalerConfig {
        &self.config
    }

    fn decide(&self, f: &FunctionScaleView) -> Option<ScaleAction> {
        if !f.kind.is_inference() {
            return None;
        }
        let deployed = f.ready_instances + f.starting_instances;
        // A function with zero instances and queued work must cold start
        // regardless of the window — there is nothing to scale vertically.
        if deployed == 0 {
            if f.backlog > 0 {
                return Some(ScaleAction::ScaleOut { func: f.func, count: 1 });
            }
            return None;
        }
        let window: &[u64] = if f.rps_window.len() > self.config.window {
            &f.rps_window[f.rps_window.len() - self.config.window..]
        } else {
            &f.rps_window
        };
        let capacity_now = f.capacity_rps * f64::from(deployed);
        let above = window.iter().filter(|&&rps| rps as f64 > capacity_now).count();
        if above >= self.config.phi_out {
            // Size the step so the window mean would fit (still lazy: one
            // decision per tick, no eager burst-chasing).
            let mean = window.iter().sum::<u64>() as f64 / window.len().max(1) as f64;
            let deficit = (mean - capacity_now).max(0.0);
            let count = (deficit / f.capacity_rps.max(1e-9)).ceil().max(1.0) as u32;
            return Some(ScaleAction::ScaleOut { func: f.func, count });
        }
        horizontal_scale_in(&self.config, f, window)
    }
}

/// The lazy horizontal scale-in decision, shared by [`LazyScaler`] and the
/// 2D [`CoScaler`](crate::CoScaler): drop one instance when more than φ_in
/// samples fit the capacity of one fewer, and scale to zero only after a
/// fully idle φ_in tail.
pub(crate) fn horizontal_scale_in(
    config: &ScalerConfig,
    f: &FunctionScaleView,
    window: &[u64],
) -> Option<ScaleAction> {
    if f.ready_instances > 1 {
        let reduced = f.capacity_rps * f64::from(f.ready_instances - 1);
        let below = window.iter().filter(|&&rps| (rps as f64) < reduced).count();
        if below > config.phi_in && window.len() >= config.phi_in {
            return Some(ScaleAction::ScaleIn { func: f.func, count: 1 });
        }
    } else if config.scale_to_zero
        && f.ready_instances == 1
        && f.backlog == 0
        && window.len() >= config.phi_in
        && window.iter().rev().take(config.phi_in).all(|&rps| rps == 0)
    {
        return Some(ScaleAction::ScaleIn { func: f.func, count: 1 });
    }
    None
}

impl Autoscaler for LazyScaler {
    fn on_tick(&mut self, _now: SimTime, functions: &[FunctionScaleView]) -> Vec<ScaleAction> {
        functions.iter().filter_map(|f| self.decide(f)).collect()
    }

    fn name(&self) -> &str {
        "dilu-lazy-scaler"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dilu_cluster::{FunctionId, FunctionKind};
    use dilu_sim::SimDuration;

    fn view(window: Vec<u64>, ready: u32, starting: u32, backlog: usize) -> FunctionScaleView {
        FunctionScaleView {
            func: FunctionId(1),
            kind: FunctionKind::Inference { slo: SimDuration::from_millis(100), batch: 4 },
            rps_window: window,
            ready_instances: ready,
            starting_instances: starting,
            backlog,
            capacity_rps: 50.0,
            max_idle: SimDuration::ZERO,
            pending_fetch_bytes: 0,
            quota: dilu_cluster::QuotaView::none(),
        }
    }

    fn tick(scaler: &mut LazyScaler, v: FunctionScaleView) -> Vec<ScaleAction> {
        scaler.on_tick(SimTime::from_secs(60), &[v])
    }

    #[test]
    fn short_bursts_do_not_scale_out() {
        let mut s = LazyScaler::new(ScalerConfig::default());
        // 10 hot seconds out of 40: below φ_out=20 → vertical scaling absorbs it.
        let mut w = vec![10u64; 30];
        w.extend([120u64; 10]);
        assert!(tick(&mut s, view(w, 1, 0, 0)).is_empty());
    }

    #[test]
    fn sustained_overload_scales_out_proportionally() {
        let mut s = LazyScaler::new(ScalerConfig::default());
        // 25 of 40 seconds at 160 rps against one 50-rps instance.
        let mut w = vec![10u64; 15];
        w.extend([160u64; 25]);
        let actions = tick(&mut s, view(w, 1, 0, 0));
        assert_eq!(actions.len(), 1);
        let ScaleAction::ScaleOut { count, .. } = actions[0] else {
            panic!("expected scale out, got {:?}", actions[0]);
        };
        // Mean ≈ 104 rps, deficit ≈ 54 → 2 extra instances.
        assert_eq!(count, 2);
    }

    #[test]
    fn starting_instances_count_toward_capacity() {
        let mut s = LazyScaler::new(ScalerConfig::default());
        let w = vec![80u64; 40];
        // 1 ready + 1 starting = 100 rps capacity ≥ 80 → no action.
        assert!(tick(&mut s, view(w, 1, 1, 0)).is_empty());
    }

    #[test]
    fn scale_in_requires_a_long_quiet_window() {
        let mut s = LazyScaler::new(ScalerConfig::default());
        // 2 instances (100 rps); 35 of 40 samples below 50 rps (n-1 capacity).
        let mut w = vec![80u64; 5];
        w.extend([20u64; 35]);
        let actions = tick(&mut s, view(w, 2, 0, 0));
        assert_eq!(actions, vec![ScaleAction::ScaleIn { func: FunctionId(1), count: 1 }]);
        // Only 20 quiet samples: not enough (φ_in = 30).
        let mut w = vec![80u64; 20];
        w.extend([20u64; 20]);
        assert!(tick(&mut s, view(w, 2, 0, 0)).is_empty());
    }

    #[test]
    fn scales_to_zero_only_after_fully_idle_window() {
        let mut s = LazyScaler::new(ScalerConfig::default());
        let w = vec![0u64; 40];
        let actions = tick(&mut s, view(w, 1, 0, 0));
        assert_eq!(actions, vec![ScaleAction::ScaleIn { func: FunctionId(1), count: 1 }]);
        let mut w = vec![0u64; 39];
        w.push(1);
        assert!(tick(&mut s, view(w, 1, 0, 0)).is_empty());
    }

    #[test]
    fn zero_instances_with_backlog_cold_starts() {
        let mut s = LazyScaler::new(ScalerConfig::default());
        let actions = tick(&mut s, view(vec![0; 40], 0, 0, 3));
        assert_eq!(actions, vec![ScaleAction::ScaleOut { func: FunctionId(1), count: 1 }]);
        assert!(tick(&mut s, view(vec![0; 40], 0, 0, 0)).is_empty());
    }

    #[test]
    fn training_functions_are_ignored() {
        let mut s = LazyScaler::new(ScalerConfig::default());
        let v = FunctionScaleView {
            kind: FunctionKind::Training { workers: 4, iterations: 10 },
            ..view(vec![100; 40], 1, 0, 0)
        };
        assert!(tick(&mut s, v).is_empty());
    }
}

//! Network-plane adapter (control plane): cold-start weight fetches and
//! pipeline activation transfers as shared-bandwidth flows.
//!
//! With [`SimConfig::network`](crate::SimConfig) set, the cluster owns a
//! [`dilu_net::NetPlane`] plus one [`dilu_net::ModelCache`] per node. A
//! cold start whose model is not cached on the target node becomes a
//! registry *fetch flow* — concurrent storms contend on the shared
//! registry link and slow each other down — and the instance stays
//! `ColdStarting` (with a [`SimTime::MAX`] sentinel `ready_at`) until the
//! flow delivers, when the provision residue takes over. A pipeline stage
//! handoff between GPUs becomes an activation *transfer flow* (NVLink
//! same-node, both ToR uplinks cross-node) and the next stage's work is
//! queued only when the bytes land. Both time models drive the plane
//! through the same [`process_net_phase`](ClusterSim::process_net_phase)
//! at quantum-grid instants — the dense stepper polls it every quantum,
//! the event core wakes on [`SimEvent::NetFlowDone`] at flow finish
//! instants — and polling with nothing due is a strict no-op, so reports
//! stay byte-identical across models and thread counts.

use dilu_models::ModelId;
use dilu_net::{ModelCache, NetPlane, NetworkConfig};
use dilu_sim::{SimDuration, SimTime};

use crate::sim::{ClusterSim, SimEvent};
use crate::{FunctionId, InstanceState, InstanceUid};

/// What a completed network flow means to the control plane.
#[derive(Debug, Clone, Copy)]
pub(crate) enum NetPayload {
    /// A cold-start weight fetch from the registry to an instance's node.
    Fetch {
        uid: InstanceUid,
        func: FunctionId,
        model: ModelId,
        /// Launch instant — the cold start's total delay is measured from
        /// here, and the provision residue runs concurrently with the
        /// fetch (container setup overlaps the transfer).
        launched: SimTime,
    },
    /// A pipeline activation transfer between consecutive stage GPUs.
    Transfer { uid: InstanceUid, batch_id: u64, next_stage: usize, size: u32 },
}

/// The cluster's network-plane state: flow plane + per-node model caches.
pub(crate) struct NetState {
    pub(crate) plane: NetPlane<NetPayload>,
    pub(crate) caches: Vec<ModelCache<ModelId>>,
    pub(crate) cfg: NetworkConfig,
}

impl NetState {
    pub(crate) fn new(nodes: u32, cfg: NetworkConfig, quantum: SimDuration) -> Self {
        NetState {
            plane: NetPlane::new(nodes as usize, &cfg, quantum),
            caches: (0..nodes).map(|_| ModelCache::new(cfg.cache_bytes())).collect(),
            cfg,
        }
    }
}

impl ClusterSim {
    /// The shared network phase: completes every flow due at `now`,
    /// turning finished fetches into promotable cold starts and finished
    /// transfers into next-stage work items. Returns the uids whose
    /// `ready_at` has already passed (the event core promotes them this
    /// wake; the dense stepper's promote scan finds them by itself), plus
    /// the number of flows completed (the profiler's event count).
    pub(crate) fn process_net_phase(&mut self) -> (Vec<InstanceUid>, u64) {
        let now = self.now;
        let due = match self.net.as_mut() {
            Some(net) => net.plane.take_due(now),
            None => return (Vec::new(), 0),
        };
        if due.is_empty() {
            return (Vec::new(), 0);
        }
        let flows_done = due.len() as u64;
        let mut promote = Vec::new();
        for (_, payload) in due {
            match payload {
                NetPayload::Fetch { uid, func, model, launched } => {
                    let Some(inst) = self.instances.get(&uid) else {
                        continue;
                    };
                    let node = inst.gpus[0].node as usize;
                    let provision = {
                        let net = self.net.as_mut().expect("network phase ran");
                        net.caches[node].insert(model, model.profile().param_bytes);
                        net.cfg.provision
                    };
                    if !matches!(inst.state, InstanceState::ColdStarting { .. }) {
                        continue;
                    }
                    // Provisioning overlapped the fetch; whichever ends
                    // later gates readiness.
                    let ready_at = (launched + provision).max(now);
                    let total = ready_at.saturating_since(launched);
                    let fetch = now.saturating_since(launched);
                    if let Some(f) = self.funcs.get_mut(&func) {
                        f.cold_starts.record_fetch(total, fetch);
                    }
                    let inst = self.instances.get_mut(&uid).expect("checked above");
                    inst.state = InstanceState::ColdStarting { ready_at };
                    if ready_at <= now {
                        promote.push(uid);
                    } else if self.event_active {
                        let at = self.grid_ceil(ready_at);
                        self.events.push(at, SimEvent::ColdStartReady(uid));
                    }
                }
                NetPayload::Transfer { uid, batch_id, next_stage, size } => {
                    // The batch's stage index advanced when the transfer
                    // started; the bytes have landed, run the stage.
                    self.push_stage_item(uid, batch_id, next_stage, size);
                }
            }
        }
        if self.event_active {
            self.sync_net_events();
        }
        (promote, flows_done)
    }

    /// Re-arms the event core after a flow-plane membership change: every
    /// active flow's (re-shared) finish instant gets a
    /// [`SimEvent::NetFlowDone`] wake. Stale instants from earlier shares
    /// fire as strict no-ops, so over-pushing is harmless.
    pub(crate) fn sync_net_events(&mut self) {
        if !self.event_active {
            return;
        }
        let Some(net) = self.net.as_ref() else {
            return;
        };
        let now = self.now;
        let finishes: Vec<SimTime> = net.plane.finish_instants().collect();
        for t in finishes {
            self.events.push(t.max(now), SimEvent::NetFlowDone);
        }
    }

    /// Per-function bytes still in flight on cold-start fetch flows — the
    /// controller-visible queue-depth signal (zero without a network).
    pub(crate) fn pending_fetch_bytes(&self) -> std::collections::BTreeMap<FunctionId, u64> {
        let mut by_func = std::collections::BTreeMap::new();
        if let Some(net) = self.net.as_ref() {
            for (_, payload, remaining) in net.plane.pending() {
                if let NetPayload::Fetch { func, .. } = payload {
                    *by_func.entry(*func).or_insert(0) += remaining;
                }
            }
        }
        by_func
    }
}

//! Elasticity execution and observability (control plane).
//!
//! The controller tick is the cluster's decision heartbeat: every
//! [`SimConfig::tick`](crate::SimConfig) the control plane samples metrics,
//! snapshots the cluster for the audit hook, builds per-function
//! [`FunctionScaleView`]s (including vertical headroom derived from
//! per-GPU guaranteed-SM slack), and executes the
//! [`ElasticityController`](crate::ElasticityController)'s actions —
//! horizontal scale-out/scale-in through the
//! [`lifecycle`](crate::lifecycle) module, and vertical
//! [`ScaleAction::ResizeQuota`] decisions queued here behind the
//! configured apply latency, then fanned out to every live slice on the
//! node plane. Identical on both time models (the tick runs inside the
//! shared controller phase), which is what keeps audit content and
//! reports byte-identical across dense, serial-event, and parallel-event
//! execution.

use std::collections::BTreeMap;

use dilu_gpu::{SmRate, TaskClass};
use dilu_metrics::{FragmentationSnapshot, GpuUsageSample};
use dilu_sim::{SimDuration, SimTime};

use crate::audit::{AuditHook, AuditSnapshot, FunctionAudit, GpuAudit};
use crate::report::TimelinePoint;
use crate::sim::{ClusterSim, SimEvent};
use crate::traits::{
    ClusterView, FunctionScaleView, GpuView, QuotaView, ResidentInfo, ScaleAction,
};
use crate::{FunctionId, GpuAddr, InstanceState};

/// A decided-but-not-yet-applied vertical resize.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PendingResize {
    pub(crate) due: SimTime,
    pub(crate) func: FunctionId,
    pub(crate) request: SmRate,
    pub(crate) limit: SmRate,
}

impl ClusterSim {
    /// Registers an observer invoked with a fresh [`AuditSnapshot`] at
    /// every controller tick, before the elasticity controller acts.
    ///
    /// The hook cadence and content are identical on both time models and
    /// at every `[sim] threads` setting (it runs inside the shared
    /// controller phase, on the simulation thread), so an invariant
    /// checker attached here cannot desynchronise the byte-identical
    /// reports.
    /// Replaces any previously registered hook.
    pub fn set_audit_hook(&mut self, hook: AuditHook) {
        self.audit_hook = Some(hook);
    }

    /// Takes a point-in-time [`AuditSnapshot`] of quota, memory, and
    /// request accounting — the state the fuzzer's capacity and
    /// conservation oracles check.
    #[must_use]
    pub fn audit(&self) -> AuditSnapshot {
        self.audit_with(&self.cluster_view())
    }

    /// [`audit`](Self::audit) over an already-built view — the controller
    /// tick builds one [`ClusterView`] and uses it for both the audit hook
    /// and the controller itself.
    fn audit_with(&self, view: &ClusterView) -> AuditSnapshot {
        let gpus = view
            .gpus
            .iter()
            .map(|g| GpuAudit {
                addr: g.addr,
                sum_request: g.sum_requests().as_fraction(),
                sum_limit: g.sum_limits().as_fraction(),
                mem_reserved: g.mem_reserved,
                mem_capacity: g.mem_capacity,
                residents: g.residents.len() as u32,
            })
            .collect();
        let functions = self
            .funcs
            .iter()
            .map(|(&func, f)| {
                let mut queued = 0u64;
                let mut inflight = 0u64;
                let mut ready = 0u32;
                let mut starting = 0u32;
                let mut draining = 0u32;
                for uid in &f.instance_ids {
                    let Some(inst) = self.instances.get(uid) else {
                        continue;
                    };
                    queued += inst.pending.len() as u64;
                    inflight += inst.inflight.iter().map(|b| b.requests.len() as u64).sum::<u64>();
                    match inst.state {
                        InstanceState::Running => ready += 1,
                        InstanceState::ColdStarting { .. } => starting += 1,
                        InstanceState::Draining => draining += 1,
                    }
                }
                FunctionAudit {
                    func,
                    inference: f.spec.kind.is_inference(),
                    arrived: f.arrived,
                    completed: f.completed,
                    backlog: f.backlog.len() as u64,
                    queued,
                    inflight,
                    pending_arrivals: f.arrivals.len() as u64,
                    ready_instances: ready,
                    starting_instances: starting,
                    draining_instances: draining,
                    cold_starts: f.cold_starts.count(),
                    resize_grows: f.resizes.grows(),
                    resize_shrinks: f.resizes.shrinks(),
                }
            })
            .collect();
        let network = self.net.as_ref().map(|net| crate::audit::NetAudit {
            requested_bytes: net.plane.requested_bytes(),
            delivered_bytes: net.plane.delivered_bytes(),
            inflight_bytes: net.plane.inflight_bytes(),
            active_flows: net.plane.active_flows() as u64,
        });
        AuditSnapshot { now: self.now, gpus, functions, network }
    }

    /// Queues a vertical resize to apply after the configured latency.
    ///
    /// A re-request while one is still in flight retargets the pending
    /// resize but keeps its original due time — controllers re-emit their
    /// decision every tick until the spec reflects it, and resetting the
    /// clock each time would starve the apply whenever
    /// `resize_latency >= tick`.
    pub(crate) fn request_resize(&mut self, func: FunctionId, request: SmRate, limit: SmRate) {
        let Some(f) = self.funcs.get(&func) else {
            return;
        };
        let request = request.min(SmRate::FULL);
        let limit = limit.max(request);
        if let Some(pending) = self.pending_resizes.iter_mut().find(|r| r.func == func) {
            pending.request = request;
            pending.limit = limit;
            return;
        }
        if f.spec.quotas.request == request && f.spec.quotas.limit == limit {
            return;
        }
        let due = self.now + self.config.resize_latency;
        self.pending_resizes.push(PendingResize { due, func, request, limit });
        if self.event_active {
            // Never earlier than the next quantum: this wake's apply phase
            // has already run, and the dense stepper would first see the
            // pending resize at the next quantum start (a zero apply
            // latency must not re-wake — and re-step — this instant).
            let at = self.grid_ceil(due).max(self.now + self.config.quantum);
            self.events.push(at, SimEvent::ResizeApply);
        }
    }

    /// Applies every resize whose latency has elapsed: the function's spec
    /// (future launches, capacity) and every live slice on the GPUs.
    pub(crate) fn apply_due_resizes(&mut self) {
        let now = self.now;
        if self.pending_resizes.iter().all(|r| r.due > now) {
            return;
        }
        let mut due = Vec::new();
        self.pending_resizes.retain(|r| {
            if r.due <= now {
                due.push(*r);
                false
            } else {
                true
            }
        });
        for r in due {
            let Some(f) = self.funcs.get_mut(&r.func) else {
                continue;
            };
            let old = f.spec.quotas;
            if r.request > old.request || (r.request == old.request && r.limit > old.limit) {
                f.resizes.record_grow();
            } else {
                f.resizes.record_shrink();
            }
            f.spec.quotas.request = r.request;
            f.spec.quotas.limit = r.limit;
            let ids = f.instance_ids.clone();
            for uid in ids {
                let Some(inst) = self.instances.get(&uid) else {
                    continue;
                };
                let gpus: Vec<(dilu_gpu::InstanceId, GpuAddr)> = inst
                    .gpus
                    .iter()
                    .enumerate()
                    .map(|(stage, &gpu)| (inst.slot_id(stage), gpu))
                    .collect();
                for (slot_id, gpu) in gpus {
                    let g = self.nodes.slot_mut(gpu);
                    if g.engine.resize(slot_id, r.request, r.limit).is_ok() {
                        g.policy.notify_resize(slot_id, r.request, r.limit);
                    }
                }
            }
        }
    }

    pub(crate) fn cluster_view(&self) -> ClusterView {
        let mut view = ClusterView { gpus: Vec::new() };
        self.fill_cluster_view(&mut view);
        view
    }

    /// Rebuilds the placement/controller view in place. The GPU grid is
    /// dense (`node * gpus_per_node + gpu`), so each tick reuses the same
    /// `GpuView` slots — and crucially their `residents` vectors — instead
    /// of reconstructing a fresh map of the whole cluster.
    pub(crate) fn fill_cluster_view(&self, view: &mut ClusterView) {
        let per = self.spec.gpus_per_node;
        view.gpus.truncate(self.spec.total_gpus() as usize);
        for (i, addr) in self.spec.gpu_addrs().enumerate() {
            match view.gpus.get_mut(i) {
                Some(v) => {
                    v.addr = addr;
                    v.mem_capacity = self.spec.gpu_mem_bytes;
                    v.mem_reserved = 0;
                    v.residents.clear();
                }
                None => view.gpus.push(GpuView {
                    addr,
                    mem_capacity: self.spec.gpu_mem_bytes,
                    mem_reserved: 0,
                    residents: Vec::new(),
                }),
            }
        }
        for inst in self.instances.values() {
            let Some(f) = self.funcs.get(&inst.func) else {
                continue;
            };
            let class = if f.spec.kind.is_inference() {
                TaskClass::SloSensitive
            } else {
                TaskClass::BestEffort
            };
            let per_gpu_mem = f.spec.quotas.mem_bytes;
            for gpu in &inst.gpus {
                let idx = (gpu.node * per + gpu.gpu) as usize;
                // The address check rejects off-grid addresses that would
                // otherwise alias a valid dense index, matching the old
                // map's behaviour of skipping unknown GPUs.
                let Some(v) = view.gpus.get_mut(idx).filter(|v| v.addr == *gpu) else {
                    continue;
                };
                v.mem_reserved += per_gpu_mem;
                v.residents.push(ResidentInfo {
                    func: inst.func,
                    class,
                    request: f.spec.quotas.request,
                    limit: f.spec.quotas.limit,
                    mem_bytes: per_gpu_mem,
                });
            }
        }
    }

    /// Per-GPU guaranteed-SM slack, and per function the tightest slack
    /// across the GPUs hosting its (non-draining) instances.
    ///
    /// A resize re-quotas *every* slice of the function, so a GPU hosting
    /// `n` of them absorbs `n×` the per-slice growth — its slack is divided
    /// by the slice count before taking the minimum.
    fn vertical_headroom(&self, cluster: &ClusterView) -> BTreeMap<FunctionId, SmRate> {
        let slack: BTreeMap<GpuAddr, SmRate> =
            cluster.gpus.iter().map(|g| (g.addr, g.request_slack())).collect();
        let mut slices: BTreeMap<(FunctionId, GpuAddr), u32> = BTreeMap::new();
        for inst in self.instances.values() {
            if matches!(inst.state, InstanceState::Draining) {
                continue;
            }
            for gpu in &inst.gpus {
                *slices.entry((inst.func, *gpu)).or_insert(0) += 1;
            }
        }
        let mut headroom: BTreeMap<FunctionId, SmRate> = BTreeMap::new();
        for (&(func, gpu), &count) in &slices {
            let per_slice = slack
                .get(&gpu)
                .copied()
                .unwrap_or(SmRate::ZERO)
                .scale(1.0 / f64::from(count.max(1)));
            headroom.entry(func).and_modify(|h| *h = h.min(per_slice)).or_insert(per_slice);
        }
        headroom
    }

    pub(crate) fn run_controller(&mut self) {
        let mut cluster =
            std::mem::replace(&mut self.view_scratch, ClusterView { gpus: Vec::new() });
        self.fill_cluster_view(&mut cluster);
        if self.audit_hook.is_some() {
            let snapshot = self.audit_with(&cluster);
            if let Some(hook) = self.audit_hook.as_mut() {
                hook(&snapshot);
            }
        }
        let now = self.now;
        let headroom = self.vertical_headroom(&cluster);
        let fetch_bytes = self.pending_fetch_bytes();
        let mut views = Vec::new();
        let instances = &self.instances;
        for (id, f) in self.funcs.iter_mut() {
            f.window.roll_to(now);
            if !f.spec.kind.is_inference() {
                continue;
            }
            let mut ready = 0u32;
            let mut starting = 0u32;
            let mut backlog = f.backlog.len();
            let mut max_idle = SimDuration::ZERO;
            // Only this function's instances (the per-func index) — a
            // cluster-wide scan here is O(functions × instances) per tick,
            // which dominates everything at production fleet scale.
            for uid in &f.instance_ids {
                let Some(inst) = instances.get(uid) else {
                    continue;
                };
                match inst.state {
                    InstanceState::Running => {
                        ready += 1;
                        backlog += inst.load();
                        if inst.load() == 0 {
                            max_idle = max_idle.max(now.saturating_since(inst.last_active));
                        }
                    }
                    InstanceState::ColdStarting { .. } => {
                        starting += 1;
                        backlog += inst.load();
                    }
                    InstanceState::Draining => {}
                }
            }
            views.push(FunctionScaleView {
                func: *id,
                kind: f.spec.kind,
                rps_window: f.window.samples().to_vec(),
                ready_instances: ready,
                starting_instances: starting,
                backlog,
                capacity_rps: f.spec.capacity_rps(),
                max_idle,
                pending_fetch_bytes: fetch_bytes.get(id).copied().unwrap_or(0),
                quota: QuotaView {
                    request: f.spec.quotas.request,
                    limit: f.spec.quotas.limit,
                    headroom: headroom.get(id).copied().unwrap_or(SmRate::ZERO),
                    capacity_rps_at_limit: f.spec.capacity_rps_at(f.spec.quotas.limit),
                },
            });
        }
        let actions = self.controller.on_tick(now, &views, &cluster);
        // Hand the view back before acting: launch_instance re-fills it
        // for placement, so the buffers keep circulating.
        self.view_scratch = cluster;
        for action in actions {
            match action {
                ScaleAction::ScaleOut { func, count } => {
                    for _ in 0..count {
                        let _ = self.launch_instance(func, false);
                    }
                }
                ScaleAction::ScaleIn { func, count } => {
                    for _ in 0..count {
                        // Drain the most idle ready instance (scanning only
                        // this function's instances via the per-func index).
                        let victim = self
                            .funcs
                            .get(&func)
                            .map(|f| f.instance_ids.as_slice())
                            .unwrap_or(&[])
                            .iter()
                            .filter_map(|uid| self.instances.get(uid))
                            .filter(|i| i.state.is_ready())
                            .min_by_key(|i| {
                                (
                                    std::cmp::Reverse(
                                        now.saturating_since(i.last_active).as_micros(),
                                    ),
                                    i.uid,
                                )
                            })
                            .map(|i| i.uid);
                        if let Some(uid) = victim {
                            if let Some(inst) = self.instances.get_mut(&uid) {
                                inst.state = InstanceState::Draining;
                                self.draining_count += 1;
                                if self.event_active {
                                    // Remaining pending work may still
                                    // dispatch while draining.
                                    self.dirty.push(uid);
                                }
                            }
                        }
                    }
                }
                ScaleAction::ResizeQuota { func, request, limit } => {
                    self.request_resize(func, request, limit);
                }
            }
        }
    }

    pub(crate) fn sample_metrics(&mut self) {
        let sec = self.now.as_secs();
        if self.last_sampled_sec == Some(sec) {
            return;
        }
        self.last_sampled_sec = Some(sec);
        // Quanta covered by this sampling window. Skipped (idle) quanta
        // contribute exactly 0 to `used_accum`, so dividing by the window
        // size gives the same average whether or not they were stepped —
        // the dense stepper and the event core agree bit-for-bit.
        let window_quanta = self.sample_clock.window_quanta(self.now, self.config.quantum);
        let gpu_count = self.spec.total_gpus() as usize;
        let mut samples = Vec::with_capacity(gpu_count);
        let mut occupied = 0u32;
        for slot in self.nodes.slots_mut() {
            let avg_used = slot.used_accum / window_quanta as f64;
            slot.used_accum = 0.0;
            let is_occupied = slot.engine.resident_count() > 0;
            if is_occupied {
                occupied += 1;
            }
            samples.push(GpuUsageSample {
                sm_capacity: 100.0,
                sm_used: avg_used * 100.0,
                mem_capacity: slot.engine.mem_capacity(),
                mem_used: slot.engine.mem_used(),
                occupied: is_occupied,
            });
        }
        debug_assert_eq!(
            occupied,
            self.nodes.occupied(),
            "node-plane occupancy counter drifted from engine state"
        );
        self.fragmentation.push(FragmentationSnapshot::from_samples(&samples));
        self.occupied_series.push((sec, occupied));
        self.peak_gpus = self.peak_gpus.max(occupied);
        self.gpu_seconds += f64::from(occupied) * self.config.tick.as_secs_f64();
        let instance_gpus: usize = self.instances.values().map(|i| i.gpus.len()).sum();
        self.instance_gpu_seconds += instance_gpus as f64 * self.config.tick.as_secs_f64();
        self.total_kernel_series.push((sec, self.total_blocks_sec));
        self.total_blocks_sec = 0;
        // Per-function series cost O(functions × seconds) report memory;
        // production-scale scenarios turn them off (the per-second counters
        // still reset so aggregates stay exact either way).
        let record_series = self.config.function_series;
        let instances = &self.instances;
        for f in self.funcs.values_mut() {
            if record_series {
                f.kernel_series.push((sec, f.sec_blocks));
            }
            f.sec_blocks = 0;
            if f.spec.kind.is_inference() && record_series {
                let ready = f
                    .instance_ids
                    .iter()
                    .filter(|uid| instances.get(uid).is_some_and(|i| i.state.is_ready()))
                    .count() as u32;
                f.timeline.push(TimelinePoint {
                    sec,
                    arrivals: f.sec_arrivals,
                    completions: f.sec_completions,
                    violations: f.sec_violations,
                    ready_instances: ready,
                });
            }
            f.sec_arrivals = 0;
            f.sec_completions = 0;
            f.sec_violations = 0;
        }
    }
}

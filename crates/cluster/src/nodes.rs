//! The node plane: per-node GPU runtimes and their parallel stepper.
//!
//! [`ClusterSim`](crate::ClusterSim) is layered into a **control plane**
//! (arrival ingest, routing, placement, elasticity, reporting — see
//! `dispatch`, `lifecycle`, `elasticity`) and this **node plane**: each
//! worker node's GPUs live in a [`NodeRuntime`] owning one [`GpuSlot`]
//! (engine + share policy + sampling accumulators) per card, and the
//! [`NodePlane`] owns all runtimes plus the cluster-wide occupancy
//! counter.
//!
//! GPU stepping is embarrassingly parallel *between* the cluster-level
//! phases: within one quantum no two GPUs share state (grants are local to
//! a card; completions are merged afterwards by the control plane). The
//! plane exploits that with a hand-rolled scoped-thread pool
//! ([`PoolShared`] + [`worker_loop`], driven through [`StepPool`]): busy
//! node runtimes are *moved* to workers through mailboxes each wake,
//! stepped, and moved back — no `unsafe`, no shared mutable state, no new
//! dependencies. Outcomes are merged in ascending node order, so the
//! merged completion stream is byte-identical to serial stepping no matter
//! how many threads ran (`[sim] threads`).

use std::collections::BTreeSet;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::thread::Thread;

use dilu_gpu::{Completion, GpuEngine, GpuError, InstanceId, SlotConfig, StepOutcome};
use dilu_sim::{SimDuration, SimTime};

use crate::{ClusterSpec, GpuAddr, PolicyFactory};

// The idle-replay cap is the share policy's own convergence bound
// (`SharePolicy::idle_history_cycles`): policy state is a fixed point once
// every kernel-rate window has filled with zeros and every multiplicative
// grant ramp has hit its ceiling, so replaying more trailing idle cycles
// than that cannot change any subsequent grant. Each `GpuSlot` asks its
// policy rather than assuming a constant — a policy with a longer memory
// (wider window, shallower ramp) raises its own cap instead of silently
// breaking the event-driven ≡ dense equivalence.

/// One GPU of the node plane: the engine, its share policy, and the
/// event-core bookkeeping that keeps skipped quanta invisible.
pub(crate) struct GpuSlot {
    pub(crate) engine: GpuEngine,
    pub(crate) policy: Box<dyn dilu_gpu::SharePolicy>,
    /// Σ effective SM fraction over the quanta stepped since the last
    /// metrics sample (skipped quanta contribute exactly 0).
    pub(crate) used_accum: f64,
    /// Start of the last stepped quantum; `None` before the first step.
    /// The event core uses the gap to this instant to replay skipped idle
    /// cycles into the share policy.
    pub(crate) last_step: Option<SimTime>,
}

impl GpuSlot {
    /// Advances this GPU by the quantum starting at `now`, first replaying
    /// any skipped idle cycles into its share policy (capped by the
    /// policy's own [`idle_history_cycles`] bound) so derived policy state
    /// evolves as under dense stepping.
    ///
    /// [`idle_history_cycles`]: dilu_gpu::SharePolicy::idle_history_cycles
    pub(crate) fn advance(&mut self, now: SimTime, quantum: SimDuration, out: &mut StepOutcome) {
        let gap_cycles = match self.last_step {
            Some(last) => {
                let expected = last + quantum;
                if now > expected {
                    (now - expected).as_micros() / quantum.as_micros()
                } else {
                    0
                }
            }
            None => now.as_micros() / quantum.as_micros(),
        };
        if gap_cycles > 0 {
            let replay = gap_cycles.min(self.policy.idle_history_cycles().max(1));
            let from = now - quantum * replay;
            self.engine.idle_fastforward(from, replay, self.policy.as_mut());
        }
        self.last_step = Some(now);
        self.engine.step_into(now, self.policy.as_mut(), out);
    }

    /// Catches this GPU's share policy up to the current wake, before new
    /// work is queued on it (the idle→busy transition), so the replayed
    /// cycles present the historically accurate workless views.
    ///
    /// `post_step` says whether this wake's GPU phase has already run: a
    /// push from the completion handlers lands *after* it (the dense
    /// stepper would have idle-stepped this GPU at `now` too, so the
    /// replay includes `now`), while a push from the dispatch or
    /// promotion phases lands *before* it (the quantum at `now` is about
    /// to be stepped normally and must not be replayed).
    pub(crate) fn catch_up(&mut self, now: SimTime, quantum: SimDuration, post_step: bool) {
        let expected = match self.last_step {
            Some(last) => last + quantum,
            None => SimTime::ZERO,
        };
        let through = if post_step {
            now
        } else if now.as_micros() >= quantum.as_micros() {
            now - quantum
        } else {
            return;
        };
        if through < expected {
            return;
        }
        let gap_cycles = (through - expected).as_micros() / quantum.as_micros() + 1;
        let replay = gap_cycles.min(self.policy.idle_history_cycles().max(1));
        let from = through - quantum * (replay - 1);
        self.engine.idle_fastforward(from, replay, self.policy.as_mut());
        self.last_step = Some(through);
    }
}

/// One worker node's GPU runtime: its [`GpuSlot`]s, the set of local GPUs
/// currently holding work, and reusable per-node step outcome buffers.
///
/// A `NodeRuntime` is self-contained — stepping touches only its own
/// slots — which is what lets the plane move it to a worker thread by
/// value and merge the outcomes deterministically afterwards.
#[derive(Default)]
pub(crate) struct NodeRuntime {
    /// The node's index in [`NodePlane::nodes`] (restores checked-out
    /// runtimes to their slot after a parallel step).
    id: u32,
    slots: Vec<GpuSlot>,
    /// Local GPU indices holding queued or active work; only these are
    /// stepped by the event core.
    busy: BTreeSet<u32>,
    /// Completions from the last step, in local GPU order.
    completions: Vec<Completion>,
    /// Kernel blocks issued per engine slot during the last step.
    issued: Vec<(InstanceId, u64)>,
    /// Reused engine step outcome (hot-loop allocation avoidance).
    scratch: StepOutcome,
    /// Reused drained-GPU scratch for the busy-set sweep.
    drained: Vec<u32>,
}

impl NodeRuntime {
    /// Steps exactly the local GPUs holding work, dropping drained ones
    /// from the busy set. Outcomes land in the node buffers for the plane
    /// to merge in node order.
    fn step_busy(&mut self, now: SimTime, quantum: SimDuration) {
        let mut out = std::mem::take(&mut self.scratch);
        self.drained.clear();
        for &local in &self.busy {
            let slot = &mut self.slots[local as usize];
            slot.advance(now, quantum, &mut out);
            slot.used_accum += out.total_used.as_fraction();
            self.completions.append(&mut out.completions);
            self.issued.append(&mut out.blocks_issued);
            if slot.engine.next_event_at(now).is_none() {
                // Drained: the GPU reports no next interesting instant, so
                // it simply stops being scheduled.
                self.drained.push(local);
            }
        }
        for &local in &self.drained {
            self.busy.remove(&local);
        }
        self.scratch = out;
    }

    /// The dense phase: every local GPU, busy or not.
    fn step_all(&mut self, now: SimTime, quantum: SimDuration) {
        let mut out = std::mem::take(&mut self.scratch);
        for slot in &mut self.slots {
            slot.advance(now, quantum, &mut out);
            slot.used_accum += out.total_used.as_fraction();
            self.completions.append(&mut out.completions);
            self.issued.append(&mut out.blocks_issued);
        }
        self.scratch = out;
    }

    fn step(&mut self, job: &JobKind, now: SimTime, quantum: SimDuration) {
        match job {
            JobKind::BusyOnly => self.step_busy(now, quantum),
            JobKind::AllSlots => self.step_all(now, quantum),
        }
    }
}

/// How a step job treats a node's GPUs.
#[derive(Clone, Copy)]
pub(crate) enum JobKind {
    /// Event core: step only the GPUs in the node's busy set.
    BusyOnly,
    /// Dense stepper: walk every GPU of the node.
    AllSlots,
}

/// All node runtimes plus cluster-wide occupancy accounting.
pub(crate) struct NodePlane {
    nodes: Vec<NodeRuntime>,
    /// GPUs with at least one admitted resident (cold-starting instances
    /// reserve their slots at launch, so their GPUs count as occupied).
    /// Maintained at [`admit`](Self::admit)/[`evict`](Self::evict) so
    /// [`occupied`](Self::occupied) is O(1) instead of a cluster scan.
    occupied: u32,
    /// Nodes whose busy set is non-empty (the event core steps only
    /// these).
    busy_nodes: BTreeSet<u32>,
    /// Reused per-worker checkout buffers for parallel steps.
    share_bufs: Vec<Vec<NodeRuntime>>,
    /// Reused node-id scratch for the step loop (the hot path must stay
    /// allocation-free: one wake per quantum at macro scale).
    ids_buf: Vec<u32>,
}

/// Minimum nodes per share (worker or the calling thread) before a step
/// fans out: below this, the per-wake mailbox handoff costs more than the
/// stepping it offloads, on any core count. The pool engages with however
/// many workers the busy-node count justifies (`ids / MIN_NODES_PER_SHARE`
/// shares), so a lightly loaded wake uses one helper and a burst uses them
/// all. Results are identical on every path.
pub(crate) const MIN_NODES_PER_SHARE: usize = 2;

impl NodePlane {
    pub(crate) fn new(
        spec: &ClusterSpec,
        quantum: SimDuration,
        policy_factory: &dyn PolicyFactory,
    ) -> Self {
        let nodes = (0..spec.nodes)
            .map(|id| NodeRuntime {
                id,
                slots: (0..spec.gpus_per_node)
                    .map(|_| GpuSlot {
                        engine: GpuEngine::with_quantum(spec.gpu_mem_bytes, quantum),
                        policy: policy_factory.make(),
                        used_accum: 0.0,
                        last_step: None,
                    })
                    .collect(),
                ..NodeRuntime::default()
            })
            .collect();
        NodePlane {
            nodes,
            occupied: 0,
            busy_nodes: BTreeSet::new(),
            share_bufs: Vec::new(),
            ids_buf: Vec::new(),
        }
    }

    /// Number of GPUs hosting at least one admitted instance, O(1).
    pub(crate) fn occupied(&self) -> u32 {
        self.occupied
    }

    pub(crate) fn node_count(&self) -> usize {
        self.nodes.len()
    }

    pub(crate) fn slot_mut(&mut self, addr: GpuAddr) -> &mut GpuSlot {
        &mut self.nodes[addr.node as usize].slots[addr.gpu as usize]
    }

    /// All slots, mutable, in node-major (dense `gpu_addrs()`) order.
    pub(crate) fn slots_mut(&mut self) -> impl Iterator<Item = &mut GpuSlot> {
        self.nodes.iter_mut().flat_map(|n| n.slots.iter_mut())
    }

    /// Admits an engine slot on `addr`, maintaining the occupancy counter.
    pub(crate) fn admit(
        &mut self,
        addr: GpuAddr,
        id: InstanceId,
        config: SlotConfig,
    ) -> Result<(), GpuError> {
        let slot = self.slot_mut(addr);
        let was_empty = slot.engine.resident_count() == 0;
        slot.engine.admit(id, config)?;
        if was_empty {
            self.occupied += 1;
        }
        Ok(())
    }

    /// Evicts an engine slot from `addr`, maintaining the occupancy
    /// counter.
    pub(crate) fn evict(&mut self, addr: GpuAddr, id: InstanceId) {
        let slot = self.slot_mut(addr);
        if slot.engine.evict(id).is_ok() && slot.engine.resident_count() == 0 {
            self.occupied = self.occupied.saturating_sub(1);
        }
    }

    /// Marks a GPU as holding work; returns `true` when it was idle before
    /// (the caller then replays the idle gap into its policy).
    pub(crate) fn mark_busy(&mut self, addr: GpuAddr) -> bool {
        let node = &mut self.nodes[addr.node as usize];
        let newly = node.busy.insert(addr.gpu);
        if newly {
            self.busy_nodes.insert(addr.node);
        }
        newly
    }

    /// `true` while any GPU holds queued or active work.
    pub(crate) fn has_busy(&self) -> bool {
        !self.busy_nodes.is_empty()
    }

    /// Rebuilds the busy sets from engine state (event-core entry: in
    /// between `run_until` calls deployments need no busy bookkeeping).
    pub(crate) fn rebuild_busy(&mut self) {
        self.busy_nodes.clear();
        for node in &mut self.nodes {
            node.busy.clear();
            for (local, slot) in node.slots.iter().enumerate() {
                if !slot.engine.is_idle() {
                    node.busy.insert(local as u32);
                }
            }
            if !node.busy.is_empty() {
                self.busy_nodes.insert(node.id);
            }
        }
    }

    /// Steps the plane for the quantum starting at `now` — busy nodes only
    /// (event core) or every node (dense stepper) — using up to
    /// `pool`-many extra worker threads when one is attached, and merges
    /// per-node outcomes into `completions`/`issued` **in ascending node
    /// order**, making the merged streams byte-identical to a serial walk
    /// regardless of thread count.
    pub(crate) fn step(
        &mut self,
        kind: JobKind,
        now: SimTime,
        quantum: SimDuration,
        pool: Option<&StepPool<'_>>,
        completions: &mut Vec<Completion>,
        issued: &mut Vec<(InstanceId, u64)>,
    ) {
        let mut ids = std::mem::take(&mut self.ids_buf);
        ids.clear();
        match kind {
            JobKind::BusyOnly => ids.extend(self.busy_nodes.iter().copied()),
            JobKind::AllSlots => ids.extend(0..self.nodes.len() as u32),
        }
        if ids.is_empty() {
            self.ids_buf = ids;
            return;
        }
        match pool {
            Some(pool) if ids.len() >= 2 * MIN_NODES_PER_SHARE => {
                self.step_parallel(kind, &ids, now, quantum, pool);
            }
            _ => {
                for &id in &ids {
                    self.nodes[id as usize].step(&kind, now, quantum);
                }
            }
        }
        for &id in &ids {
            let node = &mut self.nodes[id as usize];
            completions.append(&mut node.completions);
            issued.append(&mut node.issued);
            if matches!(kind, JobKind::BusyOnly) && node.busy.is_empty() {
                self.busy_nodes.remove(&id);
            }
        }
        self.ids_buf = ids;
    }

    /// Fans one step out over the pool: node runtimes are *moved* to the
    /// workers through their mailboxes (disjoint ownership, no locking
    /// during the step), the calling thread works a share of its own, and
    /// every runtime is restored to its slot before the merge. Which
    /// thread steps which node is irrelevant to the result — nodes are
    /// independent within a quantum and the merge order is fixed.
    fn step_parallel(
        &mut self,
        kind: JobKind,
        ids: &[u32],
        now: SimTime,
        quantum: SimDuration,
        pool: &StepPool<'_>,
    ) {
        // Engage only as many shares as the node count justifies: every
        // share must be worth its handoff (see [`MIN_NODES_PER_SHARE`]).
        let shares = (pool.workers() + 1).min(ids.len() / MIN_NODES_PER_SHARE).max(1);
        let workers = shares - 1;
        self.share_bufs.resize_with(pool.workers(), Vec::new);
        // Contiguous split; the remainder lands on the main thread's share
        // so workers start on full chunks first.
        let chunk = ids.len() / shares;
        for w in 0..workers {
            let mut batch = std::mem::take(&mut self.share_bufs[w]);
            for &id in &ids[w * chunk..(w + 1) * chunk] {
                batch.push(std::mem::take(&mut self.nodes[id as usize]));
            }
            pool.dispatch(w, Job { nodes: batch, kind, now, quantum });
        }
        for &id in &ids[workers * chunk..] {
            self.nodes[id as usize].step(&kind, now, quantum);
        }
        for w in 0..workers {
            let mut job = pool.collect(w);
            for node in job.nodes.drain(..) {
                let id = node.id as usize;
                self.nodes[id] = node;
            }
            self.share_bufs[w] = job.nodes;
        }
    }
}

/// One parcel of node stepping handed to a pool worker.
pub(crate) struct Job {
    nodes: Vec<NodeRuntime>,
    kind: JobKind,
    now: SimTime,
    quantum: SimDuration,
}

/// A worker mailbox: the main thread deposits a [`Job`] and bumps
/// `epoch`; the worker steps it, deposits it back, and echoes the epoch
/// into `done`.
struct Mailbox {
    job: Mutex<Option<Job>>,
    epoch: AtomicU64,
    done: AtomicU64,
    /// The worker's handle, registered at startup, so the main thread can
    /// unpark it out of its idle wait.
    worker: Mutex<Option<Thread>>,
}

/// State shared between the simulation thread and its step workers for
/// the duration of one `run_until` call. Lives on the caller's stack;
/// workers borrow it through [`std::thread::scope`].
pub(crate) struct PoolShared {
    mail: Vec<Mailbox>,
    shutdown: AtomicBool,
    /// Set by a worker whose step panicked; the main thread re-raises.
    poisoned: AtomicBool,
    /// The simulation thread, for workers to unpark after finishing.
    main: Thread,
}

impl PoolShared {
    pub(crate) fn new(workers: usize) -> Self {
        PoolShared {
            mail: (0..workers)
                .map(|_| Mailbox {
                    job: Mutex::new(None),
                    epoch: AtomicU64::new(0),
                    done: AtomicU64::new(0),
                    worker: Mutex::new(None),
                })
                .collect(),
            shutdown: AtomicBool::new(false),
            poisoned: AtomicBool::new(false),
            main: std::thread::current(),
        }
    }

    /// Releases every worker from its wait loop so the scope can join.
    pub(crate) fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        for mb in &self.mail {
            if let Some(thread) = mb.worker.lock().expect("mailbox lock").as_ref() {
                thread.unpark();
            }
        }
    }
}

/// Shuts the pool down when dropped — including on unwind, so the
/// enclosing [`std::thread::scope`] can always join its workers. Construct
/// it *before* spawning the workers: a panic mid-spawn (or anywhere in the
/// run) must still release the already-parked ones.
pub(crate) struct PoolGuard<'a>(pub(crate) &'a PoolShared);

impl Drop for PoolGuard<'_> {
    fn drop(&mut self) {
        self.0.shutdown();
    }
}

/// Bounded-spin wait: a few busy spins for the common fast handoff, a few
/// yields, then park until unparked. Spurious unparks re-check `ready`.
fn wait_until(ready: impl Fn() -> bool) {
    let mut spins = 0u32;
    while !ready() {
        spins += 1;
        if spins < 128 {
            std::hint::spin_loop();
        } else if spins < 160 {
            std::thread::yield_now();
        } else {
            std::thread::park();
        }
    }
}

/// The body of one pool worker thread: waits for its mailbox epoch to
/// advance, steps the deposited nodes, hands them back, and signals done.
/// Returns when [`PoolShared::shutdown`] fires.
pub(crate) fn worker_loop(shared: &PoolShared, index: usize) {
    let mb = &shared.mail[index];
    *mb.worker.lock().expect("mailbox lock") = Some(std::thread::current());
    let mut seen = 0u64;
    loop {
        wait_until(|| {
            mb.epoch.load(Ordering::Acquire) != seen || shared.shutdown.load(Ordering::Acquire)
        });
        let epoch = mb.epoch.load(Ordering::Acquire);
        if epoch == seen {
            if shared.shutdown.load(Ordering::Acquire) {
                return;
            }
            continue;
        }
        seen = epoch;
        let mut job = mb.job.lock().expect("mailbox lock").take();
        if let Some(job) = job.as_mut() {
            // A panicking step must not strand the main thread in its
            // collect wait: flag it, finish the handshake, re-raise there.
            let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
                for node in &mut job.nodes {
                    node.step(&job.kind, job.now, job.quantum);
                }
            }));
            if outcome.is_err() {
                shared.poisoned.store(true, Ordering::Release);
            }
        }
        *mb.job.lock().expect("mailbox lock") = job;
        mb.done.store(epoch, Ordering::Release);
        shared.main.unpark();
    }
}

/// The simulation thread's handle on a running worker set.
pub(crate) struct StepPool<'a> {
    shared: &'a PoolShared,
}

impl<'a> StepPool<'a> {
    pub(crate) fn new(shared: &'a PoolShared) -> Self {
        StepPool { shared }
    }

    fn workers(&self) -> usize {
        self.shared.mail.len()
    }

    fn dispatch(&self, index: usize, job: Job) {
        let mb = &self.shared.mail[index];
        *mb.job.lock().expect("mailbox lock") = Some(job);
        let epoch = mb.epoch.load(Ordering::Relaxed) + 1;
        mb.epoch.store(epoch, Ordering::Release);
        if let Some(thread) = mb.worker.lock().expect("mailbox lock").as_ref() {
            thread.unpark();
        }
    }

    fn collect(&self, index: usize) -> Job {
        let mb = &self.shared.mail[index];
        let target = mb.epoch.load(Ordering::Relaxed);
        wait_until(|| mb.done.load(Ordering::Acquire) == target);
        if self.shared.poisoned.load(Ordering::Acquire) {
            panic!("a node-plane step worker panicked");
        }
        mb.job.lock().expect("mailbox lock").take().expect("worker returned the job")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dilu_gpu::policies::FairSharePolicy;
    use dilu_gpu::{SmRate, TaskClass, WorkItem, GB};

    fn plane(nodes: u32, gpus_per_node: u32) -> NodePlane {
        let spec = ClusterSpec { nodes, gpus_per_node, gpu_mem_bytes: 40 * GB };
        let factory = crate::named("fair", || Box::new(FairSharePolicy));
        NodePlane::new(&spec, SimDuration::from_millis(5), &factory)
    }

    fn config(mem: u64) -> SlotConfig {
        SlotConfig {
            class: TaskClass::SloSensitive,
            request: SmRate::from_percent(30.0),
            limit: SmRate::from_percent(60.0),
            mem_bytes: mem,
        }
    }

    #[test]
    fn occupancy_counter_tracks_admits_and_evicts() {
        let mut plane = plane(2, 2);
        let a = GpuAddr { node: 0, gpu: 1 };
        let b = GpuAddr { node: 1, gpu: 0 };
        assert_eq!(plane.occupied(), 0);
        plane.admit(a, InstanceId(1), config(GB)).unwrap();
        plane.admit(a, InstanceId(2), config(GB)).unwrap();
        plane.admit(b, InstanceId(3), config(GB)).unwrap();
        assert_eq!(plane.occupied(), 2, "two residents on one GPU count once");
        plane.evict(a, InstanceId(1));
        assert_eq!(plane.occupied(), 2, "GPU stays occupied while a resident remains");
        plane.evict(a, InstanceId(2));
        plane.evict(b, InstanceId(3));
        assert_eq!(plane.occupied(), 0);
        // Double eviction and unknown ids must not underflow.
        plane.evict(b, InstanceId(3));
        assert_eq!(plane.occupied(), 0);
    }

    #[test]
    fn failed_admission_leaves_occupancy_unchanged() {
        let mut plane = plane(1, 1);
        let addr = GpuAddr { node: 0, gpu: 0 };
        assert!(plane.admit(addr, InstanceId(1), config(100 * GB)).is_err());
        assert_eq!(plane.occupied(), 0);
    }

    /// The pool is a pure executor: stepping N busy nodes through workers
    /// must merge the identical completion stream as stepping them
    /// serially, for any worker count. Nine nodes keeps the busy count
    /// above `2 * MIN_NODES_PER_SHARE`, so the pooled runs genuinely fan
    /// out (multiple shares, chunked checkout, mailbox round trips) until
    /// the tail of the drain, when stepping falls back inline — both
    /// paths are exercised in one run.
    #[test]
    fn parallel_step_merges_identically_to_serial() {
        const NODES: u32 = 9;
        assert!(NODES as usize >= 2 * MIN_NODES_PER_SHARE, "test must reach the fan-out path");
        let quantum = SimDuration::from_millis(5);
        let run = |workers: usize| {
            let mut plane = plane(NODES, 2);
            for node in 0..NODES {
                for gpu in 0..2u32 {
                    let addr = GpuAddr { node, gpu };
                    let id = InstanceId(u64::from(node * 2 + gpu));
                    plane.admit(addr, id, config(GB)).unwrap();
                    plane
                        .slot_mut(addr)
                        .engine
                        .push_work(
                            id,
                            WorkItem::compute(
                                SimDuration::from_millis(7 + u64::from(node)),
                                SmRate::from_percent(50.0),
                                100,
                                u64::from(node * 2 + gpu),
                            ),
                        )
                        .unwrap();
                }
            }
            plane.rebuild_busy();
            let mut completions = Vec::new();
            let mut issued = Vec::new();
            let mut now = SimTime::ZERO;
            if workers == 0 {
                while plane.has_busy() {
                    plane.step(
                        JobKind::BusyOnly,
                        now,
                        quantum,
                        None,
                        &mut completions,
                        &mut issued,
                    );
                    now += quantum;
                }
            } else {
                let shared = PoolShared::new(workers);
                std::thread::scope(|scope| {
                    // Guard before spawns: a panicking step must release
                    // the parked workers or the scope join hangs.
                    let _guard = PoolGuard(&shared);
                    for w in 0..workers {
                        let shared = &shared;
                        scope.spawn(move || worker_loop(shared, w));
                    }
                    let pool = StepPool::new(&shared);
                    while plane.has_busy() {
                        plane.step(
                            JobKind::BusyOnly,
                            now,
                            quantum,
                            Some(&pool),
                            &mut completions,
                            &mut issued,
                        );
                        now += quantum;
                    }
                });
            }
            (format!("{completions:?}"), format!("{issued:?}"))
        };
        let serial = run(0);
        assert_eq!(run(1), serial, "1 worker diverged");
        assert_eq!(run(3), serial, "3 workers diverged");
        assert_eq!(run(11), serial, "11 workers (more than nodes) diverged");
    }
}

//! Instance and training-job lifecycle (control plane).
//!
//! Everything that creates, promotes, drains, or destroys capacity lives
//! here: deployment entry points and their typed [`DeployError`]s, spec
//! validation, instance launch (placement + engine admission + cold-start
//! scheduling) and termination, cold-start promotion, drained-instance
//! reaping, and the barrier-synchronised training-job state machine
//! (compute/communication phases, worker placement retries, completion
//! teardown). The node plane is only touched through
//! [`NodePlane`](crate::nodes) wrappers so occupancy accounting stays
//! exact.

use std::collections::VecDeque;

use dilu_gpu::{SlotConfig, TaskClass};
use dilu_sim::SimTime;

use crate::instance::Instance;
use crate::sim::{new_func_state, ArrivalStream, SimEvent};
use crate::traits::ClusterView;
use crate::{
    cold_start_duration, ClusterSim, FunctionId, FunctionKind, FunctionSpec, InstanceState,
    InstanceUid,
};

/// Errors surfaced by deployment calls.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DeployError {
    /// The placement policy found no feasible GPUs.
    PlacementFailed(FunctionId),
    /// A function with this id is already deployed.
    DuplicateFunction(FunctionId),
    /// The function spec itself is invalid (zero batch, zero workers, ...).
    InvalidSpec {
        /// The offending function.
        func: FunctionId,
        /// What is wrong with it.
        reason: &'static str,
    },
    /// The spec asks for more GPUs per instance than the cluster has.
    ClusterTooSmall {
        /// The offending function.
        func: FunctionId,
        /// GPUs one instance needs.
        needed: u32,
        /// GPUs the cluster has in total.
        available: u32,
    },
}

impl std::fmt::Display for DeployError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeployError::PlacementFailed(id) => write!(f, "no feasible placement for {id}"),
            DeployError::DuplicateFunction(id) => write!(f, "function {id} already deployed"),
            DeployError::InvalidSpec { func, reason } => {
                write!(f, "invalid spec for {func}: {reason}")
            }
            DeployError::ClusterTooSmall { func, needed, available } => {
                write!(f, "{func} needs {needed} GPUs per instance but the cluster has {available}")
            }
        }
    }
}

impl std::error::Error for DeployError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum JobPhase {
    WaitingForWorkers,
    Compute,
    Comm,
    Done,
}

#[derive(Debug)]
pub(crate) struct TrainingJob {
    pub(crate) workers: Vec<InstanceUid>,
    pub(crate) phase: JobPhase,
    /// Per-worker "has not finished the current phase" mask; reused across
    /// phases (a fresh set per half-iteration was measurable allocator
    /// churn at cluster scale).
    pub(crate) remaining: Vec<bool>,
    pub(crate) iterations_done: u64,
    pub(crate) target: u64,
    pub(crate) started: Option<SimTime>,
    pub(crate) finished: Option<SimTime>,
    pub(crate) samples_done: u64,
}

impl ClusterSim {
    /// Deploys an inference function with `initial` pre-warmed instances and
    /// a pre-generated arrival stream.
    ///
    /// # Errors
    ///
    /// [`DeployError::DuplicateFunction`] if the id is taken;
    /// [`DeployError::PlacementFailed`] if any initial instance cannot be
    /// placed.
    pub fn deploy_inference(
        &mut self,
        spec: FunctionSpec,
        initial: u32,
        arrivals: Vec<SimTime>,
    ) -> Result<(), DeployError> {
        if self.funcs.contains_key(&spec.id) {
            return Err(DeployError::DuplicateFunction(spec.id));
        }
        debug_assert!(spec.kind.is_inference(), "use deploy_training for training functions");
        self.validate_spec(&spec)?;
        let id = spec.id;
        let state = new_func_state(spec, arrivals);
        if let Some(&head) = state.arrivals.front() {
            self.arrival_index.push(std::cmp::Reverse((head, id)));
        }
        self.funcs.insert(id, state);
        for _ in 0..initial {
            self.launch_instance(id, true).map_err(|_| DeployError::PlacementFailed(id))?;
        }
        Ok(())
    }

    /// Deploys an inference function whose arrivals are *streamed*: the
    /// process is pulled in bounded chunks (at most
    /// [`SimConfig::arrival_window`](crate::SimConfig::arrival_window)
    /// pending instants are ever held in memory) up to the `end` horizon,
    /// instead of being materialized up front. Identical simulation
    /// results to pre-generating `process.generate(end)` and deploying it
    /// with [`deploy_inference`](Self::deploy_inference) — arrival
    /// processes draw the same instants at every chunking — at O(window)
    /// instead of O(total requests) memory per function.
    ///
    /// The first chunk is pulled lazily at the next
    /// [`run_until`](Self::run_until) entry, so hooks registered before
    /// the run observe the complete stream.
    ///
    /// # Errors
    ///
    /// [`DeployError::DuplicateFunction`] if the id is taken;
    /// [`DeployError::PlacementFailed`] if any initial instance cannot be
    /// placed.
    pub fn deploy_inference_streaming(
        &mut self,
        spec: FunctionSpec,
        initial: u32,
        process: Box<dyn dilu_workload::ArrivalProcess>,
        end: SimTime,
    ) -> Result<(), DeployError> {
        if self.funcs.contains_key(&spec.id) {
            return Err(DeployError::DuplicateFunction(spec.id));
        }
        debug_assert!(spec.kind.is_inference(), "use deploy_training for training functions");
        self.validate_spec(&spec)?;
        let id = spec.id;
        let mut state = new_func_state(spec, Vec::new());
        state.stream = Some(ArrivalStream { process, end });
        self.funcs.insert(id, state);
        for _ in 0..initial {
            self.launch_instance(id, true).map_err(|_| DeployError::PlacementFailed(id))?;
        }
        Ok(())
    }

    /// Deploys a training function; its workers are placed immediately and
    /// the job starts once all of them are ready.
    ///
    /// # Errors
    ///
    /// [`DeployError::DuplicateFunction`] if the id is taken;
    /// [`DeployError::PlacementFailed`] if any worker cannot be placed.
    pub fn deploy_training(&mut self, spec: FunctionSpec) -> Result<(), DeployError> {
        if self.funcs.contains_key(&spec.id) {
            return Err(DeployError::DuplicateFunction(spec.id));
        }
        let FunctionKind::Training { workers, iterations } = spec.kind else {
            panic!("use deploy_inference for inference functions");
        };
        self.validate_spec(&spec)?;
        let id = spec.id;
        self.funcs.insert(id, new_func_state(spec, Vec::new()));
        let mut uids = Vec::new();
        for _ in 0..workers {
            match self.launch_instance(id, true) {
                Ok(uid) => uids.push(uid),
                Err(()) => {
                    // Roll back so a later retry starts clean.
                    for uid in uids {
                        self.terminate_instance(uid);
                    }
                    self.funcs.remove(&id);
                    return Err(DeployError::PlacementFailed(id));
                }
            }
        }
        self.jobs.insert(
            id,
            TrainingJob {
                workers: uids,
                phase: JobPhase::WaitingForWorkers,
                remaining: Vec::new(),
                iterations_done: 0,
                target: iterations,
                started: None,
                finished: None,
                samples_done: 0,
            },
        );
        // Pre-warmed workers are ready immediately; kick the job off now.
        self.maybe_start_job(id);
        Ok(())
    }

    /// Schedules a training function to be submitted at `at` (paper §5.4
    /// submits jobs at different times). Placement happens at submission;
    /// if the cluster is full then, the submission is retried each second.
    ///
    /// # Errors
    ///
    /// [`DeployError::InvalidSpec`] / [`DeployError::ClusterTooSmall`] for
    /// structurally impossible specs — validated eagerly, since a spec
    /// failing at submission time would otherwise be retried (and dropped)
    /// silently.
    pub fn schedule_training(
        &mut self,
        spec: FunctionSpec,
        at: SimTime,
    ) -> Result<(), DeployError> {
        debug_assert!(!spec.kind.is_inference(), "only training can be scheduled late");
        self.validate_spec(&spec)?;
        self.pending_training.push((at, spec));
        Ok(())
    }

    /// Rejects structurally impossible specs with a typed error instead of
    /// letting them fail as an opaque placement failure (or panic) later.
    pub(crate) fn validate_spec(&self, spec: &FunctionSpec) -> Result<(), DeployError> {
        let func = spec.id;
        if spec.gpus_per_instance == 0 {
            return Err(DeployError::InvalidSpec { func, reason: "gpus_per_instance is zero" });
        }
        if spec.quotas.mem_bytes == 0 {
            return Err(DeployError::InvalidSpec { func, reason: "memory reservation is zero" });
        }
        if spec.quotas.mem_bytes > self.spec.gpu_mem_bytes {
            return Err(DeployError::InvalidSpec {
                func,
                reason: "memory reservation exceeds one GPU",
            });
        }
        match spec.kind {
            FunctionKind::Inference { batch: 0, .. } => {
                return Err(DeployError::InvalidSpec { func, reason: "batch size is zero" });
            }
            FunctionKind::Training { workers: 0, .. } => {
                return Err(DeployError::InvalidSpec { func, reason: "worker count is zero" });
            }
            FunctionKind::Training { iterations: 0, .. } => {
                return Err(DeployError::InvalidSpec { func, reason: "iteration target is zero" });
            }
            _ => {}
        }
        if spec.gpus_per_instance > self.spec.total_gpus() {
            return Err(DeployError::ClusterTooSmall {
                func,
                needed: spec.gpus_per_instance,
                available: self.spec.total_gpus(),
            });
        }
        Ok(())
    }

    pub(crate) fn submit_due_training(&mut self) {
        let now = self.now;
        let due: Vec<FunctionSpec> = {
            let mut due = Vec::new();
            self.pending_training.retain(|(at, spec)| {
                if *at <= now {
                    due.push(spec.clone());
                    false
                } else {
                    true
                }
            });
            due
        };
        for spec in due {
            let at = now + self.config.tick;
            if self.deploy_training(spec.clone()).is_err() {
                // Cluster full or duplicate: retry next second unless the
                // function already exists.
                if !self.funcs.contains_key(&spec.id) {
                    self.pending_training.push((at, spec));
                    if self.event_active {
                        let due = self.grid_ceil(at).max(self.now + self.config.quantum);
                        self.events.push(due, SimEvent::TrainingSubmit);
                    }
                }
            }
        }
    }

    /// The dense promotion phase: every cold-started instance whose
    /// `ready_at` has passed becomes ready and picks up the gateway
    /// backlog.
    pub(crate) fn promote_ready_instances(&mut self) -> u64 {
        let now = self.now;
        let mut became_ready = Vec::new();
        for inst in self.instances.values_mut() {
            if let InstanceState::ColdStarting { ready_at } = inst.state {
                if now >= ready_at {
                    inst.state = InstanceState::Running;
                    inst.last_active = now;
                    became_ready.push((inst.uid, inst.func));
                }
            }
        }
        let promoted = became_ready.len() as u64;
        // Drain gateway backlog into newly ready instances.
        for (uid, func) in became_ready {
            if let Some(f) = self.funcs.get_mut(&func) {
                if let Some(inst) = self.instances.get_mut(&uid) {
                    while let Some(req) = f.backlog.pop_front() {
                        inst.pending.push_back(req);
                    }
                }
            }
            self.maybe_start_job(func);
        }
        promoted
    }

    /// Promotes one cold-started instance (the event-core counterpart of
    /// [`promote_ready_instances`](Self::promote_ready_instances)).
    pub(crate) fn promote_instance(&mut self, uid: InstanceUid) {
        let now = self.now;
        let Some(inst) = self.instances.get_mut(&uid) else {
            return;
        };
        let InstanceState::ColdStarting { ready_at } = inst.state else {
            return;
        };
        debug_assert!(now >= ready_at, "promotion event fired early");
        inst.state = InstanceState::Running;
        inst.last_active = now;
        let func = inst.func;
        if let Some(f) = self.funcs.get_mut(&func) {
            while let Some(req) = f.backlog.pop_front() {
                inst.pending.push_back(req);
            }
        }
        if !inst.pending.is_empty() {
            self.dirty.push(uid);
        }
        self.maybe_start_job(func);
    }

    pub(crate) fn maybe_start_job(&mut self, func: FunctionId) {
        let Some(job) = self.jobs.get_mut(&func) else {
            return;
        };
        if job.phase != JobPhase::WaitingForWorkers {
            return;
        }
        let all_ready = job
            .workers
            .iter()
            .all(|uid| self.instances.get(uid).is_some_and(|i| i.state.is_ready()));
        if !all_ready {
            return;
        }
        job.phase = JobPhase::Compute;
        job.started = Some(self.now);
        let n = job.workers.len();
        job.remaining.clear();
        job.remaining.resize(n, true);
        let workers = std::mem::take(&mut job.workers);
        for (w, uid) in workers.iter().enumerate() {
            self.push_train_item(func, *uid, w, true);
        }
        self.jobs.get_mut(&func).expect("job persists").workers = workers;
    }

    pub(crate) fn advance_training(
        &mut self,
        func: FunctionId,
        worker: usize,
        was_compute: bool,
        at: SimTime,
    ) {
        let Some(job) = self.jobs.get_mut(&func) else {
            return;
        };
        if let Some(r) = job.remaining.get_mut(worker) {
            *r = false;
        }
        if job.remaining.iter().any(|&r| r) {
            return;
        }
        match (job.phase, was_compute) {
            (JobPhase::Compute, true) => {
                job.phase = JobPhase::Comm;
                let n = job.workers.len();
                job.remaining.clear();
                job.remaining.resize(n, true);
                let workers = std::mem::take(&mut job.workers);
                for (w, uid) in workers.iter().enumerate() {
                    self.push_train_item(func, *uid, w, false);
                }
                self.jobs.get_mut(&func).expect("job persists").workers = workers;
            }
            (JobPhase::Comm, false) => {
                job.iterations_done += 1;
                let samples = self
                    .funcs
                    .get(&func)
                    .map(|f| u64::from(f.spec.model.profile().training.samples_per_iter))
                    .unwrap_or(0);
                job.samples_done += samples * job.workers.len() as u64;
                if job.iterations_done >= job.target {
                    job.phase = JobPhase::Done;
                    // The exact block-finish instant of the last worker, not
                    // the enclosing quantum's start.
                    job.finished = Some(at);
                    let workers = std::mem::take(&mut job.workers);
                    for &uid in &workers {
                        self.terminate_instance(uid);
                    }
                    self.jobs.get_mut(&func).expect("job persists").workers = workers;
                } else {
                    job.phase = JobPhase::Compute;
                    let n = job.workers.len();
                    job.remaining.clear();
                    job.remaining.resize(n, true);
                    let workers = std::mem::take(&mut job.workers);
                    for (w, uid) in workers.iter().enumerate() {
                        self.push_train_item(func, *uid, w, true);
                    }
                    self.jobs.get_mut(&func).expect("job persists").workers = workers;
                }
            }
            _ => {}
        }
    }

    pub(crate) fn reap_drained(&mut self) {
        if self.draining_count == 0 {
            return;
        }
        let drained: Vec<InstanceUid> = self
            .instances
            .values()
            .filter(|i| {
                matches!(i.state, InstanceState::Draining)
                    && i.inflight.is_empty()
                    && i.pending.is_empty()
            })
            .map(|i| i.uid)
            .collect();
        for uid in drained {
            self.terminate_instance(uid);
        }
    }

    pub(crate) fn terminate_instance(&mut self, uid: InstanceUid) {
        let Some(inst) = self.instances.remove(&uid) else {
            return;
        };
        if matches!(inst.state, InstanceState::Draining) {
            self.draining_count = self.draining_count.saturating_sub(1);
        }
        self.dirty.retain(|&d| d != uid);
        // The deadline record left the map with the instance; cancel its
        // event token so the queue does not fire a stale wake.
        if let Some((_, token)) = inst.deadline {
            self.events.cancel(token);
        }
        if let Some(f) = self.funcs.get_mut(&inst.func) {
            f.instance_ids.retain(|&i| i != uid);
        }
        // Requeue any stranded requests at the gateway.
        if let Some(f) = self.funcs.get_mut(&inst.func) {
            for req in inst.pending.iter() {
                f.backlog.push_back(*req);
            }
        }
        for (stage, gpu) in inst.gpus.iter().enumerate() {
            let slot = inst.slot_id(stage);
            self.slot_index.remove(&slot);
            self.nodes.evict(*gpu, slot);
        }
    }

    pub(crate) fn launch_instance(
        &mut self,
        func: FunctionId,
        prewarmed: bool,
    ) -> Result<InstanceUid, ()> {
        let spec = self.funcs.get(&func).ok_or(())?.spec.clone();
        let mut view = std::mem::replace(&mut self.view_scratch, ClusterView { gpus: Vec::new() });
        self.fill_cluster_view(&mut view);
        let placed = self.placement.place(&spec, &view);
        self.view_scratch = view;
        let gpus = placed.ok_or(())?;
        debug_assert_eq!(gpus.len() as u32, spec.gpus_per_instance);
        let uid = InstanceUid(self.next_uid);
        self.next_uid += 1;
        let class =
            if spec.kind.is_inference() { TaskClass::SloSensitive } else { TaskClass::BestEffort };
        let node = gpus[0].node as usize;
        let state = if prewarmed {
            // Prewarming ships the weights ahead of time, so the node
            // cache holds the model from here on.
            if let Some(net) = self.net.as_mut() {
                net.caches[node].insert(spec.model, spec.model.profile().param_bytes);
            }
            InstanceState::Running
        } else if self.net.is_some() {
            let net = self.net.as_mut().expect("checked above");
            let provision = net.cfg.provision;
            if net.caches[node].contains(&spec.model) {
                // Weights already on the node: only the provision residue
                // (container/runtime setup) stands between us and Running.
                if let Some(f) = self.funcs.get_mut(&func) {
                    f.cold_starts.record_cached(provision);
                }
                let ready_at = self.now + provision;
                if self.event_active {
                    // This wake's promotion phase has already run; the
                    // dense stepper would promote at the next quantum.
                    let due = self.grid_ceil(ready_at).max(self.now + self.config.quantum);
                    self.events.push(due, SimEvent::ColdStartReady(uid));
                }
                InstanceState::ColdStarting { ready_at }
            } else {
                // Cache miss: fetch the weights from the registry as a
                // shared-bandwidth flow. Readiness (and the cold-start
                // record) waits for the flow; the MAX sentinel marks an
                // instance gated on the network, not a timer.
                net.plane.start_fetch(
                    self.now,
                    node,
                    spec.model.profile().param_bytes,
                    crate::netplane::NetPayload::Fetch {
                        uid,
                        func,
                        model: spec.model,
                        launched: self.now,
                    },
                );
                self.sync_net_events();
                InstanceState::ColdStarting { ready_at: SimTime::MAX }
            }
        } else {
            let delay = cold_start_duration(spec.model);
            if let Some(f) = self.funcs.get_mut(&func) {
                f.cold_starts.record(delay);
            }
            let ready_at = self.now + delay;
            if self.event_active {
                // This wake's promotion phase has already run; the dense
                // stepper would promote at the next processed quantum.
                let due = self.grid_ceil(ready_at).max(self.now + self.config.quantum);
                self.events.push(due, SimEvent::ColdStartReady(uid));
            }
            InstanceState::ColdStarting { ready_at }
        };
        let inst = Instance {
            uid,
            func,
            gpus: gpus.clone(),
            state,
            pending: VecDeque::new(),
            inflight: Vec::new(),
            last_active: self.now,
            deadline: None,
        };
        for (stage, gpu) in gpus.iter().enumerate() {
            let slot = inst.slot_id(stage);
            let cfg = SlotConfig {
                class,
                request: spec.quotas.request,
                limit: spec.quotas.limit,
                mem_bytes: spec.quotas.mem_bytes,
            };
            if self.event_active {
                // Close any idle gap *before* the new slot joins the
                // roster: replayed cycles must show the pre-admission
                // residents only, and the fresh slot's policy history must
                // start here — exactly as under dense stepping.
                self.nodes.slot_mut(*gpu).catch_up(
                    self.now,
                    self.config.quantum,
                    self.gpu_phase_done,
                );
            }
            if self.nodes.admit(*gpu, slot, cfg).is_err() {
                // Roll back earlier stages.
                for (s, g) in gpus.iter().enumerate().take(stage) {
                    let sid = inst.slot_id(s);
                    self.slot_index.remove(&sid);
                    self.nodes.evict(*g, sid);
                }
                return Err(());
            }
            self.slot_index.insert(slot, (uid, stage, func));
        }
        if let Some(f) = self.funcs.get_mut(&func) {
            f.instance_ids.push(uid);
        }
        self.instances.insert(uid, inst);
        Ok(uid)
    }
}

//! Cluster, GPU, and function specifications.

use std::fmt;

use dilu_gpu::{SmRate, GB};
use dilu_models::ModelId;
use dilu_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Shape of the simulated cluster.
///
/// The paper's testbed is 5 nodes × 4 A100-40GB; the large-scale study uses
/// 1000 × 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Number of worker nodes.
    pub nodes: u32,
    /// GPUs per node.
    pub gpus_per_node: u32,
    /// Device memory per GPU in bytes.
    pub gpu_mem_bytes: u64,
}

impl ClusterSpec {
    /// The paper's local testbed: 5 nodes × 4 × A100-40GB.
    pub fn paper_testbed() -> Self {
        ClusterSpec { nodes: 5, gpus_per_node: 4, gpu_mem_bytes: 40 * GB }
    }

    /// A single node with `gpus` A100-40GB cards (GPU-level experiments).
    pub fn single_node(gpus: u32) -> Self {
        ClusterSpec { nodes: 1, gpus_per_node: gpus, gpu_mem_bytes: 40 * GB }
    }

    /// Total GPUs in the cluster.
    pub fn total_gpus(&self) -> u32 {
        self.nodes * self.gpus_per_node
    }

    /// All GPU addresses in deterministic order.
    pub fn gpu_addrs(&self) -> impl Iterator<Item = GpuAddr> + '_ {
        let per = self.gpus_per_node;
        (0..self.nodes).flat_map(move |n| (0..per).map(move |g| GpuAddr { node: n, gpu: g }))
    }
}

impl Default for ClusterSpec {
    fn default() -> Self {
        Self::paper_testbed()
    }
}

/// Address of one GPU in the cluster.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct GpuAddr {
    /// Node index.
    pub node: u32,
    /// GPU index within the node.
    pub gpu: u32,
}

impl fmt::Display for GpuAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}/g{}", self.node, self.gpu)
    }
}

/// The paper's `<request, limit>` SM quotas plus the (steady) memory demand.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Quotas {
    /// Minimum SM rate guaranteeing QoS.
    pub request: SmRate,
    /// Cost-effective burst SM rate.
    pub limit: SmRate,
    /// Device memory per GPU slice.
    pub mem_bytes: u64,
}

impl Quotas {
    /// Creates quotas; `limit` is clamped up to at least `request`.
    pub fn new(request: SmRate, limit: SmRate, mem_bytes: u64) -> Self {
        Quotas { request, limit: limit.max(request), mem_bytes }
    }

    /// Equal request/limit quotas — the static MPS/Exclusive pattern of
    /// Table 1.
    pub fn equal(rate: SmRate, mem_bytes: u64) -> Self {
        Quotas { request: rate, limit: rate, mem_bytes }
    }
}

/// Identifier of a deployed serverless DL function.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct FunctionId(pub u32);

impl fmt::Display for FunctionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn-{}", self.0)
    }
}

/// What a function does.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FunctionKind {
    /// Online inference with a latency SLO and a profiled batch size.
    Inference {
        /// Target latency (per request; per-token budget folded in for LLMs).
        slo: SimDuration,
        /// Profiled optimal inference batch size (IBS).
        batch: u32,
    },
    /// A training job with a fixed worker count and iteration target.
    Training {
        /// Data-parallel or pipeline workers.
        workers: u32,
        /// Iterations to completion (JCT is recorded when reached).
        iterations: u64,
    },
}

impl FunctionKind {
    /// `true` for inference functions.
    pub fn is_inference(&self) -> bool {
        matches!(self, FunctionKind::Inference { .. })
    }
}

/// A deployable serverless DL function.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FunctionSpec {
    /// Unique id.
    pub id: FunctionId,
    /// Human-readable name for reports.
    pub name: String,
    /// The model it serves or trains.
    pub model: ModelId,
    /// Inference or training role.
    pub kind: FunctionKind,
    /// Profiled `<request, limit>` + memory quotas per GPU slice.
    pub quotas: Quotas,
    /// GPUs per instance (1 for most; >1 pipelines an LLM across fragments).
    pub gpus_per_instance: u32,
}

impl FunctionSpec {
    /// Requests per second one *instance* sustains at its request quota —
    /// the capacity value Dilu's global scaler compares RPS windows against.
    ///
    /// Returns 0 for training functions.
    pub fn capacity_rps(&self) -> f64 {
        self.capacity_rps_at(self.quotas.request)
    }

    /// Requests per second one instance sustains at an arbitrary SM quota —
    /// what a 2D co-scaler gains (or gives back) by resizing `request`.
    ///
    /// Returns 0 for training functions.
    pub fn capacity_rps_at(&self, quota: SmRate) -> f64 {
        match self.kind {
            FunctionKind::Inference { batch, .. } => {
                let profile = self.model.profile();
                let t = profile.inference_exec_time(batch, quota);
                if t.is_zero() {
                    0.0
                } else {
                    f64::from(batch) / t.as_secs_f64()
                }
            }
            FunctionKind::Training { .. } => 0.0,
        }
    }

    /// The latency SLO, if this is an inference function.
    pub fn slo(&self) -> Option<SimDuration> {
        match self.kind {
            FunctionKind::Inference { slo, .. } => Some(slo),
            FunctionKind::Training { .. } => None,
        }
    }
}

/// Cold-start delay for deploying one instance of `model`: container setup
/// plus loading weights at ~1.6 s/GB (the "slow and bulky deployment" the
/// paper's lazy scaling avoids paying for).
pub fn cold_start_duration(model: ModelId) -> SimDuration {
    let profile = model.profile();
    let gb = profile.param_bytes as f64 / GB as f64;
    SimDuration::from_secs_f64(2.0 + 1.6 * gb)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testbed_matches_paper() {
        let spec = ClusterSpec::paper_testbed();
        assert_eq!(spec.total_gpus(), 20);
        assert_eq!(spec.gpu_addrs().count(), 20);
        assert_eq!(spec.gpu_mem_bytes, 40 * GB);
    }

    #[test]
    fn quotas_clamp_limit_to_request() {
        let q = Quotas::new(SmRate::from_percent(50.0), SmRate::from_percent(30.0), GB);
        assert_eq!(q.limit, q.request);
        let eq = Quotas::equal(SmRate::from_percent(40.0), GB);
        assert_eq!(eq.request, eq.limit);
    }

    #[test]
    fn capacity_rps_reflects_batch_and_quota() {
        let spec = FunctionSpec {
            id: FunctionId(1),
            name: "roberta-inf".into(),
            model: ModelId::RobertaLarge,
            kind: FunctionKind::Inference { slo: SimDuration::from_millis(100), batch: 4 },
            quotas: Quotas::new(SmRate::from_percent(50.0), SmRate::from_percent(100.0), 4 * GB),
            gpus_per_instance: 1,
        };
        // bs4 at sat(4)=50%: 26 ms → ~154 rps.
        let cap = spec.capacity_rps();
        assert!((cap - 153.8).abs() < 5.0, "capacity {cap}");
        assert!(spec.slo().is_some());
    }

    #[test]
    fn training_functions_have_no_serving_capacity() {
        let spec = FunctionSpec {
            id: FunctionId(2),
            name: "bert-train".into(),
            model: ModelId::BertBase,
            kind: FunctionKind::Training { workers: 4, iterations: 100 },
            quotas: Quotas::equal(SmRate::from_percent(50.0), 6 * GB),
            gpus_per_instance: 1,
        };
        assert_eq!(spec.capacity_rps(), 0.0);
        assert_eq!(spec.slo(), None);
    }

    #[test]
    fn cold_starts_scale_with_model_size() {
        let small = cold_start_duration(ModelId::ResNet152);
        let large = cold_start_duration(ModelId::Llama2_7b);
        assert!(small < SimDuration::from_secs(3));
        assert!(large > SimDuration::from_secs(15), "LLM cold start {large}");
    }

    #[test]
    fn gpu_addr_displays() {
        assert_eq!(GpuAddr { node: 2, gpu: 3 }.to_string(), "n2/g3");
    }
}

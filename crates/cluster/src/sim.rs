//! The cluster simulation driver.
//!
//! Two time models drive the serving plane over the same state and the
//! same phase semantics:
//!
//! * [`TimeModel::EventDriven`] (the default) — a wake-on-work engine over
//!   [`dilu_sim::EventQueue`]. The cluster sleeps until the next
//!   [`SimEvent`]; GPUs are stepped only while they hold work, idle
//!   instances and empty quanta are never walked, and batch-formation
//!   deadlines are cancellable events instead of per-quantum polls. Wall
//!   clock scales with *activity*, not cluster size × simulated time.
//! * [`TimeModel::DenseQuantum`] — the original dense stepper that walks
//!   every GPU, instance, and queue each 5 ms quantum. Kept as the
//!   executable specification: the event engine is tested to reproduce its
//!   reports (see `tests/properties.rs`).
//!
//! Both models run on the same quantum grid (grants are renegotiated each
//! token cycle), so an event wake is always a grid instant and skipping a
//! grid instant is only allowed when it is provably a no-op.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

use dilu_gpu::{GpuEngine, SlotConfig, SmRate, StepOutcome, TaskClass};
use dilu_metrics::{
    ColdStartCounter, FragmentationSnapshot, FragmentationStats, GpuUsageSample, LatencyRecorder,
    RateWindow, ResizeCounter, SampleClock,
};

use dilu_sim::{EventQueue, EventToken, SimDuration, SimTime};

use crate::audit::{AuditHook, AuditSnapshot, FunctionAudit, GpuAudit};
use crate::instance::{InflightBatch, Instance, Request};
use crate::report::{ClusterReport, FunctionReport, TimelinePoint, TrainingReport};
use crate::traits::{
    Autoscaler, ClusterView, ElasticityController, FunctionScaleView, GpuView, Placement,
    PolicyFactory, QuotaView, ResidentInfo, ScaleAction,
};
use crate::{
    cold_start_duration, ClusterSpec, FunctionId, FunctionKind, FunctionSpec, GpuAddr,
    InstanceState, InstanceUid,
};

/// How simulated time advances in [`ClusterSim::run_until`]: a
/// wake-on-work event engine by default, or the legacy dense stepper kept
/// as the executable specification the event core is verified against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub enum TimeModel {
    /// Wake-on-work event engine: idle GPUs and quanta are skipped.
    ///
    /// Reproduces the dense stepper's reports byte-for-byte for every
    /// share policy whose derived state reaches a fixed point within the
    /// bounded idle-replay window (all shipped policies do; see
    /// `dilu_gpu::SharePolicy` on event-driven drivers). A custom policy
    /// keyed on idle spans longer than that window should use
    /// [`TimeModel::DenseQuantum`].
    #[default]
    EventDriven,
    /// The legacy dense stepper: every GPU walked every quantum.
    DenseQuantum,
}

/// Tunables of the serving plane.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// GPU scheduling quantum (the paper's 5 ms token period).
    pub quantum: SimDuration,
    /// Fraction of the SLO a partial batch may wait before dispatch.
    pub batch_timeout_frac: f64,
    /// Cap on the batching wait regardless of SLO.
    pub batch_timeout_cap: SimDuration,
    /// Extra per-stage cost modelling activation transfer in pipelines.
    pub stage_transfer: SimDuration,
    /// Autoscaler tick and metrics sampling period.
    pub tick: SimDuration,
    /// Delay between a [`ScaleAction::ResizeQuota`] decision and the new
    /// quotas reaching the GPUs (the paper's millisecond-scale vertical
    /// scaling, vs. the seconds-scale cold start of a scale-out).
    pub resize_latency: SimDuration,
    /// The time model driving [`ClusterSim::run_until`].
    pub time_model: TimeModel,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            quantum: SimDuration::from_millis(5),
            batch_timeout_frac: 0.25,
            batch_timeout_cap: SimDuration::from_millis(100),
            stage_transfer: SimDuration::from_millis(2),
            tick: SimDuration::from_secs(1),
            resize_latency: SimDuration::from_millis(1),
            time_model: TimeModel::EventDriven,
        }
    }
}

/// One entry of the event-driven core's future event list.
///
/// Every event fires at a quantum-grid instant (grants are renegotiated per
/// token cycle, so nothing interesting can happen between grid points). The
/// wake handler executes the same phase order as the dense stepper —
/// resizes, training submissions, cold-start promotions, arrival ingest,
/// batch dispatch, GPU stepping, reaping, controller tick — gated on which
/// events actually fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimEvent {
    /// Step every GPU holding work for the quantum starting at this
    /// instant. Scheduled one quantum ahead whenever work (or a drainable
    /// instance, or a ready-but-undispatched batch) survives the current
    /// wake; never scheduled while the cluster is fully idle. The queue
    /// seeds the first one; the recurring chain is then carried out of the
    /// heap (it fires every quantum under load, and two heap operations
    /// per quantum are measurable at macro scale).
    GpuQuantum,
    /// Ingest the arrival batch landing in the quantum starting here and
    /// route it to instances. One such event is outstanding at a time,
    /// scheduled for the grid instant covering the earliest pending
    /// arrival across all functions.
    ArrivalBatch,
    /// A batch-formation deadline: the instance's oldest pending request
    /// reaches its batching timeout at this instant. Cancellable — a
    /// full-batch dispatch or instance termination withdraws it.
    BatchDeadline(InstanceUid),
    /// Metrics sample plus elasticity-controller tick (the two share the
    /// [`SimConfig::tick`] cadence, exactly as in the dense stepper).
    ControllerTick,
    /// At least one pending [`ScaleAction::ResizeQuota`] reaches the end of
    /// its apply latency.
    ResizeApply,
    /// A cold-starting instance becomes able to serve.
    ColdStartReady(InstanceUid),
    /// A scheduled (or retried) training job reaches its submission time.
    TrainingSubmit,
}

/// Cap on replayed idle token cycles when a GPU is stepped after a gap
/// (see [`GpuEngine::idle_fastforward`]). Policy state is a fixed point
/// once every kernel-rate window has filled with zeros and every
/// multiplicative grant ramp has hit its ceiling; 96 cycles (~0.5 s of the
/// default quantum) covers RCKM's default 10-cycle window plus the longest
/// ramp with a wide margin.
const IDLE_REPLAY_CAP: u64 = 96;

/// Errors surfaced by deployment calls.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DeployError {
    /// The placement policy found no feasible GPUs.
    PlacementFailed(FunctionId),
    /// A function with this id is already deployed.
    DuplicateFunction(FunctionId),
    /// The function spec itself is invalid (zero batch, zero workers, ...).
    InvalidSpec {
        /// The offending function.
        func: FunctionId,
        /// What is wrong with it.
        reason: &'static str,
    },
    /// The spec asks for more GPUs per instance than the cluster has.
    ClusterTooSmall {
        /// The offending function.
        func: FunctionId,
        /// GPUs one instance needs.
        needed: u32,
        /// GPUs the cluster has in total.
        available: u32,
    },
}

impl std::fmt::Display for DeployError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeployError::PlacementFailed(id) => write!(f, "no feasible placement for {id}"),
            DeployError::DuplicateFunction(id) => write!(f, "function {id} already deployed"),
            DeployError::InvalidSpec { func, reason } => {
                write!(f, "invalid spec for {func}: {reason}")
            }
            DeployError::ClusterTooSmall { func, needed, available } => {
                write!(f, "{func} needs {needed} GPUs per instance but the cluster has {available}")
            }
        }
    }
}

impl std::error::Error for DeployError {}

#[derive(Debug, Clone, Copy)]
enum WorkPayload {
    InferStage { uid: InstanceUid, batch_id: u64 },
    TrainCompute { func: FunctionId, worker: usize },
    TrainComm { func: FunctionId, worker: usize },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobPhase {
    WaitingForWorkers,
    Compute,
    Comm,
    Done,
}

#[derive(Debug)]
struct TrainingJob {
    workers: Vec<InstanceUid>,
    phase: JobPhase,
    remaining: BTreeSet<usize>,
    iterations_done: u64,
    target: u64,
    started: Option<SimTime>,
    finished: Option<SimTime>,
    samples_done: u64,
}

struct GpuSlot {
    engine: GpuEngine,
    policy: Box<dyn dilu_gpu::SharePolicy>,
    /// Σ effective SM fraction over the quanta stepped since the last
    /// metrics sample (skipped quanta contribute exactly 0).
    used_accum: f64,
    /// Start of the last stepped quantum; `None` before the first step.
    /// The event core uses the gap to this instant to replay skipped idle
    /// cycles into the share policy.
    last_step: Option<SimTime>,
}

/// A decided-but-not-yet-applied vertical resize.
#[derive(Debug, Clone, Copy)]
struct PendingResize {
    due: SimTime,
    func: FunctionId,
    request: SmRate,
    limit: SmRate,
}

struct FuncState {
    spec: FunctionSpec,
    /// Uids of this function's live instances, ascending (maintained at
    /// launch/terminate so routing never scans the whole cluster).
    instance_ids: Vec<InstanceUid>,
    arrivals: VecDeque<SimTime>,
    backlog: VecDeque<Request>,
    latency: LatencyRecorder,
    arrived: u64,
    completed: u64,
    cold_starts: ColdStartCounter,
    resizes: ResizeCounter,
    window: RateWindow,
    timeline: Vec<TimelinePoint>,
    sec_arrivals: u64,
    sec_completions: u64,
    sec_violations: u64,
    sec_blocks: u64,
    kernel_series: Vec<(u64, u64)>,
}

/// The serving-plane simulator. See the [crate docs](crate) for the model.
pub struct ClusterSim {
    spec: ClusterSpec,
    config: SimConfig,
    share_policy_name: String,
    now: SimTime,
    /// GPU state in dense `gpu_addrs()` order; [`Self::gpu_index`] maps an
    /// address to its slot in O(1). A flat vector, not a map: the event
    /// core addresses individual busy GPUs millions of times per simulated
    /// hour.
    gpus: Vec<GpuSlot>,
    funcs: BTreeMap<FunctionId, FuncState>,
    instances: BTreeMap<InstanceUid, Instance>,
    jobs: BTreeMap<FunctionId, TrainingJob>,
    placement: Box<dyn Placement>,
    controller: Box<dyn ElasticityController>,
    /// Observer invoked with an [`AuditSnapshot`] at every controller tick.
    audit_hook: Option<AuditHook>,
    pending_resizes: Vec<PendingResize>,
    tags: HashMap<u64, WorkPayload>,
    slot_index: HashMap<dilu_gpu::InstanceId, (InstanceUid, usize, FunctionId)>,
    next_uid: u64,
    next_request: u64,
    next_batch: u64,
    next_tag: u64,
    next_sample_at: SimTime,
    sample_clock: SampleClock,
    // --- event-core working state (rebuilt at each `run_until` entry) ---
    events: EventQueue<SimEvent>,
    /// GPUs holding queued or active work; only these are stepped.
    busy_gpus: BTreeSet<GpuAddr>,
    /// Instances whose batch state changed this wake (routed requests,
    /// freed pipeline slots, promotions) — the dispatch candidates. May
    /// hold duplicates; sorted and deduplicated at the dispatch phase.
    dirty: Vec<InstanceUid>,
    /// Outstanding batch-formation deadline per instance.
    deadlines: HashMap<InstanceUid, (SimTime, EventToken)>,
    /// The out-of-heap [`SimEvent::GpuQuantum`] chain: the next
    /// one-quantum-ahead wake, if any.
    next_quantum_wake: Option<SimTime>,
    /// Instances in `Draining` state (guards the reap scan).
    draining_count: u32,
    /// `true` only inside an event-driven `run_until` — internal mutations
    /// schedule follow-up events when set.
    event_active: bool,
    /// `true` once this wake's GPU phase has run (completion handlers,
    /// reaping, controller) — policy catch-ups performed then must cover
    /// the current quantum too, since it will not be stepped again.
    gpu_phase_done: bool,
    /// Reused per-wake scratch buffers (hot-loop allocation avoidance).
    completion_buf: Vec<dilu_gpu::Completion>,
    issued_buf: Vec<(dilu_gpu::InstanceId, u64)>,
    addr_buf: Vec<GpuAddr>,
    dispatch_buf: Vec<(InstanceUid, u64, usize)>,
    outcome_buf: StepOutcome,
    fragmentation: FragmentationStats,
    occupied_series: Vec<(u64, u32)>,
    total_blocks_sec: u64,
    total_kernel_series: Vec<(u64, u64)>,
    gpu_seconds: f64,
    instance_gpu_seconds: f64,
    peak_gpus: u32,
    last_sampled_sec: Option<u64>,
    pending_training: Vec<(SimTime, FunctionSpec)>,
}

impl std::fmt::Debug for ClusterSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterSim")
            .field("spec", &self.spec)
            .field("now", &self.now)
            .field("placement", &self.placement.name())
            .field("controller", &self.controller.name())
            .field("share_policy", &self.share_policy_name)
            .field("functions", &self.funcs.len())
            .field("instances", &self.instances.len())
            .finish_non_exhaustive()
    }
}

impl ClusterSim {
    /// Creates a cluster driven by a horizontal-only [`Autoscaler`].
    ///
    /// Shorthand for [`with_controller`](Self::with_controller) through the
    /// blanket [`ElasticityController`] adapter — every pre-2D composition
    /// keeps working unchanged.
    pub fn new(
        spec: ClusterSpec,
        config: SimConfig,
        placement: Box<dyn Placement>,
        autoscaler: Box<dyn Autoscaler>,
        policy_factory: &dyn PolicyFactory,
    ) -> Self {
        Self::with_controller(spec, config, placement, Box::new(autoscaler), policy_factory)
    }

    /// Creates a cluster driven by a 2D [`ElasticityController`], which may
    /// resize quotas of running instances as well as scale instance counts.
    pub fn with_controller(
        spec: ClusterSpec,
        config: SimConfig,
        placement: Box<dyn Placement>,
        controller: Box<dyn ElasticityController>,
        policy_factory: &dyn PolicyFactory,
    ) -> Self {
        let gpus = spec
            .gpu_addrs()
            .map(|_| GpuSlot {
                engine: GpuEngine::with_quantum(spec.gpu_mem_bytes, config.quantum),
                policy: policy_factory.make(),
                used_accum: 0.0,
                last_step: None,
            })
            .collect();
        ClusterSim {
            spec,
            config,
            share_policy_name: policy_factory.name().to_owned(),
            now: SimTime::ZERO,
            gpus,
            funcs: BTreeMap::new(),
            instances: BTreeMap::new(),
            jobs: BTreeMap::new(),
            placement,
            controller,
            audit_hook: None,
            pending_resizes: Vec::new(),
            tags: HashMap::new(),
            slot_index: HashMap::new(),
            next_uid: 1,
            next_request: 1,
            next_batch: 1,
            next_tag: 1,
            next_sample_at: SimTime::ZERO + config.tick,
            sample_clock: SampleClock::new(),
            events: EventQueue::new(),
            busy_gpus: BTreeSet::new(),
            dirty: Vec::new(),
            deadlines: HashMap::new(),
            next_quantum_wake: None,
            draining_count: 0,
            event_active: false,
            gpu_phase_done: false,
            completion_buf: Vec::new(),
            issued_buf: Vec::new(),
            addr_buf: Vec::new(),
            dispatch_buf: Vec::new(),
            outcome_buf: StepOutcome::default(),
            fragmentation: FragmentationStats::new(),
            occupied_series: Vec::new(),
            total_blocks_sec: 0,
            total_kernel_series: Vec::new(),
            gpu_seconds: 0.0,
            instance_gpu_seconds: 0.0,
            peak_gpus: 0,
            last_sampled_sec: None,
            pending_training: Vec::new(),
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The cluster shape.
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// The serving-plane configuration in effect.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Report name of the placement policy.
    pub fn placement_name(&self) -> &str {
        self.placement.name()
    }

    /// Report name of the elasticity controller (historically the
    /// autoscaler slot; kept for every report and test that names it).
    pub fn autoscaler_name(&self) -> &str {
        self.controller.name()
    }

    /// Report name of the elasticity controller.
    pub fn controller_name(&self) -> &str {
        self.controller.name()
    }

    /// Report name of the per-GPU share-policy factory.
    pub fn share_policy_name(&self) -> &str {
        &self.share_policy_name
    }

    /// Deploys an inference function with `initial` pre-warmed instances and
    /// a pre-generated arrival stream.
    ///
    /// # Errors
    ///
    /// [`DeployError::DuplicateFunction`] if the id is taken;
    /// [`DeployError::PlacementFailed`] if any initial instance cannot be
    /// placed.
    pub fn deploy_inference(
        &mut self,
        spec: FunctionSpec,
        initial: u32,
        arrivals: Vec<SimTime>,
    ) -> Result<(), DeployError> {
        if self.funcs.contains_key(&spec.id) {
            return Err(DeployError::DuplicateFunction(spec.id));
        }
        debug_assert!(spec.kind.is_inference(), "use deploy_training for training functions");
        self.validate_spec(&spec)?;
        let id = spec.id;
        self.funcs.insert(id, new_func_state(spec, arrivals));
        for _ in 0..initial {
            self.launch_instance(id, true).map_err(|_| DeployError::PlacementFailed(id))?;
        }
        Ok(())
    }

    /// Deploys a training function; its workers are placed immediately and
    /// the job starts once all of them are ready.
    ///
    /// # Errors
    ///
    /// [`DeployError::DuplicateFunction`] if the id is taken;
    /// [`DeployError::PlacementFailed`] if any worker cannot be placed.
    pub fn deploy_training(&mut self, spec: FunctionSpec) -> Result<(), DeployError> {
        if self.funcs.contains_key(&spec.id) {
            return Err(DeployError::DuplicateFunction(spec.id));
        }
        let FunctionKind::Training { workers, iterations } = spec.kind else {
            panic!("use deploy_inference for inference functions");
        };
        self.validate_spec(&spec)?;
        let id = spec.id;
        self.funcs.insert(id, new_func_state(spec, Vec::new()));
        let mut uids = Vec::new();
        for _ in 0..workers {
            match self.launch_instance(id, true) {
                Ok(uid) => uids.push(uid),
                Err(()) => {
                    // Roll back so a later retry starts clean.
                    for uid in uids {
                        self.terminate_instance(uid);
                    }
                    self.funcs.remove(&id);
                    return Err(DeployError::PlacementFailed(id));
                }
            }
        }
        self.jobs.insert(
            id,
            TrainingJob {
                workers: uids,
                phase: JobPhase::WaitingForWorkers,
                remaining: BTreeSet::new(),
                iterations_done: 0,
                target: iterations,
                started: None,
                finished: None,
                samples_done: 0,
            },
        );
        // Pre-warmed workers are ready immediately; kick the job off now.
        self.maybe_start_job(id);
        Ok(())
    }

    /// Schedules a training function to be submitted at `at` (paper §5.4
    /// submits jobs at different times). Placement happens at submission;
    /// if the cluster is full then, the submission is retried each second.
    ///
    /// # Errors
    ///
    /// [`DeployError::InvalidSpec`] / [`DeployError::ClusterTooSmall`] for
    /// structurally impossible specs — validated eagerly, since a spec
    /// failing at submission time would otherwise be retried (and dropped)
    /// silently.
    pub fn schedule_training(
        &mut self,
        spec: FunctionSpec,
        at: SimTime,
    ) -> Result<(), DeployError> {
        debug_assert!(!spec.kind.is_inference(), "only training can be scheduled late");
        self.validate_spec(&spec)?;
        self.pending_training.push((at, spec));
        Ok(())
    }

    /// Registers an observer invoked with a fresh [`AuditSnapshot`] at
    /// every controller tick, before the elasticity controller acts.
    ///
    /// The hook cadence and content are identical on both time models (it
    /// runs inside the shared controller phase), so an invariant checker
    /// attached here cannot desynchronise the byte-identical reports.
    /// Replaces any previously registered hook.
    pub fn set_audit_hook(&mut self, hook: AuditHook) {
        self.audit_hook = Some(hook);
    }

    /// Takes a point-in-time [`AuditSnapshot`] of quota, memory, and
    /// request accounting — the state the fuzzer's capacity and
    /// conservation oracles check.
    pub fn audit(&self) -> AuditSnapshot {
        let view = self.cluster_view();
        let gpus = view
            .gpus
            .iter()
            .map(|g| GpuAudit {
                addr: g.addr,
                sum_request: g.sum_requests().as_fraction(),
                sum_limit: g.sum_limits().as_fraction(),
                mem_reserved: g.mem_reserved,
                mem_capacity: g.mem_capacity,
                residents: g.residents.len() as u32,
            })
            .collect();
        let functions = self
            .funcs
            .iter()
            .map(|(&func, f)| {
                let mut queued = 0u64;
                let mut inflight = 0u64;
                let mut ready = 0u32;
                let mut starting = 0u32;
                let mut draining = 0u32;
                for uid in &f.instance_ids {
                    let Some(inst) = self.instances.get(uid) else {
                        continue;
                    };
                    queued += inst.pending.len() as u64;
                    inflight += inst.inflight.iter().map(|b| b.requests.len() as u64).sum::<u64>();
                    match inst.state {
                        InstanceState::Running => ready += 1,
                        InstanceState::ColdStarting { .. } => starting += 1,
                        InstanceState::Draining => draining += 1,
                    }
                }
                FunctionAudit {
                    func,
                    inference: f.spec.kind.is_inference(),
                    arrived: f.arrived,
                    completed: f.completed,
                    backlog: f.backlog.len() as u64,
                    queued,
                    inflight,
                    pending_arrivals: f.arrivals.len() as u64,
                    ready_instances: ready,
                    starting_instances: starting,
                    draining_instances: draining,
                    cold_starts: f.cold_starts.count(),
                    resize_grows: f.resizes.grows(),
                    resize_shrinks: f.resizes.shrinks(),
                }
            })
            .collect();
        AuditSnapshot { now: self.now, gpus, functions }
    }

    /// Number of ready (serving) instances of a function.
    pub fn ready_instances(&self, func: FunctionId) -> u32 {
        self.instances.values().filter(|i| i.func == func && i.state.is_ready()).count() as u32
    }

    /// Number of currently occupied GPUs.
    pub fn occupied_gpus(&self) -> u32 {
        self.gpus.iter().filter(|g| g.engine.resident_count() > 0).count() as u32
    }

    /// Runs the simulation until `t_end`, using the configured
    /// [`TimeModel`].
    ///
    /// Both models stop at the same instant (the first quantum boundary at
    /// or after `t_end`) and may be called repeatedly to continue a run.
    pub fn run_until(&mut self, t_end: SimTime) {
        match self.config.time_model {
            TimeModel::EventDriven => self.run_until_events(t_end),
            TimeModel::DenseQuantum => {
                while self.now < t_end {
                    self.step_quantum();
                }
            }
        }
    }

    /// O(1) slot index of a GPU address.
    fn gpu_index(&self, addr: GpuAddr) -> usize {
        (addr.node * self.spec.gpus_per_node + addr.gpu) as usize
    }

    fn gpu_slot_mut(&mut self, addr: GpuAddr) -> Option<&mut GpuSlot> {
        let idx = self.gpu_index(addr);
        self.gpus.get_mut(idx)
    }

    // ------------------------------------------------------------------
    // Event-driven core
    // ------------------------------------------------------------------

    /// First quantum-grid instant at or after `t`.
    fn grid_ceil(&self, t: SimTime) -> SimTime {
        let q = self.config.quantum.as_micros();
        SimTime::from_micros(t.as_micros().div_ceil(q) * q)
    }

    /// Last quantum-grid instant at or before `t` — the quantum start
    /// whose window `[g, g + quantum)` covers `t`.
    fn grid_floor(&self, t: SimTime) -> SimTime {
        let q = self.config.quantum.as_micros();
        SimTime::from_micros(t.as_micros() / q * q)
    }

    /// The wake-on-work driver: pops grid-instant wakes off the event
    /// queue and executes the dense stepper's phase order at each, so a
    /// quantum with no event is provably a no-op and is never visited.
    fn run_until_events(&mut self, t_end: SimTime) {
        if self.now >= t_end {
            return;
        }
        self.event_active = true;
        self.seed_event_queue();
        loop {
            // The recurring one-quantum-ahead chain wake is kept out of the
            // heap (`next_quantum_wake`): while work is in flight it fires
            // every single quantum, and paying two heap operations per
            // quantum for it is measurable at macro scale.
            let t = match (self.next_quantum_wake, self.events.peek_time()) {
                (None, None) => break,
                (Some(a), None) => a,
                (None, Some(b)) => b,
                (Some(a), Some(b)) => a.min(b),
            };
            if t >= t_end {
                break;
            }
            self.process_wake(t);
        }
        self.event_active = false;
        // Land exactly where the dense stepper stops: the first quantum
        // boundary at or after the horizon.
        let end = self.grid_ceil(t_end);
        if end > self.now {
            self.now = end;
        }
        // The queue is rebuilt from state on the next entry; outstanding
        // deadline tokens die with it.
        self.events.clear();
        self.deadlines.clear();
        self.next_quantum_wake = None;
    }

    /// Rebuilds the event queue (and the busy/dirty scratch sets) from the
    /// current cluster state, so deployments and scheduling calls made
    /// between `run_until` calls need no event bookkeeping of their own.
    fn seed_event_queue(&mut self) {
        self.events.clear();
        self.deadlines.clear();
        self.next_quantum_wake = None;
        self.events.reserve(self.instances.len() + self.funcs.len() + 4);
        self.busy_gpus = self
            .spec
            .gpu_addrs()
            .zip(self.gpus.iter())
            .filter(|(_, slot)| !slot.engine.is_idle())
            .map(|(addr, _)| addr)
            .collect();
        self.dirty =
            self.instances.values().filter(|i| !i.pending.is_empty()).map(|i| i.uid).collect();
        self.draining_count =
            self.instances.values().filter(|i| matches!(i.state, InstanceState::Draining)).count()
                as u32;
        self.schedule_controller_tick(self.now);
        self.schedule_arrival_event();
        let pending_training: Vec<SimTime> =
            self.pending_training.iter().map(|&(at, _)| at).collect();
        for at in pending_training {
            let due = self.grid_ceil(at).max(self.now);
            self.events.push(due, SimEvent::TrainingSubmit);
        }
        let pending_resizes: Vec<SimTime> = self.pending_resizes.iter().map(|r| r.due).collect();
        for due in pending_resizes {
            let due = self.grid_ceil(due).max(self.now);
            self.events.push(due, SimEvent::ResizeApply);
        }
        let cold: Vec<(InstanceUid, SimTime)> = self
            .instances
            .values()
            .filter_map(|i| match i.state {
                InstanceState::ColdStarting { ready_at } => Some((i.uid, ready_at)),
                _ => None,
            })
            .collect();
        for (uid, ready_at) in cold {
            let due = self.grid_ceil(ready_at).max(self.now);
            self.events.push(due, SimEvent::ColdStartReady(uid));
        }
        if !self.busy_gpus.is_empty() || !self.dirty.is_empty() || self.draining_count > 0 {
            self.events.push(self.now, SimEvent::GpuQuantum);
        }
    }

    /// Schedules the recurring tick at the first grid instant `t ≥ floor`
    /// whose quantum window reaches `next_sample_at` — the same instant the
    /// dense stepper's `now + quantum >= next_sample_at` check fires.
    fn schedule_controller_tick(&mut self, floor: SimTime) {
        let target = SimTime::from_micros(
            self.next_sample_at.as_micros().saturating_sub(self.config.quantum.as_micros()),
        );
        let at = self.grid_ceil(target).max(floor);
        self.events.push(at, SimEvent::ControllerTick);
    }

    /// (Re)schedules the single outstanding [`SimEvent::ArrivalBatch`] for
    /// the grid instant covering the earliest pending arrival.
    fn schedule_arrival_event(&mut self) {
        let next = self.funcs.values().filter_map(|f| f.arrivals.front().copied()).min();
        if let Some(t) = next {
            let at = self.grid_floor(t).max(self.now);
            self.events.push(at, SimEvent::ArrivalBatch);
        }
    }

    /// Schedules a one-quantum-ahead wake. This is the out-of-heap fast
    /// path of [`SimEvent::GpuQuantum`]: the run loop takes the minimum of
    /// this instant and the queue head.
    fn ensure_quantum_wake(&mut self, at: SimTime) {
        match self.next_quantum_wake {
            Some(existing) if existing <= at => {}
            _ => self.next_quantum_wake = Some(at),
        }
    }

    /// (Re)schedules the batch-formation deadline of `uid` for the grid
    /// instant at which its oldest pending request times out.
    fn schedule_deadline(&mut self, uid: InstanceUid, raw_due: SimTime) {
        let due = self.grid_ceil(raw_due);
        if let Some(&(at, _)) = self.deadlines.get(&uid) {
            if at == due {
                return;
            }
        }
        if let Some((_, token)) = self.deadlines.remove(&uid) {
            self.events.cancel(token);
        }
        let token = self.events.push_cancellable(due, SimEvent::BatchDeadline(uid));
        self.deadlines.insert(uid, (due, token));
    }

    fn cancel_deadline(&mut self, uid: InstanceUid) {
        if let Some((_, token)) = self.deadlines.remove(&uid) {
            self.events.cancel(token);
        }
    }

    /// Executes one wake: drains every event due at `t`, then runs the
    /// dense stepper's phases in canonical order, each gated on whether an
    /// event asked for it.
    fn process_wake(&mut self, t: SimTime) {
        debug_assert!(t >= self.now, "wakes are monotone");
        self.now = t;
        self.gpu_phase_done = false;
        if self.next_quantum_wake == Some(t) {
            self.next_quantum_wake = None;
        }
        let mut resizes = false;
        let mut training = false;
        let mut arrivals = false;
        let mut controller = false;
        let mut ready: Vec<InstanceUid> = Vec::new();
        let mut expired: Vec<InstanceUid> = Vec::new();
        while let Some((_, event)) = self.events.pop_due(t) {
            match event {
                SimEvent::GpuQuantum => {}
                SimEvent::ArrivalBatch => arrivals = true,
                SimEvent::BatchDeadline(uid) => {
                    self.deadlines.remove(&uid);
                    expired.push(uid);
                }
                SimEvent::ControllerTick => controller = true,
                SimEvent::ResizeApply => resizes = true,
                SimEvent::ColdStartReady(uid) => ready.push(uid),
                SimEvent::TrainingSubmit => training = true,
            }
        }
        if resizes {
            self.apply_due_resizes();
        }
        if training {
            self.submit_due_training();
        }
        for uid in ready {
            self.promote_instance(uid);
        }
        if arrivals {
            self.ingest_arrivals();
            self.schedule_arrival_event();
        }
        self.dispatch_candidates(expired);
        self.step_busy_gpus();
        self.gpu_phase_done = true;
        if self.draining_count > 0 {
            self.reap_drained();
        }
        if controller {
            self.sample_metrics();
            self.run_controller();
            self.next_sample_at += self.config.tick;
            self.schedule_controller_tick(self.now + self.config.quantum);
        }
        if !self.busy_gpus.is_empty() || !self.dirty.is_empty() || self.draining_count > 0 {
            self.ensure_quantum_wake(t + self.config.quantum);
        }
    }

    /// Promotes one cold-started instance (the event-core counterpart of
    /// [`promote_ready_instances`](Self::promote_ready_instances)).
    fn promote_instance(&mut self, uid: InstanceUid) {
        let now = self.now;
        let Some(inst) = self.instances.get_mut(&uid) else {
            return;
        };
        let InstanceState::ColdStarting { ready_at } = inst.state else {
            return;
        };
        debug_assert!(now >= ready_at, "promotion event fired early");
        inst.state = InstanceState::Running;
        inst.last_active = now;
        let func = inst.func;
        if let Some(f) = self.funcs.get_mut(&func) {
            while let Some(req) = f.backlog.pop_front() {
                inst.pending.push_back(req);
            }
        }
        if !inst.pending.is_empty() {
            self.dirty.push(uid);
        }
        self.maybe_start_job(func);
    }

    /// The event-core dispatch phase: examines exactly the instances whose
    /// batch state changed this wake (`dirty`) plus those whose deadline
    /// fired, in uid order — the same visit order and one-batch-per-
    /// quantum budget as the dense scan over all instances.
    fn dispatch_candidates(&mut self, expired: Vec<InstanceUid>) {
        if self.dirty.is_empty() && expired.is_empty() {
            return;
        }
        let now = self.now;
        let mut candidates = std::mem::take(&mut self.dirty);
        candidates.extend(expired);
        candidates.sort_unstable();
        candidates.dedup();
        let mut dispatches = std::mem::take(&mut self.dispatch_buf);
        dispatches.clear();
        for uid in candidates.drain(..) {
            let Some(inst) = self.instances.get(&uid) else {
                self.cancel_deadline(uid);
                continue;
            };
            if !inst.state.is_ready() && !matches!(inst.state, InstanceState::Draining) {
                // Still cold-starting: promotion re-marks it dirty.
                continue;
            }
            let Some(f) = self.funcs.get(&inst.func) else {
                continue;
            };
            let FunctionKind::Inference { slo, batch } = f.spec.kind else {
                continue;
            };
            if inst.pending.is_empty() {
                self.cancel_deadline(uid);
                continue;
            }
            let timeout =
                (slo.mul_f64(self.config.batch_timeout_frac)).min(self.config.batch_timeout_cap);
            let at_stage0 = inst.inflight.iter().filter(|b| b.stage == 0).count();
            let oldest = inst.pending.front().expect("non-empty").arrived;
            let full = inst.pending.len() >= batch as usize;
            let is_expired = now.saturating_since(oldest) >= timeout;
            if at_stage0 >= 4 {
                // Pipeline full: the next stage-0 completion re-marks this
                // instance dirty, which re-runs this check.
                continue;
            }
            if !full && !is_expired {
                self.schedule_deadline(uid, oldest + timeout);
                continue;
            }
            let inst = self.instances.get_mut(&uid).expect("checked above");
            let take = inst.pending.len().min(batch as usize);
            let requests: Vec<Request> = inst.pending.drain(..take).collect();
            let batch_id = self.next_batch;
            self.next_batch += 1;
            inst.inflight.push(InflightBatch { batch_id, requests, stage: 0 });
            inst.last_active = now;
            dispatches.push((uid, batch_id, take));
            // Leftover requests: at most one batch dispatches per instance
            // per quantum (as in the dense stepper), so a still-ready
            // leftover waits for the next grid instant.
            match inst.pending.front() {
                None => self.cancel_deadline(uid),
                Some(head) => {
                    let head_arrived = head.arrived;
                    let full2 = inst.pending.len() >= batch as usize;
                    let expired2 = now.saturating_since(head_arrived) >= timeout;
                    if full2 || expired2 {
                        self.cancel_deadline(uid);
                        if at_stage0 + 1 < 4 {
                            self.dirty.push(uid);
                        }
                    } else {
                        self.schedule_deadline(uid, head_arrived + timeout);
                    }
                }
            }
        }
        for &(uid, batch_id, size) in &dispatches {
            self.push_stage_item(uid, batch_id, 0, size as u32);
        }
        self.dispatch_buf = dispatches;
        // Hand the drained allocation back to `dirty`, keeping any entries
        // pushed while dispatching (they are next quantum's candidates).
        candidates.append(&mut self.dirty);
        self.dirty = candidates;
    }

    /// Steps exactly the GPUs holding work, replaying any skipped idle
    /// cycles into their share policies first so policy state matches what
    /// dense per-quantum stepping would have produced.
    fn step_busy_gpus(&mut self) {
        if self.busy_gpus.is_empty() {
            return;
        }
        let now = self.now;
        let mut completions = std::mem::take(&mut self.completion_buf);
        let mut issued = std::mem::take(&mut self.issued_buf);
        let mut addrs = std::mem::take(&mut self.addr_buf);
        completions.clear();
        issued.clear();
        addrs.clear();
        addrs.extend(self.busy_gpus.iter().copied());
        let mut out = std::mem::take(&mut self.outcome_buf);
        for &addr in &addrs {
            let idx = self.gpu_index(addr);
            let slot = &mut self.gpus[idx];
            Self::advance_gpu(slot, now, self.config.quantum, &mut out);
            slot.used_accum += out.total_used.as_fraction();
            completions.append(&mut out.completions);
            issued.append(&mut out.blocks_issued);
            if slot.engine.next_event_at(now).is_none() {
                // Drained: the GPU reports no next interesting instant, so
                // it simply stops being scheduled.
                self.busy_gpus.remove(&addr);
            }
        }
        self.outcome_buf = out;
        self.attribute_blocks(&issued);
        self.gpu_phase_done = true;
        for c in completions.drain(..) {
            self.handle_completion(c);
        }
        self.completion_buf = completions;
        self.issued_buf = issued;
        self.addr_buf = addrs;
    }

    /// Consumes the simulator and produces the final report.
    pub fn into_report(mut self) -> ClusterReport {
        // Flush the final partial second.
        self.sample_metrics();
        let horizon = self.now;
        let mut report = ClusterReport {
            horizon,
            fragmentation: self.fragmentation,
            occupied_gpus: self.occupied_series,
            peak_gpus: self.peak_gpus,
            gpu_time: SimDuration::from_secs_f64(self.gpu_seconds),
            instance_gpu_time: SimDuration::from_secs_f64(self.instance_gpu_seconds),
            total_kernel_series: self.total_kernel_series,
            ..ClusterReport::default()
        };
        for (id, f) in self.funcs {
            match f.spec.kind {
                FunctionKind::Inference { slo, .. } => {
                    report.kernel_series.insert(id, f.kernel_series.clone());
                    report.inference.insert(
                        id,
                        FunctionReport {
                            name: f.spec.name.clone(),
                            model: f.spec.model,
                            latency: f.latency,
                            slo,
                            output_tokens: f.spec.model.profile().output_tokens,
                            arrived: f.arrived,
                            completed: f.completed,
                            cold_starts: f.cold_starts,
                            resizes: f.resizes,
                            timeline: f.timeline,
                        },
                    );
                }
                FunctionKind::Training { workers, .. } => {
                    report.kernel_series.insert(id, f.kernel_series.clone());
                    let job = self.jobs.get(&id);
                    report.training.insert(
                        id,
                        TrainingReport {
                            name: f.spec.name.clone(),
                            model: f.spec.model,
                            workers,
                            iterations_done: job.map_or(0, |j| j.iterations_done),
                            samples_done: job.map_or(0, |j| j.samples_done),
                            started: job.and_then(|j| j.started),
                            finished: job.and_then(|j| j.finished),
                            unit: f.spec.model.profile().training.unit,
                        },
                    );
                }
            }
        }
        report
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    /// Rejects structurally impossible specs with a typed error instead of
    /// letting them fail as an opaque placement failure (or panic) later.
    fn validate_spec(&self, spec: &FunctionSpec) -> Result<(), DeployError> {
        let func = spec.id;
        if spec.gpus_per_instance == 0 {
            return Err(DeployError::InvalidSpec { func, reason: "gpus_per_instance is zero" });
        }
        if spec.quotas.mem_bytes == 0 {
            return Err(DeployError::InvalidSpec { func, reason: "memory reservation is zero" });
        }
        if spec.quotas.mem_bytes > self.spec.gpu_mem_bytes {
            return Err(DeployError::InvalidSpec {
                func,
                reason: "memory reservation exceeds one GPU",
            });
        }
        match spec.kind {
            FunctionKind::Inference { batch: 0, .. } => {
                return Err(DeployError::InvalidSpec { func, reason: "batch size is zero" });
            }
            FunctionKind::Training { workers: 0, .. } => {
                return Err(DeployError::InvalidSpec { func, reason: "worker count is zero" });
            }
            FunctionKind::Training { iterations: 0, .. } => {
                return Err(DeployError::InvalidSpec { func, reason: "iteration target is zero" });
            }
            _ => {}
        }
        if spec.gpus_per_instance > self.spec.total_gpus() {
            return Err(DeployError::ClusterTooSmall {
                func,
                needed: spec.gpus_per_instance,
                available: self.spec.total_gpus(),
            });
        }
        Ok(())
    }

    fn step_quantum(&mut self) {
        self.apply_due_resizes();
        self.submit_due_training();
        self.promote_ready_instances();
        self.ingest_arrivals();
        self.dispatch_batches();
        self.step_gpus();
        self.reap_drained();
        if self.now + self.config.quantum >= self.next_sample_at {
            self.sample_metrics();
            self.run_controller();
            self.next_sample_at += self.config.tick;
        }
        self.now += self.config.quantum;
    }

    /// Queues a vertical resize to apply after the configured latency.
    ///
    /// A re-request while one is still in flight retargets the pending
    /// resize but keeps its original due time — controllers re-emit their
    /// decision every tick until the spec reflects it, and resetting the
    /// clock each time would starve the apply whenever
    /// `resize_latency >= tick`.
    fn request_resize(&mut self, func: FunctionId, request: SmRate, limit: SmRate) {
        let Some(f) = self.funcs.get(&func) else {
            return;
        };
        let request = request.min(SmRate::FULL);
        let limit = limit.max(request);
        if let Some(pending) = self.pending_resizes.iter_mut().find(|r| r.func == func) {
            pending.request = request;
            pending.limit = limit;
            return;
        }
        if f.spec.quotas.request == request && f.spec.quotas.limit == limit {
            return;
        }
        let due = self.now + self.config.resize_latency;
        self.pending_resizes.push(PendingResize { due, func, request, limit });
        if self.event_active {
            // Never earlier than the next quantum: this wake's apply phase
            // has already run, and the dense stepper would first see the
            // pending resize at the next quantum start (a zero apply
            // latency must not re-wake — and re-step — this instant).
            let at = self.grid_ceil(due).max(self.now + self.config.quantum);
            self.events.push(at, SimEvent::ResizeApply);
        }
    }

    /// Applies every resize whose latency has elapsed: the function's spec
    /// (future launches, capacity) and every live slice on the GPUs.
    fn apply_due_resizes(&mut self) {
        let now = self.now;
        if self.pending_resizes.iter().all(|r| r.due > now) {
            return;
        }
        let mut due = Vec::new();
        self.pending_resizes.retain(|r| {
            if r.due <= now {
                due.push(*r);
                false
            } else {
                true
            }
        });
        for r in due {
            let Some(f) = self.funcs.get_mut(&r.func) else {
                continue;
            };
            let old = f.spec.quotas;
            if r.request > old.request || (r.request == old.request && r.limit > old.limit) {
                f.resizes.record_grow();
            } else {
                f.resizes.record_shrink();
            }
            f.spec.quotas.request = r.request;
            f.spec.quotas.limit = r.limit;
            let ids = f.instance_ids.clone();
            for uid in ids {
                let Some(inst) = self.instances.get(&uid) else {
                    continue;
                };
                let gpus: Vec<(dilu_gpu::InstanceId, GpuAddr)> = inst
                    .gpus
                    .iter()
                    .enumerate()
                    .map(|(stage, &gpu)| (inst.slot_id(stage), gpu))
                    .collect();
                for (slot_id, gpu) in gpus {
                    let idx = self.gpu_index(gpu);
                    if let Some(g) = self.gpus.get_mut(idx) {
                        if g.engine.resize(slot_id, r.request, r.limit).is_ok() {
                            g.policy.notify_resize(slot_id, r.request, r.limit);
                        }
                    }
                }
            }
        }
    }

    fn submit_due_training(&mut self) {
        let now = self.now;
        let due: Vec<FunctionSpec> = {
            let mut due = Vec::new();
            self.pending_training.retain(|(at, spec)| {
                if *at <= now {
                    due.push(spec.clone());
                    false
                } else {
                    true
                }
            });
            due
        };
        for spec in due {
            let at = now + self.config.tick;
            if self.deploy_training(spec.clone()).is_err() {
                // Cluster full or duplicate: retry next second unless the
                // function already exists.
                if !self.funcs.contains_key(&spec.id) {
                    self.pending_training.push((at, spec));
                    if self.event_active {
                        let due = self.grid_ceil(at).max(self.now + self.config.quantum);
                        self.events.push(due, SimEvent::TrainingSubmit);
                    }
                }
            }
        }
    }

    fn promote_ready_instances(&mut self) {
        let now = self.now;
        let mut became_ready = Vec::new();
        for inst in self.instances.values_mut() {
            if let InstanceState::ColdStarting { ready_at } = inst.state {
                if now >= ready_at {
                    inst.state = InstanceState::Running;
                    inst.last_active = now;
                    became_ready.push((inst.uid, inst.func));
                }
            }
        }
        // Drain gateway backlog into newly ready instances.
        for (uid, func) in became_ready {
            if let Some(f) = self.funcs.get_mut(&func) {
                if let Some(inst) = self.instances.get_mut(&uid) {
                    while let Some(req) = f.backlog.pop_front() {
                        inst.pending.push_back(req);
                    }
                }
            }
            self.maybe_start_job(func);
        }
    }

    fn maybe_start_job(&mut self, func: FunctionId) {
        let Some(job) = self.jobs.get_mut(&func) else {
            return;
        };
        if job.phase != JobPhase::WaitingForWorkers {
            return;
        }
        let all_ready = job
            .workers
            .iter()
            .all(|uid| self.instances.get(uid).is_some_and(|i| i.state.is_ready()));
        if !all_ready {
            return;
        }
        job.phase = JobPhase::Compute;
        job.started = Some(self.now);
        job.remaining = (0..job.workers.len()).collect();
        let workers = job.workers.clone();
        for (w, uid) in workers.iter().enumerate() {
            self.push_train_item(func, *uid, w, true);
        }
    }

    fn push_train_item(
        &mut self,
        func: FunctionId,
        uid: InstanceUid,
        worker: usize,
        compute: bool,
    ) {
        let Some(f) = self.funcs.get(&func) else {
            return;
        };
        let training = f.spec.model.profile().training;
        let tag = self.next_tag;
        self.next_tag += 1;
        let payload = if compute {
            WorkPayload::TrainCompute { func, worker }
        } else {
            WorkPayload::TrainComm { func, worker }
        };
        self.tags.insert(tag, payload);
        let item = if compute { training.compute_item(tag) } else { training.idle_item(tag) };
        if let Some(inst) = self.instances.get(&uid) {
            let gpu = inst.gpus[0];
            let slot = inst.slot_id(0);
            let now = self.now;
            let quantum = self.config.quantum;
            let post_step = self.gpu_phase_done;
            let idx = self.gpu_index(gpu);
            let event_active = self.event_active;
            if let Some(g) = self.gpus.get_mut(idx) {
                if event_active && self.busy_gpus.insert(gpu) {
                    Self::catch_up_policy(g, now, quantum, post_step);
                }
                let _ = g.engine.push_work(slot, item);
            }
        }
    }

    fn ingest_arrivals(&mut self) {
        let now = self.now;
        let cutoff = now + self.config.quantum;
        let mut routed: Vec<(FunctionId, Request)> = Vec::new();
        for (id, f) in self.funcs.iter_mut() {
            while f.arrivals.front().is_some_and(|&t| t < cutoff) {
                let arrived = f.arrivals.pop_front().expect("checked front");
                let req = Request { id: self.next_request, arrived };
                self.next_request += 1;
                f.arrived += 1;
                f.sec_arrivals += 1;
                f.window.observe(arrived);
                routed.push((*id, req));
            }
        }
        for (func, req) in routed {
            self.route_request(func, req);
        }
    }

    fn route_request(&mut self, func: FunctionId, req: Request) {
        // Least-loaded ready instance; else least-loaded cold-starting one;
        // else the gateway backlog. Scans only this function's instances
        // (the per-func index), not the cluster.
        let ids: &[InstanceUid] =
            self.funcs.get(&func).map(|f| f.instance_ids.as_slice()).unwrap_or(&[]);
        let instances = &self.instances;
        let candidates = ids.iter().filter_map(|uid| instances.get(uid));
        let mut best_ready: Option<(usize, InstanceUid)> = None;
        let mut best_cold: Option<(usize, InstanceUid)> = None;
        for inst in candidates {
            let key = (inst.load(), inst.uid);
            match inst.state {
                InstanceState::Running => {
                    if best_ready.is_none_or(|b| key < b) {
                        best_ready = Some(key);
                    }
                }
                InstanceState::ColdStarting { .. } => {
                    if best_cold.is_none_or(|b| key < b) {
                        best_cold = Some(key);
                    }
                }
                InstanceState::Draining => {}
            }
        }
        let target = best_ready.or(best_cold).map(|(_, uid)| uid);
        match target {
            Some(uid) => {
                let inst = self.instances.get_mut(&uid).expect("target exists");
                inst.pending.push_back(req);
                if self.event_active {
                    self.dirty.push(uid);
                }
            }
            None => {
                if let Some(f) = self.funcs.get_mut(&func) {
                    f.backlog.push_back(req);
                }
            }
        }
    }

    fn dispatch_batches(&mut self) {
        let now = self.now;
        let mut dispatches: Vec<(InstanceUid, u64, usize)> = Vec::new();
        for inst in self.instances.values_mut() {
            if !inst.state.is_ready() && !matches!(inst.state, InstanceState::Draining) {
                continue;
            }
            let Some(f) = self.funcs.get(&inst.func) else {
                continue;
            };
            let FunctionKind::Inference { slo, batch } = f.spec.kind else {
                continue;
            };
            // Keep a short pipeline of batches queued on the engine slot so
            // the share policy sees backlog pressure (the RCKM reads queue
            // depth / KLC growth as its burst signal).
            let at_stage0 = inst.inflight.iter().filter(|b| b.stage == 0).count();
            if at_stage0 >= 4 {
                continue;
            }
            if inst.pending.is_empty() {
                continue;
            }
            let timeout =
                (slo.mul_f64(self.config.batch_timeout_frac)).min(self.config.batch_timeout_cap);
            let oldest = inst.pending.front().expect("non-empty").arrived;
            let full = inst.pending.len() >= batch as usize;
            let expired = now.saturating_since(oldest) >= timeout;
            if !full && !expired {
                continue;
            }
            let take = inst.pending.len().min(batch as usize);
            let requests: Vec<Request> = inst.pending.drain(..take).collect();
            let batch_id = self.next_batch;
            self.next_batch += 1;
            inst.inflight.push(InflightBatch { batch_id, requests, stage: 0 });
            inst.last_active = now;
            dispatches.push((inst.uid, batch_id, take));
        }
        for (uid, batch_id, size) in dispatches {
            self.push_stage_item(uid, batch_id, 0, size as u32);
        }
    }

    /// Queues the work item for `stage` of a batch on the right GPU.
    fn push_stage_item(&mut self, uid: InstanceUid, batch_id: u64, stage: usize, batch: u32) {
        let Some(inst) = self.instances.get_mut(&uid) else {
            return;
        };
        let Some(f) = self.funcs.get(&inst.func) else {
            return;
        };
        let profile = f.spec.model.profile();
        let stages = inst.gpus.len() as u32;
        let t_total = profile.inference_t_min(batch);
        let t_stage = t_total / u64::from(stages) + self.config.stage_transfer.min(t_total);
        // Each stage hosts 1/stages of the layers, so its kernel stream
        // saturates at roughly that share of the card.
        let sat = profile
            .inference_sat(batch)
            .scale(1.0 / f64::from(stages))
            .max(dilu_gpu::SmRate::from_percent(5.0));
        let blocks = profile.inference_blocks(batch) / u64::from(stages);
        let tag = self.next_tag;
        self.next_tag += 1;
        self.tags.insert(tag, WorkPayload::InferStage { uid, batch_id });
        let gpu = inst.gpus[stage];
        let slot = inst.slot_id(stage);
        let item = dilu_gpu::WorkItem::compute(t_stage, sat, blocks.max(1), tag);
        let now = self.now;
        let quantum = self.config.quantum;
        let post_step = self.gpu_phase_done;
        let idx = self.gpu_index(gpu);
        let event_active = self.event_active;
        if let Some(g) = self.gpus.get_mut(idx) {
            if event_active && self.busy_gpus.insert(gpu) {
                Self::catch_up_policy(g, now, quantum, post_step);
            }
            let _ = g.engine.push_work(slot, item);
        }
    }

    /// Advances one GPU by the quantum starting at `now`, first replaying
    /// any skipped idle cycles into its share policy (capped, see
    /// [`IDLE_REPLAY_CAP`]) so derived policy state evolves as under dense
    /// stepping.
    fn advance_gpu(slot: &mut GpuSlot, now: SimTime, quantum: SimDuration, out: &mut StepOutcome) {
        let gap_cycles = match slot.last_step {
            Some(last) => {
                let expected = last + quantum;
                if now > expected {
                    (now - expected).as_micros() / quantum.as_micros()
                } else {
                    0
                }
            }
            None => now.as_micros() / quantum.as_micros(),
        };
        if gap_cycles > 0 {
            let replay = gap_cycles.min(IDLE_REPLAY_CAP);
            let from = now - quantum * replay;
            slot.engine.idle_fastforward(from, replay, slot.policy.as_mut());
        }
        slot.last_step = Some(now);
        slot.engine.step_into(now, slot.policy.as_mut(), out);
    }

    /// Catches a GPU's share policy up to the current wake, before new work
    /// is queued on it (the idle→busy transition), so the replayed cycles
    /// present the historically accurate workless views.
    ///
    /// `post_step` says whether this wake's GPU phase has already run: a
    /// push from the completion handlers lands *after* it (the dense
    /// stepper would have idle-stepped this GPU at `now` too, so the
    /// replay includes `now`), while a push from the dispatch or
    /// promotion phases lands *before* it (the quantum at `now` is about
    /// to be stepped normally and must not be replayed).
    fn catch_up_policy(slot: &mut GpuSlot, now: SimTime, quantum: SimDuration, post_step: bool) {
        let expected = match slot.last_step {
            Some(last) => last + quantum,
            None => SimTime::ZERO,
        };
        let through = if post_step {
            now
        } else if now.as_micros() >= quantum.as_micros() {
            now - quantum
        } else {
            return;
        };
        if through < expected {
            return;
        }
        let gap_cycles = (through - expected).as_micros() / quantum.as_micros() + 1;
        let replay = gap_cycles.min(IDLE_REPLAY_CAP);
        let from = through - quantum * (replay - 1);
        slot.engine.idle_fastforward(from, replay, slot.policy.as_mut());
        slot.last_step = Some(through);
    }

    /// Credits issued kernel blocks to the cluster and per-function
    /// second counters.
    fn attribute_blocks(&mut self, issued: &[(dilu_gpu::InstanceId, u64)]) {
        for &(slot_id, blocks) in issued {
            if blocks == 0 {
                continue;
            }
            self.total_blocks_sec += blocks;
            if let Some(&(_, _, func)) = self.slot_index.get(&slot_id) {
                if let Some(f) = self.funcs.get_mut(&func) {
                    f.sec_blocks += blocks;
                }
            }
        }
    }

    /// The dense stepper's GPU phase: every GPU, every quantum.
    fn step_gpus(&mut self) {
        let now = self.now;
        let quantum = self.config.quantum;
        let mut completions = Vec::new();
        let mut issued: Vec<(dilu_gpu::InstanceId, u64)> = Vec::new();
        let mut out = std::mem::take(&mut self.outcome_buf);
        for slot in self.gpus.iter_mut() {
            Self::advance_gpu(slot, now, quantum, &mut out);
            slot.used_accum += out.total_used.as_fraction();
            completions.append(&mut out.completions);
            issued.append(&mut out.blocks_issued);
        }
        self.outcome_buf = out;
        self.attribute_blocks(&issued);
        self.gpu_phase_done = true;
        for c in completions {
            self.handle_completion(c);
        }
    }

    fn handle_completion(&mut self, c: dilu_gpu::Completion) {
        let Some(payload) = self.tags.remove(&c.tag) else {
            return;
        };
        match payload {
            WorkPayload::InferStage { uid, batch_id } => {
                self.advance_inference_batch(uid, batch_id, c.at);
            }
            WorkPayload::TrainCompute { func, worker } => {
                self.advance_training(func, worker, true, c.at);
            }
            WorkPayload::TrainComm { func, worker } => {
                self.advance_training(func, worker, false, c.at);
            }
        }
    }

    fn advance_inference_batch(&mut self, uid: InstanceUid, batch_id: u64, at: SimTime) {
        let Some(inst) = self.instances.get_mut(&uid) else {
            return;
        };
        let stages = inst.gpus.len();
        let Some(pos) = inst.inflight.iter().position(|b| b.batch_id == batch_id) else {
            return;
        };
        let next_stage = inst.inflight[pos].stage + 1;
        if next_stage >= stages {
            let batch = inst.inflight.remove(pos);
            inst.last_active = at;
            let func = inst.func;
            let slo = self.funcs.get(&func).and_then(|f| f.spec.slo());
            if let Some(f) = self.funcs.get_mut(&func) {
                for req in &batch.requests {
                    let latency = at.saturating_since(req.arrived);
                    f.latency.record(latency);
                    f.completed += 1;
                    f.sec_completions += 1;
                    if slo.is_some_and(|s| latency > s) {
                        f.sec_violations += 1;
                    }
                }
            }
        } else {
            inst.inflight[pos].stage = next_stage;
            let size = inst.inflight[pos].requests.len() as u32;
            self.push_stage_item(uid, batch_id, next_stage, size);
        }
        if self.event_active {
            // A freed stage-0 slot only matters if requests are waiting to
            // fill it; arrivals and promotions mark the instance dirty
            // themselves when new work shows up later.
            if self.instances.get(&uid).is_some_and(|i| !i.pending.is_empty()) {
                self.dirty.push(uid);
            }
        }
    }

    fn advance_training(
        &mut self,
        func: FunctionId,
        worker: usize,
        was_compute: bool,
        at: SimTime,
    ) {
        let Some(job) = self.jobs.get_mut(&func) else {
            return;
        };
        job.remaining.remove(&worker);
        if !job.remaining.is_empty() {
            return;
        }
        match (job.phase, was_compute) {
            (JobPhase::Compute, true) => {
                job.phase = JobPhase::Comm;
                job.remaining = (0..job.workers.len()).collect();
                let workers = job.workers.clone();
                for (w, uid) in workers.iter().enumerate() {
                    self.push_train_item(func, *uid, w, false);
                }
            }
            (JobPhase::Comm, false) => {
                job.iterations_done += 1;
                let samples = self
                    .funcs
                    .get(&func)
                    .map(|f| u64::from(f.spec.model.profile().training.samples_per_iter))
                    .unwrap_or(0);
                job.samples_done += samples * job.workers.len() as u64;
                if job.iterations_done >= job.target {
                    job.phase = JobPhase::Done;
                    // The exact block-finish instant of the last worker, not
                    // the enclosing quantum's start.
                    job.finished = Some(at);
                    let workers = job.workers.clone();
                    for uid in workers {
                        self.terminate_instance(uid);
                    }
                } else {
                    job.phase = JobPhase::Compute;
                    job.remaining = (0..job.workers.len()).collect();
                    let workers = job.workers.clone();
                    for (w, uid) in workers.iter().enumerate() {
                        self.push_train_item(func, *uid, w, true);
                    }
                }
            }
            _ => {}
        }
    }

    fn reap_drained(&mut self) {
        if self.draining_count == 0 {
            return;
        }
        let drained: Vec<InstanceUid> = self
            .instances
            .values()
            .filter(|i| {
                matches!(i.state, InstanceState::Draining)
                    && i.inflight.is_empty()
                    && i.pending.is_empty()
            })
            .map(|i| i.uid)
            .collect();
        for uid in drained {
            self.terminate_instance(uid);
        }
    }

    fn terminate_instance(&mut self, uid: InstanceUid) {
        let Some(inst) = self.instances.remove(&uid) else {
            return;
        };
        if matches!(inst.state, InstanceState::Draining) {
            self.draining_count = self.draining_count.saturating_sub(1);
        }
        self.dirty.retain(|&d| d != uid);
        self.cancel_deadline(uid);
        if let Some(f) = self.funcs.get_mut(&inst.func) {
            f.instance_ids.retain(|&i| i != uid);
        }
        // Requeue any stranded requests at the gateway.
        if let Some(f) = self.funcs.get_mut(&inst.func) {
            for req in inst.pending.iter() {
                f.backlog.push_back(*req);
            }
        }
        for (stage, gpu) in inst.gpus.iter().enumerate() {
            let slot = inst.slot_id(stage);
            self.slot_index.remove(&slot);
            if let Some(g) = self.gpu_slot_mut(*gpu) {
                let _ = g.engine.evict(slot);
            }
        }
    }

    fn cluster_view(&self) -> ClusterView {
        let mut views: BTreeMap<GpuAddr, GpuView> = self
            .spec
            .gpu_addrs()
            .map(|addr| {
                (
                    addr,
                    GpuView {
                        addr,
                        mem_capacity: self.spec.gpu_mem_bytes,
                        mem_reserved: 0,
                        residents: Vec::new(),
                    },
                )
            })
            .collect();
        for inst in self.instances.values() {
            let Some(f) = self.funcs.get(&inst.func) else {
                continue;
            };
            let class = if f.spec.kind.is_inference() {
                TaskClass::SloSensitive
            } else {
                TaskClass::BestEffort
            };
            let per_gpu_mem = f.spec.quotas.mem_bytes;
            for gpu in &inst.gpus {
                if let Some(v) = views.get_mut(gpu) {
                    v.mem_reserved += per_gpu_mem;
                    v.residents.push(ResidentInfo {
                        func: inst.func,
                        class,
                        request: f.spec.quotas.request,
                        limit: f.spec.quotas.limit,
                        mem_bytes: per_gpu_mem,
                    });
                }
            }
        }
        ClusterView { gpus: views.into_values().collect() }
    }

    fn launch_instance(&mut self, func: FunctionId, prewarmed: bool) -> Result<InstanceUid, ()> {
        let view = self.cluster_view();
        let spec = self.funcs.get(&func).ok_or(())?.spec.clone();
        let gpus = self.placement.place(&spec, &view).ok_or(())?;
        debug_assert_eq!(gpus.len() as u32, spec.gpus_per_instance);
        let uid = InstanceUid(self.next_uid);
        self.next_uid += 1;
        let class =
            if spec.kind.is_inference() { TaskClass::SloSensitive } else { TaskClass::BestEffort };
        let state = if prewarmed {
            InstanceState::Running
        } else {
            let delay = cold_start_duration(spec.model);
            if let Some(f) = self.funcs.get_mut(&func) {
                f.cold_starts.record(delay);
            }
            let ready_at = self.now + delay;
            if self.event_active {
                // This wake's promotion phase has already run; the dense
                // stepper would promote at the next processed quantum.
                let due = self.grid_ceil(ready_at).max(self.now + self.config.quantum);
                self.events.push(due, SimEvent::ColdStartReady(uid));
            }
            InstanceState::ColdStarting { ready_at }
        };
        let inst = Instance {
            uid,
            func,
            gpus: gpus.clone(),
            state,
            pending: VecDeque::new(),
            inflight: Vec::new(),
            last_active: self.now,
        };
        for (stage, gpu) in gpus.iter().enumerate() {
            let slot = inst.slot_id(stage);
            let cfg = SlotConfig {
                class,
                request: spec.quotas.request,
                limit: spec.quotas.limit,
                mem_bytes: spec.quotas.mem_bytes,
            };
            let gidx = self.gpu_index(*gpu);
            let gslot = self.gpus.get_mut(gidx).expect("placement returned a valid GPU");
            if self.event_active {
                // Close any idle gap *before* the new slot joins the
                // roster: replayed cycles must show the pre-admission
                // residents only, and the fresh slot's policy history must
                // start here — exactly as under dense stepping.
                Self::catch_up_policy(gslot, self.now, self.config.quantum, self.gpu_phase_done);
            }
            let admitted = gslot.engine.admit(slot, cfg);
            if admitted.is_err() {
                // Roll back earlier stages.
                for (s, g) in gpus.iter().enumerate().take(stage) {
                    let sid = inst.slot_id(s);
                    self.slot_index.remove(&sid);
                    if let Some(gs) = self.gpu_slot_mut(*g) {
                        let _ = gs.engine.evict(sid);
                    }
                }
                return Err(());
            }
            self.slot_index.insert(slot, (uid, stage, func));
        }
        if let Some(f) = self.funcs.get_mut(&func) {
            f.instance_ids.push(uid);
        }
        self.instances.insert(uid, inst);
        Ok(uid)
    }

    /// Per-GPU guaranteed-SM slack, and per function the tightest slack
    /// across the GPUs hosting its (non-draining) instances.
    ///
    /// A resize re-quotas *every* slice of the function, so a GPU hosting
    /// `n` of them absorbs `n×` the per-slice growth — its slack is divided
    /// by the slice count before taking the minimum.
    fn vertical_headroom(&self, cluster: &ClusterView) -> BTreeMap<FunctionId, SmRate> {
        let slack: BTreeMap<GpuAddr, SmRate> =
            cluster.gpus.iter().map(|g| (g.addr, g.request_slack())).collect();
        let mut slices: BTreeMap<(FunctionId, GpuAddr), u32> = BTreeMap::new();
        for inst in self.instances.values() {
            if matches!(inst.state, InstanceState::Draining) {
                continue;
            }
            for gpu in &inst.gpus {
                *slices.entry((inst.func, *gpu)).or_insert(0) += 1;
            }
        }
        let mut headroom: BTreeMap<FunctionId, SmRate> = BTreeMap::new();
        for (&(func, gpu), &count) in &slices {
            let per_slice = slack
                .get(&gpu)
                .copied()
                .unwrap_or(SmRate::ZERO)
                .scale(1.0 / f64::from(count.max(1)));
            headroom.entry(func).and_modify(|h| *h = h.min(per_slice)).or_insert(per_slice);
        }
        headroom
    }

    fn run_controller(&mut self) {
        if self.audit_hook.is_some() {
            let snapshot = self.audit();
            if let Some(hook) = self.audit_hook.as_mut() {
                hook(&snapshot);
            }
        }
        let now = self.now;
        let cluster = self.cluster_view();
        let headroom = self.vertical_headroom(&cluster);
        let mut views = Vec::new();
        let instances = &self.instances;
        for (id, f) in self.funcs.iter_mut() {
            f.window.roll_to(now);
            if !f.spec.kind.is_inference() {
                continue;
            }
            let mut ready = 0u32;
            let mut starting = 0u32;
            let mut backlog = f.backlog.len();
            let mut max_idle = SimDuration::ZERO;
            for inst in instances.values().filter(|i| i.func == *id) {
                match inst.state {
                    InstanceState::Running => {
                        ready += 1;
                        backlog += inst.load();
                        if inst.load() == 0 {
                            max_idle = max_idle.max(now.saturating_since(inst.last_active));
                        }
                    }
                    InstanceState::ColdStarting { .. } => {
                        starting += 1;
                        backlog += inst.load();
                    }
                    InstanceState::Draining => {}
                }
            }
            views.push(FunctionScaleView {
                func: *id,
                kind: f.spec.kind,
                rps_window: f.window.samples().to_vec(),
                ready_instances: ready,
                starting_instances: starting,
                backlog,
                capacity_rps: f.spec.capacity_rps(),
                max_idle,
                quota: QuotaView {
                    request: f.spec.quotas.request,
                    limit: f.spec.quotas.limit,
                    headroom: headroom.get(id).copied().unwrap_or(SmRate::ZERO),
                    capacity_rps_at_limit: f.spec.capacity_rps_at(f.spec.quotas.limit),
                },
            });
        }
        let actions = self.controller.on_tick(now, &views, &cluster);
        for action in actions {
            match action {
                ScaleAction::ScaleOut { func, count } => {
                    for _ in 0..count {
                        let _ = self.launch_instance(func, false);
                    }
                }
                ScaleAction::ScaleIn { func, count } => {
                    for _ in 0..count {
                        // Drain the most idle ready instance.
                        let victim = self
                            .instances
                            .values()
                            .filter(|i| i.func == func && i.state.is_ready())
                            .min_by_key(|i| {
                                (
                                    std::cmp::Reverse(
                                        now.saturating_since(i.last_active).as_micros(),
                                    ),
                                    i.uid,
                                )
                            })
                            .map(|i| i.uid);
                        if let Some(uid) = victim {
                            if let Some(inst) = self.instances.get_mut(&uid) {
                                inst.state = InstanceState::Draining;
                                self.draining_count += 1;
                                if self.event_active {
                                    // Remaining pending work may still
                                    // dispatch while draining.
                                    self.dirty.push(uid);
                                }
                            }
                        }
                    }
                }
                ScaleAction::ResizeQuota { func, request, limit } => {
                    self.request_resize(func, request, limit);
                }
            }
        }
    }

    fn sample_metrics(&mut self) {
        let sec = self.now.as_secs();
        if self.last_sampled_sec == Some(sec) {
            return;
        }
        self.last_sampled_sec = Some(sec);
        // Quanta covered by this sampling window. Skipped (idle) quanta
        // contribute exactly 0 to `used_accum`, so dividing by the window
        // size gives the same average whether or not they were stepped —
        // the dense stepper and the event core agree bit-for-bit.
        let window_quanta = self.sample_clock.window_quanta(self.now, self.config.quantum);
        let mut samples = Vec::with_capacity(self.gpus.len());
        let mut occupied = 0u32;
        for slot in self.gpus.iter_mut() {
            let avg_used = slot.used_accum / window_quanta as f64;
            slot.used_accum = 0.0;
            let is_occupied = slot.engine.resident_count() > 0;
            if is_occupied {
                occupied += 1;
            }
            samples.push(GpuUsageSample {
                sm_capacity: 100.0,
                sm_used: avg_used * 100.0,
                mem_capacity: slot.engine.mem_capacity(),
                mem_used: slot.engine.mem_used(),
                occupied: is_occupied,
            });
        }
        self.fragmentation.push(FragmentationSnapshot::from_samples(&samples));
        self.occupied_series.push((sec, occupied));
        self.peak_gpus = self.peak_gpus.max(occupied);
        self.gpu_seconds += f64::from(occupied) * self.config.tick.as_secs_f64();
        let instance_gpus: usize = self.instances.values().map(|i| i.gpus.len()).sum();
        self.instance_gpu_seconds += instance_gpus as f64 * self.config.tick.as_secs_f64();
        self.total_kernel_series.push((sec, self.total_blocks_sec));
        self.total_blocks_sec = 0;
        for f in self.funcs.values_mut() {
            f.kernel_series.push((sec, f.sec_blocks));
            f.sec_blocks = 0;
        }
        // Inference timelines need instance counts; gather after borrows end.
        let ready_counts: BTreeMap<FunctionId, u32> = self
            .funcs
            .keys()
            .map(|&id| {
                (
                    id,
                    self.instances.values().filter(|i| i.func == id && i.state.is_ready()).count()
                        as u32,
                )
            })
            .collect();
        for (id, f) in self.funcs.iter_mut() {
            if f.spec.kind.is_inference() {
                f.timeline.push(TimelinePoint {
                    sec,
                    arrivals: f.sec_arrivals,
                    completions: f.sec_completions,
                    violations: f.sec_violations,
                    ready_instances: ready_counts.get(id).copied().unwrap_or(0),
                });
            }
            f.sec_arrivals = 0;
            f.sec_completions = 0;
            f.sec_violations = 0;
        }
    }
}

fn new_func_state(spec: FunctionSpec, arrivals: Vec<SimTime>) -> FuncState {
    FuncState {
        spec,
        instance_ids: Vec::new(),
        arrivals: arrivals.into(),
        backlog: VecDeque::new(),
        latency: LatencyRecorder::new(),
        arrived: 0,
        completed: 0,
        cold_starts: ColdStartCounter::new(),
        resizes: ResizeCounter::new(),
        window: RateWindow::new(40),
        timeline: Vec::new(),
        sec_arrivals: 0,
        sec_completions: 0,
        sec_violations: 0,
        sec_blocks: 0,
        kernel_series: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dilu_gpu::policies::FairSharePolicy;
    use dilu_gpu::SmRate;
    use dilu_models::ModelId;
    use dilu_workload::{ArrivalProcess, PoissonProcess};

    /// Places on the first GPU (or GPUs) with enough free memory.
    struct FirstFit;

    impl Placement for FirstFit {
        fn place(&mut self, func: &FunctionSpec, cluster: &ClusterView) -> Option<Vec<GpuAddr>> {
            let mut chosen = Vec::new();
            for gpu in &cluster.gpus {
                if gpu.mem_free() >= func.quotas.mem_bytes && !chosen.contains(&gpu.addr) {
                    chosen.push(gpu.addr);
                    if chosen.len() as u32 == func.gpus_per_instance {
                        return Some(chosen);
                    }
                }
            }
            None
        }

        fn name(&self) -> &str {
            "first-fit"
        }
    }

    struct NullScaler;

    impl Autoscaler for NullScaler {
        fn on_tick(&mut self, _now: SimTime, _functions: &[FunctionScaleView]) -> Vec<ScaleAction> {
            Vec::new()
        }

        fn name(&self) -> &str {
            "null"
        }
    }

    /// Scales out once at t=2s (exercises the cold-start path).
    struct OneShotScaler {
        fired: bool,
        func: FunctionId,
    }

    impl Autoscaler for OneShotScaler {
        fn on_tick(&mut self, now: SimTime, _functions: &[FunctionScaleView]) -> Vec<ScaleAction> {
            if !self.fired && now >= SimTime::from_secs(2) {
                self.fired = true;
                vec![ScaleAction::ScaleOut { func: self.func, count: 1 }]
            } else {
                Vec::new()
            }
        }

        fn name(&self) -> &str {
            "one-shot"
        }
    }

    fn fair_factory() -> impl PolicyFactory {
        // `named` over a bare closure: the factory reports "fair-share"
        // instead of the blanket impl's "closure-policy".
        crate::named("fair-share", || Box::new(FairSharePolicy))
    }

    fn inference_spec(id: u32, model: ModelId, batch: u32) -> FunctionSpec {
        let profile = model.profile();
        let sat = profile.inference_sat(batch);
        FunctionSpec {
            id: FunctionId(id),
            name: format!("{}-inf", profile.name),
            model,
            kind: FunctionKind::Inference { slo: profile.slo, batch },
            quotas: crate::Quotas::new(sat, sat.scale(2.0), profile.infer_mem_bytes),
            gpus_per_instance: 1,
        }
    }

    #[test]
    fn single_inference_function_serves_requests() {
        let mut sim = ClusterSim::new(
            ClusterSpec::single_node(2),
            SimConfig::default(),
            Box::new(FirstFit),
            Box::new(NullScaler),
            &fair_factory(),
        );
        let spec = inference_spec(1, ModelId::RobertaLarge, 4);
        let arrivals = PoissonProcess::new(20.0, 7).generate(SimTime::from_secs(20));
        let expected = arrivals.len() as u64;
        sim.deploy_inference(spec, 1, arrivals).unwrap();
        sim.run_until(SimTime::from_secs(25));
        let report = sim.into_report();
        let f = &report.inference[&FunctionId(1)];
        assert_eq!(f.arrived, expected);
        assert!(f.completed >= expected * 95 / 100, "completed {}/{}", f.completed, expected);
        // Solo at full grant: latency ≈ exec time + batching wait, well under SLO.
        assert!(f.svr() < 0.05, "svr {}", f.svr());
        assert!(f.latency.p50() >= SimDuration::from_millis(5));
    }

    #[test]
    fn training_job_completes_and_frees_gpus() {
        let mut sim = ClusterSim::new(
            ClusterSpec::single_node(4),
            SimConfig::default(),
            Box::new(FirstFit),
            Box::new(NullScaler),
            &fair_factory(),
        );
        let model = ModelId::BertBase;
        let spec = FunctionSpec {
            id: FunctionId(1),
            name: "bert-train".into(),
            model,
            kind: FunctionKind::Training { workers: 2, iterations: 20 },
            quotas: crate::Quotas::equal(
                SmRate::from_percent(60.0),
                model.profile().training.mem_bytes,
            ),
            gpus_per_instance: 1,
        };
        sim.deploy_training(spec).unwrap();
        // FirstFit packs both 6 GB workers onto GPU 0; both saturate at 50%
        // so they still run at full rate side by side.
        assert_eq!(sim.occupied_gpus(), 1);
        // 20 iterations × (60+25) ms ≈ 1.7 s.
        sim.run_until(SimTime::from_secs(5));
        assert_eq!(sim.occupied_gpus(), 0, "workers must be released at completion");
        let report = sim.into_report();
        let t = &report.training[&FunctionId(1)];
        assert_eq!(t.iterations_done, 20);
        let jct = t.jct().expect("job finished");
        let ideal = SimDuration::from_millis((60 + 25) * 20);
        // Completion timestamps land at exact block-finish instants (not
        // quantum starts), so the JCT can never undercut the analytic
        // ideal — only microsecond quantisation slack remains.
        assert!(jct >= ideal.mul_f64(0.9999), "jct {jct} vs ideal {ideal}");
        assert!(jct <= ideal.mul_f64(1.3), "jct {jct} too slow");
        let thr = t.throughput(report.horizon);
        assert!(thr > 0.0);
    }

    #[test]
    fn cold_started_instance_picks_up_backlog() {
        let spec = inference_spec(1, ModelId::ResNet152, 4);
        let func = spec.id;
        let mut sim = ClusterSim::new(
            ClusterSpec::single_node(1),
            SimConfig::default(),
            Box::new(FirstFit),
            Box::new(OneShotScaler { fired: false, func }),
            &fair_factory(),
        );
        // No initial instances: everything backlogs until the scaler fires.
        let arrivals = PoissonProcess::new(5.0, 3).generate(SimTime::from_secs(10));
        sim.deploy_inference(spec, 0, arrivals).unwrap();
        sim.run_until(SimTime::from_secs(20));
        let report = sim.into_report();
        let f = &report.inference[&func];
        assert_eq!(f.cold_starts.count(), 1);
        assert!(f.completed > 0, "backlog must drain after cold start");
        // Early requests waited out the entire cold start (the scaler fired
        // at t=2 s, the first arrivals landed before that): with exact
        // completion timestamps the full cold-start delay is a hard lower
        // bound on the worst latency, no half-delay slack needed.
        assert!(f.latency.quantile(1.0) >= cold_start_duration(ModelId::ResNet152));
    }

    #[test]
    fn pipelined_llm_instance_spans_gpus() {
        let model = ModelId::Llama2_7b;
        let profile = model.profile();
        let mut sim = ClusterSim::new(
            ClusterSpec::single_node(4),
            SimConfig::default(),
            Box::new(FirstFit),
            Box::new(NullScaler),
            &fair_factory(),
        );
        let spec = FunctionSpec {
            id: FunctionId(1),
            name: "llama-inf".into(),
            model,
            kind: FunctionKind::Inference { slo: profile.slo, batch: 2 },
            quotas: crate::Quotas::new(
                SmRate::from_percent(40.0),
                SmRate::from_percent(80.0),
                profile.infer_mem_bytes / 4,
            ),
            gpus_per_instance: 4,
        };
        let arrivals = PoissonProcess::new(2.0, 5).generate(SimTime::from_secs(20));
        let expected = arrivals.len() as u64;
        sim.deploy_inference(spec, 1, arrivals).unwrap();
        assert_eq!(sim.occupied_gpus(), 4, "stages must land on 4 GPUs");
        sim.run_until(SimTime::from_secs(30));
        let report = sim.into_report();
        let f = &report.inference[&FunctionId(1)];
        assert!(f.completed >= expected * 9 / 10, "completed {}/{}", f.completed, expected);
        // Per-token display latency should be in tens of ms.
        assert!(f.p95_display() < SimDuration::from_millis(200));
    }

    /// Resizes a function's quotas at t=2 s and records the quota views it
    /// is shown afterwards (shared out through `Rc` so the test can assert
    /// on what the control plane actually saw).
    struct ResizeProbe {
        func: FunctionId,
        fired: bool,
        seen: std::rc::Rc<std::cell::RefCell<Vec<QuotaView>>>,
    }

    impl ElasticityController for ResizeProbe {
        fn on_tick(
            &mut self,
            now: SimTime,
            functions: &[FunctionScaleView],
            cluster: &ClusterView,
        ) -> Vec<ScaleAction> {
            assert_eq!(cluster.gpus.len(), 2, "controller sees the whole cluster");
            if let Some(f) = functions.iter().find(|f| f.func == self.func) {
                self.seen.borrow_mut().push(f.quota);
            }
            if !self.fired && now >= SimTime::from_secs(2) {
                self.fired = true;
                return vec![ScaleAction::ResizeQuota {
                    func: self.func,
                    request: SmRate::from_percent(80.0),
                    limit: SmRate::from_percent(90.0),
                }];
            }
            Vec::new()
        }

        fn name(&self) -> &str {
            "resize-probe"
        }
    }

    #[test]
    fn vertical_resizes_apply_and_are_counted() {
        let spec = inference_spec(1, ModelId::RobertaLarge, 4);
        let func = spec.id;
        let (req0, lim0) = (spec.quotas.request, spec.quotas.limit);
        let seen = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let mut sim = ClusterSim::with_controller(
            ClusterSpec::single_node(2),
            SimConfig::default(),
            Box::new(FirstFit),
            Box::new(ResizeProbe { func, fired: false, seen: seen.clone() }),
            &fair_factory(),
        );
        let arrivals = PoissonProcess::new(10.0, 7).generate(SimTime::from_secs(6));
        sim.deploy_inference(spec, 1, arrivals).unwrap();
        sim.run_until(SimTime::from_secs(6));
        let report = sim.into_report();
        let f = &report.inference[&func];
        assert_eq!(f.resizes.grows(), 1, "one grow resize");
        assert_eq!(f.resizes.total(), 1);
        assert_eq!(report.total_resizes(), 1);
        assert_eq!(f.cold_starts.count(), 0, "vertical scaling pays no cold start");
        let seen = seen.borrow();
        // Before the resize the controller saw the deployed quotas plus the
        // GPU's guaranteed-SM slack as vertical headroom.
        let before = seen.first().expect("ticks before the resize");
        assert_eq!(before.request, req0);
        assert_eq!(before.limit, lim0);
        assert!((before.headroom.as_fraction() - (1.0 - req0.as_fraction())).abs() < 1e-9);
        assert!(before.capacity_rps_at_limit > 0.0);
        // Within one tick of the decision (1 ms apply latency ≪ 1 s tick)
        // the views reflect the new quotas, and headroom shrank to match.
        let after = seen.last().expect("ticks after the resize");
        assert_eq!(after.request, SmRate::from_percent(80.0));
        assert_eq!(after.limit, SmRate::from_percent(90.0));
        assert!((after.headroom.as_fraction() - 0.2).abs() < 1e-9);
    }

    /// Re-emits the same grow every tick until the spec reflects it — the
    /// steady-state behaviour of a real controller whose decision stands
    /// until applied.
    struct PersistentResizer {
        func: FunctionId,
        target: SmRate,
    }

    impl ElasticityController for PersistentResizer {
        fn on_tick(
            &mut self,
            _now: SimTime,
            functions: &[FunctionScaleView],
            _cluster: &ClusterView,
        ) -> Vec<ScaleAction> {
            match functions.iter().find(|f| f.func == self.func) {
                Some(f) if f.quota.request < self.target => vec![ScaleAction::ResizeQuota {
                    func: self.func,
                    request: self.target,
                    limit: self.target,
                }],
                _ => Vec::new(),
            }
        }

        fn name(&self) -> &str {
            "persistent-resizer"
        }
    }

    #[test]
    fn zero_resize_latency_matches_dense_stepping() {
        // With resize_latency = 0 the controller's decision is due at the
        // very instant it was made — after this wake's apply phase already
        // ran. The event core must defer it to the next quantum (where the
        // dense stepper first sees it), not re-wake and re-step the same
        // instant.
        let run = |time_model: TimeModel| {
            let spec = inference_spec(1, ModelId::BertBase, 4);
            let func = spec.id;
            let config =
                SimConfig { resize_latency: SimDuration::ZERO, time_model, ..SimConfig::default() };
            let mut sim = ClusterSim::with_controller(
                ClusterSpec::single_node(1),
                config,
                Box::new(FirstFit),
                Box::new(PersistentResizer { func, target: SmRate::from_percent(70.0) }),
                &fair_factory(),
            );
            let arrivals = PoissonProcess::new(20.0, 5).generate(SimTime::from_secs(6));
            sim.deploy_inference(spec, 1, arrivals).unwrap();
            // A collocated always-busy training worker guarantees the GPU
            // is mid-work at the instant the resize decision lands — a
            // same-instant re-wake would step it twice and double-issue
            // kernel blocks.
            let train = FunctionSpec {
                id: FunctionId(2),
                name: "train".into(),
                model: ModelId::BertBase,
                kind: FunctionKind::Training { workers: 1, iterations: 10_000 },
                quotas: crate::Quotas::equal(
                    SmRate::from_percent(30.0),
                    ModelId::BertBase.profile().training.mem_bytes,
                ),
                gpus_per_instance: 1,
            };
            sim.deploy_training(train).unwrap();
            sim.run_until(SimTime::from_secs(8));
            sim.into_report()
        };
        let dense = run(TimeModel::DenseQuantum);
        let event = run(TimeModel::EventDriven);
        assert_eq!(dense.total_resizes(), 1);
        assert_eq!(
            format!("{dense:?}"),
            format!("{event:?}"),
            "zero-latency resizes must not desynchronise the time models"
        );
    }

    #[test]
    fn re_requested_resizes_keep_their_original_due_time() {
        // With resize_latency longer than the tick, a controller re-emitting
        // its decision every tick must not push the apply out forever.
        let spec = inference_spec(1, ModelId::BertBase, 4);
        let func = spec.id;
        let config =
            SimConfig { resize_latency: SimDuration::from_secs(2), ..SimConfig::default() };
        let mut sim = ClusterSim::with_controller(
            ClusterSpec::single_node(1),
            config,
            Box::new(FirstFit),
            Box::new(PersistentResizer { func, target: SmRate::from_percent(70.0) }),
            &fair_factory(),
        );
        let arrivals = PoissonProcess::new(5.0, 3).generate(SimTime::from_secs(8));
        sim.deploy_inference(spec, 1, arrivals).unwrap();
        sim.run_until(SimTime::from_secs(8));
        let report = sim.into_report();
        assert_eq!(
            report.inference[&func].resizes.total(),
            1,
            "the resize must apply once despite per-tick re-requests"
        );
    }

    #[test]
    fn duplicate_deployment_is_rejected() {
        let mut sim = ClusterSim::new(
            ClusterSpec::single_node(1),
            SimConfig::default(),
            Box::new(FirstFit),
            Box::new(NullScaler),
            &fair_factory(),
        );
        let spec = inference_spec(1, ModelId::BertBase, 4);
        sim.deploy_inference(spec.clone(), 0, Vec::new()).unwrap();
        let err = sim.deploy_inference(spec, 0, Vec::new()).unwrap_err();
        assert_eq!(err, DeployError::DuplicateFunction(FunctionId(1)));
    }

    #[test]
    fn report_contains_fragmentation_and_occupancy_series() {
        let mut sim = ClusterSim::new(
            ClusterSpec::single_node(2),
            SimConfig::default(),
            Box::new(FirstFit),
            Box::new(NullScaler),
            &fair_factory(),
        );
        let spec = inference_spec(1, ModelId::BertBase, 4);
        let arrivals = PoissonProcess::new(10.0, 1).generate(SimTime::from_secs(5));
        sim.deploy_inference(spec, 1, arrivals).unwrap();
        sim.run_until(SimTime::from_secs(6));
        let report = sim.into_report();
        assert!(!report.fragmentation.is_empty());
        assert!(report.peak_gpus >= 1);
        assert!(report.gpu_time >= SimDuration::from_secs(4));
        assert!(report.total_kernel_series.iter().map(|&(_, b)| b).sum::<u64>() > 0);
        // BERT is tiny and bursts are short: the occupied GPU runs far below
        // 100% SM — static exclusive occupancy shows up as fragmentation.
        assert!(report.fragmentation.mean_sm_fragmentation() > 0.3);
    }
}

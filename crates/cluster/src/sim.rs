//! The cluster simulation driver: phase orchestration over the control
//! plane and the node plane.
//!
//! [`ClusterSim`] is layered. The **control plane** decides and accounts —
//! arrival ingest and routing ([`crate::dispatch`]), instance and
//! training-job lifecycle ([`crate::lifecycle`]), elasticity execution,
//! metrics, and auditing ([`crate::elasticity`]). The **node plane**
//! ([`crate::nodes`]) owns per-node GPU runtimes and steps them — serially
//! or across a deterministic scoped-thread pool ([`SimConfig::threads`]).
//! This module owns the state shared by both planes and sequences the
//! phases.
//!
//! Two time models drive the phases over the same state and the same
//! semantics:
//!
//! * [`TimeModel::EventDriven`] (the default) — a wake-on-work engine over
//!   [`dilu_sim::EventQueue`]. The cluster sleeps until the next
//!   [`SimEvent`]; GPUs are stepped only while they hold work, idle
//!   instances and empty quanta are never walked, and batch-formation
//!   deadlines are cancellable events instead of per-quantum polls. Wall
//!   clock scales with *activity*, not cluster size × simulated time.
//! * [`TimeModel::DenseQuantum`] — the original dense stepper that walks
//!   every GPU, instance, and queue each 5 ms quantum. Kept as the
//!   executable specification: the event engine is tested to reproduce its
//!   reports (see `tests/properties.rs`).
//!
//! Both models run on the same quantum grid (grants are renegotiated each
//! token cycle), so an event wake is always a grid instant and skipping a
//! grid instant is only allowed when it is provably a no-op. And both
//! models produce byte-identical reports at every `threads` setting: the
//! node plane merges per-node step outcomes in fixed node order, so
//! parallelism changes wall clock, never results.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};

use dilu_metrics::{
    ColdStartCounter, FragmentationStats, LatencyRecorder, PhaseProfile, PhaseProfiler, RateWindow,
    ResizeCounter, SampleClock, SimPhase,
};

use dilu_sim::{EventQueue, SimDuration, SimTime};

use crate::audit::AuditHook;
use crate::dispatch::TagSlab;
use crate::elasticity::PendingResize;
use crate::instance::{Instance, Request};
use crate::lifecycle::TrainingJob;
use crate::nodes::{JobKind, NodePlane, PoolShared, StepPool};
use crate::report::{ClusterReport, FunctionReport, TimelinePoint, TrainingReport};
use crate::traits::{Autoscaler, ClusterView, ElasticityController, Placement, PolicyFactory};
use crate::{ClusterSpec, FunctionId, FunctionKind, FunctionSpec, InstanceState, InstanceUid};

/// How simulated time advances in [`ClusterSim::run_until`]: a
/// wake-on-work event engine by default, or the legacy dense stepper kept
/// as the executable specification the event core is verified against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub enum TimeModel {
    /// Wake-on-work event engine: idle GPUs and quanta are skipped.
    ///
    /// Reproduces the dense stepper's reports byte-for-byte for every
    /// share policy whose derived state reaches a fixed point within the
    /// bounded idle-replay window (all shipped policies do; see
    /// `dilu_gpu::SharePolicy` on event-driven drivers). A custom policy
    /// keyed on idle spans longer than that window should use
    /// [`TimeModel::DenseQuantum`].
    #[default]
    EventDriven,
    /// The legacy dense stepper: every GPU walked every quantum.
    DenseQuantum,
}

/// Tunables of the serving plane.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// GPU scheduling quantum (the paper's 5 ms token period).
    pub quantum: SimDuration,
    /// Fraction of the SLO a partial batch may wait before dispatch.
    pub batch_timeout_frac: f64,
    /// Cap on the batching wait regardless of SLO.
    pub batch_timeout_cap: SimDuration,
    /// Extra per-stage cost modelling activation transfer in pipelines.
    pub stage_transfer: SimDuration,
    /// Autoscaler tick and metrics sampling period.
    pub tick: SimDuration,
    /// Delay between a [`ScaleAction::ResizeQuota`] decision and the new
    /// quotas reaching the GPUs (the paper's millisecond-scale vertical
    /// scaling, vs. the seconds-scale cold start of a scale-out).
    ///
    /// [`ScaleAction::ResizeQuota`]: crate::ScaleAction::ResizeQuota
    pub resize_latency: SimDuration,
    /// The time model driving [`ClusterSim::run_until`].
    pub time_model: TimeModel,
    /// Threads stepping the node plane's GPUs (clamped to ≥ 1; values
    /// above the node count gain nothing). `1` steps serially on the
    /// simulation thread; `n > 1` fans busy nodes out over up to `n − 1`
    /// pool workers plus the simulation thread. Reports are byte-identical
    /// at every setting — per-node outcomes are merged in fixed node
    /// order — so this knob trades wall clock only, never results.
    ///
    /// An explicit count is honored as given, not clamped to the host's
    /// cores: wall-clock wins need spare hardware threads, and an
    /// oversubscribed count runs correctly but slower (the OS time-slices
    /// the workers).
    ///
    /// Defaults to the `DILU_THREADS` environment variable when set (and
    /// ≥ 1), else `1`.
    pub threads: u32,
    /// The network/topology plane. `None` (the default) keeps the legacy
    /// constants: cold starts cost [`crate::cold_start_duration`] and
    /// pipeline stages add [`SimConfig::stage_transfer`] — reports are
    /// byte-identical to pre-network builds. `Some` makes cold starts pay
    /// for weight bytes over contended links (with per-node LRU model
    /// caches short-circuiting repeat fetches) and pipeline handoffs pay
    /// for activation bytes.
    pub network: Option<dilu_net::NetworkConfig>,
    /// Enables the per-phase wall-clock profiler
    /// ([`dilu_metrics::PhaseProfiler`]): every simulation wake attributes
    /// its time to the canonical phases, readable afterwards via
    /// [`ClusterSim::phase_profile`]. Off by default — profiling reads the
    /// wall clock around every phase, which costs a few percent at macro
    /// scale. Purely observational: reports are byte-identical either way.
    pub profile: bool,
    /// Cap on the pending-arrival window a streaming deployment
    /// ([`ClusterSim::deploy_inference_streaming`]) keeps in memory per
    /// function. The window refills in chunks of at most this many
    /// instants as ingest drains it; `0` means unbounded (the whole
    /// stream is pulled on the first refill, reproducing pre-streaming
    /// memory behaviour). Because arrival processes draw identical
    /// instants at every chunking (see
    /// [`dilu_workload::ArrivalProcess::refill`]), reports are
    /// byte-identical at every setting — the window trades peak memory
    /// only, never results.
    pub arrival_window: u32,
    /// Records per-function time series (per-second [`TimelinePoint`]s and
    /// kernel-block counts) in the report. On by default; production-scale
    /// scenarios (many thousands of functions over long horizons) turn it
    /// off, since those series cost O(functions × seconds) memory.
    /// Cluster-level series are always recorded.
    pub function_series: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            quantum: SimDuration::from_millis(5),
            batch_timeout_frac: 0.25,
            batch_timeout_cap: SimDuration::from_millis(100),
            stage_transfer: SimDuration::from_millis(2),
            tick: SimDuration::from_secs(1),
            resize_latency: SimDuration::from_millis(1),
            time_model: TimeModel::EventDriven,
            threads: default_threads(),
            network: None,
            profile: false,
            arrival_window: 256,
            function_series: true,
        }
    }
}

/// The `DILU_THREADS` environment override, else 1 — read per call so the
/// test suite (and CI's `DILU_THREADS=4` lane) can sweep parallelism
/// without touching every composition site.
fn default_threads() -> u32 {
    std::env::var("DILU_THREADS").ok().and_then(|v| v.parse().ok()).filter(|&t| t >= 1).unwrap_or(1)
}

/// One entry of the event-driven core's future event list.
///
/// Every event fires at a quantum-grid instant (grants are renegotiated per
/// token cycle, so nothing interesting can happen between grid points). The
/// wake handler executes the same phase order as the dense stepper —
/// resizes, training submissions, cold-start promotions, arrival ingest,
/// batch dispatch, GPU stepping, reaping, controller tick — gated on which
/// events actually fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimEvent {
    /// Step every GPU holding work for the quantum starting at this
    /// instant. Scheduled one quantum ahead whenever work (or a drainable
    /// instance, or a ready-but-undispatched batch) survives the current
    /// wake; never scheduled while the cluster is fully idle. The queue
    /// seeds the first one; the recurring chain is then carried out of the
    /// heap (it fires every quantum under load, and two heap operations
    /// per quantum are measurable at macro scale).
    GpuQuantum,
    /// Ingest the arrival batch landing in the quantum starting here and
    /// route it to instances. One such event is outstanding at a time,
    /// scheduled for the grid instant covering the earliest pending
    /// arrival across all functions.
    ArrivalBatch,
    /// A batch-formation deadline: the instance's oldest pending request
    /// reaches its batching timeout at this instant. Cancellable — a
    /// full-batch dispatch or instance termination withdraws it.
    BatchDeadline(InstanceUid),
    /// Metrics sample plus elasticity-controller tick (the two share the
    /// [`SimConfig::tick`] cadence, exactly as in the dense stepper).
    ControllerTick,
    /// At least one pending [`ScaleAction::ResizeQuota`] reaches the end of
    /// its apply latency.
    ///
    /// [`ScaleAction::ResizeQuota`]: crate::ScaleAction::ResizeQuota
    ResizeApply,
    /// A cold-starting instance becomes able to serve.
    ColdStartReady(InstanceUid),
    /// A scheduled (or retried) training job reaches its submission time.
    TrainingSubmit,
    /// At least one network flow (weight fetch or activation transfer)
    /// reaches its finish instant. Pushed after every flow-plane
    /// membership change for every active flow; instants stale by a later
    /// re-share fire as strict no-ops.
    NetFlowDone,
}

/// Kind code recorded for the out-of-heap quantum-chain wake — the
/// recurring [`SimEvent::GpuQuantum`] successor carried outside the heap
/// (see [`SimEvent::GpuQuantum`]). Distinct from every
/// [`SimEvent::code`] so a record/replay diff can tell the chain from a
/// heap-scheduled quantum event.
pub const QUANTUM_CHAIN_CODE: u8 = 8;

impl SimEvent {
    /// The event's stable kind code (enum order, `0..=7`) — the byte
    /// record/replay logs carry.
    pub fn code(self) -> u8 {
        match self {
            SimEvent::GpuQuantum => 0,
            SimEvent::ArrivalBatch => 1,
            SimEvent::BatchDeadline(_) => 2,
            SimEvent::ControllerTick => 3,
            SimEvent::ResizeApply => 4,
            SimEvent::ColdStartReady(_) => 5,
            SimEvent::TrainingSubmit => 6,
            SimEvent::NetFlowDone => 7,
        }
    }

    /// Human-readable name of a kind code (including
    /// [`QUANTUM_CHAIN_CODE`]) for diff output; `"unknown"` otherwise.
    pub fn code_name(code: u8) -> &'static str {
        match code {
            0 => "GpuQuantum",
            1 => "ArrivalBatch",
            2 => "BatchDeadline",
            3 => "ControllerTick",
            4 => "ResizeApply",
            5 => "ColdStartReady",
            6 => "TrainingSubmit",
            7 => "NetFlowDone",
            QUANTUM_CHAIN_CODE => "QuantumChain",
            _ => "unknown",
        }
    }

    /// The instance-uid payload, `0` for payload-free kinds.
    pub fn payload_uid(self) -> u64 {
        match self {
            SimEvent::BatchDeadline(uid) | SimEvent::ColdStartReady(uid) => uid.0,
            _ => 0,
        }
    }

    /// Rebuilds an event from its logged parts. `None` for codes that
    /// are not heap events (the quantum-chain code, future versions).
    pub fn from_parts(code: u8, uid: u64) -> Option<SimEvent> {
        match code {
            0 => Some(SimEvent::GpuQuantum),
            1 => Some(SimEvent::ArrivalBatch),
            2 => Some(SimEvent::BatchDeadline(InstanceUid(uid))),
            3 => Some(SimEvent::ControllerTick),
            4 => Some(SimEvent::ResizeApply),
            5 => Some(SimEvent::ColdStartReady(InstanceUid(uid))),
            6 => Some(SimEvent::TrainingSubmit),
            7 => Some(SimEvent::NetFlowDone),
            _ => None,
        }
    }
}

/// One observed event-core pop, as handed to an [`EventHook`].
///
/// A flat, allocation-free view of the typed [`SimEvent`]: the wake
/// instant, the queue's insertion sequence number (the same-instant FIFO
/// tie-breaker), the kind code, and the uid payload. The out-of-heap
/// quantum chain reports `seq == 0` with [`QUANTUM_CHAIN_CODE`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventRecord {
    /// The instant the event fired at.
    pub at: SimTime,
    /// Queue insertion sequence (`0` for the quantum chain).
    pub seq: u64,
    /// Kind code ([`SimEvent::code`] or [`QUANTUM_CHAIN_CODE`]).
    pub kind: u8,
    /// Instance uid payload (`0` for payload-free kinds).
    pub uid: u64,
}

/// Observer of every event-core pop, in execution order — the record
/// side of `dilu-replay`. Runs on the simulation thread inside
/// `process_wake`, before the event's phase flags are applied, so the
/// stream order is exactly the execution order on every `[sim] threads`
/// setting.
pub type EventHook = Box<dyn FnMut(EventRecord)>;

/// Observer of every pending-arrival window refill, in execution order:
/// called with the function and the chunk of instants just pulled from its
/// arrival stream, before they are ingested. Streaming deployments pass
/// every arrival instant through exactly one refill chunk, so this is the
/// record side of `dilu-replay`'s arrival capture — it sees the complete
/// schedule without the simulator ever materialising it.
pub type ArrivalHook = Box<dyn FnMut(FunctionId, &[SimTime])>;

/// The not-yet-pulled tail of a streaming deployment's arrival schedule.
///
/// Dropped (the whole struct) once a refill comes back short — the process
/// is exhausted before the horizon, and freeing it is what keeps a
/// finished function's memory at just its (empty) window.
pub(crate) struct ArrivalStream {
    pub(crate) process: Box<dyn dilu_workload::ArrivalProcess>,
    /// Generation horizon: no instant at or after this is ever pulled.
    pub(crate) end: SimTime,
}

pub(crate) struct FuncState {
    pub(crate) spec: FunctionSpec,
    /// Uids of this function's live instances, ascending (maintained at
    /// launch/terminate so routing never scans the whole cluster).
    pub(crate) instance_ids: Vec<InstanceUid>,
    /// The bounded pending-arrival window: the next instants due for
    /// ingest. A materialized deployment holds its whole schedule here; a
    /// streaming one holds at most [`SimConfig::arrival_window`] instants,
    /// refilled from `stream` as ingest drains it. Invariant (after any
    /// refill attempt): empty ⇔ `stream` is `None`.
    pub(crate) arrivals: VecDeque<SimTime>,
    /// The rest of the arrival schedule, still inside the process
    /// (`None` for materialized deployments and exhausted streams).
    pub(crate) stream: Option<ArrivalStream>,
    pub(crate) backlog: VecDeque<Request>,
    pub(crate) latency: LatencyRecorder,
    pub(crate) arrived: u64,
    pub(crate) completed: u64,
    pub(crate) cold_starts: ColdStartCounter,
    pub(crate) resizes: ResizeCounter,
    pub(crate) window: RateWindow,
    pub(crate) timeline: Vec<TimelinePoint>,
    pub(crate) sec_arrivals: u64,
    pub(crate) sec_completions: u64,
    pub(crate) sec_violations: u64,
    pub(crate) sec_blocks: u64,
    pub(crate) kernel_series: Vec<(u64, u64)>,
}

/// The serving-plane simulator. See the [crate docs](crate) for the model.
pub struct ClusterSim {
    pub(crate) spec: ClusterSpec,
    pub(crate) config: SimConfig,
    pub(crate) share_policy_name: String,
    pub(crate) now: SimTime,
    /// Per-phase wall/event counters ([`SimConfig::profile`]); a disabled
    /// profiler costs one branch per phase.
    pub(crate) profiler: PhaseProfiler,
    /// The node plane: per-node GPU runtimes, busy tracking, occupancy.
    pub(crate) nodes: NodePlane,
    /// The network plane (flows + per-node model caches), when configured.
    pub(crate) net: Option<crate::netplane::NetState>,
    pub(crate) funcs: BTreeMap<FunctionId, FuncState>,
    pub(crate) instances: BTreeMap<InstanceUid, Instance>,
    pub(crate) jobs: BTreeMap<FunctionId, TrainingJob>,
    pub(crate) placement: Box<dyn Placement>,
    pub(crate) controller: Box<dyn ElasticityController>,
    /// Observer invoked with an [`AuditSnapshot`](crate::AuditSnapshot) at
    /// every controller tick.
    pub(crate) audit_hook: Option<AuditHook>,
    /// Observer invoked with every event-core pop (see [`EventHook`]).
    pub(crate) event_hook: Option<EventHook>,
    /// Observer invoked with every arrival-window refill chunk (see
    /// [`ArrivalHook`]).
    pub(crate) arrival_hook: Option<ArrivalHook>,
    /// Lazy min-index over pending-arrival window heads: holds at least
    /// one entry at or before the live head of every function with a
    /// non-empty window. Heads only advance (pops consume the front,
    /// refills append at the tail), so a popped entry that disagrees with
    /// the live head is merely stale — it is dropped or re-armed at the
    /// live head, never missed. Makes the per-wake "earliest pending
    /// arrival" query O(log F) instead of a full function scan.
    pub(crate) arrival_index: BinaryHeap<Reverse<(SimTime, FunctionId)>>,
    pub(crate) pending_resizes: Vec<PendingResize>,
    pub(crate) tags: TagSlab,
    pub(crate) slot_index: BTreeMap<dilu_gpu::InstanceId, (InstanceUid, usize, FunctionId)>,
    pub(crate) next_uid: u64,
    pub(crate) next_request: u64,
    pub(crate) next_batch: u64,
    pub(crate) next_sample_at: SimTime,
    pub(crate) sample_clock: SampleClock,
    // --- event-core working state (rebuilt at each `run_until` entry) ---
    pub(crate) events: EventQueue<SimEvent>,
    /// Instances whose batch state changed this wake (routed requests,
    /// freed pipeline slots, promotions) — the dispatch candidates. May
    /// hold duplicates; sorted and deduplicated at the dispatch phase.
    pub(crate) dirty: Vec<InstanceUid>,
    /// The out-of-heap [`SimEvent::GpuQuantum`] chain: the next
    /// one-quantum-ahead wake, if any.
    pub(crate) next_quantum_wake: Option<SimTime>,
    /// Instances in `Draining` state (guards the reap scan).
    pub(crate) draining_count: u32,
    /// `true` only inside an event-driven `run_until` — internal mutations
    /// schedule follow-up events when set.
    pub(crate) event_active: bool,
    /// `true` once this wake's GPU phase has run (completion handlers,
    /// reaping, controller) — policy catch-ups performed then must cover
    /// the current quantum too, since it will not be stepped again.
    pub(crate) gpu_phase_done: bool,
    /// Reused per-wake scratch buffers (hot-loop allocation avoidance).
    pub(crate) completion_buf: Vec<dilu_gpu::Completion>,
    pub(crate) issued_buf: Vec<(dilu_gpu::InstanceId, u64)>,
    pub(crate) dispatch_buf: Vec<(InstanceUid, u64, usize)>,
    /// Recycled `InflightBatch::requests` vectors (bounded pool): popped at
    /// dispatch, returned when the batch's last stage completes.
    pub(crate) request_pool: Vec<Vec<Request>>,
    /// Scratch for `ingest_arrivals`' route list.
    pub(crate) routed_buf: Vec<(FunctionId, Request)>,
    /// Scratch for `ingest_arrivals`' due-function list.
    pub(crate) due_funcs_buf: Vec<FunctionId>,
    /// Scratch chunk buffer for arrival-window refills.
    pub(crate) refill_buf: Vec<SimTime>,
    /// Per-wake scratch: instances promoted / whose deadline fired at this
    /// wake. Drained and handed back at the end of every wake.
    pub(crate) wake_ready_buf: Vec<InstanceUid>,
    pub(crate) wake_expired_buf: Vec<InstanceUid>,
    /// Reused controller/placement view: refilled in place each tick so
    /// the per-GPU `residents` vectors amortise to zero allocations.
    pub(crate) view_scratch: ClusterView,
    pub(crate) fragmentation: FragmentationStats,
    pub(crate) occupied_series: Vec<(u64, u32)>,
    pub(crate) total_blocks_sec: u64,
    pub(crate) total_kernel_series: Vec<(u64, u64)>,
    pub(crate) gpu_seconds: f64,
    pub(crate) instance_gpu_seconds: f64,
    pub(crate) peak_gpus: u32,
    pub(crate) last_sampled_sec: Option<u64>,
    pub(crate) pending_training: Vec<(SimTime, FunctionSpec)>,
}

impl std::fmt::Debug for ClusterSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterSim")
            .field("spec", &self.spec)
            .field("now", &self.now)
            .field("placement", &self.placement.name())
            .field("controller", &self.controller.name())
            .field("share_policy", &self.share_policy_name)
            .field("functions", &self.funcs.len())
            .field("instances", &self.instances.len())
            .finish_non_exhaustive()
    }
}

impl ClusterSim {
    /// Creates a cluster driven by a horizontal-only [`Autoscaler`].
    ///
    /// Shorthand for [`with_controller`](Self::with_controller) through the
    /// blanket [`ElasticityController`] adapter — every pre-2D composition
    /// keeps working unchanged.
    pub fn new(
        spec: ClusterSpec,
        config: SimConfig,
        placement: Box<dyn Placement>,
        autoscaler: Box<dyn Autoscaler>,
        policy_factory: &dyn PolicyFactory,
    ) -> Self {
        Self::with_controller(spec, config, placement, Box::new(autoscaler), policy_factory)
    }

    /// Creates a cluster driven by a 2D [`ElasticityController`], which may
    /// resize quotas of running instances as well as scale instance counts.
    pub fn with_controller(
        spec: ClusterSpec,
        config: SimConfig,
        placement: Box<dyn Placement>,
        controller: Box<dyn ElasticityController>,
        policy_factory: &dyn PolicyFactory,
    ) -> Self {
        ClusterSim {
            nodes: NodePlane::new(&spec, config.quantum, policy_factory),
            net: config
                .network
                .map(|cfg| crate::netplane::NetState::new(spec.nodes, cfg, config.quantum)),
            spec,
            config,
            share_policy_name: policy_factory.name().to_owned(),
            now: SimTime::ZERO,
            profiler: if config.profile {
                PhaseProfiler::enabled()
            } else {
                PhaseProfiler::disabled()
            },
            funcs: BTreeMap::new(),
            instances: BTreeMap::new(),
            jobs: BTreeMap::new(),
            placement,
            controller,
            audit_hook: None,
            event_hook: None,
            arrival_hook: None,
            arrival_index: BinaryHeap::new(),
            pending_resizes: Vec::new(),
            tags: TagSlab::default(),
            slot_index: BTreeMap::new(),
            next_uid: 1,
            next_request: 1,
            next_batch: 1,
            next_sample_at: SimTime::ZERO + config.tick,
            sample_clock: SampleClock::new(),
            // Near-wheel buckets aligned to the scheduling quantum: every
            // event fires on the quantum grid, so each bucket holds exactly
            // one grid instant's events.
            events: EventQueue::with_granularity(config.quantum),
            dirty: Vec::new(),
            next_quantum_wake: None,
            draining_count: 0,
            event_active: false,
            gpu_phase_done: false,
            completion_buf: Vec::new(),
            issued_buf: Vec::new(),
            dispatch_buf: Vec::new(),
            request_pool: Vec::new(),
            routed_buf: Vec::new(),
            due_funcs_buf: Vec::new(),
            refill_buf: Vec::new(),
            wake_ready_buf: Vec::new(),
            wake_expired_buf: Vec::new(),
            view_scratch: ClusterView { gpus: Vec::new() },
            fragmentation: FragmentationStats::new(),
            occupied_series: Vec::new(),
            total_blocks_sec: 0,
            total_kernel_series: Vec::new(),
            gpu_seconds: 0.0,
            instance_gpu_seconds: 0.0,
            peak_gpus: 0,
            last_sampled_sec: None,
            pending_training: Vec::new(),
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The cluster shape.
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// The serving-plane configuration in effect.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Report name of the placement policy.
    pub fn placement_name(&self) -> &str {
        self.placement.name()
    }

    /// Report name of the elasticity controller (historically the
    /// autoscaler slot; kept for every report and test that names it).
    pub fn autoscaler_name(&self) -> &str {
        self.controller.name()
    }

    /// Report name of the elasticity controller.
    pub fn controller_name(&self) -> &str {
        self.controller.name()
    }

    /// Report name of the per-GPU share-policy factory.
    pub fn share_policy_name(&self) -> &str {
        &self.share_policy_name
    }

    /// The accumulated per-phase profile, when [`SimConfig::profile`] is
    /// on; `None` otherwise. May be read mid-run (counters are cumulative)
    /// or after the horizon.
    pub fn phase_profile(&self) -> Option<PhaseProfile> {
        self.profiler.is_enabled().then(|| self.profiler.finish())
    }

    /// Registers an observer invoked with every event-core pop, in
    /// execution order (see [`EventHook`]). Replaces any previous hook.
    ///
    /// The stream is only produced by the event-driven time model; a
    /// dense-quantum run never pops events and records an empty stream.
    pub fn set_event_hook(&mut self, hook: EventHook) {
        self.event_hook = Some(hook);
    }

    /// Registers an observer invoked with every arrival-window refill
    /// chunk, in execution order (see [`ArrivalHook`]). Replaces any
    /// previous hook.
    ///
    /// Streaming deployments pass every arrival instant through exactly
    /// one chunk, so accumulating the chunks reconstructs the complete
    /// schedule. Materialized deployments
    /// ([`deploy_inference`](Self::deploy_inference)) never refill and are
    /// invisible here — snapshot them via
    /// [`arrival_schedule`](Self::arrival_schedule) instead.
    pub fn set_arrival_hook(&mut self, hook: ArrivalHook) {
        self.arrival_hook = Some(hook);
    }

    /// The *currently pending* arrival instants of every inference
    /// function, in function-id order.
    ///
    /// For materialized deployments this is the full not-yet-ingested
    /// schedule; for streaming deployments it is only the bounded window
    /// pulled so far (see [`SimConfig::arrival_window`]) — the complete
    /// stream is observable through
    /// [`set_arrival_hook`](Self::set_arrival_hook). A run *consumes*
    /// these queues.
    pub fn arrival_schedule(&self) -> Vec<(FunctionId, Vec<SimTime>)> {
        self.funcs
            .iter()
            .filter(|(_, f)| f.spec.kind.is_inference())
            .map(|(&id, f)| (id, f.arrivals.iter().copied().collect()))
            .collect()
    }

    /// Number of ready (serving) instances of a function.
    pub fn ready_instances(&self, func: FunctionId) -> u32 {
        self.instances.values().filter(|i| i.func == func && i.state.is_ready()).count() as u32
    }

    /// Number of currently occupied GPUs: those hosting at least one
    /// admitted instance. Cold-starting instances reserve their engine
    /// slots at launch, so their GPUs count from the launch instant —
    /// capacity is committed while the container deploys, exactly what a
    /// placement decision must see. O(1), answered from the node plane's
    /// maintained occupancy counter.
    pub fn occupied_gpus(&self) -> u32 {
        self.nodes.occupied()
    }

    /// Runs the simulation until `t_end`, using the configured
    /// [`TimeModel`] and [`SimConfig::threads`].
    ///
    /// Both models stop at the same instant (the first quantum boundary at
    /// or after `t_end`) and may be called repeatedly to continue a run.
    /// With `threads > 1` a scoped worker pool lives for the duration of
    /// the call; results are byte-identical to the serial run.
    pub fn run_until(&mut self, t_end: SimTime) {
        // First entry after a streaming deployment: pull the initial
        // window chunks. Deferred from deploy time to here so hooks
        // registered between deploy and run (the record side of
        // `dilu-replay`) observe the very first chunk.
        self.prime_arrival_windows();
        // Workers are only worth spawning when the plane can ever hand
        // them a share (see `nodes::MIN_NODES_PER_SHARE`): a small cluster
        // always steps inline, so give it no idle threads to park.
        let max_shares = self.nodes.node_count() / crate::nodes::MIN_NODES_PER_SHARE;
        let workers = (self.config.threads.max(1) as usize).min(max_shares).saturating_sub(1);
        if workers == 0 {
            self.run_until_with(t_end, None);
            return;
        }
        let shared = PoolShared::new(workers);
        std::thread::scope(|scope| {
            // The guard precedes the spawns: if a spawn (or anything after
            // it) panics, its drop still releases every parked worker so
            // the scope's implicit join cannot deadlock.
            let _guard = crate::nodes::PoolGuard(&shared);
            for index in 0..workers {
                let shared = &shared;
                scope.spawn(move || crate::nodes::worker_loop(shared, index));
            }
            let pool = StepPool::new(&shared);
            self.run_until_with(t_end, Some(&pool));
        });
    }

    fn run_until_with(&mut self, t_end: SimTime, pool: Option<&StepPool<'_>>) {
        match self.config.time_model {
            TimeModel::EventDriven => self.run_until_events(t_end, pool),
            TimeModel::DenseQuantum => {
                while self.now < t_end {
                    self.step_quantum(pool);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Event-driven core
    // ------------------------------------------------------------------

    /// First quantum-grid instant at or after `t`.
    pub(crate) fn grid_ceil(&self, t: SimTime) -> SimTime {
        let q = self.config.quantum.as_micros();
        SimTime::from_micros(t.as_micros().div_ceil(q) * q)
    }

    /// Last quantum-grid instant at or before `t` — the quantum start
    /// whose window `[g, g + quantum)` covers `t`.
    fn grid_floor(&self, t: SimTime) -> SimTime {
        let q = self.config.quantum.as_micros();
        SimTime::from_micros(t.as_micros() / q * q)
    }

    /// The wake-on-work driver: pops grid-instant wakes off the event
    /// queue and executes the dense stepper's phase order at each, so a
    /// quantum with no event is provably a no-op and is never visited.
    fn run_until_events(&mut self, t_end: SimTime, pool: Option<&StepPool<'_>>) {
        if self.now >= t_end {
            return;
        }
        self.event_active = true;
        self.seed_event_queue();
        loop {
            // The recurring one-quantum-ahead chain wake is kept out of the
            // heap (`next_quantum_wake`): while work is in flight it fires
            // every single quantum, and paying two heap operations per
            // quantum for it is measurable at macro scale.
            let t = match (self.next_quantum_wake, self.events.peek_time()) {
                (None, None) => break,
                (Some(a), None) => a,
                (None, Some(b)) => b,
                (Some(a), Some(b)) => a.min(b),
            };
            if t >= t_end {
                break;
            }
            self.process_wake(t, pool);
        }
        self.event_active = false;
        // Land exactly where the dense stepper stops: the first quantum
        // boundary at or after the horizon.
        let end = self.grid_ceil(t_end);
        if end > self.now {
            self.now = end;
        }
        // The queue is rebuilt from state on the next entry; outstanding
        // deadline tokens die with it.
        self.events.clear();
        for inst in self.instances.values_mut() {
            inst.deadline = None;
        }
        self.next_quantum_wake = None;
    }

    /// Rebuilds the event queue (and the busy/dirty scratch sets) from the
    /// current cluster state, so deployments and scheduling calls made
    /// between `run_until` calls need no event bookkeeping of their own.
    fn seed_event_queue(&mut self) {
        self.events.clear();
        for inst in self.instances.values_mut() {
            inst.deadline = None;
        }
        self.next_quantum_wake = None;
        self.events.reserve(self.instances.len() + self.funcs.len() + 4);
        self.nodes.rebuild_busy();
        self.dirty =
            self.instances.values().filter(|i| !i.pending.is_empty()).map(|i| i.uid).collect();
        self.draining_count =
            self.instances.values().filter(|i| matches!(i.state, InstanceState::Draining)).count()
                as u32;
        self.schedule_controller_tick(self.now);
        self.schedule_arrival_event();
        let pending_training: Vec<SimTime> =
            self.pending_training.iter().map(|&(at, _)| at).collect();
        for at in pending_training {
            let due = self.grid_ceil(at).max(self.now);
            self.events.push(due, SimEvent::TrainingSubmit);
        }
        let pending_resizes: Vec<SimTime> = self.pending_resizes.iter().map(|r| r.due).collect();
        for due in pending_resizes {
            let due = self.grid_ceil(due).max(self.now);
            self.events.push(due, SimEvent::ResizeApply);
        }
        let cold: Vec<(InstanceUid, SimTime)> = self
            .instances
            .values()
            .filter_map(|i| match i.state {
                InstanceState::ColdStarting { ready_at } => Some((i.uid, ready_at)),
                _ => None,
            })
            .collect();
        for (uid, ready_at) in cold {
            if ready_at == SimTime::MAX {
                // Weight fetch in flight: the NetFlowDone wake below (not a
                // promotion instant) re-arms this instance.
                continue;
            }
            let due = self.grid_ceil(ready_at).max(self.now);
            self.events.push(due, SimEvent::ColdStartReady(uid));
        }
        if let Some(net) = self.net.as_ref() {
            let now = self.now;
            let finishes: Vec<SimTime> = net.plane.finish_instants().collect();
            for t in finishes {
                self.events.push(t.max(now), SimEvent::NetFlowDone);
            }
        }
        if self.nodes.has_busy() || !self.dirty.is_empty() || self.draining_count > 0 {
            self.events.push(self.now, SimEvent::GpuQuantum);
        }
    }

    /// Schedules the recurring tick at the first grid instant `t ≥ floor`
    /// whose quantum window reaches `next_sample_at` — the same instant the
    /// dense stepper's `now + quantum >= next_sample_at` check fires.
    fn schedule_controller_tick(&mut self, floor: SimTime) {
        let target = SimTime::from_micros(
            self.next_sample_at.as_micros().saturating_sub(self.config.quantum.as_micros()),
        );
        let at = self.grid_ceil(target).max(floor);
        self.events.push(at, SimEvent::ControllerTick);
    }

    /// (Re)schedules the single outstanding [`SimEvent::ArrivalBatch`] for
    /// the grid instant covering the earliest pending arrival. O(log F)
    /// through the lazy arrival index — never a full function scan.
    fn schedule_arrival_event(&mut self) {
        if let Some(t) = self.next_pending_arrival() {
            let at = self.grid_floor(t).max(self.now);
            self.events.push(at, SimEvent::ArrivalBatch);
        }
    }

    /// The earliest pending arrival instant across all functions, answered
    /// from the lazy arrival index (stale entries — heads that advanced
    /// since they were pushed — are re-armed at their live head as they
    /// surface; exhausted functions' entries are dropped).
    pub fn next_pending_arrival(&mut self) -> Option<SimTime> {
        while let Some(&Reverse((t, id))) = self.arrival_index.peek() {
            match self.funcs.get(&id).and_then(|f| f.arrivals.front().copied()) {
                Some(head) if head == t => return Some(t),
                Some(head) => {
                    debug_assert!(head > t, "arrival-window heads only advance");
                    self.arrival_index.pop();
                    self.arrival_index.push(Reverse((head, id)));
                }
                None => {
                    self.arrival_index.pop();
                }
            }
        }
        None
    }

    /// Pulls the initial window chunk for every streaming function whose
    /// window is empty. Idempotent: a non-empty window or an exhausted
    /// (dropped) stream makes it a no-op, so repeated `run_until` calls
    /// prime at most once per function.
    fn prime_arrival_windows(&mut self) {
        let empty: Vec<FunctionId> = self
            .funcs
            .iter()
            .filter(|(_, f)| f.stream.is_some() && f.arrivals.is_empty())
            .map(|(&id, _)| id)
            .collect();
        for id in empty {
            self.refill_arrivals(id);
        }
    }

    /// Refills `id`'s pending-arrival window with the next chunk of its
    /// stream (at most [`SimConfig::arrival_window`] instants; everything
    /// up to the horizon when the window is 0), fires the arrival hook
    /// with the chunk, and indexes the new head. Drops the stream when it
    /// comes back short — exhausted before the horizon — so the invariant
    /// "window empty ⇔ stream `None`" holds after every call.
    pub(crate) fn refill_arrivals(&mut self, id: FunctionId) {
        let max = match self.config.arrival_window {
            0 => usize::MAX,
            w => w as usize,
        };
        let mut chunk = std::mem::take(&mut self.refill_buf);
        chunk.clear();
        let Some(f) = self.funcs.get_mut(&id) else {
            self.refill_buf = chunk;
            return;
        };
        let Some(stream) = f.stream.as_mut() else {
            self.refill_buf = chunk;
            return;
        };
        let got = stream.process.refill(stream.end, max, &mut chunk);
        debug_assert_eq!(got, chunk.len(), "refill count disagrees with chunk length");
        if got < max {
            f.stream = None;
        }
        if got > 0 {
            let was_empty = f.arrivals.is_empty();
            f.arrivals.extend(chunk.iter().copied());
            if was_empty {
                let head = *chunk.first().expect("non-empty chunk");
                self.arrival_index.push(Reverse((head, id)));
            }
            if let Some(hook) = self.arrival_hook.as_mut() {
                hook(id, &chunk);
            }
        }
        self.refill_buf = chunk;
    }

    /// Schedules a one-quantum-ahead wake. This is the out-of-heap fast
    /// path of [`SimEvent::GpuQuantum`]: the run loop takes the minimum of
    /// this instant and the queue head.
    fn ensure_quantum_wake(&mut self, at: SimTime) {
        match self.next_quantum_wake {
            Some(existing) if existing <= at => {}
            _ => self.next_quantum_wake = Some(at),
        }
    }

    /// (Re)schedules the batch-formation deadline of `uid` for the grid
    /// instant at which its oldest pending request times out.
    pub(crate) fn schedule_deadline(&mut self, uid: InstanceUid, raw_due: SimTime) {
        let due = self.grid_ceil(raw_due);
        let Some(inst) = self.instances.get_mut(&uid) else {
            return;
        };
        if let Some((at, _)) = inst.deadline {
            if at == due {
                return;
            }
        }
        if let Some((_, token)) = inst.deadline.take() {
            self.events.cancel(token);
        }
        let token = self.events.push_cancellable(due, SimEvent::BatchDeadline(uid));
        self.instances.get_mut(&uid).expect("present above").deadline = Some((due, token));
    }

    pub(crate) fn cancel_deadline(&mut self, uid: InstanceUid) {
        if let Some((_, token)) = self.instances.get_mut(&uid).and_then(|i| i.deadline.take()) {
            self.events.cancel(token);
        }
    }

    /// Executes one wake: drains every event due at `t`, then runs the
    /// dense stepper's phases in canonical order, each gated on whether an
    /// event asked for it.
    fn process_wake(&mut self, t: SimTime, pool: Option<&StepPool<'_>>) {
        debug_assert!(t >= self.now, "wakes are monotone");
        self.now = t;
        self.gpu_phase_done = false;
        if self.next_quantum_wake == Some(t) {
            self.next_quantum_wake = None;
            if let Some(hook) = self.event_hook.as_mut() {
                hook(EventRecord { at: t, seq: 0, kind: QUANTUM_CHAIN_CODE, uid: 0 });
            }
        }
        let mut resizes = false;
        let mut training = false;
        let mut arrivals = false;
        let mut controller = false;
        let mut ready = std::mem::take(&mut self.wake_ready_buf);
        let mut expired = std::mem::take(&mut self.wake_expired_buf);
        while let Some((at, seq, event)) = self.events.pop_due_with_seq(t) {
            if let Some(hook) = self.event_hook.as_mut() {
                hook(EventRecord { at, seq, kind: event.code(), uid: event.payload_uid() });
            }
            match event {
                SimEvent::GpuQuantum => {}
                SimEvent::ArrivalBatch => arrivals = true,
                SimEvent::BatchDeadline(uid) => {
                    // The fired token was this instance's current deadline
                    // (reschedules cancel the old event), so just clear it.
                    if let Some(inst) = self.instances.get_mut(&uid) {
                        inst.deadline = None;
                    }
                    expired.push(uid);
                }
                SimEvent::ControllerTick => controller = true,
                SimEvent::ResizeApply => resizes = true,
                SimEvent::ColdStartReady(uid) => ready.push(uid),
                SimEvent::TrainingSubmit => training = true,
                // Flow finish instants are over-pushed after every
                // membership change; the net phase below treats stale
                // ones as no-ops.
                SimEvent::NetFlowDone => {}
            }
        }
        self.profiler.count_wake();
        if resizes {
            let pt = self.profiler.start();
            let before = self.pending_resizes.len();
            self.apply_due_resizes();
            let applied = (before - self.pending_resizes.len()) as u64;
            self.profiler.record(SimPhase::Resize, pt, applied);
        }
        if training {
            let pt = self.profiler.start();
            let before = self.pending_training.len();
            self.submit_due_training();
            let submitted = before.saturating_sub(self.pending_training.len()) as u64;
            self.profiler.record(SimPhase::Train, pt, submitted);
        }
        let pt = self.profiler.start();
        let (net_ready, flows_done) = self.process_net_phase();
        self.profiler.record(SimPhase::Net, pt, flows_done);
        let pt = self.profiler.start();
        if self.net.is_some() {
            // Merge fetch-completed promotions with event-carried ones in
            // uid order, matching the dense stepper's BTreeMap scan.
            ready.extend(net_ready);
            ready.sort_unstable();
            ready.dedup();
        }
        let promoted = ready.len() as u64;
        for &uid in &ready {
            self.promote_instance(uid);
        }
        self.profiler.record(SimPhase::Promote, pt, promoted);
        if arrivals {
            let pt = self.profiler.start();
            let before = self.next_request;
            self.ingest_arrivals();
            self.schedule_arrival_event();
            self.profiler.record(SimPhase::Arrive, pt, self.next_request - before);
        }
        let pt = self.profiler.start();
        let before = self.next_batch;
        self.dispatch_candidates(&expired);
        self.profiler.record(SimPhase::Dispatch, pt, self.next_batch - before);
        if self.nodes.has_busy() {
            let pt = self.profiler.start();
            let completions = self.step_gpu_phase(JobKind::BusyOnly, pool);
            self.profiler.record(SimPhase::Step, pt, completions);
        }
        self.gpu_phase_done = true;
        if self.draining_count > 0 {
            let pt = self.profiler.start();
            let before = self.draining_count;
            self.reap_drained();
            let reaped = u64::from(before.saturating_sub(self.draining_count));
            self.profiler.record(SimPhase::Reap, pt, reaped);
        }
        if controller {
            let pt = self.profiler.start();
            self.sample_metrics();
            self.run_controller();
            self.next_sample_at += self.config.tick;
            self.schedule_controller_tick(self.now + self.config.quantum);
            self.profiler.record(SimPhase::Tick, pt, 1);
        }
        if self.nodes.has_busy() || !self.dirty.is_empty() || self.draining_count > 0 {
            self.ensure_quantum_wake(t + self.config.quantum);
        }
        ready.clear();
        expired.clear();
        self.wake_ready_buf = ready;
        self.wake_expired_buf = expired;
    }

    // ------------------------------------------------------------------
    // Shared phases
    // ------------------------------------------------------------------

    /// One dense quantum: the canonical phase order the event core
    /// reproduces wake by wake.
    fn step_quantum(&mut self, pool: Option<&StepPool<'_>>) {
        self.profiler.count_wake();
        let pt = self.profiler.start();
        let before = self.pending_resizes.len();
        self.apply_due_resizes();
        let applied = (before - self.pending_resizes.len()) as u64;
        self.profiler.record(SimPhase::Resize, pt, applied);
        let pt = self.profiler.start();
        let before = self.pending_training.len();
        self.submit_due_training();
        let submitted = before.saturating_sub(self.pending_training.len()) as u64;
        self.profiler.record(SimPhase::Train, pt, submitted);
        let pt = self.profiler.start();
        let (_, flows_done) = self.process_net_phase();
        self.profiler.record(SimPhase::Net, pt, flows_done);
        let pt = self.profiler.start();
        let promoted = self.promote_ready_instances();
        self.profiler.record(SimPhase::Promote, pt, promoted);
        let pt = self.profiler.start();
        let before = self.next_request;
        self.ingest_arrivals();
        self.profiler.record(SimPhase::Arrive, pt, self.next_request - before);
        let pt = self.profiler.start();
        let before = self.next_batch;
        self.dispatch_batches();
        self.profiler.record(SimPhase::Dispatch, pt, self.next_batch - before);
        let pt = self.profiler.start();
        let completions = self.step_gpu_phase(JobKind::AllSlots, pool);
        self.profiler.record(SimPhase::Step, pt, completions);
        let pt = self.profiler.start();
        let before = self.draining_count;
        self.reap_drained();
        let reaped = u64::from(before.saturating_sub(self.draining_count));
        self.profiler.record(SimPhase::Reap, pt, reaped);
        if self.now + self.config.quantum >= self.next_sample_at {
            let pt = self.profiler.start();
            self.sample_metrics();
            self.run_controller();
            self.next_sample_at += self.config.tick;
            self.profiler.record(SimPhase::Tick, pt, 1);
        }
        self.now += self.config.quantum;
    }

    /// The GPU phase: the node plane steps its runtimes (serially or over
    /// the pool) and merges completions/blocks in fixed node order; the
    /// control plane then attributes blocks and handles completions — all
    /// on the simulation thread, in the merged (deterministic) order.
    /// Returns the number of batch completions handled.
    fn step_gpu_phase(&mut self, kind: JobKind, pool: Option<&StepPool<'_>>) -> u64 {
        let mut completions = std::mem::take(&mut self.completion_buf);
        let mut issued = std::mem::take(&mut self.issued_buf);
        completions.clear();
        issued.clear();
        self.nodes.step(kind, self.now, self.config.quantum, pool, &mut completions, &mut issued);
        self.attribute_blocks(&issued);
        self.gpu_phase_done = true;
        let handled = completions.len() as u64;
        for c in completions.drain(..) {
            self.handle_completion(c);
        }
        self.completion_buf = completions;
        self.issued_buf = issued;
        handled
    }

    /// Consumes the simulator and produces the final report.
    pub fn into_report(mut self) -> ClusterReport {
        // Flush the final partial second.
        self.sample_metrics();
        let horizon = self.now;
        let mut report = ClusterReport {
            horizon,
            fragmentation: self.fragmentation,
            occupied_gpus: self.occupied_series,
            peak_gpus: self.peak_gpus,
            gpu_time: SimDuration::from_secs_f64(self.gpu_seconds),
            instance_gpu_time: SimDuration::from_secs_f64(self.instance_gpu_seconds),
            total_kernel_series: self.total_kernel_series,
            ..ClusterReport::default()
        };
        for (id, f) in self.funcs {
            match f.spec.kind {
                FunctionKind::Inference { slo, .. } => {
                    report.kernel_series.insert(id, f.kernel_series.clone());
                    report.inference.insert(
                        id,
                        FunctionReport {
                            name: f.spec.name.clone(),
                            model: f.spec.model,
                            latency: f.latency,
                            slo,
                            output_tokens: f.spec.model.profile().output_tokens,
                            arrived: f.arrived,
                            completed: f.completed,
                            cold_starts: f.cold_starts,
                            resizes: f.resizes,
                            timeline: f.timeline,
                        },
                    );
                }
                FunctionKind::Training { workers, .. } => {
                    report.kernel_series.insert(id, f.kernel_series.clone());
                    let job = self.jobs.get(&id);
                    report.training.insert(
                        id,
                        TrainingReport {
                            name: f.spec.name.clone(),
                            model: f.spec.model,
                            workers,
                            iterations_done: job.map_or(0, |j| j.iterations_done),
                            samples_done: job.map_or(0, |j| j.samples_done),
                            started: job.and_then(|j| j.started),
                            finished: job.and_then(|j| j.finished),
                            unit: f.spec.model.profile().training.unit,
                        },
                    );
                }
            }
        }
        report
    }
}

pub(crate) fn new_func_state(spec: FunctionSpec, arrivals: Vec<SimTime>) -> FuncState {
    FuncState {
        spec,
        instance_ids: Vec::new(),
        arrivals: arrivals.into(),
        stream: None,
        backlog: VecDeque::new(),
        latency: LatencyRecorder::new(),
        arrived: 0,
        completed: 0,
        cold_starts: ColdStartCounter::new(),
        resizes: ResizeCounter::new(),
        window: RateWindow::new(40),
        timeline: Vec::new(),
        sec_arrivals: 0,
        sec_completions: 0,
        sec_violations: 0,
        sec_blocks: 0,
        kernel_series: Vec::new(),
    }
}

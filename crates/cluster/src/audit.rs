//! Point-in-time audits of the serving plane's allocation and accounting
//! state, for external invariant checkers (the `dilu-harness` fuzzer's
//! capacity and conservation oracles).
//!
//! [`ClusterSim::audit`](crate::ClusterSim::audit) takes a snapshot on
//! demand; [`ClusterSim::set_audit_hook`](crate::ClusterSim::set_audit_hook)
//! registers an observer invoked at every controller tick — the same cadence
//! on both time models, *before* the controller acts, so a hook sees exactly
//! the state the elasticity controller is about to decide on.

use dilu_sim::SimTime;

use crate::{FunctionId, GpuAddr};

/// One GPU's quota and memory accounting at audit time.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuAudit {
    /// The GPU's address.
    pub addr: GpuAddr,
    /// Σ resident `request` quotas as a fraction of the card.
    pub sum_request: f64,
    /// Σ resident `limit` quotas as a fraction of the card.
    pub sum_limit: f64,
    /// Bytes of device memory reserved by residents.
    pub mem_reserved: u64,
    /// Device memory capacity in bytes.
    pub mem_capacity: u64,
    /// Number of resident instance slices.
    pub residents: u32,
}

/// One function's request-accounting state at audit time.
///
/// Conservation invariant: every request this function has ingested is in
/// exactly one place, so
/// `arrived == completed + backlog + queued + inflight` at every instant.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionAudit {
    /// The function.
    pub func: FunctionId,
    /// `true` for inference functions.
    pub inference: bool,
    /// Requests ingested so far.
    pub arrived: u64,
    /// Requests completed so far.
    pub completed: u64,
    /// Requests waiting at the gateway (no instance had room).
    pub backlog: u64,
    /// Requests queued on instances, not yet batched.
    pub queued: u64,
    /// Requests inside dispatched (in-flight) batches.
    pub inflight: u64,
    /// Generated arrivals not yet ingested (future instants).
    pub pending_arrivals: u64,
    /// Ready (serving) instances.
    pub ready_instances: u32,
    /// Cold-starting instances.
    pub starting_instances: u32,
    /// Draining instances.
    pub draining_instances: u32,
    /// Cold starts recorded so far.
    pub cold_starts: u64,
    /// Vertical quota grows applied so far.
    pub resize_grows: u64,
    /// Vertical quota shrinks applied so far.
    pub resize_shrinks: u64,
}

impl FunctionAudit {
    /// Requests ingested but neither completed nor lost: the in-flight mass
    /// the conservation oracle balances against `arrived`.
    pub fn outstanding(&self) -> u64 {
        self.backlog + self.queued + self.inflight
    }
}

/// Network-plane byte ledger at audit time (present when the cluster runs
/// with [`SimConfig::network`](crate::SimConfig)).
///
/// Conservation invariant: `requested == delivered + inflight` at every
/// instant — bytes never appear or vanish mid-flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetAudit {
    /// Total bytes ever requested across all flows.
    pub requested_bytes: u64,
    /// Total bytes delivered by completed or partially-drained flows.
    pub delivered_bytes: u64,
    /// Bytes still in flight on active flows.
    pub inflight_bytes: u64,
    /// Number of active flows.
    pub active_flows: u64,
}

/// A whole-cluster audit snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditSnapshot {
    /// The instant the snapshot was taken.
    pub now: SimTime,
    /// Per-GPU accounting, in deterministic address order.
    pub gpus: Vec<GpuAudit>,
    /// Per-function accounting, in function-id order.
    pub functions: Vec<FunctionAudit>,
    /// Network-plane byte ledger; `None` when no network is configured.
    pub network: Option<NetAudit>,
}

impl AuditSnapshot {
    /// The audit entry for `func`, if deployed.
    pub fn function(&self, func: FunctionId) -> Option<&FunctionAudit> {
        self.functions.iter().find(|f| f.func == func)
    }
}

/// Observer invoked with a fresh [`AuditSnapshot`] at every controller tick.
pub type AuditHook = Box<dyn FnMut(&AuditSnapshot)>;

//! Function instances and their lifecycle.

use std::collections::VecDeque;
use std::fmt;

use dilu_sim::{EventToken, SimTime};
use serde::{Deserialize, Serialize};

use crate::{FunctionId, GpuAddr};

/// Globally unique identifier of an instance.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct InstanceUid(pub u64);

impl fmt::Display for InstanceUid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

/// Lifecycle state of an instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InstanceState {
    /// Container deploying / weights loading; ready at the given instant.
    ColdStarting {
        /// When the instance becomes able to serve.
        ready_at: SimTime,
    },
    /// Serving.
    Running,
    /// No longer routed to; terminates once in-flight work drains.
    Draining,
}

impl InstanceState {
    /// `true` once the instance can execute work.
    pub fn is_ready(&self) -> bool {
        matches!(self, InstanceState::Running)
    }
}

/// One queued inference request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Request {
    pub id: u64,
    pub arrived: SimTime,
}

/// A dispatched batch travelling through an instance (possibly staged across
/// pipeline GPUs).
#[derive(Debug, Clone)]
pub(crate) struct InflightBatch {
    /// Unique id correlating engine completions back to this batch.
    pub batch_id: u64,
    pub requests: Vec<Request>,
    /// Pipeline stage currently executing (0-based). Solo instances have
    /// exactly one stage.
    pub stage: usize,
}

/// A deployed instance (inference replica or training worker).
#[derive(Debug, Clone)]
pub(crate) struct Instance {
    pub uid: InstanceUid,
    pub func: FunctionId,
    /// One GPU per pipeline stage; length 1 for solo instances.
    pub gpus: Vec<GpuAddr>,
    pub state: InstanceState,
    /// Queued requests not yet batched (inference only).
    pub pending: VecDeque<Request>,
    /// Batches currently executing, at most one per pipeline stage.
    pub inflight: Vec<InflightBatch>,
    /// Last instant this instance had any work.
    pub last_active: SimTime,
    /// Outstanding batch-formation deadline (event core only): the grid
    /// instant it fires at and the cancellable queue token. Kept inline so
    /// the per-wake deadline churn needs no side-table inserts.
    pub deadline: Option<(SimTime, EventToken)>,
}

impl Instance {
    /// Load metric used by the least-loaded balancer.
    pub fn load(&self) -> usize {
        self.pending.len() + self.inflight.iter().map(|b| b.requests.len()).sum::<usize>()
    }

    /// Engine-level slot id for pipeline stage `stage` of this instance.
    ///
    /// Instances occupy at most 16 stages, so the uid is shifted to keep slot
    /// ids unique per GPU.
    pub fn slot_id(&self, stage: usize) -> dilu_gpu::InstanceId {
        debug_assert!(stage < 16, "at most 16 pipeline stages supported");
        dilu_gpu::InstanceId(self.uid.0 * 16 + stage as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_ids_are_unique_across_stages_and_instances() {
        let a = Instance {
            uid: InstanceUid(1),
            func: FunctionId(0),
            gpus: vec![GpuAddr::default(); 4],
            state: InstanceState::Running,
            pending: VecDeque::new(),
            inflight: Vec::new(),
            last_active: SimTime::ZERO,
            deadline: None,
        };
        let b = Instance { uid: InstanceUid(2), ..a.clone() };
        let mut ids: Vec<u64> = (0..4).flat_map(|s| [a.slot_id(s).0, b.slot_id(s).0]).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 8);
    }

    #[test]
    fn state_readiness() {
        assert!(InstanceState::Running.is_ready());
        assert!(!InstanceState::ColdStarting { ready_at: SimTime::ZERO }.is_ready());
        assert!(!InstanceState::Draining.is_ready());
    }

    #[test]
    fn load_counts_pending_and_inflight() {
        let mut inst = Instance {
            uid: InstanceUid(1),
            func: FunctionId(0),
            gpus: vec![GpuAddr::default()],
            state: InstanceState::Running,
            pending: VecDeque::new(),
            inflight: Vec::new(),
            last_active: SimTime::ZERO,
            deadline: None,
        };
        inst.pending.push_back(Request { id: 1, arrived: SimTime::ZERO });
        inst.inflight.push(InflightBatch {
            batch_id: 1,
            requests: vec![
                Request { id: 2, arrived: SimTime::ZERO },
                Request { id: 3, arrived: SimTime::ZERO },
            ],
            stage: 0,
        });
        assert_eq!(inst.load(), 3);
    }
}

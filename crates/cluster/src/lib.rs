//! The serving plane of the Dilu reproduction: a cluster of simulated GPU
//! nodes hosting serverless DL function instances.
//!
//! [`ClusterSim`] owns the GPUs (one [`dilu_gpu::GpuEngine`] each), routes
//! requests from [`dilu_workload`] arrival processes through a gateway +
//! least-loaded balancer into per-instance dynamic batches, runs training
//! jobs with barrier-synchronised compute/communication phases (DDP) or
//! stage/bubble phases (pipeline parallelism), models cold starts, and
//! records every metric the paper reports.
//!
//! Internally the simulator is layered into a **control plane** (routing
//! and dispatch, lifecycle, elasticity execution — the `dispatch`,
//! `lifecycle`, and `elasticity` modules) over a **node plane** (`nodes`):
//! per-node GPU runtimes that can be stepped serially or across a
//! deterministic scoped-thread pool ([`SimConfig::threads`]) with
//! byte-identical results. The `sim` module sequences the phases.
//!
//! Three extension points make it policy-agnostic so Dilu and every baseline
//! run on the identical substrate:
//!
//! * [`Placement`] — which GPUs an instance lands on (Algorithm 1 lives in
//!   `dilu-scheduler`);
//! * [`ElasticityController`] — the 2D control plane deciding both
//!   *horizontal* scaling (launch/terminate instances) and *vertical*
//!   scaling (resize `<request, limit>` quotas of running instances within
//!   one scheduling quantum). Dilu's 2D co-scaler lives in `dilu-scaler`;
//!   horizontal-only [`Autoscaler`]s (the lazy scaler, eager baselines in
//!   `dilu-baselines`) participate through a blanket adapter;
//! * [`dilu_gpu::SharePolicy`] — per-quantum SM grants (Dilu's RCKM lives in
//!   `dilu-rckm`, MPS/TGS/FaST-GS in `dilu-baselines`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod audit;
mod dispatch;
mod elasticity;
mod instance;
mod lifecycle;
mod netplane;
mod nodes;
mod report;
mod sim;
mod spec;
mod traits;

pub use audit::{AuditHook, AuditSnapshot, FunctionAudit, GpuAudit, NetAudit};
pub use instance::{InstanceState, InstanceUid};
pub use lifecycle::DeployError;
pub use report::{ClusterReport, FunctionReport, TimelinePoint, TrainingReport};
pub use sim::{
    ArrivalHook, ClusterSim, EventHook, EventRecord, SimConfig, SimEvent, TimeModel,
    QUANTUM_CHAIN_CODE,
};
pub use spec::{
    cold_start_duration, ClusterSpec, FunctionId, FunctionKind, FunctionSpec, GpuAddr, Quotas,
};
pub use traits::{
    named, Autoscaler, ClusterView, ElasticityController, FunctionScaleView, GpuView,
    NamedPolicyFactory, Placement, PolicyFactory, QuotaView, ResidentInfo, ScaleAction,
};

//! Aggregated results of a cluster simulation run.

use std::collections::BTreeMap;

use dilu_metrics::{ColdStartCounter, FragmentationStats, LatencyRecorder, ResizeCounter};
use dilu_models::ModelId;
use dilu_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::FunctionId;

/// Per-second observations for one inference function (Fig. 12 panels).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TimelinePoint {
    /// Second index since simulation start.
    pub sec: u64,
    /// Requests that arrived during the second.
    pub arrivals: u64,
    /// Requests completed during the second.
    pub completions: u64,
    /// Completions that violated the SLO during the second.
    pub violations: u64,
    /// Ready instances at the end of the second.
    pub ready_instances: u32,
}

/// Serving results for one inference function.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FunctionReport {
    /// Function name.
    pub name: String,
    /// Model served.
    pub model: ModelId,
    /// Raw per-request latencies.
    pub latency: LatencyRecorder,
    /// The SLO the function declared.
    pub slo: SimDuration,
    /// Output tokens per request (LLM latency is reported per token).
    pub output_tokens: u32,
    /// Requests that arrived.
    pub arrived: u64,
    /// Requests that completed.
    pub completed: u64,
    /// Cold starts after initial deployment.
    pub cold_starts: ColdStartCounter,
    /// Vertical quota resizes applied to this function's instances.
    pub resizes: ResizeCounter,
    /// Per-second observations.
    pub timeline: Vec<TimelinePoint>,
}

impl FunctionReport {
    /// SLO violation rate in `[0, 1]`.
    pub fn svr(&self) -> f64 {
        self.latency.violation_rate(self.slo)
    }

    /// Median latency; for LLMs, per output token.
    pub fn p50_display(&self) -> SimDuration {
        self.latency.p50() / u64::from(self.output_tokens.max(1))
    }

    /// p95 latency; for LLMs, per output token.
    pub fn p95_display(&self) -> SimDuration {
        self.latency.p95() / u64::from(self.output_tokens.max(1))
    }

    /// Mean completed requests per second over the run.
    pub fn goodput_rps(&self, horizon: SimDuration) -> f64 {
        if horizon.is_zero() {
            0.0
        } else {
            self.completed as f64 / horizon.as_secs_f64()
        }
    }
}

/// Results for one training function.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainingReport {
    /// Function name.
    pub name: String,
    /// Model trained.
    pub model: ModelId,
    /// Worker count.
    pub workers: u32,
    /// Iterations completed.
    pub iterations_done: u64,
    /// Samples (images/tokens) processed across all workers.
    pub samples_done: u64,
    /// When the job started computing.
    pub started: Option<SimTime>,
    /// When the job hit its iteration target, if it did.
    pub finished: Option<SimTime>,
    /// Throughput unit label from the model profile.
    pub unit: &'static str,
}

impl TrainingReport {
    /// Mean training throughput in samples per second of active time.
    ///
    /// Uses `now` as the end point for unfinished jobs.
    pub fn throughput(&self, now: SimTime) -> f64 {
        let Some(started) = self.started else {
            return 0.0;
        };
        let end = self.finished.unwrap_or(now);
        let active = end.saturating_since(started).as_secs_f64();
        if active <= 0.0 {
            0.0
        } else {
            self.samples_done as f64 / active
        }
    }

    /// Job completion time, if finished.
    pub fn jct(&self) -> Option<SimDuration> {
        match (self.started, self.finished) {
            (Some(s), Some(f)) => Some(f.saturating_since(s)),
            _ => None,
        }
    }
}

/// Everything measured during one simulation run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ClusterReport {
    /// End time of the run.
    pub horizon: SimTime,
    /// Per-inference-function results.
    pub inference: BTreeMap<FunctionId, FunctionReport>,
    /// Per-training-function results.
    pub training: BTreeMap<FunctionId, TrainingReport>,
    /// Cluster fragmentation snapshots (1 Hz).
    pub fragmentation: FragmentationStats,
    /// Occupied GPUs per second.
    pub occupied_gpus: Vec<(u64, u32)>,
    /// Peak occupied GPUs.
    pub peak_gpus: u32,
    /// Total GPU time consumed (occupied-GPU-seconds).
    pub gpu_time: SimDuration,
    /// Instance-GPU-seconds: Σ over instance lifetimes of GPUs held. This
    /// is the currency of the paper's saved-GPU-time (SGT) comparison —
    /// keep-alive strategies hold instance slots long after traffic stops.
    pub instance_gpu_time: SimDuration,
    /// Kernel blocks issued per function per second.
    pub kernel_series: BTreeMap<FunctionId, Vec<(u64, u64)>>,
    /// Total kernel blocks issued per second across the cluster.
    pub total_kernel_series: Vec<(u64, u64)>,
}

impl ClusterReport {
    /// Mean SVR across all inference functions.
    pub fn mean_svr(&self) -> f64 {
        if self.inference.is_empty() {
            return 0.0;
        }
        self.inference.values().map(FunctionReport::svr).sum::<f64>() / self.inference.len() as f64
    }

    /// Total cold starts across all inference functions.
    pub fn total_cold_starts(&self) -> u64 {
        self.inference.values().map(|f| f.cold_starts.count()).sum()
    }

    /// Total vertical quota resizes across all inference functions.
    pub fn total_resizes(&self) -> u64 {
        self.inference.values().map(|f| f.resizes.total()).sum()
    }

    /// Aggregate inference goodput (completed RPS) per occupied GPU.
    ///
    /// The paper's Fig. 16 "aggregate throughput" normalises serving
    /// throughput by the resources occupied.
    pub fn inference_goodput_per_gpu(&self) -> f64 {
        let mean_gpus = self.mean_occupied_gpus();
        if mean_gpus <= 0.0 {
            return 0.0;
        }
        let total: f64 = self
            .inference
            .values()
            .map(|f| f.goodput_rps(self.horizon.saturating_since(SimTime::ZERO)))
            .sum();
        total / mean_gpus
    }

    /// Mean occupied GPUs over the run.
    pub fn mean_occupied_gpus(&self) -> f64 {
        if self.occupied_gpus.is_empty() {
            return 0.0;
        }
        self.occupied_gpus.iter().map(|&(_, g)| f64::from(g)).sum::<f64>()
            / self.occupied_gpus.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn training_throughput_uses_active_time() {
        let r = TrainingReport {
            name: "t".into(),
            model: ModelId::BertBase,
            workers: 2,
            iterations_done: 10,
            samples_done: 1_000,
            started: Some(SimTime::from_secs(5)),
            finished: Some(SimTime::from_secs(15)),
            unit: "tokens/s",
        };
        assert!((r.throughput(SimTime::from_secs(100)) - 100.0).abs() < 1e-9);
        assert_eq!(r.jct(), Some(SimDuration::from_secs(10)));
    }

    #[test]
    fn unfinished_jobs_use_now() {
        let r = TrainingReport {
            name: "t".into(),
            model: ModelId::BertBase,
            workers: 2,
            iterations_done: 10,
            samples_done: 500,
            started: Some(SimTime::ZERO),
            finished: None,
            unit: "tokens/s",
        };
        assert!((r.throughput(SimTime::from_secs(10)) - 50.0).abs() < 1e-9);
        assert_eq!(r.jct(), None);
    }

    #[test]
    fn llm_latencies_report_per_token() {
        let mut latency = LatencyRecorder::new();
        latency.record(SimDuration::from_millis(3_200));
        let f = FunctionReport {
            name: "llama".into(),
            model: ModelId::Llama2_7b,
            latency,
            slo: SimDuration::from_millis(2_048),
            output_tokens: 32,
            arrived: 1,
            completed: 1,
            cold_starts: ColdStartCounter::new(),
            resizes: ResizeCounter::new(),
            timeline: Vec::new(),
        };
        assert_eq!(f.p50_display(), SimDuration::from_millis(100));
        assert_eq!(f.svr(), 1.0);
    }

    #[test]
    fn empty_report_is_zeroed() {
        let r = ClusterReport::default();
        assert_eq!(r.mean_svr(), 0.0);
        assert_eq!(r.total_cold_starts(), 0);
        assert_eq!(r.inference_goodput_per_gpu(), 0.0);
    }
}

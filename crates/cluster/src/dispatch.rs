//! Request dispatch (control plane): arrival ingest, gateway routing,
//! dynamic batch formation, and completion handling.
//!
//! Arrivals are ingested per quantum, routed to the least-loaded ready
//! instance (falling back to cold-starting instances, then the gateway
//! backlog), and batched per instance under the SLO-derived formation
//! timeout. Both time models share the same batching rules; the event
//! core visits only *dirty* instances (those whose batch state changed
//! this wake) while the dense stepper scans everything. Work items are
//! queued on node-plane engines through [`push_stage_item`]
//! (`ClusterSim::push_stage_item`), which also performs the idle→busy
//! policy catch-up; completions flow back here to advance pipeline stages,
//! record latencies, and drive the training state machine in
//! [`lifecycle`](crate::lifecycle).

use dilu_sim::SimTime;

use crate::instance::{InflightBatch, Request};
use crate::sim::ClusterSim;
use crate::{FunctionId, FunctionKind, InstanceState, InstanceUid};

/// What a completed engine work item meant to the control plane.
#[derive(Debug, Clone, Copy)]
pub(crate) enum WorkPayload {
    InferStage { uid: InstanceUid, batch_id: u64 },
    TrainCompute { func: FunctionId, worker: usize },
    TrainComm { func: FunctionId, worker: usize },
}

/// Slab of in-flight work payloads keyed by engine tag.
///
/// Tags are opaque correlation ids (never ordered, never reported), so a
/// freed slot's index can be handed out again: a tag is released exactly
/// when its completion is handled, after which no engine item carries it.
/// Items dropped by eviction leak their slot, exactly as the former
/// `BTreeMap` leaked its entry. Slot reuse keeps steady-state dispatch
/// free of map-node allocations.
#[derive(Debug, Default)]
pub(crate) struct TagSlab {
    slots: Vec<Option<WorkPayload>>,
    free: Vec<u32>,
}

impl TagSlab {
    /// Stores `payload` and returns the tag to stamp on the work item.
    pub(crate) fn insert(&mut self, payload: WorkPayload) -> u64 {
        match self.free.pop() {
            Some(i) => {
                self.slots[i as usize] = Some(payload);
                u64::from(i)
            }
            None => {
                self.slots.push(Some(payload));
                (self.slots.len() - 1) as u64
            }
        }
    }

    /// Releases `tag` and returns its payload, or `None` if the tag is
    /// unknown (already completed or never issued).
    pub(crate) fn remove(&mut self, tag: u64) -> Option<WorkPayload> {
        let payload = self.slots.get_mut(usize::try_from(tag).ok()?)?.take();
        if payload.is_some() {
            self.free.push(tag as u32);
        }
        payload
    }
}

impl ClusterSim {
    pub(crate) fn ingest_arrivals(&mut self) {
        let now = self.now;
        let cutoff = now + self.config.quantum;
        // Functions with an arrival due this quantum, from the lazy
        // min-index — never a scan of all functions. A popped entry whose
        // function's live head moved past the cutoff is stale: re-arm it
        // at the live head and move on.
        let mut due = std::mem::take(&mut self.due_funcs_buf);
        due.clear();
        while let Some(&std::cmp::Reverse((t, id))) = self.arrival_index.peek() {
            if t >= cutoff {
                break;
            }
            self.arrival_index.pop();
            match self.funcs.get(&id).and_then(|f| f.arrivals.front().copied()) {
                Some(head) if head < cutoff => due.push(id),
                Some(head) => self.arrival_index.push(std::cmp::Reverse((head, id))),
                None => {}
            }
        }
        // Ascending-id order (duplicates possible when several stale
        // entries shadow one function), matching the full-map iteration
        // the dense stepper historically used — request ids and routing
        // order stay byte-identical.
        due.sort_unstable();
        due.dedup();
        let mut routed = std::mem::take(&mut self.routed_buf);
        routed.clear();
        for &id in &due {
            loop {
                let f = self.funcs.get_mut(&id).expect("due function exists");
                while f.arrivals.front().is_some_and(|&t| t < cutoff) {
                    let arrived = f.arrivals.pop_front().expect("checked front");
                    let req = Request { id: self.next_request, arrived };
                    self.next_request += 1;
                    f.arrived += 1;
                    f.sec_arrivals += 1;
                    f.window.observe(arrived);
                    routed.push((id, req));
                }
                // Window drained mid-quantum: pull the next chunk and keep
                // popping — a bounded window must never delay an arrival.
                if f.arrivals.is_empty() && f.stream.is_some() {
                    self.refill_arrivals(id);
                    let refilled_due = self
                        .funcs
                        .get(&id)
                        .is_some_and(|f| f.arrivals.front().is_some_and(|&t| t < cutoff));
                    if refilled_due {
                        continue;
                    }
                }
                break;
            }
            // Re-arm the index at the next head beyond this quantum.
            if let Some(&head) = self.funcs.get(&id).and_then(|f| f.arrivals.front()) {
                self.arrival_index.push(std::cmp::Reverse((head, id)));
            }
        }
        due.clear();
        self.due_funcs_buf = due;
        for &(func, req) in &routed {
            self.route_request(func, req);
        }
        routed.clear();
        self.routed_buf = routed;
    }

    pub(crate) fn route_request(&mut self, func: FunctionId, req: Request) {
        // Least-loaded ready instance; else least-loaded cold-starting one;
        // else the gateway backlog. Scans only this function's instances
        // (the per-func index), not the cluster.
        let ids: &[InstanceUid] =
            self.funcs.get(&func).map(|f| f.instance_ids.as_slice()).unwrap_or(&[]);
        let instances = &self.instances;
        let candidates = ids.iter().filter_map(|uid| instances.get(uid));
        let mut best_ready: Option<(usize, InstanceUid)> = None;
        let mut best_cold: Option<(usize, InstanceUid)> = None;
        for inst in candidates {
            let key = (inst.load(), inst.uid);
            match inst.state {
                InstanceState::Running => {
                    if best_ready.is_none_or(|b| key < b) {
                        best_ready = Some(key);
                    }
                }
                InstanceState::ColdStarting { .. } => {
                    if best_cold.is_none_or(|b| key < b) {
                        best_cold = Some(key);
                    }
                }
                InstanceState::Draining => {}
            }
        }
        let target = best_ready.or(best_cold).map(|(_, uid)| uid);
        match target {
            Some(uid) => {
                let inst = self.instances.get_mut(&uid).expect("target exists");
                inst.pending.push_back(req);
                if self.event_active {
                    self.dirty.push(uid);
                }
            }
            None => {
                if let Some(f) = self.funcs.get_mut(&func) {
                    f.backlog.push_back(req);
                }
            }
        }
    }

    /// The dense dispatch phase: every instance, every quantum.
    pub(crate) fn dispatch_batches(&mut self) {
        let now = self.now;
        let mut dispatches: Vec<(InstanceUid, u64, usize)> = Vec::new();
        for inst in self.instances.values_mut() {
            if !inst.state.is_ready() && !matches!(inst.state, InstanceState::Draining) {
                continue;
            }
            let Some(f) = self.funcs.get(&inst.func) else {
                continue;
            };
            let FunctionKind::Inference { slo, batch } = f.spec.kind else {
                continue;
            };
            // Keep a short pipeline of batches queued on the engine slot so
            // the share policy sees backlog pressure (the RCKM reads queue
            // depth / KLC growth as its burst signal).
            let at_stage0 = inst.inflight.iter().filter(|b| b.stage == 0).count();
            if at_stage0 >= 4 {
                continue;
            }
            if inst.pending.is_empty() {
                continue;
            }
            let timeout =
                (slo.mul_f64(self.config.batch_timeout_frac)).min(self.config.batch_timeout_cap);
            let oldest = inst.pending.front().expect("non-empty").arrived;
            let full = inst.pending.len() >= batch as usize;
            let expired = now.saturating_since(oldest) >= timeout;
            if !full && !expired {
                continue;
            }
            let take = inst.pending.len().min(batch as usize);
            let requests: Vec<Request> = inst.pending.drain(..take).collect();
            let batch_id = self.next_batch;
            self.next_batch += 1;
            inst.inflight.push(InflightBatch { batch_id, requests, stage: 0 });
            inst.last_active = now;
            dispatches.push((inst.uid, batch_id, take));
        }
        for (uid, batch_id, size) in dispatches {
            self.push_stage_item(uid, batch_id, 0, size as u32);
        }
    }

    /// The event-core dispatch phase: examines exactly the instances whose
    /// batch state changed this wake (`dirty`) plus those whose deadline
    /// fired, in uid order — the same visit order and one-batch-per-
    /// quantum budget as the dense scan over all instances.
    pub(crate) fn dispatch_candidates(&mut self, expired: &[InstanceUid]) {
        if self.dirty.is_empty() && expired.is_empty() {
            return;
        }
        let now = self.now;
        let mut candidates = std::mem::take(&mut self.dirty);
        candidates.extend_from_slice(expired);
        candidates.sort_unstable();
        candidates.dedup();
        let mut dispatches = std::mem::take(&mut self.dispatch_buf);
        dispatches.clear();
        for uid in candidates.drain(..) {
            let Some(inst) = self.instances.get(&uid) else {
                self.cancel_deadline(uid);
                continue;
            };
            if !inst.state.is_ready() && !matches!(inst.state, InstanceState::Draining) {
                // Still cold-starting: promotion re-marks it dirty.
                continue;
            }
            let Some(f) = self.funcs.get(&inst.func) else {
                continue;
            };
            let FunctionKind::Inference { slo, batch } = f.spec.kind else {
                continue;
            };
            if inst.pending.is_empty() {
                self.cancel_deadline(uid);
                continue;
            }
            let timeout =
                (slo.mul_f64(self.config.batch_timeout_frac)).min(self.config.batch_timeout_cap);
            let at_stage0 = inst.inflight.iter().filter(|b| b.stage == 0).count();
            let oldest = inst.pending.front().expect("non-empty").arrived;
            let full = inst.pending.len() >= batch as usize;
            let is_expired = now.saturating_since(oldest) >= timeout;
            if at_stage0 >= 4 {
                // Pipeline full: the next stage-0 completion re-marks this
                // instance dirty, which re-runs this check.
                continue;
            }
            if !full && !is_expired {
                self.schedule_deadline(uid, oldest + timeout);
                continue;
            }
            let mut requests = self.request_pool.pop().unwrap_or_default();
            let inst = self.instances.get_mut(&uid).expect("checked above");
            let take = inst.pending.len().min(batch as usize);
            requests.extend(inst.pending.drain(..take));
            let batch_id = self.next_batch;
            self.next_batch += 1;
            inst.inflight.push(InflightBatch { batch_id, requests, stage: 0 });
            inst.last_active = now;
            dispatches.push((uid, batch_id, take));
            // Leftover requests: at most one batch dispatches per instance
            // per quantum (as in the dense stepper), so a still-ready
            // leftover waits for the next grid instant.
            match inst.pending.front() {
                None => self.cancel_deadline(uid),
                Some(head) => {
                    let head_arrived = head.arrived;
                    let full2 = inst.pending.len() >= batch as usize;
                    let expired2 = now.saturating_since(head_arrived) >= timeout;
                    if full2 || expired2 {
                        self.cancel_deadline(uid);
                        if at_stage0 + 1 < 4 {
                            self.dirty.push(uid);
                        }
                    } else {
                        self.schedule_deadline(uid, head_arrived + timeout);
                    }
                }
            }
        }
        for &(uid, batch_id, size) in &dispatches {
            self.push_stage_item(uid, batch_id, 0, size as u32);
        }
        self.dispatch_buf = dispatches;
        // Hand the drained allocation back to `dirty`, keeping any entries
        // pushed while dispatching (they are next quantum's candidates).
        candidates.append(&mut self.dirty);
        self.dirty = candidates;
    }

    /// Queues the work item for `stage` of a batch on the right GPU.
    pub(crate) fn push_stage_item(
        &mut self,
        uid: InstanceUid,
        batch_id: u64,
        stage: usize,
        batch: u32,
    ) {
        let Some(inst) = self.instances.get_mut(&uid) else {
            return;
        };
        let Some(f) = self.funcs.get(&inst.func) else {
            return;
        };
        let profile = f.spec.model.profile();
        let stages = inst.gpus.len() as u32;
        let t_total = profile.inference_t_min(batch);
        // With a network plane the inter-stage handoff is priced by an
        // activation-transfer flow instead of the fixed constant.
        let transfer = if self.net.is_some() {
            dilu_sim::SimDuration::ZERO
        } else {
            self.config.stage_transfer.min(t_total)
        };
        let t_stage = t_total / u64::from(stages) + transfer;
        // Each stage hosts 1/stages of the layers, so its kernel stream
        // saturates at roughly that share of the card.
        let sat = profile
            .inference_sat(batch)
            .scale(1.0 / f64::from(stages))
            .max(dilu_gpu::SmRate::from_percent(5.0));
        let blocks = profile.inference_blocks(batch) / u64::from(stages);
        let tag = self.tags.insert(WorkPayload::InferStage { uid, batch_id });
        let gpu = inst.gpus[stage];
        let slot = inst.slot_id(stage);
        let item = dilu_gpu::WorkItem::compute(t_stage, sat, blocks.max(1), tag);
        self.queue_work(gpu, slot, item);
    }

    pub(crate) fn push_train_item(
        &mut self,
        func: FunctionId,
        uid: InstanceUid,
        worker: usize,
        compute: bool,
    ) {
        let Some(f) = self.funcs.get(&func) else {
            return;
        };
        let training = f.spec.model.profile().training;
        let payload = if compute {
            WorkPayload::TrainCompute { func, worker }
        } else {
            WorkPayload::TrainComm { func, worker }
        };
        let tag = self.tags.insert(payload);
        let item = if compute { training.compute_item(tag) } else { training.idle_item(tag) };
        if let Some(inst) = self.instances.get(&uid) {
            let gpu = inst.gpus[0];
            let slot = inst.slot_id(0);
            self.queue_work(gpu, slot, item);
        }
    }

    /// Queues a work item on a node-plane engine. Under the event core the
    /// GPU is marked busy and, on the idle→busy transition, its share
    /// policy is first caught up through the skipped cycles so it sees the
    /// historically accurate workless views.
    fn queue_work(
        &mut self,
        gpu: crate::GpuAddr,
        slot: dilu_gpu::InstanceId,
        item: dilu_gpu::WorkItem,
    ) {
        if self.event_active && self.nodes.mark_busy(gpu) {
            self.nodes.slot_mut(gpu).catch_up(self.now, self.config.quantum, self.gpu_phase_done);
        }
        let _ = self.nodes.slot_mut(gpu).engine.push_work(slot, item);
    }

    /// Credits issued kernel blocks to the cluster and per-function
    /// second counters.
    pub(crate) fn attribute_blocks(&mut self, issued: &[(dilu_gpu::InstanceId, u64)]) {
        for &(slot_id, blocks) in issued {
            if blocks == 0 {
                continue;
            }
            self.total_blocks_sec += blocks;
            if let Some(&(_, _, func)) = self.slot_index.get(&slot_id) {
                if let Some(f) = self.funcs.get_mut(&func) {
                    f.sec_blocks += blocks;
                }
            }
        }
    }

    pub(crate) fn handle_completion(&mut self, c: dilu_gpu::Completion) {
        let Some(payload) = self.tags.remove(c.tag) else {
            return;
        };
        match payload {
            WorkPayload::InferStage { uid, batch_id } => {
                self.advance_inference_batch(uid, batch_id, c.at);
            }
            WorkPayload::TrainCompute { func, worker } => {
                self.advance_training(func, worker, true, c.at);
            }
            WorkPayload::TrainComm { func, worker } => {
                self.advance_training(func, worker, false, c.at);
            }
        }
    }

    pub(crate) fn advance_inference_batch(&mut self, uid: InstanceUid, batch_id: u64, at: SimTime) {
        let Some(inst) = self.instances.get_mut(&uid) else {
            return;
        };
        let stages = inst.gpus.len();
        let Some(pos) = inst.inflight.iter().position(|b| b.batch_id == batch_id) else {
            return;
        };
        let next_stage = inst.inflight[pos].stage + 1;
        if next_stage >= stages {
            let batch = inst.inflight.remove(pos);
            inst.last_active = at;
            let func = inst.func;
            let slo = self.funcs.get(&func).and_then(|f| f.spec.slo());
            if let Some(f) = self.funcs.get_mut(&func) {
                for req in &batch.requests {
                    let latency = at.saturating_since(req.arrived);
                    f.latency.record(latency);
                    f.completed += 1;
                    f.sec_completions += 1;
                    if slo.is_some_and(|s| latency > s) {
                        f.sec_violations += 1;
                    }
                }
            }
            let mut freed = batch.requests;
            freed.clear();
            if self.request_pool.len() < 64 {
                self.request_pool.push(freed);
            }
        } else {
            inst.inflight[pos].stage = next_stage;
            let size = inst.inflight[pos].requests.len() as u32;
            if self.net.is_some() {
                // The activations must cross to the next stage's GPU
                // before its work can start. Flows begin at the current
                // wake/quantum instant (identical in both time models),
                // not the completion's exact `at` — completions merge in
                // node order, so their instants are not monotone.
                let src = inst.gpus[next_stage - 1].node as usize;
                let dst = inst.gpus[next_stage].node as usize;
                let func = inst.func;
                let bytes = self
                    .funcs
                    .get(&func)
                    .map_or(1, |f| f.spec.model.profile().activation_bytes(size));
                let now = self.now;
                let net = self.net.as_mut().expect("checked above");
                net.plane.start_transfer(
                    now,
                    src,
                    dst,
                    bytes,
                    crate::netplane::NetPayload::Transfer { uid, batch_id, next_stage, size },
                );
                self.sync_net_events();
            } else {
                self.push_stage_item(uid, batch_id, next_stage, size);
            }
        }
        if self.event_active {
            // A freed stage-0 slot only matters if requests are waiting to
            // fill it; arrivals and promotions mark the instance dirty
            // themselves when new work shows up later.
            if self.instances.get(&uid).is_some_and(|i| !i.pending.is_empty()) {
                self.dirty.push(uid);
            }
        }
    }
}

//! Extension points: placement, autoscaling, and share-policy factories.

use dilu_gpu::{SharePolicy, SmRate, TaskClass};
use dilu_sim::{SimDuration, SimTime};

use crate::{FunctionId, FunctionKind, FunctionSpec, GpuAddr};

/// One resident instance slice as seen by the placement policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResidentInfo {
    /// The owning function.
    pub func: FunctionId,
    /// Inference or training.
    pub class: TaskClass,
    /// Its request quota on this GPU.
    pub request: SmRate,
    /// Its limit quota on this GPU.
    pub limit: SmRate,
    /// Its memory reservation on this GPU.
    pub mem_bytes: u64,
}

/// One GPU's allocation state as seen by the placement policy.
#[derive(Debug, Clone)]
pub struct GpuView {
    /// The GPU's address.
    pub addr: GpuAddr,
    /// Device memory capacity in bytes.
    pub mem_capacity: u64,
    /// Memory already reserved by residents in bytes.
    pub mem_reserved: u64,
    /// Residents and their quotas.
    pub residents: Vec<ResidentInfo>,
}

impl GpuView {
    /// Sum of resident request quotas.
    pub fn sum_requests(&self) -> SmRate {
        self.residents.iter().map(|r| r.request).sum()
    }

    /// Sum of resident limit quotas.
    pub fn sum_limits(&self) -> SmRate {
        self.residents.iter().map(|r| r.limit).sum()
    }

    /// Free memory in bytes.
    pub fn mem_free(&self) -> u64 {
        self.mem_capacity.saturating_sub(self.mem_reserved)
    }

    /// `true` if any instance is resident.
    pub fn occupied(&self) -> bool {
        !self.residents.is_empty()
    }

    /// `true` if a function with this id already has a slice here.
    pub fn hosts_function(&self, func: FunctionId) -> bool {
        self.residents.iter().any(|r| r.func == func)
    }
}

/// The whole cluster's allocation state for placement decisions.
#[derive(Debug, Clone)]
pub struct ClusterView {
    /// All GPUs in deterministic address order.
    pub gpus: Vec<GpuView>,
}

impl ClusterView {
    /// Number of occupied GPUs.
    pub fn occupied_count(&self) -> usize {
        self.gpus.iter().filter(|g| g.occupied()).count()
    }
}

/// Chooses the GPUs for a new instance.
///
/// Returns `gpus_per_instance` addresses (one per pipeline stage), or `None`
/// when the instance cannot be placed. Implementations must respect memory
/// capacity; quota caps (Ω/γ) are policy-specific.
pub trait Placement {
    /// Picks GPUs for one new instance of `func`.
    fn place(&mut self, func: &FunctionSpec, cluster: &ClusterView) -> Option<Vec<GpuAddr>>;

    /// A short name for reports.
    fn name(&self) -> &str;
}

/// Per-function state handed to the autoscaler every second.
#[derive(Debug, Clone)]
pub struct FunctionScaleView {
    /// The function.
    pub func: FunctionId,
    /// Its role.
    pub kind: FunctionKind,
    /// Closed per-second request counts, oldest first (up to the window cap).
    pub rps_window: Vec<u64>,
    /// Instances able to serve now.
    pub ready_instances: u32,
    /// Instances still cold-starting.
    pub starting_instances: u32,
    /// Requests waiting at the gateway (no instance yet) plus instance queues.
    pub backlog: usize,
    /// One instance's serving capacity at its request quota, in RPS.
    pub capacity_rps: f64,
    /// Idle time of the longest-idle ready instance.
    pub max_idle: SimDuration,
}

/// An autoscaler decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleAction {
    /// Launch `count` new instances of the function.
    ScaleOut {
        /// Target function.
        func: FunctionId,
        /// Instances to add.
        count: u32,
    },
    /// Drain and terminate `count` instances of the function.
    ScaleIn {
        /// Target function.
        func: FunctionId,
        /// Instances to remove.
        count: u32,
    },
}

/// Decides horizontal scaling each second (the paper's global scaler and the
/// baselines' reactive/keep-alive policies).
pub trait Autoscaler {
    /// Inspects per-function state and returns scaling actions.
    fn on_tick(&mut self, now: SimTime, functions: &[FunctionScaleView]) -> Vec<ScaleAction>;

    /// A short name for reports.
    fn name(&self) -> &str;
}

/// Builds one [`SharePolicy`] per GPU.
///
/// The cluster instantiates a fresh policy for every GPU so per-GPU state
/// (token managers, partition tables) never leaks across devices.
pub trait PolicyFactory {
    /// Creates the policy for a newly initialised GPU.
    fn make(&self) -> Box<dyn SharePolicy>;

    /// A short name for reports.
    fn name(&self) -> &str;
}

impl<F> PolicyFactory for F
where
    F: Fn() -> Box<dyn SharePolicy>,
{
    fn make(&self) -> Box<dyn SharePolicy> {
        self()
    }

    /// Bare closures cannot carry a useful name; wrap them with [`named`]
    /// so reports and scenario listings identify the policy.
    fn name(&self) -> &str {
        "closure-policy"
    }
}

/// A [`PolicyFactory`] built from a closure plus an explicit report name.
///
/// Prefer this over passing a bare closure (whose factory name is the
/// uninformative `"closure-policy"`).
pub struct NamedPolicyFactory<F> {
    name: String,
    make: F,
}

/// Wraps `make` into a factory reporting `name`.
///
/// # Examples
///
/// ```
/// use dilu_cluster::{named, PolicyFactory};
///
/// let f = named("fair", || Box::new(dilu_gpu::policies::FairSharePolicy));
/// assert_eq!(f.name(), "fair");
/// assert_eq!(f.make().name(), "fair-share");
/// ```
pub fn named<F>(name: impl Into<String>, make: F) -> NamedPolicyFactory<F>
where
    F: Fn() -> Box<dyn SharePolicy>,
{
    NamedPolicyFactory { name: name.into(), make }
}

impl<F> PolicyFactory for NamedPolicyFactory<F>
where
    F: Fn() -> Box<dyn SharePolicy>,
{
    fn make(&self) -> Box<dyn SharePolicy> {
        (self.make)()
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(requests: &[f64], mem_gb: u64) -> GpuView {
        GpuView {
            addr: GpuAddr::default(),
            mem_capacity: 40 * dilu_gpu::GB,
            mem_reserved: mem_gb * dilu_gpu::GB,
            residents: requests
                .iter()
                .enumerate()
                .map(|(i, &r)| ResidentInfo {
                    func: FunctionId(i as u32),
                    class: TaskClass::SloSensitive,
                    request: SmRate::from_percent(r),
                    limit: SmRate::from_percent(r * 2.0),
                    mem_bytes: dilu_gpu::GB,
                })
                .collect(),
        }
    }

    #[test]
    fn gpu_view_sums_quotas() {
        let g = view(&[30.0, 20.0], 8);
        assert!((g.sum_requests().as_percent() - 50.0).abs() < 1e-9);
        assert!((g.sum_limits().as_percent() - 100.0).abs() < 1e-9);
        assert_eq!(g.mem_free(), 32 * dilu_gpu::GB);
        assert!(g.occupied());
        assert!(g.hosts_function(FunctionId(0)));
        assert!(!g.hosts_function(FunctionId(9)));
    }

    #[test]
    fn cluster_view_counts_occupied() {
        let cv = ClusterView { gpus: vec![view(&[10.0], 1), view(&[], 0)] };
        assert_eq!(cv.occupied_count(), 1);
    }

    #[test]
    fn closures_are_policy_factories() {
        let f = || -> Box<dyn SharePolicy> { Box::new(dilu_gpu::policies::FairSharePolicy) };
        let p = f.make();
        assert_eq!(p.name(), "fair-share");
    }
}

//! Extension points: placement, autoscaling, and share-policy factories.

use dilu_gpu::{SharePolicy, SmRate, TaskClass};
use dilu_sim::{SimDuration, SimTime};

use crate::{FunctionId, FunctionKind, FunctionSpec, GpuAddr};

/// One resident instance slice as seen by the placement policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResidentInfo {
    /// The owning function.
    pub func: FunctionId,
    /// Inference or training.
    pub class: TaskClass,
    /// Its request quota on this GPU.
    pub request: SmRate,
    /// Its limit quota on this GPU.
    pub limit: SmRate,
    /// Its memory reservation on this GPU.
    pub mem_bytes: u64,
}

/// One GPU's allocation state as seen by the placement policy.
#[derive(Debug, Clone)]
pub struct GpuView {
    /// The GPU's address.
    pub addr: GpuAddr,
    /// Device memory capacity in bytes.
    pub mem_capacity: u64,
    /// Memory already reserved by residents in bytes.
    pub mem_reserved: u64,
    /// Residents and their quotas.
    pub residents: Vec<ResidentInfo>,
}

impl GpuView {
    /// Sum of resident request quotas.
    pub fn sum_requests(&self) -> SmRate {
        self.residents.iter().map(|r| r.request).sum()
    }

    /// Sum of resident limit quotas.
    pub fn sum_limits(&self) -> SmRate {
        self.residents.iter().map(|r| r.limit).sum()
    }

    /// Guaranteed SM rate still unreserved on this GPU: the card minus the
    /// resident `request` quotas, floored at zero when requests already
    /// oversubscribe. This is the vertical headroom a 2D co-scaler can grow
    /// a resident's `request` into without touching anyone's guarantee.
    pub fn request_slack(&self) -> SmRate {
        SmRate::FULL - self.sum_requests()
    }

    /// Free memory in bytes.
    pub fn mem_free(&self) -> u64 {
        self.mem_capacity.saturating_sub(self.mem_reserved)
    }

    /// `true` if any instance is resident.
    pub fn occupied(&self) -> bool {
        !self.residents.is_empty()
    }

    /// `true` if a function with this id already has a slice here.
    pub fn hosts_function(&self, func: FunctionId) -> bool {
        self.residents.iter().any(|r| r.func == func)
    }
}

/// The whole cluster's allocation state for placement decisions.
#[derive(Debug, Clone)]
pub struct ClusterView {
    /// All GPUs in deterministic address order.
    pub gpus: Vec<GpuView>,
}

impl ClusterView {
    /// Number of occupied GPUs.
    pub fn occupied_count(&self) -> usize {
        self.gpus.iter().filter(|g| g.occupied()).count()
    }
}

/// Chooses the GPUs for a new instance.
///
/// Returns `gpus_per_instance` addresses (one per pipeline stage), or `None`
/// when the instance cannot be placed. Implementations must respect memory
/// capacity; quota caps (Ω/γ) are policy-specific.
pub trait Placement {
    /// Picks GPUs for one new instance of `func`.
    fn place(&mut self, func: &FunctionSpec, cluster: &ClusterView) -> Option<Vec<GpuAddr>>;

    /// A short name for reports.
    fn name(&self) -> &str;
}

/// A function's vertical (quota) state as seen by the elasticity controller.
///
/// All rates are per GPU *slice*: a pipelined instance holds one slice of
/// these quotas on each of its GPUs, and a resize applies the same new
/// values to every slice.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuotaView {
    /// Current `request` quota (the guaranteed minimum).
    pub request: SmRate,
    /// Current `limit` quota (the burst ceiling).
    pub limit: SmRate,
    /// The tightest guaranteed-SM slack across the GPUs hosting this
    /// function's instances — how far `request` can grow before some hosting
    /// GPU's guarantees oversubscribe. Zero when no instance is deployed.
    pub headroom: SmRate,
    /// One instance's serving capacity at the current `limit` quota, in RPS
    /// (the vertical analogue of
    /// [`FunctionScaleView::capacity_rps`]; controllers interpolate between
    /// the two points to size resizes).
    pub capacity_rps_at_limit: f64,
}

impl QuotaView {
    /// A zeroed view for functions with no vertical dimension (training, or
    /// test fixtures that only exercise horizontal logic).
    pub fn none() -> Self {
        QuotaView {
            request: SmRate::ZERO,
            limit: SmRate::ZERO,
            headroom: SmRate::ZERO,
            capacity_rps_at_limit: 0.0,
        }
    }
}

/// Per-function state handed to the elasticity controller every second.
#[derive(Debug, Clone)]
pub struct FunctionScaleView {
    /// The function.
    pub func: FunctionId,
    /// Its role.
    pub kind: FunctionKind,
    /// Closed per-second request counts, oldest first (up to the window cap).
    pub rps_window: Vec<u64>,
    /// Instances able to serve now.
    pub ready_instances: u32,
    /// Instances still cold-starting.
    pub starting_instances: u32,
    /// Requests waiting at the gateway (no instance yet) plus instance queues.
    pub backlog: usize,
    /// One instance's serving capacity at its request quota, in RPS.
    pub capacity_rps: f64,
    /// Idle time of the longest-idle ready instance.
    pub max_idle: SimDuration,
    /// Bytes still in flight on this function's cold-start weight fetches
    /// (always 0 without a [`SimConfig::network`](crate::SimConfig) plane)
    /// — capacity that is *coming* but gated on the registry link.
    pub pending_fetch_bytes: u64,
    /// The vertical dimension: current quotas and per-GPU headroom.
    pub quota: QuotaView,
}

/// An elasticity decision: horizontal (instances) or vertical (quotas).
///
/// `ResizeQuota` is the vertical dimension of Dilu's 2D co-scaling: it
/// retargets the `<request, limit>` SM quotas of *every* deployed slice of a
/// function (and of future launches) within one scheduling quantum of the
/// configured apply latency — no eviction, no cold start.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum ScaleAction {
    /// Launch `count` new instances of the function.
    ScaleOut {
        /// Target function.
        func: FunctionId,
        /// Instances to add.
        count: u32,
    },
    /// Drain and terminate `count` instances of the function.
    ScaleIn {
        /// Target function.
        func: FunctionId,
        /// Instances to remove.
        count: u32,
    },
    /// Retarget the function's per-slice `<request, limit>` SM quotas.
    ResizeQuota {
        /// Target function.
        func: FunctionId,
        /// New guaranteed quota (clamped to one whole GPU on apply).
        request: SmRate,
        /// New burst ceiling (clamped up to at least `request` on apply).
        limit: SmRate,
    },
}

/// Decides horizontal scaling each second (the baselines' reactive and
/// keep-alive policies, and any controller blind to the vertical dimension).
///
/// Every `Autoscaler` is automatically an [`ElasticityController`] through a
/// blanket adapter that ignores the cluster view, so horizontal-only
/// policies keep composing unchanged.
pub trait Autoscaler {
    /// Inspects per-function state and returns scaling actions.
    fn on_tick(&mut self, now: SimTime, functions: &[FunctionScaleView]) -> Vec<ScaleAction>;

    /// A short name for reports.
    fn name(&self) -> &str;
}

impl Autoscaler for Box<dyn Autoscaler> {
    fn on_tick(&mut self, now: SimTime, functions: &[FunctionScaleView]) -> Vec<ScaleAction> {
        (**self).on_tick(now, functions)
    }

    fn name(&self) -> &str {
        (**self).name()
    }
}

/// The 2D elasticity control plane: sees both scaling dimensions and may
/// act on both.
///
/// Called once per tick with the per-function views *and* the cluster-wide
/// allocation state, so implementations can trade vertical quota growth of
/// running instances (millisecond-scale, via [`ScaleAction::ResizeQuota`])
/// against cold-start-bound horizontal scale-out — the paper's adaptive 2D
/// co-scaling. Horizontal-only [`Autoscaler`]s participate through the
/// blanket adapter (their actions simply never include resizes).
pub trait ElasticityController {
    /// Inspects per-function and cluster state and returns scaling actions
    /// in either dimension.
    fn on_tick(
        &mut self,
        now: SimTime,
        functions: &[FunctionScaleView],
        cluster: &ClusterView,
    ) -> Vec<ScaleAction>;

    /// A short name for reports.
    fn name(&self) -> &str;
}

/// Horizontal-only controllers: every [`Autoscaler`] is an
/// [`ElasticityController`] that ignores the cluster view.
impl<A: Autoscaler> ElasticityController for A {
    fn on_tick(
        &mut self,
        now: SimTime,
        functions: &[FunctionScaleView],
        _cluster: &ClusterView,
    ) -> Vec<ScaleAction> {
        Autoscaler::on_tick(self, now, functions)
    }

    fn name(&self) -> &str {
        Autoscaler::name(self)
    }
}

/// Builds one [`SharePolicy`] per GPU.
///
/// The cluster instantiates a fresh policy for every GPU so per-GPU state
/// (token managers, partition tables) never leaks across devices.
pub trait PolicyFactory {
    /// Creates the policy for a newly initialised GPU.
    fn make(&self) -> Box<dyn SharePolicy>;

    /// A short name for reports.
    fn name(&self) -> &str;
}

/// A [`PolicyFactory`] built from a closure plus an explicit report name.
///
/// [`named`] is the *only* closure path: bare closures are deliberately not
/// factories (an old blanket impl gave them all the same uninformative
/// `"closure-policy"` name, which made scenario listings ambiguous).
pub struct NamedPolicyFactory<F> {
    name: String,
    make: F,
}

/// Wraps `make` into a factory reporting `name`.
///
/// # Examples
///
/// ```
/// use dilu_cluster::{named, PolicyFactory};
///
/// let f = named("fair", || Box::new(dilu_gpu::policies::FairSharePolicy));
/// assert_eq!(f.name(), "fair");
/// assert_eq!(f.make().name(), "fair-share");
/// ```
pub fn named<F>(name: impl Into<String>, make: F) -> NamedPolicyFactory<F>
where
    F: Fn() -> Box<dyn SharePolicy>,
{
    NamedPolicyFactory { name: name.into(), make }
}

impl<F> PolicyFactory for NamedPolicyFactory<F>
where
    F: Fn() -> Box<dyn SharePolicy>,
{
    fn make(&self) -> Box<dyn SharePolicy> {
        (self.make)()
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(requests: &[f64], mem_gb: u64) -> GpuView {
        GpuView {
            addr: GpuAddr::default(),
            mem_capacity: 40 * dilu_gpu::GB,
            mem_reserved: mem_gb * dilu_gpu::GB,
            residents: requests
                .iter()
                .enumerate()
                .map(|(i, &r)| ResidentInfo {
                    func: FunctionId(i as u32),
                    class: TaskClass::SloSensitive,
                    request: SmRate::from_percent(r),
                    limit: SmRate::from_percent(r * 2.0),
                    mem_bytes: dilu_gpu::GB,
                })
                .collect(),
        }
    }

    #[test]
    fn gpu_view_sums_quotas() {
        let g = view(&[30.0, 20.0], 8);
        assert!((g.sum_requests().as_percent() - 50.0).abs() < 1e-9);
        assert!((g.sum_limits().as_percent() - 100.0).abs() < 1e-9);
        assert_eq!(g.mem_free(), 32 * dilu_gpu::GB);
        assert!(g.occupied());
        assert!(g.hosts_function(FunctionId(0)));
        assert!(!g.hosts_function(FunctionId(9)));
    }

    #[test]
    fn cluster_view_counts_occupied() {
        let cv = ClusterView { gpus: vec![view(&[10.0], 1), view(&[], 0)] };
        assert_eq!(cv.occupied_count(), 1);
    }

    #[test]
    fn named_is_the_closure_factory_path() {
        let f = named("my-fair", || -> Box<dyn SharePolicy> {
            Box::new(dilu_gpu::policies::FairSharePolicy)
        });
        assert_eq!(f.name(), "my-fair");
        assert_eq!(f.make().name(), "fair-share");
    }

    #[test]
    fn request_slack_saturates_at_zero() {
        let g = view(&[30.0, 20.0], 8);
        assert!((g.request_slack().as_percent() - 50.0).abs() < 1e-9);
        let over = view(&[70.0, 60.0], 8);
        assert_eq!(over.request_slack(), SmRate::ZERO);
    }

    struct Fixed(Vec<ScaleAction>);

    impl Autoscaler for Fixed {
        fn on_tick(&mut self, _now: SimTime, _functions: &[FunctionScaleView]) -> Vec<ScaleAction> {
            self.0.clone()
        }

        fn name(&self) -> &str {
            "fixed"
        }
    }

    #[test]
    fn autoscalers_adapt_to_elasticity_controllers() {
        let actions = vec![ScaleAction::ScaleOut { func: FunctionId(1), count: 2 }];
        // Concrete autoscaler through the blanket adapter.
        let mut direct: Box<dyn ElasticityController> = Box::new(Fixed(actions.clone()));
        let cluster = ClusterView { gpus: Vec::new() };
        assert_eq!(direct.on_tick(SimTime::ZERO, &[], &cluster), actions);
        assert_eq!(direct.name(), "fixed");
        // Boxed trait object (the registry path) adapts too.
        let boxed: Box<dyn Autoscaler> = Box::new(Fixed(actions.clone()));
        let mut adapted: Box<dyn ElasticityController> = Box::new(boxed);
        assert_eq!(adapted.on_tick(SimTime::ZERO, &[], &cluster), actions);
        assert_eq!(adapted.name(), "fixed");
    }
}

//! Streaming arrival plane: bounded-window pull equals up-front
//! materialization, and the lazy min-index over window heads equals the
//! O(#functions) scan it replaced.
//!
//! The contracts pinned here are the ones `ScenarioBuilder` and the
//! replay recorder lean on: a `deploy_inference_streaming` run must be
//! *indistinguishable* (byte-identical report, identical hook stream)
//! from `deploy_inference` with the pre-generated schedule, at any
//! `arrival_window`, and `next_pending_arrival` must always agree with a
//! full scan over the pending windows.

use std::cell::RefCell;
use std::rc::Rc;

use dilu_cluster::{
    named, Autoscaler, ClusterReport, ClusterSim, ClusterSpec, ClusterView, FunctionId,
    FunctionKind, FunctionScaleView, FunctionSpec, GpuAddr, Placement, Quotas, ScaleAction,
    SimConfig,
};
use dilu_gpu::policies::FairSharePolicy;
use dilu_models::ModelId;
use dilu_sim::SimTime;
use dilu_workload::{ArrivalProcess, GammaProcess, PoissonProcess, SynthProcess};

struct FirstFit;

impl Placement for FirstFit {
    fn place(&mut self, func: &FunctionSpec, cluster: &ClusterView) -> Option<Vec<GpuAddr>> {
        let mut chosen = Vec::new();
        for gpu in &cluster.gpus {
            if gpu.mem_free() >= func.quotas.mem_bytes && !chosen.contains(&gpu.addr) {
                chosen.push(gpu.addr);
                if chosen.len() as u32 == func.gpus_per_instance {
                    return Some(chosen);
                }
            }
        }
        None
    }

    fn name(&self) -> &str {
        "first-fit"
    }
}

struct NullScaler;

impl Autoscaler for NullScaler {
    fn on_tick(&mut self, _now: SimTime, _functions: &[FunctionScaleView]) -> Vec<ScaleAction> {
        Vec::new()
    }

    fn name(&self) -> &str {
        "null"
    }
}

fn sim_with(config: SimConfig) -> ClusterSim {
    ClusterSim::new(
        ClusterSpec::single_node(4),
        config,
        Box::new(FirstFit),
        Box::new(NullScaler),
        &named("fair-share", || Box::new(FairSharePolicy)),
    )
}

fn infer_spec(id: u32, model: ModelId) -> FunctionSpec {
    let profile = model.profile();
    let sat = profile.inference_sat(4);
    FunctionSpec {
        id: FunctionId(id),
        name: format!("fn-{id}"),
        model,
        kind: FunctionKind::Inference { slo: profile.slo, batch: 4 },
        quotas: Quotas::new(sat, sat.scale(2.0), profile.infer_mem_bytes),
        gpus_per_instance: 1,
    }
}

/// Three processes with different shapes/rates so the per-function
/// windows drain at different speeds (exercises index re-arming).
fn processes() -> Vec<(u32, Box<dyn ArrivalProcess>)> {
    vec![
        (1, Box::new(PoissonProcess::new(40.0, 11)) as Box<dyn ArrivalProcess>),
        (2, Box::new(GammaProcess::new(15.0, 4.0, 12))),
        (3, Box::new(SynthProcess::new(25.0, 0.8, 5.0, 0.0, 4.0, 13))),
    ]
}

const MODELS: [ModelId; 3] = [ModelId::RobertaLarge, ModelId::BertBase, ModelId::RobertaLarge];

const END: SimTime = SimTime::from_secs(60);

fn deploy_streaming(sim: &mut ClusterSim) {
    for ((id, process), model) in processes().into_iter().zip(MODELS) {
        sim.deploy_inference_streaming(infer_spec(id, model), 1, process, END).unwrap();
    }
}

fn deploy_materialized(sim: &mut ClusterSim) {
    for ((id, mut process), model) in processes().into_iter().zip(MODELS) {
        sim.deploy_inference(infer_spec(id, model), 1, process.generate(END)).unwrap();
    }
}

fn report_debug(report: &ClusterReport) -> String {
    format!("{report:?}")
}

/// Tentpole contract: a streamed deployment is indistinguishable from a
/// materialized one at every window size, including the `0 = unbounded`
/// comparison path.
#[test]
fn streaming_equals_materialized_at_every_window() {
    let mut baseline = sim_with(SimConfig::default());
    deploy_materialized(&mut baseline);
    baseline.run_until(SimTime::from_secs(70));
    let baseline = report_debug(&baseline.into_report());

    for window in [0u32, 1, 2, 7, 256] {
        let mut sim = sim_with(SimConfig { arrival_window: window, ..SimConfig::default() });
        deploy_streaming(&mut sim);
        sim.run_until(SimTime::from_secs(70));
        let streamed = report_debug(&sim.into_report());
        assert_eq!(
            streamed, baseline,
            "arrival_window = {window} diverged from the materialized run"
        );
    }
}

/// The arrival hook observes the complete stream, in order, regardless of
/// how refills chunk it — the contract the replay recorder depends on.
#[test]
fn arrival_hook_sees_the_full_stream_at_any_chunking() {
    type Chunks = Vec<(u32, Vec<SimTime>)>;
    let mut expected: Chunks =
        processes().into_iter().map(|(id, mut p)| (id, p.generate(END))).collect();
    expected.sort_by_key(|(id, _)| *id);

    for window in [1u32, 3, 64, 0] {
        let mut sim = sim_with(SimConfig { arrival_window: window, ..SimConfig::default() });
        deploy_streaming(&mut sim);
        let seen: Rc<RefCell<Chunks>> = Rc::new(RefCell::new(Vec::new()));
        let tap = Rc::clone(&seen);
        sim.set_arrival_hook(Box::new(move |id, chunk| {
            tap.borrow_mut().push((id.0, chunk.to_vec()));
        }));
        sim.run_until(SimTime::from_secs(70));
        // Concatenate chunks per function (what replay does) and compare
        // against the full pre-generated schedules.
        let mut merged: std::collections::BTreeMap<u32, Vec<SimTime>> =
            std::collections::BTreeMap::new();
        for (id, chunk) in seen.borrow().iter() {
            merged.entry(*id).or_default().extend(chunk.iter().copied());
        }
        let merged: Chunks = merged.into_iter().collect();
        assert_eq!(merged, expected, "window {window} dropped or reordered arrivals");
        if window == 1 {
            // Every chunk is a singleton, so the hook fires once per
            // arrival — the boundary-heavy worst case.
            assert!(seen.borrow().iter().all(|(_, c)| c.len() == 1));
        }
    }
}

/// Satellite pin: the lazy min-heap behind `next_pending_arrival` must
/// agree with the O(#functions) scan it replaced, at deploy time and at
/// checkpoints mid-run (where windows have partially drained, refilled,
/// and gone stale in the heap).
#[test]
fn next_pending_arrival_matches_a_full_scan() {
    let mut sim = sim_with(SimConfig { arrival_window: 3, ..SimConfig::default() });
    deploy_streaming(&mut sim);
    let mut checked = 0usize;
    for checkpoint in [0u64, 1, 2, 5, 13, 30, 59, 61, 70] {
        sim.run_until(SimTime::from_secs(checkpoint));
        let scan: Option<SimTime> =
            sim.arrival_schedule().iter().filter_map(|(_, pending)| pending.first().copied()).min();
        assert_eq!(sim.next_pending_arrival(), scan, "index/scan mismatch at t={checkpoint}s");
        checked += usize::from(scan.is_some());
    }
    // The checkpoints must actually exercise the live case, not just the
    // drained tail.
    assert!(checked >= 4, "only {checked} checkpoints had pending arrivals");
}

/// An exhausted stream is dropped (its memory freed) and the window
/// invariant holds: a live stream implies a non-empty window after any
/// run boundary.
#[test]
fn exhausted_streams_are_dropped() {
    let mut sim = sim_with(SimConfig { arrival_window: 4, ..SimConfig::default() });
    deploy_streaming(&mut sim);
    sim.run_until(SimTime::from_secs(120));
    assert_eq!(sim.next_pending_arrival(), None);
    assert!(
        sim.arrival_schedule().iter().all(|(_, pending)| pending.is_empty()),
        "all windows must drain once the processes are exhausted"
    );
}

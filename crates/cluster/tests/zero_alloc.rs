//! Steady-state allocation discipline: once the event core is warm, wakes
//! run out of reused scratch — policy grant buffers, request-vector pools,
//! the tag slab, inline deadlines, wheel buckets — and the dispatch/step/
//! merge path stops allocating.
//!
//! A counting global allocator measures a warm window of simulated time.
//! The bounds are not literally zero because observability is allowed to
//! grow (timeline points, latency samples, metric series double their
//! backing storage occasionally), but they are orders of magnitude below
//! one allocation per wake: the old per-wake `Vec`/map-node churn would
//! blow through them in the first few simulated milliseconds.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use dilu_cluster::{
    named, Autoscaler, ClusterSim, ClusterSpec, ClusterView, FunctionId, FunctionKind,
    FunctionScaleView, FunctionSpec, GpuAddr, Placement, PolicyFactory, Quotas, ScaleAction,
    SimConfig,
};
use dilu_gpu::policies::FairSharePolicy;
use dilu_gpu::SmRate;
use dilu_models::ModelId;
use dilu_sim::SimTime;
use dilu_workload::{ArrivalProcess, PoissonProcess};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates verbatim to `System`; the counter is a relaxed atomic
// increment with no further allocation.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

struct FirstFit;

impl Placement for FirstFit {
    fn place(&mut self, func: &FunctionSpec, cluster: &ClusterView) -> Option<Vec<GpuAddr>> {
        let mut chosen = Vec::new();
        for gpu in &cluster.gpus {
            if gpu.mem_free() >= func.quotas.mem_bytes && !chosen.contains(&gpu.addr) {
                chosen.push(gpu.addr);
                if chosen.len() as u32 == func.gpus_per_instance {
                    return Some(chosen);
                }
            }
        }
        None
    }

    fn name(&self) -> &str {
        "first-fit"
    }
}

struct NullScaler;

impl Autoscaler for NullScaler {
    fn on_tick(&mut self, _now: SimTime, _functions: &[FunctionScaleView]) -> Vec<ScaleAction> {
        Vec::new()
    }

    fn name(&self) -> &str {
        "null"
    }
}

fn fair_factory() -> impl PolicyFactory {
    named("fair-share", || Box::new(FairSharePolicy))
}

/// Serial event core: the allocation claim is about the hot loop itself,
/// not the worker pool (which is measured by the macro bench instead).
fn serial_config() -> SimConfig {
    SimConfig { threads: 1, ..SimConfig::default() }
}

#[test]
fn warm_event_core_wakes_are_allocation_free() {
    // --- training lane: continuous GPU work, no arrivals, no latency
    // samples. After warm-up the only permitted growth is the sampled
    // metric series, a handful of vector doublings over ten seconds.
    let mut sim = ClusterSim::new(
        ClusterSpec::single_node(2),
        serial_config(),
        Box::new(FirstFit),
        Box::new(NullScaler),
        &fair_factory(),
    );
    let model = ModelId::BertBase;
    sim.deploy_training(FunctionSpec {
        id: FunctionId(1),
        name: "steady-train".into(),
        model,
        kind: FunctionKind::Training { workers: 2, iterations: 100_000 },
        quotas: Quotas::equal(SmRate::from_percent(60.0), model.profile().training.mem_bytes),
        gpus_per_instance: 1,
    })
    .unwrap();
    sim.run_until(SimTime::from_secs(5));
    let before = allocs();
    sim.run_until(SimTime::from_secs(15));
    let train_window = allocs() - before;
    // Ten simulated seconds = 2,000 busy quanta stepped. One allocation
    // per wake (the old policy-grant Vec alone) would cost 2,000+.
    assert!(
        train_window < 200,
        "steady-state training window allocated {train_window} times \
         (expected a few dozen from sampled series growth)"
    );

    // --- inference lane: steady Poisson arrivals through batching,
    // dispatch, completion, and latency recording. The wake path itself is
    // allocation-free; what remains is the 1 Hz controller tick, which
    // still builds small headroom maps and per-function scale views (~10
    // short-lived allocations per tick, 70 ticks in this window), plus
    // occasional sample/latency-series doublings. The budget scales with
    // ticks, not with the ~14,000 wakes in the window.
    let mut sim = ClusterSim::new(
        ClusterSpec::single_node(2),
        serial_config(),
        Box::new(FirstFit),
        Box::new(NullScaler),
        &fair_factory(),
    );
    let spec_model = ModelId::RobertaLarge;
    let profile = spec_model.profile();
    let sat = profile.inference_sat(4);
    let arrivals = PoissonProcess::new(50.0, 11).generate(SimTime::from_secs(75));
    sim.deploy_inference(
        FunctionSpec {
            id: FunctionId(2),
            name: "steady-infer".into(),
            model: spec_model,
            kind: FunctionKind::Inference { slo: profile.slo, batch: 4 },
            quotas: Quotas::new(sat, sat.scale(2.0), profile.infer_mem_bytes),
            gpus_per_instance: 1,
        },
        1,
        arrivals,
    )
    .unwrap();
    sim.run_until(SimTime::from_secs(5));
    let before = allocs();
    sim.run_until(SimTime::from_secs(75));
    let infer_window = allocs() - before;
    assert!(
        infer_window < 1_000,
        "steady-state inference window allocated {infer_window} times \
         (expected ~10 per controller tick plus occasional series doublings)"
    );
}

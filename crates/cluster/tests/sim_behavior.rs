//! Behavioural tests of the cluster simulator's public API, exercising
//! serving, training, cold starts, pipelining, vertical resizes, and the
//! node-plane occupancy accounting.

use dilu_cluster::{
    cold_start_duration, named, Autoscaler, ClusterSim, ClusterSpec, ClusterView, DeployError,
    ElasticityController, FunctionId, FunctionKind, FunctionScaleView, FunctionSpec, GpuAddr,
    Placement, PolicyFactory, QuotaView, Quotas, ScaleAction, SimConfig, TimeModel,
};
use dilu_gpu::policies::FairSharePolicy;
use dilu_gpu::SmRate;
use dilu_models::ModelId;
use dilu_sim::{SimDuration, SimTime};
use dilu_workload::{ArrivalProcess, PoissonProcess};

/// Places on the first GPU (or GPUs) with enough free memory.
struct FirstFit;

impl Placement for FirstFit {
    fn place(&mut self, func: &FunctionSpec, cluster: &ClusterView) -> Option<Vec<GpuAddr>> {
        let mut chosen = Vec::new();
        for gpu in &cluster.gpus {
            if gpu.mem_free() >= func.quotas.mem_bytes && !chosen.contains(&gpu.addr) {
                chosen.push(gpu.addr);
                if chosen.len() as u32 == func.gpus_per_instance {
                    return Some(chosen);
                }
            }
        }
        None
    }

    fn name(&self) -> &str {
        "first-fit"
    }
}

struct NullScaler;

impl Autoscaler for NullScaler {
    fn on_tick(&mut self, _now: SimTime, _functions: &[FunctionScaleView]) -> Vec<ScaleAction> {
        Vec::new()
    }

    fn name(&self) -> &str {
        "null"
    }
}

/// Scales out once at t=2s (exercises the cold-start path).
struct OneShotScaler {
    fired: bool,
    func: FunctionId,
}

impl Autoscaler for OneShotScaler {
    fn on_tick(&mut self, now: SimTime, _functions: &[FunctionScaleView]) -> Vec<ScaleAction> {
        if !self.fired && now >= SimTime::from_secs(2) {
            self.fired = true;
            vec![ScaleAction::ScaleOut { func: self.func, count: 1 }]
        } else {
            Vec::new()
        }
    }

    fn name(&self) -> &str {
        "one-shot"
    }
}

fn fair_factory() -> impl PolicyFactory {
    // `named` over a bare closure: the factory reports "fair-share"
    // instead of the blanket impl's "closure-policy".
    named("fair-share", || Box::new(FairSharePolicy))
}

fn inference_spec(id: u32, model: ModelId, batch: u32) -> FunctionSpec {
    let profile = model.profile();
    let sat = profile.inference_sat(batch);
    FunctionSpec {
        id: FunctionId(id),
        name: format!("{}-inf", profile.name),
        model,
        kind: FunctionKind::Inference { slo: profile.slo, batch },
        quotas: Quotas::new(sat, sat.scale(2.0), profile.infer_mem_bytes),
        gpus_per_instance: 1,
    }
}

#[test]
fn single_inference_function_serves_requests() {
    let mut sim = ClusterSim::new(
        ClusterSpec::single_node(2),
        SimConfig::default(),
        Box::new(FirstFit),
        Box::new(NullScaler),
        &fair_factory(),
    );
    let spec = inference_spec(1, ModelId::RobertaLarge, 4);
    let arrivals = PoissonProcess::new(20.0, 7).generate(SimTime::from_secs(20));
    let expected = arrivals.len() as u64;
    sim.deploy_inference(spec, 1, arrivals).unwrap();
    sim.run_until(SimTime::from_secs(25));
    let report = sim.into_report();
    let f = &report.inference[&FunctionId(1)];
    assert_eq!(f.arrived, expected);
    assert!(f.completed >= expected * 95 / 100, "completed {}/{}", f.completed, expected);
    // Solo at full grant: latency ≈ exec time + batching wait, well under SLO.
    assert!(f.svr() < 0.05, "svr {}", f.svr());
    assert!(f.latency.p50() >= SimDuration::from_millis(5));
}

#[test]
fn training_job_completes_and_frees_gpus() {
    let mut sim = ClusterSim::new(
        ClusterSpec::single_node(4),
        SimConfig::default(),
        Box::new(FirstFit),
        Box::new(NullScaler),
        &fair_factory(),
    );
    let model = ModelId::BertBase;
    let spec = FunctionSpec {
        id: FunctionId(1),
        name: "bert-train".into(),
        model,
        kind: FunctionKind::Training { workers: 2, iterations: 20 },
        quotas: Quotas::equal(SmRate::from_percent(60.0), model.profile().training.mem_bytes),
        gpus_per_instance: 1,
    };
    sim.deploy_training(spec).unwrap();
    // FirstFit packs both 6 GB workers onto GPU 0; both saturate at 50%
    // so they still run at full rate side by side.
    assert_eq!(sim.occupied_gpus(), 1);
    // 20 iterations × (60+25) ms ≈ 1.7 s.
    sim.run_until(SimTime::from_secs(5));
    assert_eq!(sim.occupied_gpus(), 0, "workers must be released at completion");
    let report = sim.into_report();
    let t = &report.training[&FunctionId(1)];
    assert_eq!(t.iterations_done, 20);
    let jct = t.jct().expect("job finished");
    let ideal = SimDuration::from_millis((60 + 25) * 20);
    // Completion timestamps land at exact block-finish instants (not
    // quantum starts), so the JCT can never undercut the analytic
    // ideal — only microsecond quantisation slack remains.
    assert!(jct >= ideal.mul_f64(0.9999), "jct {jct} vs ideal {ideal}");
    assert!(jct <= ideal.mul_f64(1.3), "jct {jct} too slow");
    let thr = t.throughput(report.horizon);
    assert!(thr > 0.0);
}

#[test]
fn cold_started_instance_picks_up_backlog() {
    let spec = inference_spec(1, ModelId::ResNet152, 4);
    let func = spec.id;
    let mut sim = ClusterSim::new(
        ClusterSpec::single_node(1),
        SimConfig::default(),
        Box::new(FirstFit),
        Box::new(OneShotScaler { fired: false, func }),
        &fair_factory(),
    );
    // No initial instances: everything backlogs until the scaler fires.
    let arrivals = PoissonProcess::new(5.0, 3).generate(SimTime::from_secs(10));
    sim.deploy_inference(spec, 0, arrivals).unwrap();
    sim.run_until(SimTime::from_secs(20));
    let report = sim.into_report();
    let f = &report.inference[&func];
    assert_eq!(f.cold_starts.count(), 1);
    assert!(f.completed > 0, "backlog must drain after cold start");
    // Early requests waited out the entire cold start (the scaler fired
    // at t=2 s, the first arrivals landed before that): with exact
    // completion timestamps the full cold-start delay is a hard lower
    // bound on the worst latency, no half-delay slack needed.
    assert!(f.latency.quantile(1.0) >= cold_start_duration(ModelId::ResNet152));
}

/// Pins the occupancy semantics of cold-starting instances: their engine
/// slots are admitted at launch, so the hosting GPU counts as occupied
/// from the scale-out instant — before the instance can serve — and the
/// O(1) counter agrees with a full engine scan at every probe.
#[test]
fn cold_starting_instances_occupy_their_gpus() {
    let spec = inference_spec(1, ModelId::ResNet152, 4);
    let func = spec.id;
    let mut sim = ClusterSim::new(
        ClusterSpec::single_node(2),
        SimConfig::default(),
        Box::new(FirstFit),
        Box::new(OneShotScaler { fired: false, func }),
        &fair_factory(),
    );
    let arrivals = PoissonProcess::new(5.0, 3).generate(SimTime::from_secs(6));
    sim.deploy_inference(spec, 0, arrivals).unwrap();
    assert_eq!(sim.occupied_gpus(), 0, "no instances yet");
    // Run past the scaler's t=2 s scale-out but not past the ResNet-152
    // cold start (≥ 1 s): the instance is still ColdStarting.
    sim.run_until(SimTime::from_secs(3));
    assert_eq!(sim.ready_instances(func), 0, "instance must still be cold-starting");
    assert_eq!(
        sim.occupied_gpus(),
        1,
        "a cold-starting instance reserves its GPU from the launch instant"
    );
    // After promotion and the traffic tail the instance keeps serving.
    sim.run_until(SimTime::from_secs(10));
    assert_eq!(sim.ready_instances(func), 1);
    assert_eq!(sim.occupied_gpus(), 1);
}

#[test]
fn pipelined_llm_instance_spans_gpus() {
    let model = ModelId::Llama2_7b;
    let profile = model.profile();
    let mut sim = ClusterSim::new(
        ClusterSpec::single_node(4),
        SimConfig::default(),
        Box::new(FirstFit),
        Box::new(NullScaler),
        &fair_factory(),
    );
    let spec = FunctionSpec {
        id: FunctionId(1),
        name: "llama-inf".into(),
        model,
        kind: FunctionKind::Inference { slo: profile.slo, batch: 2 },
        quotas: Quotas::new(
            SmRate::from_percent(40.0),
            SmRate::from_percent(80.0),
            profile.infer_mem_bytes / 4,
        ),
        gpus_per_instance: 4,
    };
    let arrivals = PoissonProcess::new(2.0, 5).generate(SimTime::from_secs(20));
    let expected = arrivals.len() as u64;
    sim.deploy_inference(spec, 1, arrivals).unwrap();
    assert_eq!(sim.occupied_gpus(), 4, "stages must land on 4 GPUs");
    sim.run_until(SimTime::from_secs(30));
    let report = sim.into_report();
    let f = &report.inference[&FunctionId(1)];
    assert!(f.completed >= expected * 9 / 10, "completed {}/{}", f.completed, expected);
    // Per-token display latency should be in tens of ms.
    assert!(f.p95_display() < SimDuration::from_millis(200));
}

/// Resizes a function's quotas at t=2 s and records the quota views it
/// is shown afterwards (shared out through `Rc` so the test can assert
/// on what the control plane actually saw).
struct ResizeProbe {
    func: FunctionId,
    fired: bool,
    seen: std::rc::Rc<std::cell::RefCell<Vec<QuotaView>>>,
}

impl ElasticityController for ResizeProbe {
    fn on_tick(
        &mut self,
        now: SimTime,
        functions: &[FunctionScaleView],
        cluster: &ClusterView,
    ) -> Vec<ScaleAction> {
        assert_eq!(cluster.gpus.len(), 2, "controller sees the whole cluster");
        if let Some(f) = functions.iter().find(|f| f.func == self.func) {
            self.seen.borrow_mut().push(f.quota);
        }
        if !self.fired && now >= SimTime::from_secs(2) {
            self.fired = true;
            return vec![ScaleAction::ResizeQuota {
                func: self.func,
                request: SmRate::from_percent(80.0),
                limit: SmRate::from_percent(90.0),
            }];
        }
        Vec::new()
    }

    fn name(&self) -> &str {
        "resize-probe"
    }
}

#[test]
fn vertical_resizes_apply_and_are_counted() {
    let spec = inference_spec(1, ModelId::RobertaLarge, 4);
    let func = spec.id;
    let (req0, lim0) = (spec.quotas.request, spec.quotas.limit);
    let seen = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
    let mut sim = ClusterSim::with_controller(
        ClusterSpec::single_node(2),
        SimConfig::default(),
        Box::new(FirstFit),
        Box::new(ResizeProbe { func, fired: false, seen: seen.clone() }),
        &fair_factory(),
    );
    let arrivals = PoissonProcess::new(10.0, 7).generate(SimTime::from_secs(6));
    sim.deploy_inference(spec, 1, arrivals).unwrap();
    sim.run_until(SimTime::from_secs(6));
    let report = sim.into_report();
    let f = &report.inference[&func];
    assert_eq!(f.resizes.grows(), 1, "one grow resize");
    assert_eq!(f.resizes.total(), 1);
    assert_eq!(report.total_resizes(), 1);
    assert_eq!(f.cold_starts.count(), 0, "vertical scaling pays no cold start");
    let seen = seen.borrow();
    // Before the resize the controller saw the deployed quotas plus the
    // GPU's guaranteed-SM slack as vertical headroom.
    let before = seen.first().expect("ticks before the resize");
    assert_eq!(before.request, req0);
    assert_eq!(before.limit, lim0);
    assert!((before.headroom.as_fraction() - (1.0 - req0.as_fraction())).abs() < 1e-9);
    assert!(before.capacity_rps_at_limit > 0.0);
    // Within one tick of the decision (1 ms apply latency ≪ 1 s tick)
    // the views reflect the new quotas, and headroom shrank to match.
    let after = seen.last().expect("ticks after the resize");
    assert_eq!(after.request, SmRate::from_percent(80.0));
    assert_eq!(after.limit, SmRate::from_percent(90.0));
    assert!((after.headroom.as_fraction() - 0.2).abs() < 1e-9);
}

/// Re-emits the same grow every tick until the spec reflects it — the
/// steady-state behaviour of a real controller whose decision stands
/// until applied.
struct PersistentResizer {
    func: FunctionId,
    target: SmRate,
}

impl ElasticityController for PersistentResizer {
    fn on_tick(
        &mut self,
        _now: SimTime,
        functions: &[FunctionScaleView],
        _cluster: &ClusterView,
    ) -> Vec<ScaleAction> {
        match functions.iter().find(|f| f.func == self.func) {
            Some(f) if f.quota.request < self.target => vec![ScaleAction::ResizeQuota {
                func: self.func,
                request: self.target,
                limit: self.target,
            }],
            _ => Vec::new(),
        }
    }

    fn name(&self) -> &str {
        "persistent-resizer"
    }
}

#[test]
fn zero_resize_latency_matches_dense_stepping() {
    // With resize_latency = 0 the controller's decision is due at the
    // very instant it was made — after this wake's apply phase already
    // ran. The event core must defer it to the next quantum (where the
    // dense stepper first sees it), not re-wake and re-step the same
    // instant.
    let run = |time_model: TimeModel| {
        let spec = inference_spec(1, ModelId::BertBase, 4);
        let func = spec.id;
        let config =
            SimConfig { resize_latency: SimDuration::ZERO, time_model, ..SimConfig::default() };
        let mut sim = ClusterSim::with_controller(
            ClusterSpec::single_node(1),
            config,
            Box::new(FirstFit),
            Box::new(PersistentResizer { func, target: SmRate::from_percent(70.0) }),
            &fair_factory(),
        );
        let arrivals = PoissonProcess::new(20.0, 5).generate(SimTime::from_secs(6));
        sim.deploy_inference(spec, 1, arrivals).unwrap();
        // A collocated always-busy training worker guarantees the GPU
        // is mid-work at the instant the resize decision lands — a
        // same-instant re-wake would step it twice and double-issue
        // kernel blocks.
        let train = FunctionSpec {
            id: FunctionId(2),
            name: "train".into(),
            model: ModelId::BertBase,
            kind: FunctionKind::Training { workers: 1, iterations: 10_000 },
            quotas: Quotas::equal(
                SmRate::from_percent(30.0),
                ModelId::BertBase.profile().training.mem_bytes,
            ),
            gpus_per_instance: 1,
        };
        sim.deploy_training(train).unwrap();
        sim.run_until(SimTime::from_secs(8));
        sim.into_report()
    };
    let dense = run(TimeModel::DenseQuantum);
    let event = run(TimeModel::EventDriven);
    assert_eq!(dense.total_resizes(), 1);
    assert_eq!(
        format!("{dense:?}"),
        format!("{event:?}"),
        "zero-latency resizes must not desynchronise the time models"
    );
}

#[test]
fn re_requested_resizes_keep_their_original_due_time() {
    // With resize_latency longer than the tick, a controller re-emitting
    // its decision every tick must not push the apply out forever.
    let spec = inference_spec(1, ModelId::BertBase, 4);
    let func = spec.id;
    let config = SimConfig { resize_latency: SimDuration::from_secs(2), ..SimConfig::default() };
    let mut sim = ClusterSim::with_controller(
        ClusterSpec::single_node(1),
        config,
        Box::new(FirstFit),
        Box::new(PersistentResizer { func, target: SmRate::from_percent(70.0) }),
        &fair_factory(),
    );
    let arrivals = PoissonProcess::new(5.0, 3).generate(SimTime::from_secs(8));
    sim.deploy_inference(spec, 1, arrivals).unwrap();
    sim.run_until(SimTime::from_secs(8));
    let report = sim.into_report();
    assert_eq!(
        report.inference[&func].resizes.total(),
        1,
        "the resize must apply once despite per-tick re-requests"
    );
}

#[test]
fn duplicate_deployment_is_rejected() {
    let mut sim = ClusterSim::new(
        ClusterSpec::single_node(1),
        SimConfig::default(),
        Box::new(FirstFit),
        Box::new(NullScaler),
        &fair_factory(),
    );
    let spec = inference_spec(1, ModelId::BertBase, 4);
    sim.deploy_inference(spec.clone(), 0, Vec::new()).unwrap();
    let err = sim.deploy_inference(spec, 0, Vec::new()).unwrap_err();
    assert_eq!(err, DeployError::DuplicateFunction(FunctionId(1)));
}

#[test]
fn report_contains_fragmentation_and_occupancy_series() {
    let mut sim = ClusterSim::new(
        ClusterSpec::single_node(2),
        SimConfig::default(),
        Box::new(FirstFit),
        Box::new(NullScaler),
        &fair_factory(),
    );
    let spec = inference_spec(1, ModelId::BertBase, 4);
    let arrivals = PoissonProcess::new(10.0, 1).generate(SimTime::from_secs(5));
    sim.deploy_inference(spec, 1, arrivals).unwrap();
    sim.run_until(SimTime::from_secs(6));
    let report = sim.into_report();
    assert!(!report.fragmentation.is_empty());
    assert!(report.peak_gpus >= 1);
    assert!(report.gpu_time >= SimDuration::from_secs(4));
    assert!(report.total_kernel_series.iter().map(|&(_, b)| b).sum::<u64>() > 0);
    // BERT is tiny and bursts are short: the occupied GPU runs far below
    // 100% SM — static exclusive occupancy shows up as fragmentation.
    assert!(report.fragmentation.mean_sm_fragmentation() > 0.3);
}

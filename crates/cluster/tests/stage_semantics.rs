//! Pins the non-network per-stage time semantics of `push_stage_item`
//! (`crates/cluster/src/dispatch.rs`) before the byte-based network
//! transfer path exists alongside it. The frozen rules:
//!
//! * every stage of a `stages`-deep pipeline runs for
//!   `t_total / stages + stage_transfer.min(t_total)` — integer-truncating
//!   division (remainder microseconds are *dropped*, not rounded) plus the
//!   constant activation-transfer cost clamped at `t_total`;
//! * a finished intermediate stage hands off to the next GPU at the next
//!   quantum-grid instant (work is queued during the completion handler
//!   and picked up at the following token cycle), while the *final* stage
//!   completes at its exact block-finish instant;
//! * both time models agree byte-for-byte on all of it.
//!
//! So a solo request admitted at t=0 completes at
//! `c_1 = t_stage`, `c_k = grid_ceil(c_{k-1}) + t_stage` — the closed form
//! `expected_latency` below. Scenarios without a `[network]` section must
//! reproduce these numbers forever.

use dilu_cluster::{
    named, Autoscaler, ClusterSim, ClusterSpec, ClusterView, FunctionId, FunctionKind,
    FunctionScaleView, FunctionSpec, GpuAddr, Placement, PolicyFactory, Quotas, ScaleAction,
    SimConfig, TimeModel,
};
use dilu_gpu::policies::FairSharePolicy;
use dilu_gpu::SmRate;
use dilu_models::ModelId;
use dilu_sim::{SimDuration, SimTime};

/// Places on the first GPUs with enough free memory (one per stage).
struct FirstFit;

impl Placement for FirstFit {
    fn place(&mut self, func: &FunctionSpec, cluster: &ClusterView) -> Option<Vec<GpuAddr>> {
        let mut chosen = Vec::new();
        for gpu in &cluster.gpus {
            if gpu.mem_free() >= func.quotas.mem_bytes && !chosen.contains(&gpu.addr) {
                chosen.push(gpu.addr);
                if chosen.len() as u32 == func.gpus_per_instance {
                    return Some(chosen);
                }
            }
        }
        None
    }

    fn name(&self) -> &str {
        "first-fit"
    }
}

struct NullScaler;

impl Autoscaler for NullScaler {
    fn on_tick(&mut self, _now: SimTime, _functions: &[FunctionScaleView]) -> Vec<ScaleAction> {
        Vec::new()
    }

    fn name(&self) -> &str {
        "null"
    }
}

fn fair_factory() -> impl PolicyFactory {
    named("fair-share", || Box::new(FairSharePolicy))
}

/// Serves exactly one request through a `stages`-deep LLaMA2-7B pipeline
/// at full quota and returns its end-to-end latency. Batch size 1 and a
/// single arrival at t=0 remove batching waits and queueing, so the
/// latency is the pipeline's pure service time.
fn solo_latency(stages: u32, stage_transfer: SimDuration, time_model: TimeModel) -> SimDuration {
    let model = ModelId::Llama2_7b;
    let profile = model.profile();
    let spec = FunctionSpec {
        id: FunctionId(1),
        name: "llama-pipe".into(),
        model,
        kind: FunctionKind::Inference { slo: profile.slo, batch: 1 },
        quotas: Quotas::new(
            SmRate::from_percent(40.0),
            SmRate::from_percent(80.0),
            profile.infer_mem_bytes / u64::from(stages),
        ),
        gpus_per_instance: stages,
    };
    let config = SimConfig { stage_transfer, time_model, ..SimConfig::default() };
    let mut sim = ClusterSim::new(
        ClusterSpec::single_node(4),
        config,
        Box::new(FirstFit),
        Box::new(NullScaler),
        &fair_factory(),
    );
    sim.deploy_inference(spec, 1, vec![SimTime::ZERO]).unwrap();
    sim.run_until(SimTime::from_secs(60));
    let report = sim.into_report();
    let f = &report.inference[&FunctionId(1)];
    assert_eq!(f.completed, 1, "the single request must complete");
    f.latency.quantile(1.0)
}

/// LLaMA2-7B at batch 1: `inference_t_min(1)` = 350 ms fixed + 60 ms per
/// sample = 410 ms. Every expected value below derives from this.
const T_TOTAL_US: u64 = 410_000;
const QUANTUM_US: u64 = 5_000;

/// The frozen closed form: per-stage time is `t_total / stages`
/// (truncating) plus the clamped transfer constant; intermediate handoffs
/// align up to the quantum grid; the last stage finishes exactly.
fn expected_latency(stages: u64, transfer_us: u64) -> SimDuration {
    let t_stage = T_TOTAL_US / stages + transfer_us.min(T_TOTAL_US);
    let mut finish = t_stage;
    for _ in 1..stages {
        finish = finish.div_ceil(QUANTUM_US) * QUANTUM_US + t_stage;
    }
    SimDuration::from_micros(finish)
}

#[test]
fn closed_form_pins_every_stage_count_and_transfer() {
    for time_model in [TimeModel::EventDriven, TimeModel::DenseQuantum] {
        for stages in [1u64, 2, 3, 4] {
            // 2 ms (sub-quantum), 5 ms (grid-aligned), 7 ms (off-grid):
            // handoff alignment must match the closed form in all regimes.
            for transfer_us in [0u64, 2_000, 5_000, 7_000] {
                let observed =
                    solo_latency(stages as u32, SimDuration::from_micros(transfer_us), time_model);
                assert_eq!(
                    observed,
                    expected_latency(stages, transfer_us),
                    "stages={stages} transfer={transfer_us}us ({time_model:?})"
                );
            }
        }
    }
}

#[test]
fn stage_division_truncates_toward_zero() {
    // 410 000 µs over 3 stages is 136 666.67 µs: the truncating division
    // gives 136 666 µs per stage and *drops* the remainder. With grid
    // handoffs at 140 000 and 280 000 the last stage finishes at
    // 416 666 µs — one µs earlier than round-to-nearest would give.
    let observed = solo_latency(3, SimDuration::ZERO, TimeModel::EventDriven);
    assert_eq!(observed, SimDuration::from_micros(416_666));
    assert_eq!(expected_latency(3, 0), SimDuration::from_micros(416_666));
}

#[test]
fn stage_transfer_clamps_at_t_total() {
    // A transfer constant larger than the whole batch's compute time is
    // clamped per stage to `t_total` (`stage_transfer.min(t_total)` in
    // push_stage_item): 410 ms, 10 s, and 1 h all behave identically.
    for time_model in [TimeModel::EventDriven, TimeModel::DenseQuantum] {
        let at_t_total = solo_latency(4, SimDuration::from_micros(T_TOTAL_US), time_model);
        assert_eq!(at_t_total, expected_latency(4, T_TOTAL_US), "{time_model:?}");
        for oversized in [SimDuration::from_secs(10), SimDuration::from_secs(3600)] {
            let clamped = solo_latency(4, oversized, time_model);
            assert_eq!(
                clamped, at_t_total,
                "oversized {oversized} must clamp to t_total ({time_model:?})"
            );
        }
    }
}

#[test]
fn both_time_models_agree_on_stage_semantics() {
    for stages in [1, 3, 4] {
        for transfer in [SimDuration::ZERO, SimDuration::from_millis(7)] {
            let dense = solo_latency(stages, transfer, TimeModel::DenseQuantum);
            let event = solo_latency(stages, transfer, TimeModel::EventDriven);
            assert_eq!(dense, event, "stages={stages} transfer={transfer}: models must agree");
        }
    }
}

//! Clean twin: ordered container, plus the integer-sum exemption — integer
//! addition is associative, so `.sum::<u64>()` over any iterator is fine.

use std::collections::BTreeMap;

pub fn mean(rates: &BTreeMap<u32, f64>) -> f64 {
    let total = rates.values().sum::<f64>();
    total / rates.len() as f64
}

// dilu-lint: allow(no-unordered-iteration) -- fixture exercises the integer-sum exemption on a hash map
pub fn total_hits(counts: &std::collections::HashMap<u32, u64>) -> u64 {
    counts.values().sum::<u64>()
}

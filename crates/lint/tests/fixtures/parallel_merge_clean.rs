//! Clean twin: the same fan-out merged deterministically — each worker owns
//! a fixed slot in an indexed buffer and the merge walks ascending indices.

pub fn fan_out(items: Vec<u64>) -> u64 {
    let mut slots: Vec<u64> = vec![0; items.len()];
    std::thread::scope(|s| {
        for (slot, x) in slots.iter_mut().zip(items) {
            s.spawn(move || *slot = x * 2);
        }
    });
    let mut total = 0;
    for v in slots {
        total += v;
    }
    total
}

//! Planted violations for the CLI gate test: `dilu lint --root <this ws>`
//! must exit non-zero and name the rules on stderr.

use std::collections::HashMap;

pub fn stamp() -> f64 {
    let started = std::time::Instant::now();
    let m: HashMap<u32, u32> = HashMap::new();
    started.elapsed().as_secs_f64() + m.len() as f64
}

//! Planted violation: ambient wall-clock reads inside sim-path code.

pub fn stamp() -> f64 {
    let started = std::time::Instant::now(); //~ no-ambient-time
    let _epoch = std::time::SystemTime::now(); //~ no-ambient-time
    started.elapsed().as_secs_f64()
}

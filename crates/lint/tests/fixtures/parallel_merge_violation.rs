//! Planted violation: a thread fan-out merged in arrival order via a channel.

use std::sync::mpsc; //~ no-unordered-parallel-merge

pub fn fan_out(items: Vec<u64>) -> u64 {
    let (tx, rx) = mpsc::channel(); //~ no-unordered-parallel-merge
    std::thread::scope(|s| {
        for x in items {
            let tx = tx.clone();
            s.spawn(move || tx.send(x).unwrap());
        }
    });
    drop(tx);
    let mut total = 0;
    while let Ok(v) = rx.recv() { //~ no-unordered-parallel-merge
        total += v;
    }
    total
}

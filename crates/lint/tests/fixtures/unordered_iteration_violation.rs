//! Planted violation: unordered hash containers on a sim path. Each
//! trailing marker comment names the rule expected to fire on that line.

use std::collections::HashMap; //~ no-unordered-iteration

pub fn count(xs: &[u32]) -> usize {
    let mut seen: std::collections::HashSet<u32> = std::collections::HashSet::new(); //~ no-unordered-iteration
    for &x in xs {
        seen.insert(x);
    }
    let m: HashMap<u32, u32> = HashMap::new(); //~ no-unordered-iteration
    seen.len() + m.len()
}

//! Planted violation: float accumulation over hash-container iterators.
//! The container declarations themselves also trip `no-unordered-iteration`.

use std::collections::HashMap; //~ no-unordered-iteration

pub fn mean(rates: &HashMap<u32, f64>) -> f64 { //~ no-unordered-iteration
    let total = rates.values().sum::<f64>(); //~ float-accumulation-order
    total / rates.len() as f64
}

pub fn folded(rates: &HashMap<u32, f64>) -> f64 { //~ no-unordered-iteration
    rates.iter().fold(0.0, |acc, (_, v)| acc + v) //~ float-accumulation-order
}

//! A correctly reasoned suppression: the violation is recorded as
//! suppressed, not reported.

pub fn bench_clock() -> std::time::Duration {
    // dilu-lint: allow(no-ambient-time) -- wall-clock measurement of the harness itself
    let started = std::time::Instant::now();
    started.elapsed()
}

//! A suppression naming a rule that does not exist: hard error, and the
//! directive suppresses nothing.

pub fn bench_clock() -> std::time::Duration {
    // dilu-lint: allow(no-such-rule) -- confidently wrong
    let started = std::time::Instant::now();
    started.elapsed()
}

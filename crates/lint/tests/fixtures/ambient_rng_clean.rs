//! Clean twin: every RNG derives from an explicit case seed.

pub fn roll(seed: u64) -> u64 {
    // thread_rng() would be a violation; seed_from_u64 is the sanctioned path.
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    state ^= state >> 27;
    state
}

//! Clean twin: ordered containers only, plus the exemptions the lexer must
//! honour — a HashMap inside a string, a comment, and a `#[cfg(test)]` module.

use std::collections::{BTreeMap, BTreeSet};

pub fn count(xs: &[u32]) -> usize {
    // A HashMap mentioned in a comment must not fire.
    let banner = "HashMap is banned here"; // and not in a string either
    let mut seen: BTreeSet<u32> = BTreeSet::new();
    for &x in xs {
        seen.insert(x);
    }
    let m: BTreeMap<u32, u32> = BTreeMap::new();
    seen.len() + m.len() + banner.len()
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn test_code_may_use_hash_containers() {
        let mut m = HashMap::new();
        m.insert(1u32, 2u32);
        assert_eq!(m.len(), 1);
    }
}

//! Planted violation: entropy-seeded randomness on a sim path.

pub fn roll() -> u64 {
    let mut _rng = rand::thread_rng(); //~ no-ambient-rng
    let _other = rand::rngs::StdRng::from_entropy(); //~ no-ambient-rng
    rand::random() //~ no-ambient-rng
}

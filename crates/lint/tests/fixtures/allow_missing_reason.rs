//! A suppression without a reason: the directive itself is a finding and
//! the underlying violation is still reported.

pub fn bench_clock() -> std::time::Duration {
    // dilu-lint: allow(no-ambient-time)
    let started = std::time::Instant::now();
    started.elapsed()
}

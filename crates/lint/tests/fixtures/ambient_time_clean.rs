//! Clean twin: simulated time only. Wall-clock names appear in comments and
//! in test code, where they are exempt.

pub fn stamp(now_micros: u64) -> f64 {
    // Instant::now() would be a violation here; SimTime is threaded instead.
    now_micros as f64 / 1e6
}

#[test]
fn test_code_may_read_the_wall_clock() {
    let t = std::time::Instant::now();
    assert!(t.elapsed().as_secs_f64() >= 0.0);
}

//! Mutation-style self-tests for the linter: every rule is proven by a
//! planted-violation fixture (findings must match its `//~ <rule>` markers
//! exactly, by line) and a clean twin (zero findings), and the suppression
//! grammar is proven by allow-directive fixtures. A final test runs the
//! real workspace audit and enforces the acceptance bar: clean, with zero
//! suppressions inside `crates/cluster/src` and `crates/sim/src`.

use std::path::Path;

use dilu_lint::{lint_source, lint_workspace, Config, ALLOW_RULE, NO_AMBIENT_TIME};

/// A fixture path is interpreted as if the file lived on a guarded sim
/// path, so every default-scoped rule applies.
const SIM_REL: &str = "crates/cluster/src/fixture.rs";

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// The `(line, rule)` pairs named by `//~ <rule>` markers in the fixture.
fn expected_markers(src: &str) -> Vec<(u32, String)> {
    let mut want: Vec<(u32, String)> = Vec::new();
    for (i, line) in src.lines().enumerate() {
        for part in line.split("//~").skip(1) {
            want.push((i as u32 + 1, part.trim().to_string()));
        }
    }
    want.sort();
    want
}

/// Asserts the planted fixture fires exactly at its markers: same rules,
/// same lines, nothing extra, nothing missing.
fn assert_fires_exactly(name: &str) {
    let src = fixture(name);
    let (findings, _) = lint_source(&src, SIM_REL, &Config::default());
    let mut got: Vec<(u32, String)> =
        findings.iter().map(|f| (f.line, f.rule.to_string())).collect();
    got.sort();
    let want = expected_markers(&src);
    assert!(!want.is_empty(), "planted fixture {name} carries no //~ markers");
    assert_eq!(got, want, "fixture {name}: findings must match the //~ markers");
}

/// Asserts the clean twin produces zero findings.
fn assert_clean(name: &str) {
    let src = fixture(name);
    let (findings, _) = lint_source(&src, SIM_REL, &Config::default());
    assert!(findings.is_empty(), "clean fixture {name} must not fire: {findings:?}");
}

#[test]
fn unordered_iteration_fires_on_planted_violation() {
    assert_fires_exactly("unordered_iteration_violation.rs");
}

#[test]
fn unordered_iteration_spares_the_clean_twin() {
    assert_clean("unordered_iteration_clean.rs");
}

#[test]
fn ambient_time_fires_on_planted_violation() {
    assert_fires_exactly("ambient_time_violation.rs");
}

#[test]
fn ambient_time_spares_the_clean_twin() {
    assert_clean("ambient_time_clean.rs");
}

#[test]
fn ambient_rng_fires_on_planted_violation() {
    assert_fires_exactly("ambient_rng_violation.rs");
}

#[test]
fn ambient_rng_spares_the_clean_twin() {
    assert_clean("ambient_rng_clean.rs");
}

#[test]
fn parallel_merge_fires_on_planted_violation() {
    assert_fires_exactly("parallel_merge_violation.rs");
}

#[test]
fn parallel_merge_spares_the_indexed_clean_twin() {
    assert_clean("parallel_merge_clean.rs");
}

#[test]
fn float_order_fires_on_planted_violation() {
    assert_fires_exactly("float_order_violation.rs");
}

#[test]
fn float_order_spares_ordered_and_integer_sums() {
    // The clean twin also carries one reasoned allow (a HashMap kept to
    // exercise the integer-sum exemption), which must land in `suppressed`.
    let src = fixture("float_order_clean.rs");
    let (findings, suppressed) = lint_source(&src, SIM_REL, &Config::default());
    assert!(findings.is_empty(), "clean fixture must not fire: {findings:?}");
    assert_eq!(suppressed.len(), 1, "the reasoned allow is recorded as suppressed");
}

#[test]
fn allow_with_reason_suppresses_the_violation() {
    let src = fixture("allow_with_reason.rs");
    let (findings, suppressed) = lint_source(&src, SIM_REL, &Config::default());
    assert!(findings.is_empty(), "{findings:?}");
    assert_eq!(suppressed.len(), 1);
    assert_eq!(suppressed[0].rule, NO_AMBIENT_TIME);
}

#[test]
fn allow_without_reason_is_itself_an_error() {
    let src = fixture("allow_missing_reason.rs");
    let (findings, suppressed) = lint_source(&src, SIM_REL, &Config::default());
    assert!(suppressed.is_empty(), "a reasonless allow suppresses nothing");
    let rules: Vec<&str> = findings.iter().map(|f| f.rule).collect();
    assert!(rules.contains(&ALLOW_RULE), "{findings:?}");
    assert!(rules.contains(&NO_AMBIENT_TIME), "the violation still fires: {findings:?}");
}

#[test]
fn allow_naming_an_unknown_rule_is_an_error() {
    let src = fixture("allow_unknown_rule.rs");
    let (findings, suppressed) = lint_source(&src, SIM_REL, &Config::default());
    assert!(suppressed.is_empty());
    let allow_err = findings.iter().find(|f| f.rule == ALLOW_RULE).expect("directive error");
    assert!(allow_err.message.contains("no-such-rule"));
    assert!(findings.iter().any(|f| f.rule == NO_AMBIENT_TIME), "violation still fires");
}

/// The acceptance bar, enforced as a test: the real workspace audit is
/// clean under the real `lint.toml`, and the hot sim paths carry no
/// suppressions at all.
#[test]
fn workspace_audit_is_clean_and_sim_core_is_suppression_free() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint sits two levels below the workspace root");
    let config = Config::load(&root.join("lint.toml")).expect("lint.toml parses");
    let report = lint_workspace(root, &config, None).expect("workspace walk");
    assert!(report.files_checked > 50, "the walk found the source tree");
    assert!(report.clean(), "workspace determinism audit failed:\n{}", report.render_human());
    let guarded: Vec<_> = report
        .suppressed
        .iter()
        .filter(|f| {
            f.file.starts_with("crates/cluster/src") || f.file.starts_with("crates/sim/src")
        })
        .collect();
    assert!(guarded.is_empty(), "no suppressions allowed in the sim core: {guarded:?}");
}

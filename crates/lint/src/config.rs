//! `lint.toml` — path scopes and rule toggles for the determinism audit.
//!
//! ```toml
//! [scan]
//! roots = ["crates", "src"]
//! exclude = ["crates/lint/tests"]
//!
//! [rules.no-unordered-iteration]
//! paths = ["crates/cluster/src", "crates/sim/src"]
//!
//! [rules.no-ambient-time]
//! exclude = ["crates/cli/src"]
//!
//! [rules.float-accumulation-order]
//! enabled = false
//! ```
//!
//! Unknown sections, keys, and rule names are rejected loudly — a typo in
//! the audit's own configuration must never silently disable a rule.

use std::collections::BTreeMap;
use std::path::Path;

use crate::rules;

/// Per-rule configuration: an on/off toggle plus optional path scoping.
#[derive(Debug, Clone, Default)]
pub struct RuleConfig {
    /// `false` disables the rule entirely.
    pub enabled: bool,
    /// When non-empty, the rule only applies to files under these
    /// workspace-relative prefixes.
    pub paths: Vec<String>,
    /// Files under these prefixes are exempt from the rule.
    pub exclude: Vec<String>,
}

/// The parsed `lint.toml`.
#[derive(Debug, Clone)]
pub struct Config {
    /// Directories (workspace-relative) walked for `.rs` files.
    pub scan_roots: Vec<String>,
    /// Workspace-relative prefixes excluded from the walk.
    pub scan_exclude: Vec<String>,
    /// Per-rule settings, keyed by rule name.
    pub rules: BTreeMap<String, RuleConfig>,
}

impl Default for Config {
    /// Every rule enabled, unscoped, scanning `crates/` and `src/`.
    fn default() -> Self {
        Config {
            scan_roots: vec!["crates".into(), "src".into()],
            scan_exclude: Vec::new(),
            rules: rules::RULES
                .iter()
                .map(|r| (r.name.to_string(), RuleConfig { enabled: true, ..Default::default() }))
                .collect(),
        }
    }
}

impl Config {
    /// Loads and validates the `lint.toml` at `path`.
    pub fn load(path: &Path) -> Result<Config, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Config::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Parses `lint.toml` text.
    pub fn parse(text: &str) -> Result<Config, String> {
        let value = toml::parse_value(text).map_err(|e| e.to_string())?;
        let mut config = Config::default();
        let root = value.as_map().ok_or("lint.toml must be a table")?;
        for (key, section) in root {
            match key.as_str() {
                Some("scan") => {
                    let entries = section.as_map().ok_or("[scan] must be a table")?;
                    for (k, v) in entries {
                        match k.as_str() {
                            Some("roots") => config.scan_roots = string_list(v, "scan.roots")?,
                            Some("exclude") => {
                                config.scan_exclude = string_list(v, "scan.exclude")?;
                            }
                            other => {
                                return Err(format!(
                                    "unknown key `{}` in [scan] (known: roots, exclude)",
                                    other.unwrap_or("?")
                                ));
                            }
                        }
                    }
                }
                Some("rules") => {
                    let entries = section.as_map().ok_or("[rules] must be a table")?;
                    for (name, body) in entries {
                        let name = name.as_str().ok_or("rule names must be strings")?;
                        let slot = config.rules.get_mut(name).ok_or_else(|| {
                            format!(
                                "unknown rule `{name}` in lint.toml (known: {})",
                                rules::rule_names().join(", ")
                            )
                        })?;
                        apply_rule_section(slot, name, body)?;
                    }
                }
                other => {
                    return Err(format!(
                        "unknown section `{}` in lint.toml (known: scan, rules)",
                        other.unwrap_or("?")
                    ));
                }
            }
        }
        Ok(config)
    }

    /// `true` when `rel` (workspace-relative, `/`-separated) is subject to
    /// `rule` under this configuration.
    pub fn rule_applies(&self, rule: &str, rel: &str) -> bool {
        let Some(rc) = self.rules.get(rule) else { return false };
        if !rc.enabled {
            return false;
        }
        if !rc.paths.is_empty() && !rc.paths.iter().any(|p| path_has_prefix(rel, p)) {
            return false;
        }
        !rc.exclude.iter().any(|p| path_has_prefix(rel, p))
    }
}

fn apply_rule_section(
    slot: &mut RuleConfig,
    name: &str,
    body: &serde::Value,
) -> Result<(), String> {
    let entries = body.as_map().ok_or_else(|| format!("[rules.{name}] must be a table"))?;
    for (k, v) in entries {
        match k.as_str() {
            Some("enabled") => {
                slot.enabled =
                    v.as_bool().ok_or_else(|| format!("rules.{name}.enabled must be a bool"))?;
            }
            Some("paths") => slot.paths = string_list(v, &format!("rules.{name}.paths"))?,
            Some("exclude") => slot.exclude = string_list(v, &format!("rules.{name}.exclude"))?,
            other => {
                return Err(format!(
                    "unknown key `{}` in [rules.{name}] (known: enabled, paths, exclude)",
                    other.unwrap_or("?")
                ));
            }
        }
    }
    Ok(())
}

fn string_list(v: &serde::Value, what: &str) -> Result<Vec<String>, String> {
    let serde::Value::Seq(items) = v else {
        return Err(format!("{what} must be an array of strings"));
    };
    items
        .iter()
        .map(|s| {
            s.as_str().map(str::to_string).ok_or_else(|| format!("{what} must contain strings"))
        })
        .collect()
}

/// Component-aligned prefix test: `crates/sim/src` matches
/// `crates/sim/src/events.rs` but not `crates/sim2/src/lib.rs`.
pub(crate) fn path_has_prefix(rel: &str, prefix: &str) -> bool {
    let prefix = prefix.trim_end_matches('/');
    rel.strip_prefix(prefix).is_some_and(|rest| rest.is_empty() || rest.starts_with('/'))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scopes_and_toggles() {
        let config = Config::parse(
            "
            [scan]
            roots = [\"crates\"]
            exclude = [\"crates/lint/tests\"]

            [rules.no-unordered-iteration]
            paths = [\"crates/cluster/src\", \"crates/sim/src\"]

            [rules.no-ambient-time]
            exclude = [\"crates/cli/src\"]

            [rules.float-accumulation-order]
            enabled = false
            ",
        )
        .expect("valid config");
        assert_eq!(config.scan_roots, ["crates"]);
        assert!(config.rule_applies("no-unordered-iteration", "crates/sim/src/events.rs"));
        assert!(!config.rule_applies("no-unordered-iteration", "crates/cli/src/main.rs"));
        assert!(config.rule_applies("no-ambient-time", "crates/gpu/src/engine.rs"));
        assert!(!config.rule_applies("no-ambient-time", "crates/cli/src/main.rs"));
        assert!(!config.rule_applies("float-accumulation-order", "crates/sim/src/events.rs"));
    }

    #[test]
    fn unknown_rule_and_keys_are_rejected() {
        let err = Config::parse("[rules.no-such-rule]\nenabled = true\n").unwrap_err();
        assert!(err.contains("unknown rule `no-such-rule`"), "{err}");
        assert!(err.contains("no-unordered-iteration"), "error lists known rules: {err}");
        let err = Config::parse("[scan]\nrots = [\"crates\"]\n").unwrap_err();
        assert!(err.contains("unknown key `rots`"), "{err}");
        let err = Config::parse("[rules.no-ambient-time]\npath = []\n").unwrap_err();
        assert!(err.contains("unknown key `path`"), "{err}");
        let err = Config::parse("[surprise]\nx = 1\n").unwrap_err();
        assert!(err.contains("unknown section `surprise`"), "{err}");
    }

    #[test]
    fn prefix_matching_is_component_aligned() {
        assert!(path_has_prefix("crates/sim/src/events.rs", "crates/sim/src"));
        assert!(path_has_prefix("crates/sim/src", "crates/sim/src"));
        assert!(!path_has_prefix("crates/sim2/src/lib.rs", "crates/sim"));
    }
}

//! The determinism rule set.
//!
//! Every rule is a token-level heuristic: precise enough to catch the bug
//! classes that break byte-identical replay (unordered iteration, ambient
//! time, ambient randomness, arrival-order parallel merges, order-sensitive
//! float folds), honest enough to be suppressible with a reasoned
//! `// dilu-lint: allow(<rule>) -- <why>` where a human knows better.

use crate::lexer::Lexed;

/// Static description of one rule.
#[derive(Debug, Clone, Copy)]
pub struct Rule {
    /// The rule id used in `lint.toml`, diagnostics, and `allow(...)`.
    pub name: &'static str,
    /// One-line description of what the rule bans.
    pub summary: &'static str,
    /// The fix the diagnostic suggests.
    pub hint: &'static str,
}

/// `no-unordered-iteration`.
pub const NO_UNORDERED_ITERATION: &str = "no-unordered-iteration";
/// `no-ambient-time`.
pub const NO_AMBIENT_TIME: &str = "no-ambient-time";
/// `no-ambient-rng`.
pub const NO_AMBIENT_RNG: &str = "no-ambient-rng";
/// `no-unordered-parallel-merge`.
pub const NO_UNORDERED_PARALLEL_MERGE: &str = "no-unordered-parallel-merge";
/// `float-accumulation-order`.
pub const FLOAT_ACCUMULATION_ORDER: &str = "float-accumulation-order";

/// The full rule set, in diagnostic order.
pub const RULES: &[Rule] = &[
    Rule {
        name: NO_UNORDERED_ITERATION,
        summary: "HashMap/HashSet on a sim/report/controller path — iteration order is \
                  nondeterministic",
        hint: "use BTreeMap/BTreeSet (ordered iteration) or a Vec keyed by a stable index",
    },
    Rule {
        name: NO_AMBIENT_TIME,
        summary: "ambient wall-clock read — simulations must only see SimTime",
        hint: "thread the simulated clock through; wall-clock measurement belongs to bench/cli \
               reporting",
    },
    Rule {
        name: NO_AMBIENT_RNG,
        summary: "ambient randomness — entropy-seeded RNGs break record/replay",
        hint: "derive every RNG from the scenario/case seed (e.g. seed_from_u64)",
    },
    Rule {
        name: NO_UNORDERED_PARALLEL_MERGE,
        summary: "parallel results merged in arrival order — worker timing leaks into the result",
        hint: "collect per-worker outcomes into an indexed buffer and merge in ascending index \
               order",
    },
    Rule {
        name: FLOAT_ACCUMULATION_ORDER,
        summary: "float accumulation over an unordered iterator — the sum depends on iteration \
                  order",
        hint: "accumulate over an ordered container (BTreeMap/Vec) so the addition order is fixed",
    },
];

/// All rule names, in diagnostic order.
pub fn rule_names() -> Vec<&'static str> {
    RULES.iter().map(|r| r.name).collect()
}

/// Looks up a rule by name.
pub fn find_rule(name: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.name == name)
}

/// A rule hit before suppression/snippet handling: `(rule, line, detail)`.
pub(crate) struct RawFinding {
    pub(crate) rule: &'static str,
    pub(crate) line: u32,
    pub(crate) detail: String,
}

/// Runs every rule over one lexed file. Path scoping and suppressions are
/// applied by the caller; this only reports what the tokens say.
pub(crate) fn check(lexed: &Lexed, apply: impl Fn(&str) -> bool) -> Vec<RawFinding> {
    let mut findings: Vec<RawFinding> = Vec::new();
    let toks = &lexed.toks;
    let live = |i: usize| !lexed.exempt[i];
    let map_idents = collect_map_idents(lexed);
    let spawns_threads = toks.iter().enumerate().any(|(i, t)| {
        live(i)
            && (t.is("spawn")
                || (t.is("scope") && i >= 2 && toks[i - 1].is("::") && toks[i - 2].is("thread")))
    });

    let mut push = |rule: &'static str, line: u32, detail: String| {
        if findings.iter().any(|f| f.rule == rule && f.line == line) {
            return; // one finding per rule per line
        }
        findings.push(RawFinding { rule, line, detail });
    };

    for (i, t) in toks.iter().enumerate() {
        if !live(i) {
            continue;
        }
        // --- no-unordered-iteration -----------------------------------
        if apply(NO_UNORDERED_ITERATION) && (t.is("HashMap") || t.is("HashSet")) {
            push(NO_UNORDERED_ITERATION, t.line, format!("`{}` used here", t.s));
        }
        // --- no-ambient-time ------------------------------------------
        if apply(NO_AMBIENT_TIME) {
            if t.is("Instant")
                && toks.get(i + 1).is_some_and(|n| n.is("::"))
                && toks.get(i + 2).is_some_and(|n| n.is("now"))
            {
                push(NO_AMBIENT_TIME, t.line, "`Instant::now()` called here".into());
            }
            if t.is("SystemTime") {
                push(NO_AMBIENT_TIME, t.line, "`SystemTime` used here".into());
            }
        }
        // --- no-ambient-rng -------------------------------------------
        if apply(NO_AMBIENT_RNG) {
            if t.is("thread_rng") || t.is("from_entropy") || t.is("from_os_rng") || t.is("OsRng") {
                push(NO_AMBIENT_RNG, t.line, format!("`{}` used here", t.s));
            }
            if t.is("random") && i >= 2 && toks[i - 1].is("::") && toks[i - 2].is("rand") {
                push(NO_AMBIENT_RNG, t.line, "`rand::random()` used here".into());
            }
        }
        // --- no-unordered-parallel-merge ------------------------------
        if apply(NO_UNORDERED_PARALLEL_MERGE) && spawns_threads {
            if t.is("mpsc") {
                push(
                    NO_UNORDERED_PARALLEL_MERGE,
                    t.line,
                    "channel used in a thread-spawning file — receive order is completion order"
                        .into(),
                );
            }
            if (t.is("recv") || t.is("try_recv") || t.is("try_iter"))
                && i >= 1
                && (toks[i - 1].is(".") || toks[i - 1].is("::"))
            {
                push(
                    NO_UNORDERED_PARALLEL_MERGE,
                    t.line,
                    format!("`{}` drains results in completion order", t.s),
                );
            }
            if t.is("for") {
                if let Some(detail) = unordered_for_merge(toks, i, &map_idents) {
                    push(NO_UNORDERED_PARALLEL_MERGE, t.line, detail);
                }
            }
        }
        // --- float-accumulation-order ---------------------------------
        if apply(FLOAT_ACCUMULATION_ORDER)
            && (t.is("sum") || t.is("fold") || t.is("product"))
            && i >= 1
            && toks[i - 1].is(".")
        {
            if let Some(detail) = float_fold_over_map(toks, i, &map_idents) {
                push(FLOAT_ACCUMULATION_ORDER, t.line, detail);
            }
        }
    }
    findings
}

/// Identifiers bound to `HashMap`/`HashSet` somewhere in this file
/// (`x: HashMap<..>`, `let x = HashMap::new()`, struct fields, …).
fn collect_map_idents(lexed: &Lexed) -> Vec<String> {
    let toks = &lexed.toks;
    let mut idents = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !(t.is("HashMap") || t.is("HashSet")) {
            continue;
        }
        // Walk back over an optional `&mut std::collections::` prefix to
        // the binding punctuation.
        let mut j = i;
        while j > 0 {
            let p = &toks[j - 1];
            if p.is("::") || p.is("std") || p.is("collections") || p.is("&") || p.is("mut") {
                j -= 1;
            } else {
                break;
            }
        }
        if j == 0 {
            continue;
        }
        let bind = &toks[j - 1];
        if (bind.is(":") || bind.is("=")) && j >= 2 && toks[j - 2].is_ident() {
            let name = toks[j - 2].s.clone();
            if !idents.contains(&name) {
                idents.push(name);
            }
        }
    }
    idents
}

/// Is the `for` loop starting at `toks[at]` iterating a map-derived
/// iterator (`for x in m.values()`, `.drain()`, …)?
fn unordered_for_merge(
    toks: &[crate::lexer::Tok],
    at: usize,
    map_idents: &[String],
) -> Option<String> {
    const ITERISH: &[&str] = &["iter", "into_iter", "drain", "values", "keys", "values_mut"];
    let mut j = at + 1;
    while j < toks.len() && !toks[j].is("in") {
        if toks[j].is("{") {
            return None; // not a for-in after all
        }
        j += 1;
    }
    let mut k = j + 1;
    while k < toks.len() && !toks[k].is("{") {
        if map_idents.iter().any(|m| toks[k].is(m))
            && toks.get(k + 1).is_some_and(|n| n.is("."))
            && toks.get(k + 2).is_some_and(|n| ITERISH.contains(&n.s.as_str()))
        {
            return Some(format!(
                "`for … in {}.{}()` iterates a hash container while threads are in play",
                toks[k].s,
                toks[k + 2].s
            ));
        }
        k += 1;
    }
    None
}

/// Is the `.sum`/`.fold`/`.product` at `toks[at]` fed by a hash-container
/// iterator within the same statement, and (for sum/product) plausibly a
/// float accumulation?
fn float_fold_over_map(
    toks: &[crate::lexer::Tok],
    at: usize,
    map_idents: &[String],
) -> Option<String> {
    const ITERISH: &[&str] = &["iter", "into_iter", "drain", "values", "keys", "values_mut"];
    const INT_TYPES: &[&str] =
        &["u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize"];
    // Integer accumulation is order-independent: `.sum::<u64>()` is fine.
    if (toks[at].is("sum") || toks[at].is("product"))
        && toks.get(at + 1).is_some_and(|n| n.is("::"))
        && toks.get(at + 2).is_some_and(|n| n.is("<"))
        && toks.get(at + 3).is_some_and(|n| INT_TYPES.contains(&n.s.as_str()))
    {
        return None;
    }
    // Statement start: the nearest `;`, `{` or `}` before the call.
    let mut start = at;
    while start > 0 {
        let t = &toks[start - 1];
        if t.is(";") || t.is("{") || t.is("}") {
            break;
        }
        start -= 1;
    }
    for k in start..at {
        let from_map = map_idents.iter().any(|m| toks[k].is(m))
            || toks[k].is("HashMap")
            || toks[k].is("HashSet");
        if from_map
            && toks[k + 1..at]
                .windows(2)
                .any(|w| w[0].is(".") && ITERISH.contains(&w[1].s.as_str()))
        {
            return Some(format!(
                "`.{}(…)` accumulates over an iterator derived from `{}`",
                toks[at].s, toks[k].s
            ));
        }
    }
    None
}
